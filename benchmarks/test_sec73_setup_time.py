"""Sec 7.3 — setup-time optimization and sustained performance.

Paper: baseline initialisation (rank-0 structure build + scatter; every rank
reads the model file) takes >240 s for 113M-atom copper on 4,560 nodes;
the optimized scheme (replicated local build, read-once + broadcast model)
brings it under 5 s, lifting sustained performance to 85.4 PFLOPS (within
1% of peak MD-loop performance).

Here both code paths run on simulated ranks with real work and accounted
traffic; the model also projects the Summit-scale setup ratio.
"""

import pytest

from benchmarks.conftest import bench_strict, print_header
from repro.analysis.structures import water_box
from repro.dp.serialize import save_model
from repro.parallel import SimComm, baseline_setup, optimized_setup

N_RANKS = 8
GRID = (2, 2, 2)
# scheme -> list of per-round SetupReports (one entry per benchmark round)
RESULTS = {}


@pytest.fixture(scope="module")
def model_file(zoo_water_model, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("zoo") / "model.npz")
    save_model(zoo_water_model, path)
    return path


def build():
    return water_box((6, 6, 6), seed=0)


def test_baseline_setup(benchmark, model_file):
    rounds = RESULTS.setdefault("baseline", [])

    def run():
        comm = SimComm(N_RANKS)
        *_, report = baseline_setup(build, model_file, comm, GRID)
        rounds.append(report)
        return report

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_optimized_setup(benchmark, model_file):
    rounds = RESULTS.setdefault("optimized", [])

    def run():
        comm = SimComm(N_RANKS)
        *_, report = optimized_setup(lambda rank: build(), model_file, comm, GRID)
        rounds.append(report)
        return report

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_zz_report(benchmark):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert {"baseline", "optimized"} <= RESULTS.keys()
    assert RESULTS["baseline"] and RESULTS["optimized"]
    base, opt = RESULTS["baseline"][-1], RESULTS["optimized"][-1]
    # Best-of-rounds wall clock: robust to one-off scheduler hiccups, unlike
    # the single-round comparison this report used to assert on.
    base_best = min(r.seconds for r in RESULTS["baseline"])
    opt_best = min(r.seconds for r in RESULTS["optimized"])

    print_header("Sec 7.3 — setup staging (8 simulated ranks)")
    print(f"{'scheme':<12} {'total':>9} {'structure':>10} {'model':>9} "
          f"{'p2p bytes':>12} {'model reads':>12}")
    for name, r in (("baseline", base), ("optimized", opt)):
        print(f"{name:<12} {r.seconds:>8.3f}s {r.structure_seconds:>9.3f}s "
              f"{r.model_seconds:>8.3f}s {r.p2p_bytes:>12,} {r.model_reads:>12}")
    print(f"\nmodel-loading speedup: "
          f"{base.model_seconds / max(opt.model_seconds, 1e-12):.1f}x")
    print(f"best-of-rounds total: baseline {base_best:.3f}s, "
          f"optimized {opt_best:.3f}s ({base_best / max(opt_best, 1e-12):.2f}x)")
    print("paper at 4,560 nodes: >240 s -> <5 s (>48x)")

    # Deterministic shape assertions: the optimized path eliminates the
    # scatter traffic and the per-rank model reads.  These always run.
    assert opt.p2p_bytes == 0
    assert base.p2p_bytes > 0
    assert opt.model_reads == 1
    assert base.model_reads == N_RANKS
    # Wall-clock comparison: best-of-rounds with a generous margin, and only
    # when strict timing asserts are enabled (REPRO_BENCH_STRICT=0 turns the
    # comparison into report-only on noisy hosts).
    if bench_strict():
        assert opt_best < base_best * 2.0


def test_sustained_performance_model(benchmark):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The Sec 7.3 sustained-PFLOPS arithmetic at Summit scale: 5,000 steps
    of 113M-atom copper with <5 s setup sustains ~99% of loop PFLOPS."""
    from repro.perfmodel import COPPER_SPEC, strong_scaling

    pt = strong_scaling(COPPER_SPEC, 113_246_208, [4560])[0]
    loop_seconds = 5000 * pt.t_step
    sustained_optimized = pt.pflops * loop_seconds / (loop_seconds + 5.0)
    sustained_baseline = pt.pflops * loop_seconds / (loop_seconds + 240.0)
    print_header("Sec 7.3 — sustained performance at Summit scale (model)")
    print(f"loop: {loop_seconds:.0f} s for 5,000 steps; peak {pt.pflops:.1f} PFLOPS")
    print(f"sustained with <5 s setup:   {sustained_optimized:.1f} PFLOPS "
          f"(paper: 85.4 vs 86.2 peak)")
    print(f"sustained with 240 s setup:  {sustained_baseline:.1f} PFLOPS")
    # optimized setup costs ~1% of sustained performance (paper: 85.4/86.2);
    # the baseline's 240 s setup would cost tens of percent of a 5 ps run.
    assert sustained_optimized / pt.pflops > 0.95
    assert sustained_baseline / pt.pflops < 0.75
