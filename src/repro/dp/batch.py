"""Batched multi-replica DP evaluation — one graph run for R frames.

The paper's throughput lesson (and the follow-up line of work it spawned:
86-PFLOPS DPMD on Summit, 149 ns/day water) is that fixed per-evaluation
costs — graph dispatch, operator launch, Python bookkeeping — must be
amortized over as many atoms as possible.  This module applies that lesson
*across frames*: R replica systems (different seeds/temperatures, same model)
are stacked row-wise into one formatted-neighbor layout, pushed through a
single set of GEMMs, and un-stacked into per-replica results.

Design notes
------------
* Row stacking.  Every tensor in the DP hot path is "per local atom" along
  axis 0 (environment rows, embedding inputs, fitting outputs), so replicas
  concatenate trivially; neighbor indices are shifted by per-replica atom
  offsets so ProdForce's scatter-add lands each replica in its own span of
  one global force array.
* Locals-first ghost stacking.  Domain-decomposed sub-domain frames carry
  explicit ghost atoms (``nloc < n_atoms``, ``pbc=False``), and different
  ranks generally own different atom counts.  Such frames still stack into
  ONE formatted-neighbor layout: all frames' *local* atoms are concatenated
  first (rows 0..total_loc), all ghost atoms after, and each frame's pair
  list is remapped into that numbering.  Because the remap is monotonic
  (locals stay below ghosts, order preserved within each segment), the
  canonical neighbor sort — (type, distance, index) — produces exactly the
  per-frame order, so stacked sub-domain results stay bitwise identical to
  evaluating each rank's frame alone (the retained per-rank oracle).
* Shape bucketing.  :meth:`BatchedEvaluator.evaluate_frames` groups incoming
  frames by :func:`frame_bucket_key` — (pbc, natoms, nloc, box, type
  signature) — and issues one batched evaluation per bucket; frames whose
  key is unique coalesce into one residual bucket per ``pbc`` value, so a
  replica-ensemble of decomposed ranks costs a handful of graph runs per
  step instead of one per rank x replica.  :class:`repro.dp.backend.
  ForceBackend` caches the partition between neighbor rebuilds.
* Bitwise reproducibility.  For R=1 the stacked feeds are byte-identical to
  the serial path's, so energies/forces/virials match the serial engine
  bit-for-bit (asserted in ``tests/test_ensemble.py``).  For R>1 each
  replica's rows keep their serial-relative order under the stable type sort,
  so scatter-add orderings per force accumulator are unchanged as well; with
  tfmini's row-count-independent matrix-vector kernel (the fitting net's
  N=1 output layer — see ``_fwd_matmul_2d`` in :mod:`repro.tfmini.ops`),
  *every* per-replica quantity, energies and atomic energies included, is
  bitwise independent of batch composition.  This is the guarantee the
  serving layer (:mod:`repro.serving`) exposes to clients: a frame's result
  never depends on which other requests it was coalesced with.
* Persistent scratch.  The batch-scale staging buffers (normalized
  environment matrix, its derivative, displacements, shifted neighbor lists)
  live in a :class:`ScratchPool` keyed by name and are reused while shapes
  are steady — the steady-state MD loop performs no new large allocations
  (asserted via ``ScratchPool.alloc_count`` in the tests).
* Compiled graph execution.  The DP graph itself runs through a compiled
  execution plan (:mod:`repro.tfmini.plan`): the forward+backward DAG is
  topo-sorted once per engine, and every evaluation is a flat slot-indexed
  tape walk into a persistent, liveness-recycled buffer arena — no per-run
  graph traversal, dict dispatch, or per-op output allocation.  Results stay
  bitwise identical to ``Session.run`` (the retained oracle; pass
  ``use_plan=False`` to execute through it for differential testing).
* One engine, one thread.  The scratch pool, cached neighbor layouts, and
  the plan's buffer arenas are all mutable run state, so an engine must
  never be *executing* on two threads at once — one engine per driver
  thread (the serving pool gives every worker its own; see
  :mod:`repro.serving.worker`).  ``evaluate_batch`` guards the invariant:
  concurrent entry from a second thread raises instead of silently
  corrupting buffers.  Sequential use from different threads (warm on the
  main thread, then hand the engine to a worker) is fine.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.dp.nlist_fmt import (
    _MAX_INDEX,
    PAD,
    FormattedNeighbors,
    format_neighbors,
)
from repro.dp.ops_baseline import environment_baseline
from repro.dp.ops_optimized import environment_op
from repro.md.potential import PotentialResult
from repro.md.system import System

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.dp.model import DeepPot


class _StackedFrame:
    """Duck-typed stand-in for :class:`System` covering R stacked replicas.

    Exposes exactly the attributes the neighbor formatter and the Environment
    operator read (positions/types/box/n_atoms/n_types), backed by the
    engine's pooled buffers — no dataclass validation or re-copy per step.
    """

    __slots__ = ("positions", "types", "box", "n_atoms", "n_types")

    def __init__(self, positions, types, box, n_types):
        self.positions = positions
        self.types = types
        self.box = box
        self.n_atoms = positions.shape[0]
        self.n_types = n_types


class ScratchPool:
    """Named, shape-keyed persistent buffers for the batched hot path.

    ``get(name, shape, dtype)`` returns the cached array for that
    (name, shape, dtype) key, allocating only on first sight — so a driver
    alternating between batch shapes (e.g. R=1 MD steps interleaved with
    R=4 sampling batches) warms one buffer set per shape and then stops
    allocating, instead of thrashing a single slot.  ``alloc_count`` and
    ``alloc_bytes`` expose deterministic counters the buffer-reuse tests
    (and the batched benchmark) assert on — no wall-clock involved.

    The pool is bounded (``max_entries``, FIFO eviction like the plan's
    arena and feed-slot caps): migration-heavy distributed runs re-key the
    stacked staging buffers on almost every reneighboring (total atom
    counts drift), and without a cap every shape ever seen would stay
    resident.  Steady workloads never evict; churny ones re-warm evicted
    shapes on revisit (``evictions`` counts them).
    """

    def __init__(self, max_entries: int = 512) -> None:
        self._arrays: dict[tuple, np.ndarray] = {}
        self.max_entries = max(int(max_entries), 1)
        self.alloc_count = 0
        self.alloc_bytes = 0
        self.evictions = 0

    def get(self, name: str, shape: tuple, dtype=np.float64) -> np.ndarray:
        key = (name, tuple(shape), np.dtype(dtype))
        arr = self._arrays.get(key)
        if arr is None:
            arr = np.empty(shape, dtype=dtype)
            while len(self._arrays) >= self.max_entries:
                # FIFO: drop the oldest buffer; a caller still holding it
                # keeps it alive, the pool just stops retaining it.
                self._arrays.pop(next(iter(self._arrays)))
                self.evictions += 1
            self._arrays[key] = arr
            self.alloc_count += 1
            self.alloc_bytes += arr.nbytes
        return arr

    def nbytes(self) -> int:
        """Bytes currently held by the pool."""
        return sum(a.nbytes for a in self._arrays.values())

    def clear(self) -> None:
        self._arrays.clear()


def frame_light_key(system, nloc: Optional[int] = None, pbc: bool = True) -> tuple:
    """The cheap-to-compute part of :func:`frame_bucket_key`: everything
    that can drift between neighbor rebuilds (counts and box), minus the
    O(natoms) type signature.  :class:`repro.dp.backend.ForceBackend`
    recomputes this per call to validate its cached partition."""
    n = int(system.n_atoms)
    nloc = n if nloc is None else int(nloc)
    # The box only constrains stacking under PBC (minimum image uses one
    # shared box); open-boundary frames never read it.
    box_sig = system.box.lengths.tobytes() if pbc else b""
    return (bool(pbc), n, nloc, box_sig)


def frame_bucket_key(system, nloc: Optional[int] = None, pbc: bool = True) -> tuple:
    """Shape-bucket key of one evaluation frame.

    Frames sharing a key have identical (pbc, natoms, nloc, box, type
    signature) and can always share one stacked evaluation: same row count,
    same ghost split, same box (the PBC stacking requirement), and — because
    the type signature matches — a feed-shape signature that stays steady
    for the bucket's compiled-plan arena across steps.  Structurally the
    key is :func:`frame_light_key` plus the type signature, which keeps the
    two validation layers locked together.
    """
    return frame_light_key(system, nloc, pbc) + (system.types.tobytes(),)


def plan_frame_buckets(keys: Sequence[tuple]) -> list[list[int]]:
    """Partition frame indices into evaluation buckets.

    Frames with equal :func:`frame_bucket_key` form one bucket (one stacked
    evaluation each).  Frames whose key is unique would each cost a graph
    run of their own, so they coalesce into one *residual* bucket per
    ``pbc`` value — the general staging path (and, for open-boundary
    frames, the locals-first stacked path) handles heterogeneous shapes in
    a single run.  Bucket order is deterministic: multi-frame buckets in
    first-appearance order, then the residual bucket(s).
    """
    groups: dict[tuple, list[int]] = {}
    for i, key in enumerate(keys):
        groups.setdefault(key, []).append(i)
    buckets: list[list[int]] = []
    residual: dict[bool, list[int]] = {}
    for key, idxs in groups.items():
        if len(idxs) > 1:
            buckets.append(idxs)
        else:
            residual.setdefault(key[0], []).append(idxs[0])
    for idxs in residual.values():
        buckets.append(sorted(idxs))
    return buckets


class BatchedEvaluator:
    """Evaluates a stack of R frames through one DP graph execution.

    One instance per driver (a :class:`~repro.md.ensemble.EnsembleSimulation`
    or a single-replica :class:`~repro.md.simulation.Simulation`) keeps the
    scratch shapes steady; the model itself stays stateless across engines.
    """

    def __init__(
        self,
        model: "DeepPot",
        use_plan: bool = True,
        plan_schedule: str = "liveness",
        plan_span_workers: int = 1,
        plan_backend: Optional[str] = None,
    ):
        self.model = model
        self.scratch = ScratchPool()
        self.use_plan = use_plan
        # Plan-compiler knobs, forwarded verbatim to ``compile_plan``:
        # the tape-scheduling pass, the fork/join span thread count, and
        # the kernel backend (None defers to REPRO_PLAN_BACKEND, then
        # "numpy").  Schedules, span counts, and the bitwise backends
        # ("numpy", "fused") are all bitwise identical; the defaults
        # (liveness scheduling, sequential spans) are the measured-fastest
        # on 1 core.
        self.plan_schedule = plan_schedule
        self.plan_span_workers = plan_span_workers
        self.plan_backend = plan_backend
        self._plan = None  # compiled lazily: one topo_sort per engine
        # Reusable neighbor layouts (nlist storage recycling), keyed by
        # ("stacked", rows, atoms) or (replica, rows) so alternating batch
        # shapes keep their own layouts instead of thrashing one slot.
        # Bounded like the scratch pool: stacked keys drift with migration
        # (total atom counts change on reneighboring), so the oldest layout
        # is dropped FIFO beyond the cap instead of retaining every shape
        # ever seen.
        self._fmts: dict[tuple, FormattedNeighbors] = {}
        self.max_fmt_layouts = 32
        self.fmt_evictions = 0
        self.batch_evaluations = 0
        self.frames_evaluated = 0
        # One-engine-one-thread guard: the thread currently inside
        # evaluate_batch (None when idle), compare-and-set under a lock so
        # simultaneous entry cannot slip past the check.  Scratch buffers
        # and plan arenas are per-engine run state, so concurrent entry is
        # always a caller bug (share the model, not the engine).
        self._active_thread: Optional[int] = None
        self._guard_lock = threading.Lock()
        # Staging-path counters: frames that arrive as separate requests
        # (the serving layer) only take the single-lexsort fast path when
        # their boxes match; these counters let callers see which path a
        # workload actually exercised.
        self.stacked_batches = 0
        self.general_batches = 0
        # Ghost-mode stacked batches (locals-first layout, nloc < n_atoms
        # somewhere in the stack) — the domain-decomposition fast path.
        self.ghost_stacked_batches = 0
        # Sort-stage counters: batches whose rows were already type-sorted
        # skip the per-feed gather copies entirely (identity staging) —
        # single-type models (copper) hit this on every evaluation; the
        # rest gather into the plan's persistent feed slots (or scratch on
        # the Session oracle path).
        self.stage_identity = 0
        self.stage_gathers = 0
        # evaluate_frames: bucketed evaluations issued (one per bucket).
        self.bucket_evaluations = 0

    @property
    def plan(self):
        """The engine's compiled execution plan (lazily compiled).

        Feed order is the engine's staging order; fetches are the batched
        path's graph outputs.  The plan is per-engine — like the scratch
        pool, each driver keeps its own arena so shapes stay steady.
        """
        if self._plan is None:
            from repro.tfmini.plan import compile_plan

            m = self.model
            self._plan = compile_plan(
                [m._f_forces, m._f_net_deriv] + list(m._f_e_atoms),
                list(m.ph_env)
                + [m.ph_em_deriv, m.ph_rij, m.ph_nlist, m.ph_atom_idx, m.ph_natoms],
                copy_fetches=False,  # results are unpacked before the next run
                schedule=self.plan_schedule,
                span_workers=self.plan_span_workers,
                backend=self.plan_backend,
            )
        return self._plan

    def _remember_fmt(self, key: tuple, fmt: FormattedNeighbors) -> None:
        """Retain a neighbor layout for ``out=`` reuse, FIFO-bounded."""
        self._fmts[key] = fmt
        while len(self._fmts) > self.max_fmt_layouts:
            self._fmts.pop(next(iter(self._fmts)))
            self.fmt_evictions += 1

    def release_buffers(self) -> None:
        """Drop all persistent storage: scratch pool, cached neighbor
        layouts, and the compiled plan's buffer arenas (the compiled tape
        survives).  The next evaluation re-warms; results are unaffected.
        Useful before allocation-sensitive measurements or when a shape
        regime is finished."""
        self.scratch.clear()
        self._fmts.clear()
        if self._plan is not None:
            self._plan.release_arenas()

    # ------------------------------------------------------------------ core

    def evaluate_batch(
        self,
        systems: Sequence[System],
        pair_lists: Sequence[tuple[np.ndarray, np.ndarray]],
        backend: str = "optimized",
        nlocs: Optional[Sequence[int]] = None,
        pbc: bool = True,
    ) -> list[PotentialResult]:
        """Energies/forces/virials for R frames in one batched graph run.

        Parameters
        ----------
        systems:
            R snapshots sharing the model's type vocabulary.  Replicas may
            differ in atom count (they are stacked by rows, not reshaped).
        pair_lists:
            Per-replica half neighbor-pair lists ``(pair_i, pair_j)``.
        nlocs:
            Optional per-replica local-atom counts for the ghost/domain-
            decomposition mode (defaults to all atoms local).
        pbc:
            Minimum-image displacements (True) or raw displacements for
            decomposed sub-domains whose images are explicit ghosts (False).

        Returns
        -------
        One :class:`PotentialResult` per replica, bitwise identical to what
        the serial path would produce for that replica alone.

        Raises
        ------
        RuntimeError
            On concurrent entry from a second thread — the engine's scratch
            pool and plan arenas are single-threaded run state (the
            one-engine-one-thread invariant; give each thread its own
            engine).
        """
        me = threading.get_ident()
        with self._guard_lock:
            owner = self._active_thread
            if owner is not None and owner != me:
                raise RuntimeError(
                    "BatchedEvaluator entered concurrently from two threads "
                    f"(owner thread {owner}, caller {me}); engines hold "
                    "single-threaded scratch/arena state — use one engine "
                    "per thread (see repro.serving's worker pool)"
                )
            self._active_thread = me
        try:
            return self._evaluate_batch(
                systems, pair_lists, backend=backend, nlocs=nlocs, pbc=pbc
            )
        finally:
            with self._guard_lock:
                if self._active_thread == me:
                    self._active_thread = None

    def _evaluate_batch(
        self,
        systems: Sequence[System],
        pair_lists: Sequence[tuple[np.ndarray, np.ndarray]],
        backend: str = "optimized",
        nlocs: Optional[Sequence[int]] = None,
        pbc: bool = True,
    ) -> list[PotentialResult]:
        model = self.model
        cfg = model.config
        R = len(systems)
        if R == 0:
            return []
        if len(pair_lists) != R:
            raise ValueError(f"{R} systems but {len(pair_lists)} pair lists")
        nlocs = (
            [s.n_atoms for s in systems]
            if nlocs is None
            else [int(n) for n in nlocs]
        )
        if len(nlocs) != R:
            raise ValueError(f"{R} systems but {len(nlocs)} nloc entries")

        nnei = cfg.nnei
        n_atoms = [s.n_atoms for s in systems]
        if any(nlocs[r] > n_atoms[r] or nlocs[r] < 0 for r in range(R)):
            raise ValueError("nloc entries must satisfy 0 <= nloc <= n_atoms")
        n_ghost = [n_atoms[r] - nlocs[r] for r in range(R)]
        atom_off = np.concatenate([[0], np.cumsum(n_atoms)])
        loc_off = np.concatenate([[0], np.cumsum(nlocs)])
        ghost_off = np.concatenate([[0], np.cumsum(n_ghost)])
        total_atoms = int(atom_off[-1])
        total_loc = int(loc_off[-1])
        full_local = total_loc == total_atoms

        scratch = self.scratch
        em_n = scratch.get("em_n", (total_loc, nnei, 4))
        ed_n = scratch.get("ed_n", (total_loc, nnei, 4, 3))
        rij = scratch.get("rij", (total_loc, nnei, 3))
        gidx = scratch.get("gidx", (total_loc,), np.int64)
        rep_of_row = scratch.get("rep", (total_loc,), np.int64)

        # Per-frame unstacking metadata, filled by whichever staging branch
        # runs: ``own_base[r]`` is the global row index of frame r's first
        # local atom, ``force_spans[r]`` the (start, count) segments of the
        # global force array that belong to frame r, in frame-local order.
        own_base: list[int]
        force_spans: list[list[tuple[int, int]]]

        # --- stage the replicas into one formatted-neighbor layout ---------
        # Fast path: the whole batch is stacked into a single virtual frame,
        # so it is formatted by ONE lexsort and one Environment-operator call
        # (neighbor indices never cross replica spans because each frame's
        # pair list is remapped into its own row span).  Per-frame Python
        # staging cost — the fixed cost the engine exists to amortize — is
        # paid once per batch instead of once per frame.  Two stackable
        # regimes:
        #
        # * full-local frames under PBC sharing one box (the ensemble /
        #   serving case) — frames concatenate contiguously;
        # * open-boundary frames (``pbc=False``: domain-decomposed
        #   sub-domains with explicit ghosts) with ANY mix of nloc — all
        #   locals are stacked first, all ghosts after ("locals-first"
        #   layout), and the pair-list remap is monotonic, so the canonical
        #   (type, dist, index) neighbor sort reproduces each frame's
        #   standalone order bit-for-bit.
        #
        # The general path stages replica-by-replica and covers the rest:
        # mixed boxes under PBC, the baseline backend, codec overflow.
        stackable = (
            backend == "optimized"
            and (not cfg.use_compression or total_atoms < _MAX_INDEX)
            and (
                not pbc
                or (
                    full_local
                    and all(
                        np.array_equal(s.box.lengths, systems[0].box.lengths)
                        for s in systems[1:]
                    )
                )
            )
        )
        if stackable:
            self.stacked_batches += 1
            if not full_local:
                self.ghost_stacked_batches += 1
            pos_cat = scratch.get("pos", (total_atoms, 3))
            types_all = scratch.get("types", (total_atoms,), np.int64)
            types_cat = types_all[:total_loc]
            npairs = [len(pair_lists[r][0]) for r in range(R)]
            pair_off = np.concatenate([[0], np.cumsum(npairs)])
            n_pairs = int(pair_off[-1])
            # Pair counts drift a little on every neighbor-list rebuild, so
            # the staging slabs are sized to the next power of two and
            # sliced — bounded distinct shapes (and allocations) over a long
            # run, instead of one dead buffer pair per rebuild.
            cap = 1 << max(n_pairs - 1, 1).bit_length()
            pi_cat = scratch.get("pair_i", (cap,), np.int64)[:n_pairs]
            pj_cat = scratch.get("pair_j", (cap,), np.int64)[:n_pairs]
            own_base = [int(loc_off[r]) for r in range(R)]
            force_spans = []
            for r in range(R):
                nloc_r, g = nlocs[r], n_ghost[r]
                llo, lhi = int(loc_off[r]), int(loc_off[r + 1])
                pos_cat[llo:lhi] = systems[r].positions[:nloc_r]
                types_all[llo:lhi] = systems[r].types[:nloc_r]
                spans = [(llo, nloc_r)]
                if g:
                    glo = total_loc + int(ghost_off[r])
                    pos_cat[glo : glo + g] = systems[r].positions[nloc_r:]
                    types_all[glo : glo + g] = systems[r].types[nloc_r:]
                    spans.append((glo, g))
                force_spans.append(spans)
                gidx[llo:lhi] = np.arange(llo, lhi)
                rep_of_row[llo:lhi] = r
                plo, phi = int(pair_off[r]), int(pair_off[r + 1])
                pi_r, pj_r = pair_lists[r]
                if g == 0:
                    np.add(pi_r, llo, out=pi_cat[plo:phi])
                    np.add(pj_r, llo, out=pj_cat[plo:phi])
                else:
                    # Monotonic remap: local index a -> llo + a, ghost index
                    # a -> total_loc + ghost_off[r] + (a - nloc_r).  Locals
                    # stay below every ghost, so (type, dist, index)
                    # tie-breaking orders neighbors exactly as in the
                    # standalone frame.
                    ghost_shift = total_loc + int(ghost_off[r]) - nloc_r
                    for src, dst in ((pi_r, pi_cat[plo:phi]), (pj_r, pj_cat[plo:phi])):
                        np.add(src, llo, out=dst)
                        hi_rows = src >= nloc_r
                        dst[hi_rows] = src[hi_rows] + ghost_shift
            stacked = _StackedFrame(
                pos_cat, types_all, systems[0].box, systems[0].n_types
            )
            fmt_key = ("stacked", total_loc, total_atoms)
            fmt = format_neighbors(
                stacked, pi_cat, pj_cat, cfg.rcut, cfg.sel,
                use_compression=cfg.use_compression, nloc=total_loc, pbc=pbc,
                out=self._fmts.get(fmt_key),
            )
            self._remember_fmt(fmt_key, fmt)
            environment_op(
                stacked, fmt, cfg.rcut_smth, cfg.rcut, pbc=pbc,
                out=(em_n, ed_n, rij),
            )
            slot_t = fmt.slot_types()
            davg = model.davg[slot_t]  # (nnei, 4)
            dstd = model.dstd[slot_t]
            np.subtract(em_n, davg, out=em_n)
            np.divide(em_n, dstd, out=em_n)
            np.divide(ed_n, dstd[..., None], out=ed_n)
            nlist_g = fmt.nlist  # already in the global numbering
        else:
            self.general_batches += 1
            types_cat = scratch.get("types_loc", (total_loc,), np.int64)
            nlist_g = scratch.get("nlist", (total_loc, nnei), np.int64)
            own_base = [int(atom_off[r]) for r in range(R)]
            force_spans = [
                [(int(atom_off[r]), n_atoms[r])] for r in range(R)
            ]
            row = 0
            for r in range(R):
                system, (pi, pj) = systems[r], pair_lists[r]
                nloc = nlocs[r]
                fmt_key = (r, nloc)
                fmt = format_neighbors(
                    system, pi, pj, cfg.rcut, cfg.sel,
                    use_compression=cfg.use_compression, nloc=nloc, pbc=pbc,
                    out=self._fmts.get(fmt_key),
                )
                self._remember_fmt(fmt_key, fmt)
                sl = slice(row, row + nloc)
                if backend == "optimized":
                    environment_op(
                        system, fmt, cfg.rcut_smth, cfg.rcut, pbc=pbc,
                        out=(em_n[sl], ed_n[sl], rij[sl]),
                    )
                elif backend == "baseline":
                    em_b, ed_b, rij_b = environment_baseline(
                        system, fmt, cfg.rcut_smth, cfg.rcut, pbc=pbc
                    )
                    em_n[sl], ed_n[sl], rij[sl] = em_b, ed_b, rij_b
                else:
                    raise ValueError(f"unknown backend {backend!r}")

                # Normalize in place (same elementwise ops as the serial path).
                slot_t = fmt.slot_types()
                davg = model.davg[slot_t]  # (nnei, 4)
                dstd = model.dstd[slot_t]
                np.subtract(em_n[sl], davg, out=em_n[sl])
                np.divide(em_n[sl], dstd, out=em_n[sl])
                np.divide(ed_n[sl], dstd[..., None], out=ed_n[sl])

                # Shift neighbor indices into the global atom numbering.
                np.add(fmt.nlist, atom_off[r], out=nlist_g[sl])
                nlist_g[sl][fmt.nlist == PAD] = PAD

                types_cat[sl] = system.types[:nloc]
                gidx[sl] = np.arange(atom_off[r], atom_off[r] + nloc)
                rep_of_row[sl] = r
                row += nloc

        # --- one type-sorted feed set for the whole stack ------------------
        # Identity fast path: when the stacked rows are already type-sorted
        # (every single-type model — copper — and any pre-sorted frame), the
        # sort is the identity permutation, so the per-feed gather copies are
        # skipped entirely and the staging buffers are fed as-is (per-type
        # blocks are contiguous row slices).  Otherwise the gathers land
        # directly in the plan's persistent feed slots (``feed_buffer``) —
        # one pool serves staging and execution, no second scratch copy —
        # or in engine scratch on the ``use_plan=False`` oracle path.
        if total_loc == 0 or bool(np.all(types_cat[:-1] <= types_cat[1:])):
            self.stage_identity += 1
            sorted_types = types_cat
            sorted_rep = rep_of_row
            gidx_sorted = gidx
            bounds = np.searchsorted(types_cat, np.arange(cfg.n_types + 1))
            feed_vals = [
                em_n[bounds[t] : bounds[t + 1]] for t in range(cfg.n_types)
            ]
            ed_sorted, rij_sorted, nlist_sorted = ed_n, rij, nlist_g
        else:
            self.stage_gathers += 1
            dest = self.plan.feed_buffer if self.use_plan else scratch.get
            order = np.argsort(types_cat, kind="stable")
            sorted_types = types_cat[order]
            sorted_rep = rep_of_row[order]
            gidx_sorted = dest("atom_idx", (total_loc,), np.int64)
            np.take(gidx, order, out=gidx_sorted)
            ed_sorted = dest("ed_sorted", ed_n.shape)
            np.take(ed_n, order, axis=0, out=ed_sorted)
            rij_sorted = dest("rij_sorted", rij.shape)
            np.take(rij, order, axis=0, out=rij_sorted)
            nlist_sorted = dest("nlist_sorted", nlist_g.shape, np.int64)
            np.take(nlist_g, order, axis=0, out=nlist_sorted)
            feed_vals = []
            for t in range(cfg.n_types):
                idx_t = order[sorted_types == t]
                em_t = dest(f"em_t{t}", (idx_t.size, nnei, 4))
                np.take(em_n, idx_t, axis=0, out=em_t)
                feed_vals.append(em_t)

        # Feed values in the plan's positional order: per-type environment
        # rows, then the shared geometry tensors.  The tiny natoms feed is
        # staged into a persistent plan slot too (it joins the plan's arena
        # signature by value, so reuse is exact).
        if self.use_plan:
            natoms_feed = self.plan.feed_buffer("natoms", (1,), np.int64)
            natoms_feed[0] = total_atoms
        else:
            natoms_feed = np.array([total_atoms], dtype=np.int64)
        feed_vals += [
            ed_sorted,
            rij_sorted,
            nlist_sorted,
            gidx_sorted,
            natoms_feed,
        ]

        if self.use_plan:
            out = self.plan.run_list(feed_vals, session=model.session)
        else:
            # Reference oracle path: identical fetches/feeds via Session.run.
            feed_nodes = list(model.ph_env) + [
                model.ph_em_deriv,
                model.ph_rij,
                model.ph_nlist,
                model.ph_atom_idx,
                model.ph_natoms,
            ]
            fetches = [model._f_forces, model._f_net_deriv] + list(model._f_e_atoms)
            out = model.session.run(fetches, dict(zip(feed_nodes, feed_vals)))
        forces_all, net_deriv = out[0], out[1]
        e_atoms_t = [np.atleast_1d(e) for e in out[2:]]
        self.batch_evaluations += 1
        self.frames_evaluated += R

        # --- un-stack into per-replica results -----------------------------
        # dE/dd per slot (shared by all per-replica virials; identical to the
        # contraction ProdVirial performs on the serial path).
        slot = scratch.get("slot", (total_loc, nnei, 3))
        np.einsum("ijc,ijck->ijk", net_deriv, ed_sorted, out=slot)

        e_sorted = np.concatenate(e_atoms_t) if e_atoms_t else np.zeros(0)
        rep_per_type = [sorted_rep[sorted_types == t] for t in range(cfg.n_types)]

        results: list[PotentialResult] = []
        for r in range(R):
            system, nloc = systems[r], nlocs[r]
            local_types = system.types[:nloc]

            # Energy: per-type partial sums added in type order — the exact
            # reduction order of the serial graph (reduce_sum per type, then
            # a left-to-right add chain), so R=1 stays bitwise identical.
            energy = 0.0
            first = True
            for t in range(cfg.n_types):
                e_t = e_atoms_t[t]
                if R > 1:
                    e_t = e_t[rep_per_type[t] == r]
                part = np.sum(e_t)
                energy = part if first else energy + part
                first = False

            atom_e = np.empty(nloc)
            if R == 1:
                atom_e[gidx_sorted] = e_sorted
                virial = -np.einsum("ija,ijb->ab", rij_sorted, slot)
                # The graph output is a plan-arena buffer (overwritten by the
                # next evaluation); results hand the caller an owned copy.
                forces = forces_all.copy()
            else:
                rows_r = sorted_rep == r
                atom_e[gidx_sorted[rows_r] - own_base[r]] = e_sorted[rows_r]
                virial = -np.einsum(
                    "ija,ijb->ab", rij_sorted[rows_r], slot[rows_r]
                )
                spans = force_spans[r]
                if len(spans) == 1:
                    lo, count = spans[0]
                    forces = forces_all[lo : lo + count].copy()
                else:
                    # Locals-first ghost stacking: frame r's forces live in a
                    # local segment and a ghost segment; concatenating them
                    # restores the frame's own (locals, ghosts) row order.
                    forces = np.concatenate(
                        [forces_all[lo : lo + count] for lo, count in spans]
                    )
            atom_e += model.e0[local_types]
            total = float(energy + model.e0[local_types].sum())
            results.append(
                PotentialResult(total, forces, virial, atom_energies=atom_e)
            )
        return results

    # ------------------------------------------------------------ bucketing

    def evaluate_frames(
        self,
        frames: Sequence,
        buckets: Optional[Sequence[Sequence[int]]] = None,
        backend: str = "optimized",
    ) -> list[PotentialResult]:
        """Shape-bucketed evaluation: one batched graph run per bucket.

        ``frames`` are frame objects exposing ``system``, ``pair_i``,
        ``pair_j``, ``nloc`` (``None`` = all local) and ``pbc`` — see
        :class:`repro.dp.backend.ForceFrame`.  ``buckets`` is a partition of
        frame indices (every frame exactly once, uniform ``pbc`` per
        bucket); when omitted it is computed from :func:`frame_bucket_key`
        via :func:`plan_frame_buckets`.  Callers that own a steady frame
        population (the MD drivers) cache the partition across steps and
        rebucket only on reneighbor/migration —
        :class:`repro.dp.backend.ForceBackend` implements that policy.

        Results come back in frame order, each bitwise identical to
        evaluating its frame alone (the per-rank oracle).
        """
        frames = list(frames)
        if buckets is None:
            buckets = plan_frame_buckets(
                [frame_bucket_key(f.system, f.nloc, f.pbc) for f in frames]
            )
        results: list[Optional[PotentialResult]] = [None] * len(frames)
        for bucket in buckets:
            sub = [frames[i] for i in bucket]
            pbc = sub[0].pbc
            if any(f.pbc != pbc for f in sub):
                raise ValueError("a bucket must not mix pbc and open frames")
            nlocs = [
                f.system.n_atoms if f.nloc is None else int(f.nloc)
                for f in sub
            ]
            out = self.evaluate_batch(
                [f.system for f in sub],
                [(f.pair_i, f.pair_j) for f in sub],
                backend=backend,
                nlocs=nlocs,
                pbc=pbc,
            )
            self.bucket_evaluations += 1
            for i, res in zip(bucket, out):
                if results[i] is not None:
                    raise ValueError(f"frame {i} appears in two buckets")
                results[i] = res
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise ValueError(f"buckets do not cover frames {missing}")
        return results  # type: ignore[return-value]
