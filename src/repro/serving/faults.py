"""Deterministic, seeded fault injection for the serving stack.

Production serving treats worker crashes and dropped connections as the
steady state, not the exception — but a test that kills threads with real
races is a flaky test.  This module makes failure *schedulable*: a
:class:`FaultPlan` is a seeded list of fault specs ("crash worker W at its
Nth batch", "sever connection C after K frames", "tamper with the Kth
outbound frame", "fail model M's Nth batch with a transient error",
"delay model M's Nth admission"), and the serving stack calls the plan's
hook methods at fixed points:

* :meth:`FaultPlan.on_worker_batch` — from ``InferenceServer._run_batch``
  before evaluation.  May raise :class:`InjectedWorkerCrash` (the worker
  thread dies mid-batch, exactly like an unhandled bug — the supervisor
  must recover) or :class:`~repro.serving.queue.TransientEvalError` (the
  batch fails through the normal poisoned-batch path — clients may retry).
* :meth:`FaultPlan.on_conn_frame_in` — from the daemon's per-connection
  reader after each inbound frame; ``True`` means "sever this connection
  now" (the reader shuts the socket down abruptly, no GOODBYE).
* :meth:`FaultPlan.on_conn_frame_out` — from the per-connection writer
  before each outbound frame; returns an action for the frame: delay it,
  send it twice, or corrupt it (flip the version byte, so the far side
  detects it as a :class:`~repro.serving.protocol.ProtocolError` instead
  of silently reading wrong numbers — corruption must never be silent).
* :meth:`FaultPlan.on_queue_put` — from ``RequestQueue.put`` before
  admission; may sleep to create deterministic reordering pressure.

Every hook decision is a pure function of the plan's specs and its own
monotonically counted events (batches per worker, frames per connection),
so the same plan against the same request schedule injects the same
faults.  The only randomness is delay *jitter*, drawn from the plan's own
seeded generator.  ``FaultPlan.log`` records each injection in firing
order — tests assert the plan actually fired.

Connection labels: daemon-side connections are identified by their
``client_id`` (``"<hello-name>-<cid>"``).  A fault's ``client`` field
matches the HELLO name prefix, so ``SeverConnection(client="md")``
severs ``md-0``/``md-7``/... whichever cid the daemon assigned.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.serving.queue import TransientEvalError


class InjectedWorkerCrash(RuntimeError):
    """Raised inside a worker's batch loop to simulate an unhandled bug.

    ``InferenceServer._run_batch`` deliberately re-raises this past its
    poisoned-batch handler, so the worker thread dies with its in-flight
    futures unresolved — the exact failure mode worker supervision exists
    to contain.
    """


@dataclass(frozen=True)
class CrashWorker:
    """Kill worker ``worker`` on its ``at_batch``-th dispatched batch
    (1-based, counted per worker id across respawns — a respawned worker
    keeps its id but the fault is one-shot, so it does not crash again)."""

    worker: str
    at_batch: int


@dataclass(frozen=True)
class FailEval:
    """Fail ``model``'s ``at_batch``-th batch (and the ``times - 1``
    following ones) with a :class:`TransientEvalError` — the retryable
    failure mode, flowing through the normal poisoned-batch path."""

    model: str
    at_batch: int
    times: int = 1


@dataclass(frozen=True)
class SeverConnection:
    """Abruptly close the connection whose HELLO name matches ``client``
    after its ``after_frames``-th inbound frame (no GOODBYE — the client
    sees a reset, exactly like a network partition)."""

    client: str
    after_frames: int


@dataclass(frozen=True)
class TamperFrame:
    """Tamper with the ``at_frame``-th outbound frame of ``client``'s
    connection: ``action`` is ``"delay"`` (sleep a jittered ``delay_s``
    before sending), ``"duplicate"`` (send the frame twice — receivers
    must be idempotent) or ``"corrupt"`` (flip the version byte, a
    *detectable* corruption)."""

    client: str
    at_frame: int
    action: str
    delay_s: float = 0.02


@dataclass(frozen=True)
class DelayAdmission:
    """Sleep a jittered ``delay_s`` before admitting ``model``'s
    ``at_submit``-th submission (deterministic reordering pressure)."""

    model: str
    at_submit: int
    delay_s: float = 0.02


_TAMPER_ACTIONS = ("delay", "duplicate", "corrupt")


def corrupt_frame(frame: bytes) -> bytes:
    """Flip the version byte of an encoded wire frame.

    The length prefix stays intact so framing survives; the receiver
    raises ``ProtocolError`` (version mismatch) instead of decoding
    garbage — injected corruption is always *detectable*, never a silent
    numeric change (that would break the bitwise contract unobservably).
    """
    if len(frame) < 5:
        return frame
    return frame[:4] + bytes((frame[4] ^ 0xFF,)) + frame[5:]


class FaultPlan:
    """A seeded schedule of failures for one serving stack.

    Pass the same plan instance to both the :class:`~repro.serving.worker.
    InferenceServer` (worker/queue hooks) and the :class:`~repro.serving.
    net.ServingDaemon` (connection hooks)::

        plan = FaultPlan([CrashWorker("tiny", at_batch=2),
                          SeverConnection("chaos", after_frames=3)], seed=7)
        server = InferenceServer({"tiny": model}, faults=plan)
        daemon = ServingDaemon(server, faults=plan)

    Thread-safe: hooks are called from worker, reader and writer threads;
    counters and the seeded jitter generator live behind one lock.  Sleeps
    happen *outside* the lock.
    """

    def __init__(self, faults=(), seed: int = 0):
        for f in faults:
            if isinstance(f, TamperFrame) and f.action not in _TAMPER_ACTIONS:
                raise ValueError(
                    f"unknown tamper action {f.action!r} "
                    f"(expected one of {_TAMPER_ACTIONS})"
                )
        self.faults = list(faults)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()
        self._spent: set[int] = set()  # ids of one-shot faults already fired
        self._worker_batches: Counter = Counter()
        self._model_batches: Counter = Counter()
        self._model_submits: Counter = Counter()
        self._frames_in: Counter = Counter()
        self._frames_out: Counter = Counter()
        #: injection log, in firing order: ``(fault, detail)`` tuples.
        self.log: list[tuple] = []

    # ------------------------------------------------------------- internals

    def _fire(self, fault, detail: str) -> None:
        """Mark a one-shot fault spent and log it (caller holds the lock)."""
        self._spent.add(id(fault))
        self.log.append((fault, detail))

    def _jitter(self, delay_s: float) -> float:
        """A jittered delay in ``[0.5, 1.5) * delay_s`` from the plan's own
        seeded generator (caller holds the lock — ``Generator`` is not
        thread-safe)."""
        return float(delay_s) * (0.5 + float(self._rng.random()))

    @staticmethod
    def _match(label: str, client: str) -> bool:
        """Does connection ``label`` (``"<name>-<cid>"``) belong to fault
        target ``client`` (the HELLO name)?"""
        return label == client or label.startswith(f"{client}-")

    def fired(self, fault_type) -> int:
        """How many logged injections match ``fault_type`` (a fault class
        or its name — the string form keeps callers import-free)."""
        with self._lock:
            if isinstance(fault_type, str):
                return sum(
                    1
                    for f, _ in self.log
                    if type(f).__name__ == fault_type
                )
            return sum(1 for f, _ in self.log if isinstance(f, fault_type))

    # ----------------------------------------------------------------- hooks

    def on_worker_batch(self, worker_id: str, model: str) -> None:
        """Hook: a worker is about to evaluate a batch of ``model``.

        Raises :class:`InjectedWorkerCrash` (kills the worker thread) or
        :class:`TransientEvalError` (fails the batch retryably) when a
        matching fault is due; otherwise a cheap counter increment.
        """
        with self._lock:
            self._worker_batches[worker_id] += 1
            self._model_batches[model] += 1
            wb = self._worker_batches[worker_id]
            mb = self._model_batches[model]
            crash: Optional[CrashWorker] = None
            transient: Optional[FailEval] = None
            for f in self.faults:
                if id(f) in self._spent:
                    continue
                if isinstance(f, CrashWorker):
                    if f.worker == worker_id and wb == f.at_batch:
                        self._fire(f, f"{worker_id} batch {wb}")
                        crash = f
                elif isinstance(f, FailEval):
                    if (
                        f.model == model
                        and f.at_batch <= mb < f.at_batch + f.times
                    ):
                        if mb == f.at_batch + f.times - 1:
                            self._fire(f, f"{model} batch {mb}")
                        else:
                            self.log.append((f, f"{model} batch {mb}"))
                        transient = f
        if crash is not None:
            raise InjectedWorkerCrash(
                f"injected crash: worker {worker_id!r} at batch "
                f"{crash.at_batch}"
            )
        if transient is not None:
            raise TransientEvalError(
                f"injected transient failure: model {model!r} batch "
                f"(fault {transient})"
            )

    def on_queue_put(self, request) -> None:
        """Hook: ``request`` is about to enter the queue.  May sleep (the
        admission-delay fault) — called *before* the queue lock is taken."""
        import time

        delay = None
        with self._lock:
            self._model_submits[request.model] += 1
            n = self._model_submits[request.model]
            for f in self.faults:
                if (
                    isinstance(f, DelayAdmission)
                    and id(f) not in self._spent
                    and f.model == request.model
                    and n == f.at_submit
                ):
                    self._fire(f, f"{request.model} submit {n}")
                    delay = self._jitter(f.delay_s)
                    break
        if delay is not None:
            time.sleep(delay)

    def on_conn_frame_in(self, label: str) -> bool:
        """Hook: one frame arrived on connection ``label``.  ``True`` means
        the daemon must sever the connection now (no GOODBYE)."""
        with self._lock:
            self._frames_in[label] += 1
            n = self._frames_in[label]
            for f in self.faults:
                if (
                    isinstance(f, SeverConnection)
                    and id(f) not in self._spent
                    and self._match(label, f.client)
                    and n == f.after_frames
                ):
                    self._fire(f, f"{label} after frame {n}")
                    return True
        return False

    def on_conn_frame_out(self, label: str) -> tuple[Optional[str], float]:
        """Hook: one frame is about to be written to connection ``label``.

        Returns ``(action, delay_s)`` — action is ``None`` (send normally),
        ``"delay"``, ``"duplicate"`` or ``"corrupt"``.
        """
        with self._lock:
            self._frames_out[label] += 1
            n = self._frames_out[label]
            for f in self.faults:
                if (
                    isinstance(f, TamperFrame)
                    and id(f) not in self._spent
                    and self._match(label, f.client)
                    and n == f.at_frame
                ):
                    self._fire(f, f"{label} frame {n} {f.action}")
                    delay = (
                        self._jitter(f.delay_s) if f.action == "delay" else 0.0
                    )
                    return f.action, delay
        return None, 0.0
