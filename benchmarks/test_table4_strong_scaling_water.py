"""Table 4 — water strong scaling on Summit (12,582,912 atoms, 480-27,360
GPUs): atoms/GPU, ghost sizes, MD loop time, efficiency, PFLOPS, %peak.

Summit itself is substituted by the calibrated analytic model (DESIGN.md);
ghost-region sizes come from exact sub-domain geometry and land within a few
percent of the paper's measured columns.  The benchmark times the sweep
generator and asserts every column's shape.
"""

import pytest

from benchmarks.conftest import print_header
from repro.perfmodel import table4_rows
from repro.perfmodel.scaling import TABLE4_PAPER


def test_table4(benchmark):
    rows = benchmark(table4_rows)

    print_header("Table 4 — water strong scaling, model | paper")
    print(f"{'#GPUs':>6} {'atoms/GPU':>10} {'ghosts':>15} {'loop/s':>15} "
          f"{'eff':>11} {'PFLOPS':>13} {'%peak':>13}")
    for r in rows:
        p = r["paper"]
        print(
            f"{r['gpus']:>6} {r['atoms_per_gpu']:>10.0f} "
            f"{r['ghosts_per_gpu']:>7.0f}|{p[1]:<7} "
            f"{r['md_loop_time']:>7.1f}|{p[2]:<7.2f} "
            f"{r['efficiency']:>5.2f}|{p[3]:<5.2f} "
            f"{r['pflops']:>6.2f}|{p[4]:<6.2f} "
            f"{r['percent_peak']:>6.1f}|{p[5]:<6.2f}"
        )

    for r in rows:
        p = r["paper"]
        assert r["ghosts_per_gpu"] == pytest.approx(p[1], rel=0.08)
        assert r["md_loop_time"] == pytest.approx(p[2], rel=0.20)
        assert r["efficiency"] == pytest.approx(p[3], abs=0.06)
        assert r["pflops"] == pytest.approx(p[4], rel=0.15)
        assert r["percent_peak"] == pytest.approx(p[5], rel=0.20)

    # The paper's qualitative claim: %peak collapses below ~1000 atoms/GPU.
    small = [r for r in rows if r["atoms_per_gpu"] < 1000]
    large = [r for r in rows if r["atoms_per_gpu"] > 10000]
    assert all(r["percent_peak"] < 22 for r in small)
    assert all(r["percent_peak"] > 35 for r in large)
