"""Sec 5.3 / Sec 7.1.2 — standard-operator fusions on tall-skinny matrices.

Paper (12,288-atom water, V100):
    MATMUL+SUM  -> GEMM        1.3x
    CONCAT+SUM  -> GEMM (I,I)  1.7x
    TANH+TANHGrad -> fused     1.6x
    combined extra loop speedup 1.21x

The benchmark uses the paper's own shapes: the oxygen-hydrogen embedding
rows of a 4,096-molecule water system are 376,832 x 50 multiplied by 50 x
100 (Sec 5.3.1) — scaled down by default to keep laptop runtimes sane.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    bench_median,
    bench_paired_ratio,
    bench_strict,
    print_header,
)
import repro.tfmini as tf
from repro.tfmini.graph import topo_sort

ROWS = 65536  # paper: 376,832
TIMES = {}
# Callables stashed by the individual benchmarks so the report can re-measure
# each unfused/fused pair back-to-back (paired interleaved trials) — ratios
# between separately-timed benchmarks flake whenever host load drifts
# between them.
FNS = {}


@pytest.fixture(scope="module")
def tensors():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(ROWS, 50))
    w = rng.normal(size=(50, 100))
    b = rng.normal(size=100)
    t = rng.normal(size=(ROWS, 100))
    return x, w, b, t


def _median(benchmark, fn, rounds=5):
    # Median-of-rounds, robust to single-round timer noise (see conftest).
    return bench_median(benchmark, fn, rounds=rounds)


class TestMatmulSum:
    def test_unfused(self, benchmark, tensors):
        x, w, b, t = tensors
        xn, wn, bn = tf.constant(x), tf.constant(w), tf.constant(b)
        y = tf.add(tf.matmul(xn, wn), bn)
        sess = tf.Session()
        FNS["mm_unfused"] = lambda: sess.run(y)
        TIMES["mm_unfused"] = _median(benchmark, FNS["mm_unfused"])

    def test_gemm(self, benchmark, tensors):
        x, w, b, t = tensors
        xn, wn, bn = tf.constant(x), tf.constant(w), tf.constant(b)
        y = tf.gemm(xn, wn, bn)
        sess = tf.Session()
        FNS["mm_gemm"] = lambda: sess.run(y)
        TIMES["mm_gemm"] = _median(benchmark, FNS["mm_gemm"])


class TestConcatSum:
    def test_unfused(self, benchmark, tensors):
        x, w, b, t = tensors
        xn, tn = tf.constant(x), tf.constant(t[:, :100])
        y = tf.add(tf.concat(xn, xn, axis=1), tn)
        sess = tf.Session()
        FNS["cc_unfused"] = lambda: sess.run(y)
        TIMES["cc_unfused"] = _median(benchmark, FNS["cc_unfused"])

    def test_gemm_ii(self, benchmark, tensors):
        x, w, b, t = tensors
        xn, tn = tf.constant(x), tf.constant(t[:, :100])
        y = tf.optimize_graph(
            tf.add(tf.concat(xn, xn, axis=1), tn), passes=("concat_sum",)
        )
        ops = [n.op for n in topo_sort([y])]
        assert "gemm" in ops and "concat" not in ops
        sess = tf.Session()
        FNS["cc_gemm"] = lambda: sess.run(y)
        TIMES["cc_gemm"] = _median(benchmark, FNS["cc_gemm"])


class TestTanhFusion:
    def _graph(self, tensors, fused: bool):
        x, w, b, t = tensors
        xv = tf.variable(x[: ROWS // 2], name="xv")
        y = tf.tanh(xv)
        loss = tf.reduce_sum(tf.square(y))
        g = tf.grad(loss, [xv])[0]
        fetches = [loss, g]
        if fused:
            fetches = tf.optimize_graph(fetches, passes=("tanh",))
            ops = [n.op for n in topo_sort(fetches)]
            assert "tanh_fused" in ops
        return fetches

    def test_unfused(self, benchmark, tensors):
        fetches = self._graph(tensors, fused=False)
        sess = tf.Session()
        FNS["tanh_unfused"] = lambda: sess.run(fetches)
        TIMES["tanh_unfused"] = _median(benchmark, FNS["tanh_unfused"])

    def test_fused(self, benchmark, tensors):
        fetches = self._graph(tensors, fused=True)
        sess = tf.Session()
        FNS["tanh_fused"] = lambda: sess.run(fetches)
        TIMES["tanh_fused"] = _median(benchmark, FNS["tanh_fused"])


def test_zz_report(benchmark, tensors):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    required = {
        "mm_unfused", "mm_gemm", "cc_unfused", "cc_gemm",
        "tanh_unfused", "tanh_fused",
    }
    assert required <= TIMES.keys()
    # Paired interleaved re-measurement for the asserted ratios; the stored
    # per-benchmark medians are reported alongside.  Under
    # REPRO_BENCH_STRICT=0 (CI smoke) the extra timing work is skipped and
    # the report falls back to the already-collected medians.
    if bench_strict():
        mm = bench_paired_ratio(FNS["mm_unfused"], FNS["mm_gemm"], trials=7)
        cc = bench_paired_ratio(FNS["cc_unfused"], FNS["cc_gemm"], trials=7)
        th = bench_paired_ratio(FNS["tanh_unfused"], FNS["tanh_fused"], trials=7)
    else:
        mm = TIMES["mm_unfused"] / TIMES["mm_gemm"]
        cc = TIMES["cc_unfused"] / TIMES["cc_gemm"]
        th = TIMES["tanh_unfused"] / TIMES["tanh_fused"]
    print_header("Sec 5.3 / 7.1.2 — graph fusion speedups (this repo | paper)")
    print(f"{'rewrite':<26} {'unfused':>10} {'fused':>10} {'speedup':>9} {'paper':>6}")
    print(f"{'MATMUL+SUM -> GEMM':<26} {TIMES['mm_unfused']*1e3:>8.2f}ms "
          f"{TIMES['mm_gemm']*1e3:>8.2f}ms {mm:>8.2f}x {'1.3x':>6}")
    print(f"{'CONCAT+SUM -> GEMM(I,I)':<26} {TIMES['cc_unfused']*1e3:>8.2f}ms "
          f"{TIMES['cc_gemm']*1e3:>8.2f}ms {cc:>8.2f}x {'1.7x':>6}")
    print(f"{'TANH+TANHGrad fusion':<26} {TIMES['tanh_unfused']*1e3:>8.2f}ms "
          f"{TIMES['tanh_fused']*1e3:>8.2f}ms {th:>8.2f}x {'1.6x':>6}")
    # Wall-clock ratio assertions: each fusion is at worst neutral, overall
    # a net win (typically 1.3-1.45x here, driven by MATMUL+SUM).
    # Paired-trial medians, gated on REPRO_BENCH_STRICT for CI.
    if bench_strict():
        assert mm > 0.85
        assert cc > 0.85
        assert th > 0.85
        assert mm * cc * th > 1.1


def test_whole_model_graph_optimization(benchmark, zoo_water_model, water_192):
    """The Sec 7.1.2 'extra 1.21x on the whole MD loop' analogue: evaluate
    the full DP graph with and without the rewrite passes."""
    from dataclasses import replace

    from repro.dp.model import DeepPot
    from repro.md.neighbor import neighbor_pairs

    base = zoo_water_model
    unopt = DeepPot(replace(base.config, optimize_graph=False))
    for vs, vd in zip(base.trainable_variables(), unopt.trainable_variables()):
        vd.assign(vs.value.copy())
    unopt.set_stats(base.davg, base.dstd, base.e0)

    pi, pj = neighbor_pairs(water_192, base.config.rcut)

    def run_opt():
        base.evaluate(water_192, pi, pj)

    def run_unopt():
        unopt.evaluate(water_192, pi, pj)

    t_opt = _median(benchmark, run_opt, rounds=5)
    print_header("Whole-graph effect of the Sec 5.3 passes")
    print(f"optimized graph:   {t_opt * 1e3:.1f} ms/eval")
    # Paired interleaved trials for the asserted ratio: whole-model evals are
    # several ms, so host-load drift between two separately-timed loops used
    # to dominate the ~1.1-1.2x fusion effect being measured.  Skipped
    # entirely under REPRO_BENCH_STRICT=0 (CI smoke) — no consumer, no cost.
    if bench_strict():
        ratio = bench_paired_ratio(run_unopt, run_opt, trials=5)
        print(f"speedup (paired trials): {ratio:.2f}x "
              f"(paper: 1.21x on the MD loop)")
        assert ratio > 0.7  # never a regression beyond noise
