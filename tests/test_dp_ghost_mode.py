"""DP evaluation in domain-decomposition mode (nloc < nall, pbc=False).

The distributed driver relies on three contracts tested here directly:

1. a local frame whose periodic images are explicit ghost atoms produces the
   same local energies/forces as the PBC evaluation of the global system;
2. descriptor rows are built only for the first nloc atoms;
3. the force array covers ghosts, and ghost contributions equal what the
   owner would have accumulated (reverse-communication correctness).
"""

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp.model import DeepPot, DPConfig
from repro.md.box import Box
from repro.md.neighbor import neighbor_pairs
from repro.md.system import System


@pytest.fixture(scope="module")
def model():
    return DeepPot(DPConfig.tiny())


@pytest.fixture(scope="module")
def global_sys():
    return water_box((4, 4, 4), seed=5)


def explicit_ghost_frame(system, rcut):
    """All atoms as locals + every periodic image within rcut of the box as
    explicit ghosts — the trivial 1-rank decomposition."""
    pos = system.box.wrap(system.positions)
    lengths = system.box.lengths
    ghost_pos = []
    ghost_types = []
    for sx in (-1, 0, 1):
        for sy in (-1, 0, 1):
            for sz in (-1, 0, 1):
                if sx == sy == sz == 0:
                    continue
                shift = np.array([sx, sy, sz]) * lengths
                shifted = pos + shift
                near = np.all(
                    (shifted > -rcut) & (shifted < lengths + rcut), axis=1
                )
                ghost_pos.append(shifted[near])
                ghost_types.append(system.types[near])
    all_pos = np.concatenate([pos] + ghost_pos)
    all_types = np.concatenate([system.types] + ghost_types)
    return System(
        box=Box(lengths * 3),  # open frame: box only nominal
        positions=all_pos,
        types=all_types,
        masses=system.masses,
        type_names=system.type_names,
    )


class TestGhostMode:
    def test_matches_pbc_evaluation(self, model, global_sys):
        rcut = model.config.rcut
        pi, pj = neighbor_pairs(global_sys, rcut)
        ref = model.evaluate(global_sys, pi, pj)

        local = explicit_ghost_frame(global_sys, rcut)
        nloc = global_sys.n_atoms
        pi2, pj2 = neighbor_pairs(local, rcut, pbc=False)
        res = model.evaluate(local, pi2, pj2, nloc=nloc, pbc=False)

        assert res.energy == pytest.approx(ref.energy, rel=1e-12)
        # local forces must match after folding ghost forces onto owners
        folded = res.forces[:nloc].copy()
        # ghosts are images of locals in construction order
        ghost_owner = []
        pos = global_sys.box.wrap(global_sys.positions)
        lengths = global_sys.box.lengths
        for sx in (-1, 0, 1):
            for sy in (-1, 0, 1):
                for sz in (-1, 0, 1):
                    if sx == sy == sz == 0:
                        continue
                    shift = np.array([sx, sy, sz]) * lengths
                    shifted = pos + shift
                    near = np.all(
                        (shifted > -rcut) & (shifted < lengths + rcut), axis=1
                    )
                    ghost_owner.extend(np.flatnonzero(near).tolist())
        ghost_owner = np.array(ghost_owner, dtype=np.int64)
        np.add.at(folded, ghost_owner, res.forces[nloc:])
        np.testing.assert_allclose(folded, ref.forces, atol=1e-10)

    def test_atomic_energy_count_is_nloc(self, model, global_sys):
        rcut = model.config.rcut
        local = explicit_ghost_frame(global_sys, rcut)
        nloc = global_sys.n_atoms
        pi, pj = neighbor_pairs(local, rcut, pbc=False)
        res = model.evaluate(local, pi, pj, nloc=nloc, pbc=False)
        assert res.atom_energies.shape == (nloc,)
        assert res.forces.shape == (local.n_atoms, 3)

    def test_nloc_zero_types_block(self, model):
        """A frame whose locals are all one type still evaluates (empty
        per-type blocks are legal)."""
        rng = np.random.default_rng(0)
        n = 6
        sys = System(
            box=Box([20.0] * 3),
            positions=rng.uniform(5, 15, size=(n, 3)),
            types=np.zeros(n, dtype=np.int64),  # type 1 block empty
            masses=np.array([16.0, 1.0]),
            type_names=["O", "H"],
        )
        pi, pj = neighbor_pairs(sys, model.config.rcut)
        res = model.evaluate(sys, pi, pj)
        assert np.isfinite(res.energy)
        assert res.forces.shape == (n, 3)

    def test_pbc_false_uses_raw_displacements(self, model):
        """Two atoms 18 Å apart in a 20 Å box: PBC sees them 2 Å apart,
        the open frame does not."""
        sys = System(
            box=Box([20.0] * 3),
            positions=np.array([[1.0, 10, 10], [19.0, 10, 10]]),
            types=np.array([0, 0]),
            masses=np.array([16.0, 1.0]),
        )
        pi_pbc, pj_pbc = neighbor_pairs(sys, 4.0, pbc=True)
        pi_open, pj_open = neighbor_pairs(sys, 4.0, pbc=False)
        assert len(pi_pbc) == 1
        assert len(pi_open) == 0
