"""Sutton-Chen embedded-atom copper — the "ab initio" oracle for Cu.

E = Σ_i [ ½ Σ_{j≠i} ε (a/r_ij)^n S(r_ij)  −  ε c √ρ_i ],
ρ_i = Σ_{j≠i} (a/r_ij)^m S(r_ij),

with the quintic switching function S(r) (identical to the DP descriptor
smoothing) applied to both the pair and density terms so energy and forces
are exactly continuous at the cutoff.  Parameters are the standard
Sutton-Chen copper set (ε=12.382 meV, a=3.61 Å, n=9, m=6, c=39.432), which
gives an fcc ground state, realistic elastic response, and non-trivial
surface/stacking-fault energetics — the properties the paper highlights as
hard for simple EFFs (Sec 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.potential import Potential, PotentialResult, pair_virial
from repro.md.system import System


def switch_fn(r: np.ndarray, r_on: float, r_off: float):
    """Quintic switch S(r) and dS/dr: 1 below r_on, 0 above r_off, C^2 smooth."""
    r = np.asarray(r, dtype=np.float64)
    s = np.ones_like(r)
    ds = np.zeros_like(r)
    mid = (r > r_on) & (r < r_off)
    u = (r[mid] - r_on) / (r_off - r_on)
    s[mid] = u**3 * (-6.0 * u**2 + 15.0 * u - 10.0) + 1.0
    ds[mid] = -30.0 * u**2 * (u - 1.0) ** 2 / (r_off - r_on)
    s[r >= r_off] = 0.0
    return s, ds


@dataclass
class SuttonChenEAM(Potential):
    """Sutton-Chen EAM with smooth cutoff switching."""

    epsilon: float = 1.2382e-2  # eV
    a: float = 3.61  # Å
    c: float = 39.432
    n: int = 9
    m: int = 6
    r_on: float = 6.0
    cutoff: float = 7.5

    def compute(
        self, system: System, pair_i: np.ndarray, pair_j: np.ndarray
    ) -> PotentialResult:
        natoms = system.n_atoms
        forces = np.zeros((natoms, 3))
        if pair_i.size == 0:
            return PotentialResult(0.0, forces, np.zeros((3, 3)))

        disp = system.box.minimum_image(
            system.positions[pair_j] - system.positions[pair_i]
        )
        r = np.sqrt(np.einsum("ij,ij->i", disp, disp))
        within = r <= self.cutoff
        pair_i, pair_j, disp, r = pair_i[within], pair_j[within], disp[within], r[within]

        s, ds = switch_fn(r, self.r_on, self.cutoff)
        ar = self.a / r
        pair_term = ar**self.n  # (a/r)^n
        dens_term = ar**self.m  # (a/r)^m

        # --- density and embedding ------------------------------------------------
        rho = np.zeros(natoms)
        phi = dens_term * s
        np.add.at(rho, pair_i, phi)
        np.add.at(rho, pair_j, phi)
        sqrt_rho = np.sqrt(np.maximum(rho, 1e-300))
        embed_e = -self.epsilon * self.c * sqrt_rho
        embed_e[rho <= 0] = 0.0
        # dE_embed/drho_i
        demb = np.where(rho > 0, -0.5 * self.epsilon * self.c / sqrt_rho, 0.0)

        # --- pair energy -----------------------------------------------------------
        v = self.epsilon * pair_term * s
        energy = float(v.sum() + embed_e.sum())

        # --- forces ----------------------------------------------------------------
        # dV/dr and dφ/dr including the switch derivative.
        dv_dr = self.epsilon * (-self.n * pair_term / r * s + pair_term * ds)
        dphi_dr = -self.m * dens_term / r * s + dens_term * ds
        # Scalar dE/dr along each pair (i<j half list).
        de_dr = dv_dr + (demb[pair_i] + demb[pair_j]) * dphi_dr
        # force on i from j = -dE/dr * d r/d r_i = +de_dr * r̂  (since dr/dr_i = -r̂)
        rhat = disp / r[:, None]
        fij = de_dr[:, None] * rhat  # force on atom i
        np.add.at(forces, pair_i, fij)
        np.add.at(forces, pair_j, -fij)
        virial = pair_virial(disp, fij)

        atom_e = embed_e.copy()
        np.add.at(atom_e, pair_i, 0.5 * v)
        np.add.at(atom_e, pair_j, 0.5 * v)
        return PotentialResult(energy, forces, virial, atom_energies=atom_e)
