"""Static plan verifier: structural soundness, symbolic shape inference,
mutation-detection, and zoo-wide coverage.

The mutation tests are the verifier's own soundness check: each one takes a
plan that verifies clean, corrupts exactly the invariant a rule claims to
guard (a read after the liveness pass retired the slot, a broken alias
union, an unpinned fetch, a mistyped cast), and asserts the verifier
reports that rule at the corrupted record — so a future allocator bug
cannot slip past a verifier that silently stopped looking.
"""

import json

import numpy as np
import pytest

from repro import tfmini as tf
from repro.analysis.plancheck import (
    FeedSpec,
    PlanVerificationError,
    check_all_plans,
    dp_feed_spec,
    spec_from_last_run,
    train_feed_spec,
    verify_plan,
)
from repro.analysis.shapes import Dim, InferContext, ShapeError, dim_div
from repro.analysis.structures import water_box
from repro.dp.batch import BatchedEvaluator
from repro.dp.model import DeepPot
from repro.md.neighbor import neighbor_pairs
from repro.tfmini.plan import _INF, compile_plan
from repro.zoo import water_config


def chain_plan():
    """x -> tanh -> tanh -> tanh, fetch the last: 3 records, no aliases.

    Pinned to the per-record numpy backend — the mutation tests below poke
    records by index, and the fused backend would collapse the chain into
    one record (fused-plan verification has its own tests in
    ``tests/test_fusion.py``).
    """
    x = tf.placeholder("x", dtype=np.float64)
    a = tf.tanh(x)
    b = tf.tanh(a)
    c = tf.tanh(b)
    plan = compile_plan([c], [x], backend="numpy")
    plan.run({x: np.ones((4, 3))})
    return plan


def fanout_plan():
    """x -> {tanh, square} -> add: records 0 and 1 form a width-2 span.

    numpy backend pinned, like :func:`chain_plan` — the span-hazard
    mutations need the unfused record/span structure.
    """
    x = tf.placeholder("x", dtype=np.float64)
    a = tf.tanh(x)
    b = tf.square(x)
    plan = compile_plan([tf.add(a, b)], [x], backend="numpy")
    plan.run({x: np.ones((4, 3))})
    return plan


def perturbed(base, n, scale=0.02):
    out = []
    for k in range(n):
        s = base.copy()
        rng = np.random.default_rng(100 + k)
        s.positions = s.positions + rng.normal(scale=scale, size=s.positions.shape)
        out.append(s)
    return out


class TestDimAlgebra:
    def test_polynomial_arithmetic(self):
        n = Dim.symbol("n")
        assert repr(n + n) == "2*n"
        assert (n + 4) - 4 == n
        assert (3 * n).value is None
        assert (n - n).value == 0
        assert Dim.const(7).value == 7

    def test_exact_division(self):
        n = Dim.symbol("n")
        assert dim_div(n * 4, 4) == n
        assert dim_div(n * 4, n) == 4
        assert dim_div(n * 4 + 4, 4) == n + 1
        assert dim_div(n * 4 + 2, 4) is None
        assert dim_div(12, 4) == 3
        assert dim_div(12, 5) is None

    def test_unify_binds_bare_symbols(self):
        ctx = InferContext()
        n = Dim.symbol("n")
        ctx.unify(n, 12)
        assert ctx.resolve(n) == 12
        assert ctx.resolve(n + 3) == 15

    def test_unify_rejects_provable_mismatch(self):
        ctx = InferContext()
        with pytest.raises(ShapeError):
            ctx.unify(3, 4)

    def test_broadcast_symbolic(self):
        ctx = InferContext()
        n = Dim.symbol("n")
        assert ctx.broadcast((n, 1), (n, 5)) == (n, 5)
        assert ctx.broadcast((1,), (n, 4)) == (n, 4)


class TestStructuralSoundness:
    def test_clean_plan_verifies(self):
        plan = chain_plan()
        report = verify_plan(plan)
        assert report.ok
        assert report.n_records == 3
        assert len(report.records) == 3

    def test_p101_undefined_read(self):
        plan = chain_plan()
        plan._records[1].input_slots = (10**9,)
        report = verify_plan(plan)
        assert [(f.rule, f.record) for f in report.findings] == [("P101", 1)]

    def test_p102_use_after_free(self):
        plan = chain_plan()
        # Record 2 now reads record 0's output, whose storage group the
        # liveness pass retired after record 1 consumed it.
        slot_a = plan._records[0].out_slot
        assert plan.death_index(slot_a) == 1
        plan._records[2].input_slots = (slot_a,)
        report = verify_plan(plan)
        assert [(f.rule, f.record) for f in report.findings] == [("P102", 2)]

    def test_p103_arena_reuse_overlap(self):
        plan = chain_plan()
        arena = next(iter(plan._arenas.values()))
        # Hand record 0's pinned... no: record 2 is the fetch (pinned).
        # Give record 1 the same buffer object record 0 owns while record
        # 0's group is still live at record 1 (its death IS record 1).
        assert plan.death_index(plan._records[0].out_slot) == 1
        arena.buffers[1] = arena.buffers[0]
        report = verify_plan(plan)
        assert ("P103", 1) in [(f.rule, f.record) for f in report.findings]

    def test_p104_alias_group_broken(self):
        x = tf.placeholder("x", dtype=np.float64)
        a = tf.tanh(x)
        flat = tf.reshape(a, (-1,))
        plan = compile_plan([flat, a], [x])
        plan.run({x: np.ones((4, 3))})
        (alias_idx, alias_rec), = [
            (i, r) for i, r in enumerate(plan._records) if r.op == "reshape"
        ]
        # Break the union for the alias input: pretend its storage group is
        # separate from the view output's.
        broken = alias_rec.input_slots[0]
        orig_find = plan._find
        plan._find = lambda s: s if s == broken else orig_find(s)
        plan._death[broken] = _INF  # keep the read itself "alive" (isolate P104)
        report = verify_plan(plan)
        assert ("P104", alias_idx) in [
            (f.rule, f.record) for f in report.findings
        ]

    def test_p105_fetch_unpinned(self):
        plan = chain_plan()
        fetch = plan._fetch_slots[0]
        plan._death[plan._find(fetch)] = 0
        report = verify_plan(plan)
        assert "P105" in report.rules()

    def test_raise_on_findings(self):
        plan = chain_plan()
        plan._records[1].input_slots = (10**9,)
        with pytest.raises(PlanVerificationError) as exc:
            plan.verify(raise_on_findings=True)
        assert "P101" in str(exc.value)
        assert not exc.value.report.ok

    def test_report_json(self):
        plan = chain_plan()
        plan._records[1].input_slots = (10**9,)
        payload = json.loads(verify_plan(plan).to_json())
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "P101"
        assert payload["findings"][0]["record"] == 1


class TestSpanHazards:
    """P109 mutation tests: corrupt exactly one span invariant each."""

    def test_clean_fanout_plan_has_width_2_span(self):
        plan = fanout_plan()
        assert plan.stats.max_span_width == 2
        assert sum(plan.span_widths()) == plan.n_records
        report = verify_plan(plan)
        assert report.ok, report.summary()

    def _span_members(self, plan):
        (start, stop), = [s for s in plan.spans if s[1] - s[0] > 1]
        return start, stop

    def test_p109_shared_storage_group(self, monkeypatch):
        plan = fanout_plan()
        start, stop = self._span_members(plan)
        ra, rb = plan._records[start], plan._records[start + 1]
        root_a = plan._find(ra.out_slot)
        slot_b = rb.out_slot
        orig_find = plan._find
        monkeypatch.setattr(
            plan, "_find",
            lambda s: root_a if orig_find(s) == orig_find(slot_b)
            else orig_find(s),
        )
        report = verify_plan(plan)
        found = report.by_rule("P109")
        assert found and any("share a storage group" in f.message
                             for f in found)

    def test_p109_read_write_hazard(self):
        plan = fanout_plan()
        start, stop = self._span_members(plan)
        ra, rb = plan._records[start], plan._records[start + 1]
        # Span member b now reads span member a's output — the scheduler
        # must never have put them in one span.
        rb.input_slots = (ra.out_slot,)
        report = verify_plan(plan)
        found = report.by_rule("P109")
        assert any("in the same span" in f.message for f in found)
        # The address-level pass sees it too: a's buffer bytes are read by
        # b while a (a span sibling) writes them.
        assert any("writes bytes" in f.message for f in found)

    def test_p109_write_write_overlap(self):
        plan = fanout_plan()
        start, stop = self._span_members(plan)
        arena = next(iter(plan._arenas.values()))
        # Both span members now write the same bytes.
        arena.buffers[start + 1] = arena.buffers[start]
        report = verify_plan(plan)
        assert any("write overlapping buffer bytes" in f.message
                   for f in report.by_rule("P109"))

    def test_p109_broken_tiling(self):
        plan = fanout_plan()
        plan._spans = plan._spans[1:]  # first span vanished
        report = verify_plan(plan)
        found = report.by_rule("P109")
        assert found and any("tiling" in f.message or "covers" in f.message
                             for f in found)


class TestSymbolicInference:
    def test_p106_missing_feed(self):
        plan = chain_plan()
        report = verify_plan(plan, spec={})
        assert "P106" in report.rules()

    def test_p107_shape_mismatch(self):
        x = tf.placeholder("x", dtype=np.float64)
        w = tf.constant(np.ones((3, 5)))
        plan = compile_plan([tf.matmul(x, w)], [x])
        report = verify_plan(plan, spec={x: FeedSpec((4, 7), np.float64)})
        assert "P107" in report.rules()
        (finding,) = report.by_rule("P107")
        assert "matmul" in finding.message or finding.op == "matmul"

    def test_symbolic_dims_propagate(self):
        x = tf.placeholder("x", dtype=np.float64)
        w = tf.constant(np.ones((3, 5)))
        y = tf.reshape(tf.matmul(x, w), (-1,))
        plan = compile_plan([y], [x])
        report = verify_plan(plan, spec={x: FeedSpec(("n", 3), np.float64)})
        assert report.ok
        assert any("5*n" in line for line in report.records)

    def test_p108_mistyped_cast_flags_downstream(self):
        model = DeepPot(water_config("mixed"))
        # numpy backend pinned: the mutation searches the tape for a
        # top-level cast record, which fusion would swallow into a group.
        engine = BatchedEvaluator(model, plan_backend="numpy")
        s = water_box((3, 3, 3), seed=0)
        engine.evaluate_batch([s], [neighbor_pairs(s, model.config.rcut)])
        plan = engine.plan
        assert plan.verify(spec=dp_feed_spec(model)).ok
        # Mis-type the first downcast: it now emits fp64 into an fp32
        # network region.  attrs are copied — node.attrs is shared with the
        # graph and must stay intact for other tests.
        idx, rec = next(
            (i, r) for i, r in enumerate(plan._records)
            if r.op == "cast" and r.attrs["dtype"] == np.float32
        )
        rec.attrs = {**rec.attrs, "dtype": np.dtype(np.float64)}
        report = verify_plan(plan, spec=dp_feed_spec(model))
        mix = report.by_rule("P108")
        assert mix and all(f.record > idx for f in mix)

    def test_runtime_disagreement_detected(self):
        plan = chain_plan()
        # Claim the feed is (5, 2) when the recorded run used (4, 3).
        x_node = plan._feed_nodes[0]
        report = verify_plan(
            plan, spec={x_node: FeedSpec((5, 2), np.float64)}, check_values=True
        )
        assert "P107" in report.rules()

    def test_spec_from_last_run(self):
        plan = chain_plan()
        spec = spec_from_last_run(plan)
        (fs,) = spec.values()
        assert fs.shape == (4, 3) and fs.dtype == np.float64
        assert verify_plan(plan, spec=spec, check_values=True).ok


class TestZooCoverage:
    @pytest.fixture(scope="class")
    def water(self):
        model = DeepPot(water_config("double"))
        return model, water_box((3, 3, 3), seed=0)

    def test_engine_plan_r1_and_r3(self, water):
        model, base = water
        engine = BatchedEvaluator(model)
        spec = dp_feed_spec(model)
        for reps in ([base], perturbed(base, 3)):
            pls = [neighbor_pairs(s, model.config.rcut) for s in reps]
            engine.evaluate_batch(reps, pls)
            report = engine.plan.verify(spec=spec, check_values=True)
            assert report.ok, report.summary()

    def test_engine_plan_locals_first_stacked(self, water):
        """Ghost/domain-decomposition staging: per-frame nloc < natoms."""
        model, base = water
        engine = BatchedEvaluator(model)
        reps = perturbed(base, 2)
        pls = [neighbor_pairs(s, model.config.rcut) for s in reps]
        nlocs = [reps[0].n_atoms // 2, reps[1].n_atoms]
        engine.evaluate_batch(reps, pls, nlocs=nlocs)
        report = engine.plan.verify(spec=dp_feed_spec(model), check_values=True)
        assert report.ok, report.summary()

    def test_trainer_plan_symbolic(self, water):
        from repro.dp.data import label_frames
        from repro.dp.train import TrainConfig, Trainer
        from repro.oracles import FlexibleWater

        model, base = water
        dataset = label_frames([base.copy()], FlexibleWater(cutoff=4.0))
        dataset.apply_stats(model)
        trainer = Trainer(model, dataset, TrainConfig(n_steps=1, log_every=10))
        report = trainer.plan.verify(spec=train_feed_spec(trainer))
        assert report.ok, report.summary()

    def test_check_all_plans_clean(self):
        results = check_all_plans()
        assert len(results) == 10  # 2 species x {2 eval, 2 serving, 1 train}
        for entry in results:
            assert entry["report"].ok, (
                entry["plan"] + "\n" + entry["report"].summary()
            )
            assert not entry["report"].notes, entry["plan"]


class TestCompileHooks:
    def test_compile_plan_verify_kwarg(self):
        x = tf.placeholder("x", dtype=np.float64)
        plan = compile_plan([tf.tanh(x)], [x], verify=True)
        assert plan.n_records == 1

    def test_env_toggle(self, monkeypatch):
        calls = []
        import repro.tfmini.plan as planmod

        orig = planmod.ExecutionPlan.verify

        def spy(self, *a, **k):
            calls.append(k)
            return orig(self, *a, **k)

        monkeypatch.setattr(planmod.ExecutionPlan, "verify", spy)
        x = tf.placeholder("x", dtype=np.float64)
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        compile_plan([tf.tanh(x)], [x])
        assert calls == [{"raise_on_findings": True}]
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "0")
        compile_plan([tf.tanh(x)], [x])
        assert len(calls) == 1
