"""End-to-end integration tests spanning the whole stack.

These exercise the realistic pipelines a user of the paper's system runs:
train -> save -> load -> serial MD -> distributed MD -> analysis.
"""

import numpy as np
import pytest

from repro.analysis.rdf import radial_distribution
from repro.analysis.structures import fcc_lattice, water_box
from repro.dp import DeepPot, DPConfig, DeepPotPair, TrainConfig, Trainer, label_frames, sample_md_frames
from repro.dp.serialize import load_model, save_model
from repro.md import Langevin, Simulation, boltzmann_velocities
from repro.md.neighbor import fitted_neighbor_list, neighbor_pairs
from repro.oracles import FlexibleWater, SuttonChenEAM
from repro.parallel import DistributedSimulation


@pytest.fixture(scope="module")
def trained_water():
    """A briefly trained water model — shared across integration tests."""
    oracle = FlexibleWater(cutoff=4.0)
    base = water_box((3, 3, 3), seed=0)
    frames = sample_md_frames(
        base, oracle, n_frames=8, stride=8, equilibration=30, seed=0
    )
    ds = label_frames(frames, oracle)
    model = DeepPot(DPConfig.tiny(rcut=4.0))
    ds.apply_stats(model)
    Trainer(
        model, ds,
        TrainConfig(n_steps=120, lr_start=3e-3, decay_steps=30, log_every=120),
    ).train()
    return model, ds


class TestTrainSaveLoadRun:
    def test_saved_model_runs_identical_md(self, trained_water, tmp_path):
        model, _ds = trained_water
        path = str(tmp_path / "m.npz")
        save_model(model, path)
        loaded = load_model(path)

        sys_a = water_box((3, 3, 3), seed=9)
        boltzmann_velocities(sys_a, 300.0, seed=2)
        sys_b = sys_a.copy()

        for sysx, m in ((sys_a, model), (sys_b, loaded)):
            pair = DeepPotPair(m)
            sim = Simulation(
                sysx, pair, dt=0.0005,
                neighbor=fitted_neighbor_list(sysx, pair.cutoff),
            )
            sim.run(5)
        np.testing.assert_allclose(sys_a.positions, sys_b.positions, atol=1e-14)

    def test_trained_model_energy_conservation(self, trained_water):
        """NVE with the trained model conserves energy — the sanity check
        that the learned PES is smooth (forces are exact gradients)."""
        model, _ds = trained_water
        sysw = water_box((3, 3, 3), seed=3)
        boltzmann_velocities(sysw, 150.0, seed=4)
        pair = DeepPotPair(model)
        sim = Simulation(
            sysw, pair, dt=0.00025, thermo_every=5,
            neighbor=fitted_neighbor_list(sysw, pair.cutoff),
        )
        sim.run(60)
        e = sim.thermo.column("total_energy")
        assert (e.max() - e.min()) / sysw.n_atoms < 2e-4

    def test_model_beats_mean_force_predictor(self, trained_water):
        """RMSE(F) of the trained model < force std of the data — it learned
        something beyond the trivial predictor."""
        model, ds = trained_water
        forces = np.concatenate([f.forces.ravel() for f in ds.frames])
        std = forces.std()
        trainer_like_errors = []
        for frame in ds.frames[:4]:
            pi, pj = neighbor_pairs(frame.system, model.config.rcut)
            res = model.evaluate(frame.system, pi, pj)
            trainer_like_errors.append(
                np.sqrt(np.mean((res.forces - frame.forces) ** 2))
            )
        assert np.mean(trainer_like_errors) < std


class TestDistributedConsistency:
    def test_distributed_thermo_matches_serial(self, trained_water):
        model, _ds = trained_water
        sysw = water_box((4, 4, 4), seed=1)
        boltzmann_velocities(sysw, 250.0, seed=3)

        serial_sys = sysw.copy()
        pair = DeepPotPair(model)
        sim = Simulation(
            serial_sys, pair, dt=0.0005, thermo_every=4,
            neighbor=fitted_neighbor_list(serial_sys, pair.cutoff, skin=1.0),
        )
        sim.neighbor.rebuild_every = 4
        sim.run(8)

        dist = DistributedSimulation(
            sysw.copy(), model, grid=(2, 1, 1), dt=0.0005,
            skin=1.0, rebuild_every=4, thermo_every=4,
        )
        dist.run(8)

        serial_rows = {r.step: r for r in sim.thermo.rows}
        for row in dist.thermo:
            ref = serial_rows[row.step]
            assert row.potential_energy == pytest.approx(
                ref.potential_energy, rel=1e-9
            )
            assert row.temperature == pytest.approx(ref.temperature, rel=1e-9)


class TestCopperPipeline:
    def test_eam_to_dp_to_analysis(self):
        """Copper: train on EAM labels, run MD, check the RDF's fcc peak."""
        oracle = SuttonChenEAM(r_on=4.0, cutoff=5.0)
        base = fcc_lattice((4, 4, 4))
        frames = sample_md_frames(
            base, oracle, n_frames=6, stride=8, equilibration=30,
            temperature=300.0, dt=0.002, seed=1,
        )
        ds = label_frames(frames, oracle)
        cfg = DPConfig.tiny(type_names=("Cu",), sel=(48,), rcut=5.0)
        model = DeepPot(cfg)
        ds.apply_stats(model)
        Trainer(
            model, ds,
            TrainConfig(n_steps=100, lr_start=3e-3, decay_steps=25, log_every=100),
        ).train()

        sysw = fcc_lattice((4, 4, 4))
        boltzmann_velocities(sysw, 150.0, seed=2)
        pair = DeepPotPair(model)
        sim = Simulation(
            sysw, pair, dt=0.002,
            integrator=Langevin(temperature=150.0, damp=0.1, seed=3),
            neighbor=fitted_neighbor_list(sysw, pair.cutoff),
        )
        sim.run(30)
        # crystal survives briefly-trained-DP dynamics at low T
        r, g = radial_distribution(sysw, r_max=5.0, n_bins=100)
        first_peak = r[np.argmax(g)]
        assert first_peak == pytest.approx(3.615 / np.sqrt(2), abs=0.25)
