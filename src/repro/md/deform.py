"""Box deformation fix for the Fig 7 tensile run (LAMMPS ``fix deform``).

The paper strains a nanocrystalline copper cell along z at 5e8 s^-1 for
40,000 steps (10% total engineering strain).  :class:`Deform` applies the
same protocol: each step the chosen box edge is stretched by the engineering
strain increment and atom coordinates are remapped affinely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.system import System


@dataclass
class Deform:
    """Constant engineering-strain-rate uniaxial deformation.

    Parameters
    ----------
    axis:
        0, 1 or 2 — the strained direction (paper: z).
    strain_rate:
        Engineering strain rate in 1/ps (5e8 s^-1 == 5e-4 / ps).
    start_step:
        Steps before this one leave the box untouched (annealing stage).
    """

    axis: int = 2
    strain_rate: float = 5e-4
    start_step: int = 0

    def __post_init__(self):
        if self.axis not in (0, 1, 2):
            raise ValueError("axis must be 0, 1, or 2")
        self._initial_length = None

    def strain_at(self, step: int, dt: float) -> float:
        """Accumulated engineering strain after ``step`` steps."""
        active = max(step - self.start_step, 0)
        return self.strain_rate * active * dt

    def apply(self, system: System, step: int, dt: float) -> float:
        """Stretch the box to match the target strain; returns current strain.

        The box length is set from the *initial* length so strain is exactly
        linear in time (no compounding error), and atom coordinates are
        remapped affinely along the strained axis.
        """
        if self._initial_length is None:
            self._initial_length = float(system.box.lengths[self.axis])
        if step < self.start_step:
            return 0.0
        strain = self.strain_at(step, dt)
        target = self._initial_length * (1.0 + strain)
        current = float(system.box.lengths[self.axis])
        if target != current:
            factor = target / current
            system.box.lengths[self.axis] = target
            system.positions[:, self.axis] *= factor
        return strain
