"""Concurrency/invariant linter for the repro source tree (stdlib ``ast``).

The serving pool, the batched engine and the distributed drivers lean on a
small set of threading invariants that ordinary tests exercise only under
lucky schedules: condition waits must sit in a predicate loop, locks must be
acquired in one global order, a compiled plan (and its engine) belongs to
one thread.  This module checks those invariants — plus a few repo-wide
determinism/hygiene rules — statically, so a violation fails CI instead of
deadlocking a soak test.

Rules
-----

====  ======================================================================
L101  ``Condition.wait`` outside a ``while`` loop — wakeups are spurious and
      racy by spec; the predicate must be re-checked in a loop
L102  lock-order inversion — two locks acquired in opposite nesting orders
      somewhere in the tree (cross-file cycle in the acquisition graph)
L103  lock/condition created outside ``__init__``/module scope — lazy
      creation races its own first use
L104  ``_evaluate_batch`` called from outside ``evaluate_batch`` — bypasses
      the engine's one-thread guard
L105  mutable default argument
L106  bare ``except:``
L107  ``time.time()``/``time.clock()`` in deterministic code (md/dp/tfmini)
      — wall-clock reads make trajectories and tapes non-reproducible; use
      ``time.perf_counter()`` for intervals
L108  global-state RNG (``np.random.*`` legacy API, stdlib ``random.*``) in
      deterministic code — use an explicit ``np.random.default_rng(seed)``
L109  argument annotated ``X`` but defaulting to ``None`` — annotation
      should be ``Optional[X]``
L110  socket/file opened into a local without a lifecycle: not a ``with``
      statement, never ``.close()``d in a ``finally``, and ownership never
      transferred (returned/yielded/stored on an attribute) — a leak on
      every exception path
L111  unbounded retry loop without backoff — a ``while True`` that calls a
      connect-like function and either never sleeps (busy-spins the remote
      end) or sleeps a constant (no exponential backoff, no cap); bound
      the attempts or grow the delay
====  ======================================================================

Any finding can be suppressed with a trailing (or preceding-line) comment::

    self._cond = make()  # repro-lint: disable=L103  -- callers hold the lock

Entry points: :func:`lint_paths` (returns findings), :func:`format_text` /
:func:`format_json` (reporters), and the ``repro lint`` CLI subcommand.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

RULES = {
    "L101": "Condition.wait outside a while loop",
    "L102": "lock-order inversion across the acquisition graph",
    "L103": "lock/condition created outside __init__ or module scope",
    "L104": "_evaluate_batch called from outside evaluate_batch",
    "L105": "mutable default argument",
    "L106": "bare except",
    "L107": "wall-clock time in deterministic code",
    "L108": "global-state RNG in deterministic code",
    "L109": "default None without Optional annotation",
    "L110": "socket/file opened without with/finally-close/ownership transfer",
    "L111": "unbounded retry loop without backoff",
}

# Modules whose numerics must be bit-reproducible: wall-clock and global RNG
# state have no business here (L107/L108).  Serving/parallel code reads the
# clock legitimately (deadlines, heartbeats) and is exempt.
_DETERMINISTIC_PARTS = ("md", "dp", "tfmini", "analysis", "oracles")

_DISABLE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9,\s]+)")

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
_COND_FACTORIES = {"Condition"}

# Legacy-free numpy.random API: creating one of these is how seeded,
# instance-based RNG *starts*, so they are allowed; everything else on
# np.random is global-state legacy.
_NP_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
    "MT19937", "SFC64", "BitGenerator",
}


@dataclass
class LintFinding:
    rule: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _terminal_name(expr: ast.AST) -> Optional[str]:
    """Rightmost identifier of a Name/Attribute chain (``self._cond`` -> ``_cond``)."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _call_factory(expr: ast.AST) -> Optional[str]:
    """Factory name when ``expr`` is a call like ``threading.Condition()``."""
    if isinstance(expr, ast.Call):
        return _terminal_name(expr.func)
    return None


class _FileContext:
    """Parsed file plus the indexes every rule shares."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self.parent: dict[int, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parent[id(child)] = node
        # receiver name -> factory, for names assigned from threading factories
        self.cond_receivers: set[str] = set()
        self.lock_receivers: set[str] = set()
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            factory = _call_factory(value)
            if factory is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                name = _terminal_name(t)
                if name is None:
                    continue
                if factory in _COND_FACTORIES:
                    self.cond_receivers.add(name)
                if factory in _LOCK_FACTORIES:
                    self.lock_receivers.add(name)
        # import aliases for L107/L108
        self.module_alias: dict[str, str] = {}  # local name -> module
        self.from_imports: dict[str, str] = {}  # local name -> "module.attr"
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    self.module_alias[a.asname or a.name] = a.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for a in node.names:
                    self.from_imports[a.asname or a.name] = f"{node.module}.{a.name}"

    # -- ancestry helpers -------------------------------------------------

    def ancestors(self, node: ast.AST):
        cur = self.parent.get(id(node))
        while cur is not None:
            yield cur
            cur = self.parent.get(id(cur))

    def enclosing_function(self, node: ast.AST):
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def disabled_rules(self, line: int) -> set[str]:
        """Rules disabled by a comment on ``line`` or the line above."""
        out: set[str] = set()
        for ln in (line, line - 1):
            if 1 <= ln <= len(self.lines):
                m = _DISABLE_RE.search(self.lines[ln - 1])
                if m:
                    out |= {r.strip() for r in m.group(1).split(",") if r.strip()}
        return out

    def deterministic(self) -> bool:
        parts = Path(self.path).parts
        return any(p in parts for p in _DETERMINISTIC_PARTS)


def _emit(ctx: _FileContext, findings: list, rule: str, node: ast.AST, message: str):
    line = getattr(node, "lineno", 1)
    if rule in ctx.disabled_rules(line):
        return
    findings.append(
        LintFinding(rule, ctx.path, line, getattr(node, "col_offset", 0), message)
    )


# ---------------------------------------------------------------------------
# per-file rules
# ---------------------------------------------------------------------------


def _rule_l101(ctx: _FileContext, findings: list) -> None:
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr != "wait":
            continue
        receiver = _terminal_name(node.func.value)
        if receiver not in ctx.cond_receivers:
            continue  # Event.wait / Future.wait etc. are fine outside loops
        for anc in ctx.ancestors(node):
            if isinstance(anc, ast.While):
                break
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _emit(
                    ctx, findings, "L101", node,
                    f"Condition '{receiver}'.wait() outside a while loop — "
                    f"wakeups are spurious; re-check the predicate in a loop",
                )
                break


def _with_lock_names(ctx: _FileContext, node: ast.With) -> list[str]:
    names = []
    for item in node.items:
        name = _terminal_name(item.context_expr)
        if name in ctx.lock_receivers:
            names.append(name)
    return names


def _collect_lock_edges(ctx: _FileContext) -> list[tuple[str, str, ast.AST]]:
    """(outer, inner, site) for every syntactically nested lock acquisition."""
    edges = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.With):
            continue
        inner_names = _with_lock_names(ctx, node)
        if not inner_names:
            continue
        # multiple locks in one `with a, b:` acquire left-to-right
        for i, outer in enumerate(inner_names):
            for inner in inner_names[i + 1:]:
                if outer != inner:
                    edges.append((outer, inner, node))
        held = set(inner_names)
        for anc in ctx.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break  # a nested def runs on its caller's stack, not here
            if isinstance(anc, ast.With):
                for outer in _with_lock_names(ctx, anc):
                    for inner in held:
                        if outer != inner:
                            edges.append((outer, inner, node))
    return edges


def _rule_l103(ctx: _FileContext, findings: list) -> None:
    allowed_fns = {"__init__", "__new__", "__post_init__", "__init_subclass__"}
    for node in ast.walk(ctx.tree):
        factory = _call_factory(node)
        if factory not in _LOCK_FACTORIES:
            continue
        fn = ctx.enclosing_function(node)
        if fn is None or fn.name in allowed_fns:
            continue
        _emit(
            ctx, findings, "L103", node,
            f"threading.{factory}() created in '{fn.name}' — lazy creation "
            f"races its own first use; construct in __init__ or at module "
            f"scope",
        )


def _rule_l104(ctx: _FileContext, findings: list) -> None:
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr != "_evaluate_batch":
            continue
        fn = ctx.enclosing_function(node)
        caller = fn.name if fn is not None else "<module>"
        if caller != "evaluate_batch":
            _emit(
                ctx, findings, "L104", node,
                f"_evaluate_batch called from '{caller}' — bypasses the "
                f"engine's one-thread guard; call evaluate_batch instead",
            )


def _rule_l105(ctx: _FileContext, findings: list) -> None:
    mutable_ctors = {"list", "dict", "set"}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in mutable_ctors
            )
            if bad:
                _emit(
                    ctx, findings, "L105", default,
                    f"mutable default argument in '{node.name}' — shared "
                    f"across calls; default to None",
                )


def _rule_l106(ctx: _FileContext, findings: list) -> None:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            _emit(
                ctx, findings, "L106", node,
                "bare except swallows KeyboardInterrupt/SystemExit — catch "
                "Exception (or narrower)",
            )


def _rule_l107(ctx: _FileContext, findings: list) -> None:
    if not ctx.deterministic():
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        hit = None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if (
                ctx.module_alias.get(func.value.id) == "time"
                and func.attr in ("time", "clock")
            ):
                hit = f"time.{func.attr}"
        elif isinstance(func, ast.Name):
            target = ctx.from_imports.get(func.id)
            if target in ("time.time", "time.clock"):
                hit = target
        if hit:
            _emit(
                ctx, findings, "L107", node,
                f"{hit}() in deterministic code — wall clock varies across "
                f"runs; use time.perf_counter() for intervals",
            )


def _rule_l108(ctx: _FileContext, findings: list) -> None:
    if not ctx.deterministic():
        return
    numpy_aliases = {
        local for local, mod in ctx.module_alias.items() if mod == "numpy"
    }
    random_aliases = {
        local for local, mod in ctx.module_alias.items() if mod == "random"
    }
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        base = func.value
        # np.random.<fn>(...)
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in numpy_aliases
            and func.attr not in _NP_RANDOM_OK
        ):
            _emit(
                ctx, findings, "L108", node,
                f"np.random.{func.attr}() uses the global RNG — seed an "
                f"explicit np.random.default_rng(seed) instead",
            )
        # random.<fn>(...)  (stdlib module)
        elif isinstance(base, ast.Name) and base.id in random_aliases:
            _emit(
                ctx, findings, "L108", node,
                f"random.{func.attr}() uses global RNG state — use a seeded "
                f"np.random.default_rng or random.Random instance",
            )


def _rule_l109(ctx: _FileContext, findings: list) -> None:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        pos = args.posonlyargs + args.args
        pairs = list(zip(reversed(pos), reversed(args.defaults)))
        pairs += [
            (a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
            if d is not None
        ]
        for arg, default in pairs:
            if not (
                isinstance(default, ast.Constant) and default.value is None
            ):
                continue
            if arg.annotation is None:
                continue
            ann = ast.unparse(arg.annotation)
            if "Optional" in ann or "None" in ann or "Any" in ann:
                continue
            _emit(
                ctx, findings, "L109", arg,
                f"'{arg.arg}: {ann} = None' — annotation excludes the "
                f"default; use Optional[{ann}]",
            )


#: Call factories whose return value is an OS resource needing a lifecycle
#: (L110).  Terminal names, so ``socket.socket``/``socket.create_connection``
#: and bare/pathlib ``open`` all match.
_RESOURCE_FACTORIES = {"socket", "socketpair", "create_connection", "open"}


def _transfers_ownership(expr: ast.AST, name: str) -> bool:
    """Does ``expr`` hand the *bare* resource on to a new owner?

    True for the name itself, a tuple/list containing it, or a call taking
    it as a direct argument (``_Connection(self, sock, cid)``,
    ``closing(sock)``).  False for mere uses — ``sock.recv(1)`` reads
    through the name but the caller still owns the descriptor.
    """
    if isinstance(expr, ast.Name) and expr.id == name:
        return True
    if isinstance(expr, (ast.Tuple, ast.List)):
        return any(_transfers_ownership(e, name) for e in expr.elts)
    if isinstance(expr, ast.Call):
        return any(
            isinstance(a, ast.Name) and a.id == name for a in expr.args
        ) or any(
            isinstance(k.value, ast.Name) and k.value.id == name
            for k in expr.keywords
        )
    return False


def _resource_released(scope: ast.AST, name: str) -> bool:
    """True when ``name``'s resource has a lifecycle inside ``scope``:
    closed in a ``finally``, or ownership transferred out — returned,
    yielded, stored on an attribute, or passed bare into another call
    (whose owner's close path is that object's business)."""
    for n in ast.walk(scope):
        if isinstance(n, ast.Try):
            for stmt in n.finalbody:
                for c in ast.walk(stmt):
                    if (
                        isinstance(c, ast.Call)
                        and isinstance(c.func, ast.Attribute)
                        and c.func.attr == "close"
                        and isinstance(c.func.value, ast.Name)
                        and c.func.value.id == name
                    ):
                        return True
        elif isinstance(n, ast.Return):
            if n.value is not None and _transfers_ownership(n.value, name):
                return True
        elif isinstance(n, (ast.Yield, ast.YieldFrom)):
            if n.value is not None and _transfers_ownership(n.value, name):
                return True
        elif isinstance(n, ast.Assign):
            if any(
                isinstance(t, ast.Attribute) for t in n.targets
            ) and _transfers_ownership(n.value, name):
                return True
        elif isinstance(n, ast.Call):
            if _transfers_ownership(n, name):
                return True
    return False


def _rule_l110(ctx: _FileContext, findings: list) -> None:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign):
            continue
        factory = _call_factory(node.value)
        if factory not in _RESOURCE_FACTORIES:
            continue
        # `with open(...) as f:` is an ast.With, never an Assign, so the
        # canonical form sails through; attribute targets transfer ownership
        # at birth (self.sock = socket.socket(...)).
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            continue
        name = node.targets[0].id
        scope = ctx.enclosing_function(node) or ctx.tree
        if _resource_released(scope, name):
            continue
        _emit(
            ctx, findings, "L110", node,
            f"'{name} = {factory}(...)' has no lifecycle — not a `with`, "
            f"no close() in a finally, and ownership never leaves the "
            f"function; the descriptor leaks on every exception path",
        )


def _rule_l111(ctx: _FileContext, findings: list) -> None:
    """Unbounded reconnect loops: ``while True`` + connect, no real backoff.

    A retry loop is fine when it is *bounded* (``for _ in range(n)``) or
    when its sleep grows/caps (a non-constant argument — ``sleep(delay)``
    where ``delay`` is computed — is taken as evidence of backoff).  What
    gets flagged is the hammer pattern: ``while True`` re-dialing with no
    sleep at all, or with a constant one (``time.sleep(0.5)``), which
    retries a dead endpoint forever at a fixed rate.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.While):
            continue
        test = node.test
        if not (isinstance(test, ast.Constant) and bool(test.value)):
            continue  # only `while True:`-style loops are unbounded by form
        connect_call = None
        sleep_calls = []
        for n in ast.walk(node):
            if not isinstance(n, ast.Call):
                continue
            name = (_terminal_name(n.func) or "").lower()
            # Word-segment match: `_connect_once` and `sock.connect` are
            # dial calls; `_Connection(...)` (a class) is not.
            segments = set(name.split("_"))
            if segments & {"connect", "reconnect", "dial"} or name in (
                "create_connection", "connect_ex"
            ):
                connect_call = connect_call or (name, n)
            elif "sleep" in name or "backoff" in name or name == "wait":
                sleep_calls.append(n)
        if connect_call is None:
            continue
        name, site = connect_call

        def _constant_only(call: ast.Call) -> bool:
            # Zero-arg waits block until an event — not polling.  A call
            # with arguments counts as real backoff only if at least one
            # argument is computed (non-constant).
            args = list(call.args) + [k.value for k in call.keywords]
            return bool(args) and all(
                isinstance(a, ast.Constant) for a in args
            )

        if not sleep_calls:
            _emit(
                ctx, findings, "L111", site,
                f"'while True' retries '{name}' with no sleep — busy-spins "
                f"a dead endpoint; bound the attempts or add capped "
                f"exponential backoff",
            )
        elif all(_constant_only(c) for c in sleep_calls):
            _emit(
                ctx, findings, "L111", site,
                f"'while True' retries '{name}' with a constant sleep — "
                f"no backoff growth or cap; compute the delay (capped "
                f"exponential) or bound the attempts",
            )


_PER_FILE_RULES = (
    _rule_l101,
    _rule_l103,
    _rule_l104,
    _rule_l105,
    _rule_l106,
    _rule_l107,
    _rule_l108,
    _rule_l109,
    _rule_l110,
    _rule_l111,
)


# ---------------------------------------------------------------------------
# cross-file rule: lock-order inversion (L102)
# ---------------------------------------------------------------------------


def _rule_l102(contexts: list[_FileContext], findings: list) -> None:
    edges: dict[tuple[str, str], tuple[_FileContext, ast.AST]] = {}
    for ctx in contexts:
        for outer, inner, site in _collect_lock_edges(ctx):
            edges.setdefault((outer, inner), (ctx, site))

    graph: dict[str, set[str]] = {}
    for (outer, inner) in edges:
        graph.setdefault(outer, set()).add(inner)

    def reaches(src: str, dst: str) -> bool:
        seen, stack = set(), [src]
        while stack:
            cur = stack.pop()
            if cur == dst:
                return True
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(graph.get(cur, ()))
        return False

    reported = set()
    for (outer, inner), (ctx, site) in sorted(edges.items()):
        if (inner, outer) in reported:
            continue
        if reaches(inner, outer):
            reported.add((outer, inner))
            _emit(
                ctx, findings, "L102", site,
                f"lock order inversion: '{outer}' -> '{inner}' here, but "
                f"'{inner}' -> ... -> '{outer}' elsewhere in the tree — "
                f"pick one global acquisition order",
            )


# ---------------------------------------------------------------------------
# driver + reporters
# ---------------------------------------------------------------------------


def _iter_py_files(paths: Iterable[str]):
    for p in paths:
        path = Path(p)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[str]) -> list[LintFinding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    findings: list[LintFinding] = []
    contexts: list[_FileContext] = []
    for path in _iter_py_files(paths):
        try:
            source = path.read_text()
            ctx = _FileContext(str(path), source)
        except (SyntaxError, UnicodeDecodeError) as exc:
            findings.append(
                LintFinding("L000", str(path), getattr(exc, "lineno", 1) or 1,
                            0, f"could not parse: {exc}")
            )
            continue
        contexts.append(ctx)
        for rule in _PER_FILE_RULES:
            rule(ctx, findings)
    _rule_l102(contexts, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def format_text(findings: list[LintFinding]) -> str:
    if not findings:
        return "repro-lint: clean"
    lines = [str(f) for f in findings]
    lines.append(f"repro-lint: {len(findings)} finding(s)")
    return "\n".join(lines)


def format_json(findings: list[LintFinding]) -> str:
    return json.dumps(
        [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in findings
        ],
        indent=2,
    )
