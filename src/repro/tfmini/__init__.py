"""tfmini — a miniature graph-based tensor framework with reverse-mode autodiff.

This package is the reproduction's stand-in for TensorFlow 1.x, which the
original DeePMD-kit builds on.  It provides exactly the machinery the paper's
"Neural Network Innovation" section (Sec 5.3) manipulates:

* a static computation graph of named operators (:mod:`repro.tfmini.graph`),
* reverse-mode automatic differentiation that *builds graph nodes*, so
  gradients of gradients work (needed for force-matching training,
  :mod:`repro.tfmini.autodiff`),
* an instrumented executor with per-operator wall time, FLOP and byte
  accounting (:mod:`repro.tfmini.executor`) — the source of the Fig-3 style
  operator breakdowns,
* compiled execution plans (:mod:`repro.tfmini.plan`): the graph is
  topo-sorted once into a slot-indexed tape with a liveness-recycled buffer
  arena per steady feed shape — the fixed-cost elimination all hot paths
  (evaluate, train, serving) execute through, with ``Session.run`` kept as
  the bitwise reference oracle,
* graph rewrite passes implementing the paper's fusions:
  MATMUL+SUM -> GEMM, CONCAT+SUM -> GEMM with an (I,I) right factor, and
  TANH/TANHGrad kernel fusion (:mod:`repro.tfmini.passes`),
* an Adam optimizer with exponential learning-rate decay
  (:mod:`repro.tfmini.optimizer`).

Custom operators (the DP model's ``Environment``, ``ProdForce``,
``ProdVirial``) register themselves through :func:`repro.tfmini.ops.register_op`.
"""

from repro.tfmini.graph import Node, Variable, constant, placeholder, variable
from repro.tfmini.ops import (
    add,
    bmm,
    cast,
    concat,
    gemm,
    matmul,
    mul,
    neg,
    reduce_mean,
    reduce_sum,
    reshape,
    slice_axis,
    slice_cols,
    square,
    sub,
    tanh,
    transpose,
)
from repro.tfmini.autodiff import grad
from repro.tfmini.executor import Session, OpStats
from repro.tfmini.plan import ExecutionPlan, compile_plan
from repro.tfmini.passes import optimize_graph
from repro.tfmini.optimizer import Adam, ExponentialDecay

__all__ = [
    "Node",
    "Variable",
    "constant",
    "placeholder",
    "variable",
    "add",
    "sub",
    "mul",
    "neg",
    "square",
    "matmul",
    "gemm",
    "bmm",
    "concat",
    "slice_cols",
    "slice_axis",
    "reshape",
    "transpose",
    "reduce_sum",
    "reduce_mean",
    "tanh",
    "cast",
    "grad",
    "Session",
    "OpStats",
    "ExecutionPlan",
    "compile_plan",
    "optimize_graph",
    "Adam",
    "ExponentialDecay",
]
