"""Fig 5 — strong scaling: water (12.58M atoms, 80-4,560 nodes) and copper
(25.7M atoms, 570-4,560 nodes), double and mixed precision.

Shape targets from the paper: copper scales to the full machine at >70%
efficiency (paper: 81.6% double / 70.5% mixed); water scales almost
perfectly to 640 nodes then decays (36% double at 4,560 nodes); mixed is
~1.5x double everywhere; headline TtS 9 ms (water) / 22 ms (copper double) /
15 ms (copper mixed) per step at full machine.
"""

import pytest

from benchmarks.conftest import print_header
from repro.perfmodel import COPPER_SPEC, WATER_SPEC, strong_scaling
from repro.perfmodel.scaling import (
    COPPER_STRONG_ATOMS,
    FIG5_COPPER_NODES,
    FIG5_PAPER_COPPER_DOUBLE,
    FIG5_PAPER_WATER_DOUBLE,
    FIG5_WATER_NODES,
    WATER_STRONG_ATOMS,
)

CURVES = {}


def test_water_double(benchmark):
    CURVES["water_double"] = benchmark(
        lambda: strong_scaling(WATER_SPEC, WATER_STRONG_ATOMS, FIG5_WATER_NODES)
    )


def test_water_mixed(benchmark):
    CURVES["water_mixed"] = benchmark(
        lambda: strong_scaling(
            WATER_SPEC, WATER_STRONG_ATOMS, FIG5_WATER_NODES, precision="mixed"
        )
    )


def test_copper_double(benchmark):
    CURVES["copper_double"] = benchmark(
        lambda: strong_scaling(COPPER_SPEC, COPPER_STRONG_ATOMS, FIG5_COPPER_NODES)
    )


def test_copper_mixed(benchmark):
    CURVES["copper_mixed"] = benchmark(
        lambda: strong_scaling(
            COPPER_SPEC, COPPER_STRONG_ATOMS, FIG5_COPPER_NODES, precision="mixed"
        )
    )


def test_zz_report_and_shapes(benchmark):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(CURVES) == 4
    print_header("Fig 5 — strong scaling (model | paper where available)")
    print("Water 12,582,912 atoms:")
    for pd, pm in zip(CURVES["water_double"], CURVES["water_mixed"]):
        ref = FIG5_PAPER_WATER_DOUBLE[pd.n_nodes]
        print(
            f"  {pd.n_nodes:>5} nodes: double {pd.pflops:>5.1f}|{ref[0]:<5.1f}P "
            f"{pd.t_step*1e3:>4.0f}|{ref[1]:<4d}ms   "
            f"mixed {pm.pflops:>5.1f}P {pm.t_step*1e3:>4.0f}ms"
        )
    print("Copper 25,739,424 atoms:")
    for pd, pm in zip(CURVES["copper_double"], CURVES["copper_mixed"]):
        ref = FIG5_PAPER_COPPER_DOUBLE[pd.n_nodes]
        print(
            f"  {pd.n_nodes:>5} nodes: double {pd.pflops:>5.1f}|{ref[0]:<5.1f}P "
            f"{pd.t_step*1e3:>4.0f}|{ref[1]:<4d}ms   "
            f"mixed {pm.pflops:>5.1f}P {pm.t_step*1e3:>4.0f}ms"
        )

    wd = CURVES["water_double"]
    cd = CURVES["copper_double"]
    # paper values within tolerance
    for p in wd:
        ref = FIG5_PAPER_WATER_DOUBLE[p.n_nodes]
        assert p.pflops == pytest.approx(ref[0], rel=0.20), p.n_nodes
    for p in cd:
        ref = FIG5_PAPER_COPPER_DOUBLE[p.n_nodes]
        assert p.pflops == pytest.approx(ref[0], rel=0.20), p.n_nodes

    # Shape: copper holds efficiency at full machine, water decays harder.
    assert cd[-1].efficiency > 0.70
    assert wd[-1].efficiency < 0.55
    assert wd[2].efficiency > 0.85  # near-perfect early in the curve

    # mixed ~1.5x double at compute-bound points
    for key_d, key_m in (("water_double", "water_mixed"), ("copper_double", "copper_mixed")):
        d0, m0 = CURVES[key_d][0], CURVES[key_m][0]
        assert 1.3 < d0.t_step / m0.t_step < 1.8

    # headline time-to-solution per step at full machine
    assert wd[-1].t_step * 1e3 == pytest.approx(9.0, rel=0.3)
    assert cd[-1].t_step * 1e3 == pytest.approx(22.0, rel=0.3)
    cm = CURVES["copper_mixed"]
    assert cm[-1].t_step * 1e3 == pytest.approx(15.0, rel=0.35)
    # "nanosecond simulation within 4.2 / 5.0 hours" claims
    hours_cu_mixed = cm[-1].t_step * 1e6 / 3600  # 1e6 steps at 1 fs
    assert hours_cu_mixed == pytest.approx(4.2, rel=0.4)
    hours_water_double = wd[-1].t_step * 2e6 / 3600  # 2e6 steps at 0.5 fs
    assert hours_water_double == pytest.approx(5.0, rel=0.4)
