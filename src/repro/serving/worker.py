"""The inference server: one worker thread driving batched evaluations.

Architecture (the ROADMAP's "batched serving endpoint")::

    clients                 queue                scheduler          worker
    ------- submit() ----> [bounded] -- pop_batch(max_batch, ----> evaluate_batch
    futures <------------- results     max_wait_us, model) <------ scatter to futures

Many client threads submit frames; a single worker thread coalesces them
into per-model micro-batches and runs each batch through that model's
persistent :class:`~repro.dp.batch.BatchedEvaluator` — whose graph executes
as a compiled execution plan (:mod:`repro.tfmini.plan`): compiled once at
model registration, with a warm buffer arena per batch shape, so the
steady-state serving loop performs no graph traversal and no per-op output
allocation.  One worker per server
means one ``session.run`` at a time per model — the tfmini session and the
evaluator's scratch pool are only ever touched from the worker thread, so
no locking is needed on the hot path (client threads touch only the queue).

Numerical contract: every request's result is **bitwise identical** to a
direct ``DeepPot.evaluate`` of the same frame, no matter which other
requests it shared a batch with (the engine's per-frame independence
guarantee; asserted under concurrent load in ``tests/test_serving.py``).

Avoid calling ``model.evaluate`` on a model from another thread *while* the
server is processing requests for it: the model's default R=1 engine and
the server's engine hold separate scratch, but the profiling counters of a
shared session are not synchronized.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.serving.metrics import ServerStats
from repro.serving.queue import (
    InferenceRequest,
    QueueFull,
    RequestQueue,
    ServerClosed,
)
from repro.serving.scheduler import MicroBatchScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future

    from repro.dp.model import DeepPot
    from repro.md.system import System


class InferenceServer:
    """Multi-client, multi-model DP inference with dynamic micro-batching.

    Parameters
    ----------
    models:
        Optional mapping ``{name: DeepPot}`` to register at construction.
    max_batch, max_wait_us:
        Coalescing policy (see :class:`~repro.serving.scheduler.
        MicroBatchScheduler`).
    max_queue:
        Bounded queue depth — the backpressure limit (``<= 0``: unbounded).
    autostart:
        Start the worker thread immediately.  Benchmarks pass ``False`` (or
        use :meth:`paused`) to pre-load the queue and get a deterministic
        batch count: N pre-queued requests execute in exactly
        ``ceil(N / max_batch)`` batches.
    backend:
        Environment-operator backend forwarded to ``evaluate_batch``.
    """

    def __init__(
        self,
        models: Optional[dict[str, "DeepPot"]] = None,
        *,
        max_batch: int = 8,
        max_wait_us: float = 1000.0,
        max_queue: int = 64,
        autostart: bool = True,
        backend: str = "optimized",
    ):
        from repro.dp.batch import BatchedEvaluator

        self._engine_cls = BatchedEvaluator
        self._models: dict[str, "DeepPot"] = {}
        self._engines: dict[str, object] = {}
        self.backend = backend
        self.queue = RequestQueue(maxsize=max_queue)
        self.scheduler = MicroBatchScheduler(
            self.queue, max_batch=max_batch, max_wait_us=max_wait_us
        )
        self.stats = ServerStats()
        self._gate = threading.Event()  # set = worker may take batches
        self._thread: Optional[threading.Thread] = None
        if models:
            for name, model in models.items():
                self.register(name, model)
        if autostart:
            self.start()

    # ------------------------------------------------------------- registry

    def register(self, name: str, model: "DeepPot") -> "InferenceServer":
        """Host ``model`` under ``name`` with its own persistent evaluator.

        The evaluator's compiled execution plan is built here (one graph
        topo-sort, at registration) so the first served request only pays
        the per-batch-shape arena warm-up, never graph compilation.
        """
        if name in self._models:
            raise ValueError(f"model {name!r} already registered")
        self._models[name] = model
        engine = self._engine_cls(model)
        engine.plan  # compile now, off the serving hot path
        self._engines[name] = engine
        return self

    def model_names(self) -> list[str]:
        return sorted(self._models)

    def executor_stats(self) -> dict[str, dict]:
        """Per-model compiled-plan counters (deterministic, lock-free reads).

        For each hosted model: ``topo_sorts`` (1 per engine lifetime),
        ``runs``, ``arena_builds`` (one per distinct batch shape seen) and
        ``arena_allocs`` — a steady workload stops growing everything except
        ``runs``.
        """
        out = {}
        for name, engine in self._engines.items():
            plan = engine.plan
            out[name] = {
                "topo_sorts": plan.stats.topo_sorts,
                "runs": plan.stats.runs,
                "arena_builds": plan.stats.arena_builds,
                "arena_allocs": plan.alloc_count(),
                "arena_nbytes": plan.arena_nbytes(),
            }
        return out

    def model(self, name: str) -> "DeepPot":
        return self._models[name]

    @classmethod
    def from_zoo(
        cls, names: Sequence[str] = ("water",), cache_dir: Optional[str] = None,
        **kwargs,
    ) -> "InferenceServer":
        """A server hosting pre-trained zoo models.

        Names are ``water`` / ``copper``, optionally suffixed with the
        network precision: ``water-double`` (default) or ``water-single``
        (the fp32-network mixed-precision engine; ``-mixed`` is accepted as
        an alias).  Models are trained on first use and cached by the zoo.
        """
        from repro import zoo

        builders = {"water": zoo.get_water_model, "copper": zoo.get_copper_model}
        # Resolve (and validate) every model BEFORE constructing the server:
        # with autostart a bad name would otherwise leak a parked worker
        # thread attached to a server nobody holds a reference to.
        models: dict[str, "DeepPot"] = {}
        for name in names:
            base, _, prec = name.partition("-")
            if base not in builders:
                raise KeyError(
                    f"unknown zoo model {name!r} (expected water/copper"
                    f"[-double|-single])"
                )
            prec = {"": "double", "double": "double",
                    "single": "mixed", "mixed": "mixed"}.get(prec)
            if prec is None:
                raise KeyError(f"unknown precision suffix in {name!r}")
            models[name] = builders[base](precision=prec, cache_dir=cache_dir)
        return cls(models, **kwargs)

    # ------------------------------------------------------------ submission

    def submit(
        self,
        model: str,
        system: "System",
        pair_i: Optional[np.ndarray] = None,
        pair_j: Optional[np.ndarray] = None,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> "Future":
        """Queue one frame for evaluation; returns its future.

        The neighbor pair list is computed here (caller's thread) when not
        supplied, keeping the worker thread free for graph execution.
        Raises :class:`KeyError` for an unregistered model,
        :class:`QueueFull` under backpressure, :class:`ServerClosed` after
        shutdown.
        """
        if model not in self._models:
            raise KeyError(
                f"model {model!r} not registered (have {self.model_names()})"
            )
        if pair_i is None or pair_j is None:
            from repro.md.neighbor import neighbor_pairs

            pair_i, pair_j = neighbor_pairs(
                system, self._models[model].config.rcut
            )
        request = InferenceRequest(
            model=model, system=system, pair_i=pair_i, pair_j=pair_j
        )
        # Count the submission BEFORE the request becomes visible to the
        # worker, so requests_completed can never transiently exceed
        # requests_submitted; a refused put takes the count back.
        self.stats.record_submit()
        try:
            self.queue.put(request, block=block, timeout=timeout)
        except QueueFull:
            self.stats.undo_submit()
            self.stats.record_reject()
            raise
        except ServerClosed:
            self.stats.undo_submit()
            raise
        request.future.request = request  # serving metadata for callers/tests
        return request.future

    def client(self, model: Optional[str] = None):
        """An :class:`~repro.serving.client.InferenceClient` bound to
        ``model`` (defaults to the sole registered model)."""
        from repro.serving.client import InferenceClient

        if model is None:
            if len(self._models) != 1:
                raise ValueError(
                    f"server hosts {self.model_names()}; pick one explicitly"
                )
            model = next(iter(self._models))
        return InferenceClient(self, model)

    # ------------------------------------------------------------- lifecycle

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "InferenceServer":
        if self.running:
            return self
        if self.queue.closed:
            raise ServerClosed("server was stopped; build a new one")
        self._gate.set()
        self._thread = threading.Thread(
            target=self._serve_loop, name="repro-serving-worker", daemon=True
        )
        self._thread.start()
        return self

    def pause(self) -> None:
        """Stop taking new batches (in-flight batch finishes first)."""
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()
        self.queue.kick()

    @contextmanager
    def paused(self):
        """``with server.paused(): submit(...)`` — requests accumulate in
        the queue, then coalesce maximally on resume.  Batch counts are
        fully deterministic when the server is idle at pause time (the
        benchmark pattern); under live traffic a batch the worker is
        already gathering still executes."""
        self.pause()
        try:
            yield self
        finally:
            self.resume()

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut down the worker.

        ``drain=True`` completes every queued request first; ``drain=False``
        cancels pending futures (waiters get ``CancelledError``).  In-flight
        batches always complete — results are never discarded mid-execution.
        Draining needs a live worker: on a server that was never started,
        pending requests are cancelled either way.
        """
        if drain and self._thread is not None:
            self.queue.close()
        else:
            pending = self.queue.close_and_drain()
            dropped = sum(1 for r in pending if r.future.cancel())
            self.stats.record_cancelled(dropped)
        if self._thread is None:
            return
        self._gate.set()  # a paused server must still wind down
        self.queue.kick()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - join timeout
            raise RuntimeError("serving worker did not stop in time")
        self._thread = None

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop(drain=exc == (None, None, None))

    # ------------------------------------------------------------ worker loop

    def _serve_loop(self) -> None:
        while True:
            batch = self.scheduler.next_batch(gate=self._gate)
            if batch is None:
                return
            self._run_batch(batch)

    def _run_batch(self, batch: list[InferenceRequest]) -> None:
        dispatched_at = time.perf_counter()
        live = [r for r in batch if r.future.set_running_or_notify_cancel()]
        if len(live) < len(batch):
            self.stats.record_cancelled(len(batch) - len(live))
        if not live:
            return
        name = live[0].model
        engine = self._engines[name]
        seqs = tuple(r.seq for r in live)
        waits = tuple(dispatched_at - r.enqueued_at for r in live)
        try:
            results = engine.evaluate_batch(
                [r.system for r in live],
                [(r.pair_i, r.pair_j) for r in live],
                backend=self.backend,
            )
        except BaseException as exc:
            # One poisoned frame fails its whole batch, never the server:
            # the exception lands in each affected future and the loop moves
            # on to the next batch.
            for r in live:
                r.future.set_exception(exc)
            self.stats.record_batch(name, seqs, waits, failed=True)
            return
        for r, result in zip(live, results):
            r.future.set_result(result)
        self.stats.record_batch(name, seqs, waits)
