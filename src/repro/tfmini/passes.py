"""Graph rewrite passes implementing the paper's Sec 5.3 fusions.

Three rewrites, mirroring the optimized DeePMD-kit execution graph:

1. ``fuse_matmul_sum``  — MATMUL followed by broadcast SUM of a rank-1 bias
   becomes a single GEMM call (Sec 5.3.1, Fig 2 (g1)).
2. ``fuse_concat_sum``  — CONCAT of a tensor with itself followed by SUM
   becomes ``x @ (I, I) + y`` as one GEMM (Sec 5.3.2, Fig 2 (g2)).
3. ``fuse_tanh``        — forward TANH and backward TANHGrad collapse into a
   single kernel that emits both ``tanh(x)`` and ``1 - tanh(x)^2``
   (Sec 5.3.3, Fig 2 (g3)); trades memory for a second elementwise pass.

Passes rebuild the DAG bottom-up; leaves (placeholders/variables/constants)
keep identity so existing feed dictionaries remain valid.  Passes are applied
*after* gradient construction — they rewrite the complete forward+backward
graph just as the paper rewrites the frozen TF execution graph.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.tfmini.graph import Node, topo_sort
from repro.tfmini.ops import gemm, mul, register_op


def _rebuild(fetches: Sequence[Node], transform: Callable[[Node], Optional[Node]]):
    """Rebuild the DAG, applying ``transform`` to every non-leaf node."""
    memo: dict[int, Node] = {}
    for node in topo_sort(fetches):
        if not node.inputs:
            memo[id(node)] = node
            continue
        new_inputs = tuple(memo[id(i)] for i in node.inputs)
        if new_inputs == node.inputs:
            cand = node
        else:
            cand = Node(
                node.op, new_inputs, dict(node.attrs), shape=node.shape, dtype=node.dtype
            )
        replaced = transform(cand)
        memo[id(node)] = replaced if replaced is not None else cand
    return [memo[id(f)] for f in fetches]


def _static_ndim(node: Node) -> Optional[int]:
    return None if node.shape is None else len(node.shape)


def fuse_matmul_sum(fetches: Sequence[Node]) -> list[Node]:
    """Rewrite ``add(matmul(x, W), b)`` (b rank-1) into ``gemm(x, W, b)``."""

    def transform(node: Node) -> Optional[Node]:
        if node.op != "add":
            return None
        a, b = node.inputs
        if a.op == "matmul" and _static_ndim(b) == 1:
            return gemm(a.inputs[0], a.inputs[1], b)
        if b.op == "matmul" and _static_ndim(a) == 1:
            return gemm(b.inputs[0], b.inputs[1], a)
        return None

    return _rebuild(fetches, transform)


def _fwd_ii_like(inputs, attrs):
    """Runtime (I, I) block: shape (n, 2n), dtype of the reference tensor."""
    x = inputs[0]
    n = x.shape[-1]
    eye = np.eye(n, dtype=x.dtype)
    return np.concatenate([eye, eye], axis=1)


def _inf_ii_like(shapes, dtypes, attrs, ctx):
    n = shapes[0][-1]
    return (n, 2 * n), dtypes[0]


def _out_ii_like(inputs, attrs, out):
    n = inputs[0].shape[-1]
    out.fill(0)
    idx = np.arange(n)
    out[idx, idx] = 1
    out[idx, idx + n] = 1


register_op(
    "ii_like",
    _fwd_ii_like,
    vjp=lambda node, g: [None],
    flops=lambda n, i, o: 0,
    forward_out=_out_ii_like,
    infer=_inf_ii_like,
)


def fuse_concat_sum(fetches: Sequence[Node]) -> list[Node]:
    """Rewrite ``add(concat(x, x), y)`` into ``gemm(x, (I,I), y)``.

    Only fires on self-concatenation along the last axis — exactly the
    skip-connection shape in the embedding net (output dim = 2 x input dim).
    """

    def transform(node: Node) -> Optional[Node]:
        if node.op != "add":
            return None

        def match(cc: Node, other: Node) -> Optional[Node]:
            if cc.op != "concat":
                return None
            x1, x2 = cc.inputs
            if x1 is not x2:
                return None
            axis = cc.attrs["axis"]
            nd = _static_ndim(x1)
            if axis not in (-1, 1) or (axis == 1 and nd not in (None, 2)):
                return None
            ii = Node("ii_like", (x1,))
            return gemm(x1, ii, other)

        a, b = node.inputs
        return match(a, b) or match(b, a)

    return _rebuild(fetches, transform)


def fuse_tanh(fetches: Sequence[Node]) -> list[Node]:
    """Fuse TANH/TANHGrad pairs into a dual-output kernel.

    Every ``tanh`` whose output feeds a ``tanh_grad`` is replaced by
    ``tanh_fused`` producing ``(y, 1 - y^2)``; the ``tanh_grad`` collapses to
    an elementwise multiply with the cached second output.
    """
    # Identify tanh nodes that are consumed by a tanh_grad in this graph.
    wanted: set[int] = set()
    for node in topo_sort(fetches):
        if node.op == "tanh_grad" and node.inputs[0].op == "tanh":
            wanted.add(id(node.inputs[0]))

    fused_pairs: dict[int, tuple[Node, Node]] = {}

    # The rebuild walks bottom-up, so each tanh node is rebuilt before its
    # tanh_grad consumers; fused pairs are recorded under the original id.
    memo: dict[int, Node] = {}
    for node in topo_sort(fetches):
        if not node.inputs:
            memo[id(node)] = node
            continue
        new_inputs = tuple(memo[id(i)] for i in node.inputs)
        if node.op == "tanh" and id(node) in wanted:
            # Build the fused pair on the (rebuilt) input.
            both = Node("tanh_fused", new_inputs)
            y = Node("item", (both,), {"index": 0})
            g = Node("item", (both,), {"index": 1})
            fused_pairs[id(node)] = (y, g)
            memo[id(node)] = y
            continue
        if node.op == "tanh_grad" and id(node.inputs[0]) in fused_pairs:
            _, g_node = fused_pairs[id(node.inputs[0])]
            dy = new_inputs[1]
            memo[id(node)] = mul(dy, g_node)
            continue
        if new_inputs == node.inputs:
            memo[id(node)] = node
        else:
            memo[id(node)] = Node(
                node.op, new_inputs, dict(node.attrs), shape=node.shape, dtype=node.dtype
            )
    return [memo[id(f)] for f in fetches]


PASSES = {
    "matmul_sum": fuse_matmul_sum,
    "concat_sum": fuse_concat_sum,
    "tanh": fuse_tanh,
}


def optimize_graph(
    fetches: Sequence[Node] | Node,
    passes: Iterable[str] = ("matmul_sum", "concat_sum", "tanh"),
) -> list[Node] | Node:
    """Apply the named rewrite passes in order; returns rewritten fetches."""
    single = isinstance(fetches, Node)
    fs = [fetches] if single else list(fetches)
    for name in passes:
        try:
            fn = PASSES[name]
        except KeyError:
            raise KeyError(f"unknown pass '{name}'; available: {sorted(PASSES)}") from None
        fs = fn(fs)
    return fs[0] if single else fs
