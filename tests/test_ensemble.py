"""Batched-vs-serial equivalence for the multi-replica evaluation engine.

Covers the three contracts of :mod:`repro.dp.batch` / :mod:`repro.md.ensemble`:

1. R=1 through the batched engine is *bitwise* identical to the serial path
   (energies, forces, virials, atomic energies), so the single-replica MD
   driver lost nothing by routing through the engine;
2. R>1 replicas are bitwise identical to independent serial evaluations —
   forces/virials (scatter-add orderings are preserved per replica) AND
   energies/atomic energies (tfmini's matrix-vector kernel is row-count
   independent, so GEMM results never depend on batch composition);
3. the steady-state loop reuses the engine's persistent scratch buffers —
   no new large allocations after warm-up (deterministic counter assert).
"""

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp.batch import BatchedEvaluator
from repro.dp.model import DeepPot, DPConfig
from repro.dp.pair import DeepPotPair
from repro.md.ensemble import EnsembleMSD, EnsembleSimulation
from repro.md.neighbor import fitted_neighbor_list, neighbor_pairs
from repro.md.simulation import Simulation
from repro.md.velocity import boltzmann_velocities


@pytest.fixture(scope="module")
def model():
    return DeepPot(DPConfig.tiny())


@pytest.fixture(scope="module")
def base_system():
    return water_box((3, 3, 3), seed=0)


def perturbed_replicas(base, n, scale=0.02):
    out = []
    for k in range(n):
        s = base.copy()
        rng = np.random.default_rng(100 + k)
        s.positions = s.positions + rng.normal(scale=scale, size=s.positions.shape)
        out.append(s)
    return out


class TestBatchedEquivalence:
    def test_r1_bitwise_identical_to_serial(self, model, base_system):
        pi, pj = neighbor_pairs(base_system, model.config.rcut)
        ser = model.evaluate_serial(base_system, pi, pj)
        bat = model.evaluate(base_system, pi, pj)  # engine R=1 path
        assert bat.energy == ser.energy
        assert np.array_equal(bat.forces, ser.forces)
        assert np.array_equal(bat.virial, ser.virial)
        assert np.array_equal(bat.atom_energies, ser.atom_energies)

    def test_r1_baseline_backend_bitwise(self, model, base_system):
        pi, pj = neighbor_pairs(base_system, model.config.rcut)
        ser = model.evaluate_serial(base_system, pi, pj, backend="baseline")
        bat = model.evaluate(base_system, pi, pj, backend="baseline")
        assert bat.energy == ser.energy
        assert np.array_equal(bat.forces, ser.forces)

    def test_r1_ghost_mode_bitwise(self, model, base_system):
        pi, pj = neighbor_pairs(base_system, model.config.rcut)
        nloc = base_system.n_atoms // 2
        ser = model.evaluate_serial(base_system, pi, pj, nloc=nloc)
        bat = model.evaluate(base_system, pi, pj, nloc=nloc)
        assert bat.energy == ser.energy
        assert np.array_equal(bat.forces, ser.forces)
        assert bat.atom_energies.shape == (nloc,)

    def test_multi_replica_agrees_with_serial(self, model, base_system):
        reps = perturbed_replicas(base_system, 4)
        pls = [neighbor_pairs(s, model.config.rcut) for s in reps]
        engine = BatchedEvaluator(model)
        batch = engine.evaluate_batch(reps, pls)
        assert len(batch) == 4
        for system, (pi, pj), res in zip(reps, pls, batch):
            ser = model.evaluate_serial(system, pi, pj)
            # forces/virials keep their per-replica scatter-add order, and
            # the row-count-independent matvec kernel makes the energies
            # batch-composition independent too: everything is exact.
            assert np.array_equal(res.forces, ser.forces)
            assert np.array_equal(res.virial, ser.virial)
            assert res.energy == ser.energy
            assert np.array_equal(res.atom_energies, ser.atom_energies)

    def test_multi_replica_general_path_agrees(self, model, base_system):
        """Per-replica nloc forces the non-stacked staging path; results must
        agree with serial ghost-mode evaluations all the same."""
        reps = perturbed_replicas(base_system, 2)
        pls = [neighbor_pairs(s, model.config.rcut) for s in reps]
        nlocs = [reps[0].n_atoms // 2, reps[1].n_atoms]
        engine = BatchedEvaluator(model)
        batch = engine.evaluate_batch(reps, pls, nlocs=nlocs)
        for system, (pi, pj), nloc, res in zip(reps, pls, nlocs, batch):
            ser = model.evaluate_serial(system, pi, pj, nloc=nloc)
            assert np.array_equal(res.forces, ser.forces)
            assert res.energy == ser.energy
            assert res.atom_energies.shape == (nloc,)

    def test_replicas_independent_of_batch_composition(self, model, base_system):
        """A replica's result does not depend on who it is batched with."""
        reps = perturbed_replicas(base_system, 3)
        pls = [neighbor_pairs(s, model.config.rcut) for s in reps]
        engine = BatchedEvaluator(model)
        full = engine.evaluate_batch(reps, pls)
        pair = BatchedEvaluator(model).evaluate_batch(reps[:2], pls[:2])
        assert np.array_equal(full[0].forces, pair[0].forces)
        assert np.array_equal(full[1].forces, pair[1].forces)

    def test_mismatched_lengths_raise(self, model, base_system):
        pi, pj = neighbor_pairs(base_system, model.config.rcut)
        engine = BatchedEvaluator(model)
        with pytest.raises(ValueError):
            engine.evaluate_batch([base_system], [(pi, pj), (pi, pj)])
        with pytest.raises(ValueError):
            engine.evaluate_batch([base_system], [(pi, pj)], nlocs=[1, 2])

    def test_empty_batch(self, model):
        assert BatchedEvaluator(model).evaluate_batch([], []) == []


class TestEnsembleSimulation:
    def test_r1_matches_simulation_bitwise(self, model, base_system):
        s_serial = base_system.copy()
        boltzmann_velocities(s_serial, 300.0, seed=7)
        s_ens = s_serial.copy()

        sim = Simulation(
            s_serial, DeepPotPair(model), dt=0.0005,
            neighbor=fitted_neighbor_list(s_serial, model.config.rcut),
        )
        sim.run(5)

        ens = EnsembleSimulation(
            [s_ens], model, dt=0.0005,
            neighbors=[fitted_neighbor_list(s_ens, model.config.rcut)],
        )
        ens.run(5)

        assert np.array_equal(s_serial.positions, s_ens.positions)
        assert np.array_equal(s_serial.velocities, s_ens.velocities)
        assert np.array_equal(
            sim.thermo.column("potential_energy"),
            ens.thermo[0].column("potential_energy"),
        )

    def test_mixed_seed_replicas_match_independent_runs(self, model, base_system):
        seeds, temps = [1, 2, 3], [250.0, 300.0, 350.0]
        solo_systems = []
        for sd, temp in zip(seeds, temps):
            s = base_system.copy()
            boltzmann_velocities(s, temp, seed=sd)
            solo_systems.append(s)
        ens_systems = [s.copy() for s in solo_systems]

        for s in solo_systems:
            sim = Simulation(
                s, DeepPotPair(model), dt=0.0005,
                neighbor=fitted_neighbor_list(s, model.config.rcut),
            )
            sim.run(4)

        ens = EnsembleSimulation(
            ens_systems, model, dt=0.0005,
            neighbors=[fitted_neighbor_list(s, model.config.rcut) for s in ens_systems],
        )
        ens.run(4)

        for solo, rep in zip(solo_systems, ens_systems):
            assert np.array_equal(solo.positions, rep.positions)
            assert np.array_equal(solo.velocities, rep.velocities)

    def test_from_system_builds_decorrelated_replicas(self, model, base_system):
        ens = EnsembleSimulation.from_system(
            base_system, model, n_replicas=3, temperature=[200.0, 300.0, 400.0],
            seed=5, dt=0.0005,
        )
        assert ens.n_replicas == 3
        v0, v1 = ens.systems[0].velocities, ens.systems[1].velocities
        assert not np.array_equal(v0, v1)
        # replica temperatures honour the requested ladder
        assert ens.systems[0].temperature() == pytest.approx(200.0)
        assert ens.systems[2].temperature() == pytest.approx(400.0)

    def test_one_batched_eval_per_step(self, model, base_system):
        ens = EnsembleSimulation.from_system(
            base_system, model, n_replicas=4, dt=0.0005
        )
        ens.run(3)
        # n_steps + 1 evaluations (as in the serial driver), each covering R frames
        assert ens.force_evaluations == 4
        assert ens.engine.batch_evaluations == 4
        assert ens.engine.frames_evaluated == 16


class TestEnsembleMSD:
    def test_shapes_zero_origin_and_replica_mean(self, model, base_system):
        ens = EnsembleSimulation.from_system(
            base_system, model, n_replicas=3, dt=0.0005
        )
        msd = EnsembleMSD(ens, every=2)
        ens.run(6, callback=msd)
        # frame 0 (construction) + steps 2, 4, 6
        assert msd.n_frames == 4
        assert msd.n_replicas == 3
        per = msd.replica_msd()
        assert per.shape == (3, 4)
        assert np.all(per[:, 0] == 0.0)  # MSD is relative to frame 0
        assert np.all(per[:, -1] > 0.0)  # thermal motion happened
        mean, stderr = msd.msd()
        assert np.array_equal(mean, per.mean(axis=0))
        assert stderr.shape == (4,)
        assert np.all(stderr >= 0.0)
        # replicas have different seeds -> genuinely different curves
        assert not np.array_equal(per[0], per[1])

    def test_diffusion_estimate_with_error_bar(self, model, base_system):
        ens = EnsembleSimulation.from_system(
            base_system, model, n_replicas=3, dt=0.0005
        )
        msd = EnsembleMSD(ens, every=2)
        ens.run(8, callback=msd)
        est = msd.diffusion(fit_from=0.25)
        assert est.per_replica.shape == (3,)
        assert np.isfinite(est.mean)
        assert est.stderr >= 0.0
        assert est.mean == pytest.approx(est.per_replica.mean())
        expected_err = est.per_replica.std(ddof=1) / np.sqrt(3)
        assert est.stderr == pytest.approx(expected_err)

    def test_single_replica_has_zero_stderr(self, model, base_system):
        ens = EnsembleSimulation.from_system(
            base_system, model, n_replicas=1, dt=0.0005
        )
        msd = EnsembleMSD(ens, every=2)
        ens.run(4, callback=msd)
        _, stderr = msd.msd()
        assert np.all(stderr == 0.0)
        assert msd.diffusion(fit_from=0.0).stderr == 0.0

    def test_attaching_after_equilibration_keeps_uniform_spacing(
        self, model, base_system
    ):
        """Frames are spaced ``every`` steps from the attachment point, so
        an equilibration run of any length (not a multiple of ``every``)
        may precede the collector without skewing the time axis."""
        ens = EnsembleSimulation.from_system(
            base_system, model, n_replicas=1, dt=0.0005
        )
        ens.run(3)  # equilibration; 3 is not a multiple of every=2
        msd = EnsembleMSD(ens, every=2)
        ens.run(4, callback=msd)
        # frame 0 at step 3 (attachment) + steps 5 and 7
        assert msd.n_frames == 3

    def test_rejects_bad_stride(self, model, base_system):
        ens = EnsembleSimulation.from_system(
            base_system, model, n_replicas=1, dt=0.0005
        )
        with pytest.raises(ValueError):
            EnsembleMSD(ens, every=0)


class TestBufferReuse:
    def test_steady_state_loop_is_allocation_free(self, model, base_system):
        """After warm-up, repeated evaluations allocate no new large buffers
        and keep handing out the *same* scratch arrays."""
        reps = perturbed_replicas(base_system, 3)
        pls = [neighbor_pairs(s, model.config.rcut) for s in reps]
        engine = BatchedEvaluator(model)
        engine.evaluate_batch(reps, pls)  # warm-up allocates the pool

        count = engine.scratch.alloc_count
        nbytes = engine.scratch.nbytes()
        buf_ids = {key: id(a) for key, a in engine.scratch._arrays.items()}
        fmt_ids = [id(f.nlist) for f in engine._fmts.values()]
        for _ in range(5):
            engine.evaluate_batch(reps, pls)
        assert engine.scratch.alloc_count == count
        assert engine.scratch.nbytes() == nbytes
        assert {k: id(a) for k, a in engine.scratch._arrays.items()} == buf_ids
        assert [id(f.nlist) for f in engine._fmts.values()] == fmt_ids

    def test_md_loop_reuses_buffers(self, model, base_system):
        ens = EnsembleSimulation.from_system(
            base_system, model, n_replicas=2, dt=0.0005
        )
        ens.run(1)  # warm-up: initialize + first step
        count = ens.engine.scratch.alloc_count
        ens.run(4)
        assert ens.engine.scratch.alloc_count == count

    def test_pool_keys_buffers_by_shape(self, model, base_system):
        """A new batch shape allocates its own buffer set; alternating
        between warmed shapes then allocates nothing (no thrash)."""
        reps = perturbed_replicas(base_system, 2)
        pls = [neighbor_pairs(s, model.config.rcut) for s in reps]
        engine = BatchedEvaluator(model)
        engine.evaluate_batch(reps, pls)
        count = engine.scratch.alloc_count
        engine.evaluate_batch(reps[:1], pls[:1])  # smaller batch -> new shapes
        assert engine.scratch.alloc_count > count
        warmed = engine.scratch.alloc_count
        for _ in range(3):
            engine.evaluate_batch(reps, pls)
            engine.evaluate_batch(reps[:1], pls[:1])
        assert engine.scratch.alloc_count == warmed

    def test_pair_count_drift_bounded_allocations(self, model, base_system):
        """Neighbor-list rebuilds change the pair count slightly every time;
        the pair staging slabs are power-of-two sized so allocations plateau
        instead of growing once per rebuild."""
        reps = perturbed_replicas(base_system, 2)
        engine = BatchedEvaluator(model)
        rng = np.random.default_rng(0)
        counts = []
        for _ in range(8):
            # jitter positions -> a different pair count per "rebuild"
            for s in reps:
                s.positions = s.positions + rng.normal(
                    scale=0.01, size=s.positions.shape
                )
            pls = [neighbor_pairs(s, model.config.rcut) for s in reps]
            engine.evaluate_batch(reps, pls)
            counts.append(engine.scratch.alloc_count)
        assert len({len(p[0]) for p in
                    [neighbor_pairs(s, model.config.rcut) for s in reps]}) >= 1
        # allocations stop growing after the slabs warm up
        assert counts[-1] == counts[3]

    def test_from_system_accepts_numpy_scalars(self, model, base_system):
        ens = EnsembleSimulation.from_system(
            base_system, model, n_replicas=2,
            temperature=np.float64(300.0), seed=np.int64(7), dt=0.0005,
        )
        assert ens.n_replicas == 2
        assert not np.array_equal(
            ens.systems[0].velocities, ens.systems[1].velocities
        )

    def test_format_neighbors_out_reuse(self, model, base_system):
        from repro.dp.nlist_fmt import format_neighbors

        cfg = model.config
        pi, pj = neighbor_pairs(base_system, cfg.rcut)
        fresh = format_neighbors(base_system, pi, pj, cfg.rcut, cfg.sel)
        reused = format_neighbors(
            base_system, pi, pj, cfg.rcut, cfg.sel, out=fresh
        )
        assert reused is fresh  # same layout object, storage recycled
        again = format_neighbors(base_system, pi, pj, cfg.rcut, cfg.sel)
        assert np.array_equal(reused.nlist, again.nlist)
