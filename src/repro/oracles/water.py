"""Flexible 3-site water — the "ab initio" oracle for the H2O system.

A smooth classical PES with all the couplings the DP water model must learn:

* intramolecular harmonic O-H bonds and H-O-H angle (flexible water);
* intermolecular O-O Lennard-Jones (SPC/E parameters);
* intermolecular damped-shifted-force (DSF/Wolf) electrostatics, which is
  strictly short-ranged with energy and force both going to zero at the
  cutoff — exactly what a neighbor-list pair style needs.

Atoms must be ordered O,H,H per molecule (the builders in
``repro.analysis.structures`` guarantee this) with matching ``mol_ids``;
intramolecular pairs are excluded from the nonbonded terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erfc

from repro.md.potential import Potential, PotentialResult, pair_virial
from repro.md.system import System

# Coulomb constant e^2/(4 pi eps0) in eV*Å.
COULOMB = 14.399645

# Type convention for water systems: 0 = O, 1 = H.
TYPE_O = 0
TYPE_H = 1


@dataclass
class FlexibleWater(Potential):
    """Flexible SPC/E-like water with DSF electrostatics."""

    # intramolecular
    k_bond: float = 22.0  # eV/Å^2
    r0: float = 1.0  # Å (SPC/E geometry)
    k_angle: float = 1.8  # eV/rad^2
    theta0: float = np.deg2rad(109.47)
    # intermolecular
    q_o: float = -0.8476
    q_h: float = 0.4238
    lj_epsilon: float = 0.006738  # eV (SPC/E O-O)
    lj_sigma: float = 3.166  # Å
    alpha: float = 0.3  # DSF damping, 1/Å
    cutoff: float = 6.0  # Å (the paper's water r_c)

    # ------------------------------------------------------------------ bonded

    def _bonded(self, system: System):
        """Energy/forces/virial of bonds and angles, from O,H,H ordering."""
        n = system.n_atoms
        if n % 3 != 0:
            raise ValueError("water system must have 3 atoms per molecule (O,H,H)")
        o_idx = np.arange(0, n, 3)
        h1_idx = o_idx + 1
        h2_idx = o_idx + 2
        if not (
            np.all(system.types[o_idx] == TYPE_O)
            and np.all(system.types[h1_idx] == TYPE_H)
            and np.all(system.types[h2_idx] == TYPE_H)
        ):
            raise ValueError("atoms must be ordered O,H,H per molecule")

        box = system.box
        pos = system.positions
        forces = np.zeros((n, 3))
        virial = np.zeros((3, 3))
        energy = 0.0

        # --- bonds (O-H1 and O-H2)
        for h_idx in (h1_idx, h2_idx):
            d = box.minimum_image(pos[h_idx] - pos[o_idx])  # O -> H
            r = np.sqrt(np.einsum("ij,ij->i", d, d))
            stretch = r - self.r0
            energy += float(self.k_bond * np.sum(stretch**2))
            # force on H = -dE/dr_H = -2k(r-r0) * r̂
            f_h = (-2.0 * self.k_bond * stretch / r)[:, None] * d
            np.add.at(forces, h_idx, f_h)
            np.add.at(forces, o_idx, -f_h)
            # force on the atom at displacement d from O is f_h:
            virial += -np.einsum("ni,nj->ij", d, f_h)

        # --- angles (H1-O-H2)
        u = box.minimum_image(pos[h1_idx] - pos[o_idx])
        v = box.minimum_image(pos[h2_idx] - pos[o_idx])
        ru = np.sqrt(np.einsum("ij,ij->i", u, u))
        rv = np.sqrt(np.einsum("ij,ij->i", v, v))
        cos_t = np.einsum("ij,ij->i", u, v) / (ru * rv)
        cos_t = np.clip(cos_t, -1.0 + 1e-12, 1.0 - 1e-12)
        theta = np.arccos(cos_t)
        sin_t = np.sqrt(1.0 - cos_t**2)
        energy += float(self.k_angle * np.sum((theta - self.theta0) ** 2))

        # dE/dθ, then dθ/du = -(1/sinθ) dcosθ/du
        de_dt = 2.0 * self.k_angle * (theta - self.theta0)
        dcos_du = v / (ru * rv)[:, None] - (cos_t / ru**2)[:, None] * u
        dcos_dv = u / (ru * rv)[:, None] - (cos_t / rv**2)[:, None] * v
        coeff = (-de_dt / sin_t)[:, None]
        f_h1 = -coeff * dcos_du  # force on H1 = -dE/dr_H1
        f_h2 = -coeff * dcos_dv
        np.add.at(forces, h1_idx, f_h1)
        np.add.at(forces, h2_idx, f_h2)
        np.add.at(forces, o_idx, -(f_h1 + f_h2))
        virial += -np.einsum("ni,nj->ij", u, f_h1) - np.einsum("ni,nj->ij", v, f_h2)

        return energy, forces, virial

    # --------------------------------------------------------------- nonbonded

    def _nonbonded(self, system: System, pair_i: np.ndarray, pair_j: np.ndarray):
        n = system.n_atoms
        forces = np.zeros((n, 3))
        if pair_i.size == 0:
            return 0.0, forces, np.zeros((3, 3))
        if system.mol_ids is None:
            raise ValueError("water system requires mol_ids for exclusions")

        # Exclude intramolecular pairs.
        keep = system.mol_ids[pair_i] != system.mol_ids[pair_j]
        pair_i, pair_j = pair_i[keep], pair_j[keep]

        disp = system.box.minimum_image(
            system.positions[pair_j] - system.positions[pair_i]
        )
        r2 = np.einsum("ij,ij->i", disp, disp)
        within = r2 <= self.cutoff * self.cutoff
        pair_i, pair_j, disp, r2 = pair_i[within], pair_j[within], disp[within], r2[within]
        r = np.sqrt(r2)

        # --- DSF Coulomb
        q = np.where(system.types == TYPE_O, self.q_o, self.q_h)
        qq = COULOMB * q[pair_i] * q[pair_j]
        a, rc = self.alpha, self.cutoff
        erfc_rc = erfc(a * rc)
        gauss_rc = 2.0 * a / np.sqrt(np.pi) * np.exp(-((a * rc) ** 2))
        f_shift = erfc_rc / rc**2 + gauss_rc / rc
        e_shift = erfc_rc / rc
        erfc_r = erfc(a * r)
        gauss_r = 2.0 * a / np.sqrt(np.pi) * np.exp(-((a * r) ** 2))
        e_coul = qq * (erfc_r / r - e_shift + f_shift * (r - rc))
        # -dE/dr
        f_coul = qq * (erfc_r / r2 + gauss_r / r - f_shift)

        # --- LJ on O-O pairs only
        is_oo = (system.types[pair_i] == TYPE_O) & (system.types[pair_j] == TYPE_O)
        inv = np.zeros_like(r)
        inv[is_oo] = (self.lj_sigma**2) / r2[is_oo]
        inv6 = inv**3
        inv12 = inv6**2
        src = (self.lj_sigma / rc) ** 2
        lj_shift = 4.0 * self.lj_epsilon * (src**6 - src**3)
        e_lj = np.where(is_oo, 4.0 * self.lj_epsilon * (inv12 - inv6) - lj_shift, 0.0)
        f_lj = np.where(is_oo, (48.0 * inv12 - 24.0 * inv6) * self.lj_epsilon / r, 0.0)

        energy = float(e_coul.sum() + e_lj.sum())
        # force on i from j: magnitude (f_coul+f_lj) along -r̂ ... sign:
        # -dE/dr > 0 means repulsive; force on i points opposite to disp.
        f_mag = f_coul + f_lj
        fij = -(f_mag / r)[:, None] * disp
        np.add.at(forces, pair_i, fij)
        np.add.at(forces, pair_j, -fij)
        virial = pair_virial(disp, fij)
        return energy, forces, virial

    # -------------------------------------------------------------------- API

    def compute(
        self, system: System, pair_i: np.ndarray, pair_j: np.ndarray
    ) -> PotentialResult:
        e_b, f_b, w_b = self._bonded(system)
        e_nb, f_nb, w_nb = self._nonbonded(system, pair_i, pair_j)
        return PotentialResult(e_b + e_nb, f_b + f_nb, w_b + w_nb)
