"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "repro.dp" in out
        assert "batched" in out  # the batched multi-frame engine is listed
        assert "repro.serving" in out
        assert "model zoo" in out

    def test_info_reports_out_kernel_coverage(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "out= kernel coverage" in out
        # Full coverage: every eligible op writes into arena buffers, so no
        # "missing" list is printed.
        assert "missing out= kernels" not in out

    def test_serve_bench_tiny(self, capsys):
        assert main([
            "serve-bench", "--tiny", "--clients", "2", "--requests", "2",
            "--max-batch", "2", "--max-wait-us", "2000",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 requests" in out
        assert "occupancy" in out
        assert "PASS" in out

    def test_serve_bench_rejects_unknown_zoo_name(self):
        with pytest.raises(KeyError):
            main(["serve-bench", "--model", "helium", "--clients", "1",
                  "--requests", "1"])

    def test_scaling_prints_tables(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Fig 5" in out
        assert "Fig 6" in out
        assert "86.2" in out or "85.9" in out  # the headline PFLOPS row

    def test_plan_report_writes_json_and_table(self, tmp_path, capsys):
        out_file = tmp_path / "plan-report.json"
        assert main(["plan-report", "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "schedule" in out
        assert "water/double/evaluate" in out
        entries = json.loads(out_file.read_text())
        assert len(entries) == 10
        for e in entries:
            assert e["ok"]
            assert e["arena_nbytes_colored"] < e["arena_nbytes_fifo"]
            assert sum(int(k) * v
                       for k, v in e["span_width_histogram"].items()) \
                == e["records"]

    def test_check_plans_report_flag(self, tmp_path, capsys):
        out_file = tmp_path / "check.json"
        assert main(["check-plans", "--report", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out or "ok" in out
        entries = json.loads(out_file.read_text())
        assert len(entries) == 10
        assert all(e["ok"] for e in entries)
        assert all("arena_bytes_saved" in e for e in entries)

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
