"""repro.parallel — simulated MPI and spatial domain decomposition.

The paper runs DeePMD-kit across 27,360 GPUs with one MPI rank per GPU,
LAMMPS-style spatial partitioning, ghost-region halo exchange, and
(I)allreduce for thermodynamic output (Sec 5.4).  This package reproduces the
*algorithm* in-process:

* :class:`repro.parallel.comm.SimComm` — rank-addressed message passing with
  byte/call accounting (the numbers the perfmodel consumes);
* :class:`repro.parallel.decomp.DomainDecomposition` — 3D spatial partition
  with geometric ghost-region construction;
* :class:`repro.parallel.driver.DistributedSimulation` — lockstep SPMD MD
  driver whose trajectories match the serial engine exactly; its rank
  frames feed the shared :class:`repro.dp.backend.ForceBackend` (one
  batched evaluation per shape bucket);
* :class:`repro.parallel.driver.DistributedEnsembleSimulation` — R replicas
  x P ranks in lockstep, all sub-domain frames fused into one backend call
  per step;
* :mod:`repro.parallel.staging` — the Sec 7.3 setup-time optimization
  (read-once + broadcast model loading, replicated structure build).
"""

from repro.parallel.comm import SimComm, CommStats
from repro.parallel.decomp import DomainDecomposition, RankDomain, GhostBatch
from repro.parallel.driver import (
    DistributedEnsembleSimulation,
    DistributedSimulation,
)
from repro.parallel.staging import baseline_setup, optimized_setup

__all__ = [
    "SimComm",
    "CommStats",
    "DomainDecomposition",
    "RankDomain",
    "GhostBatch",
    "DistributedSimulation",
    "DistributedEnsembleSimulation",
    "baseline_setup",
    "optimized_setup",
]
