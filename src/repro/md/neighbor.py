"""Neighbor lists: blocked O(N^2) and cell-list builds, with a Verlet skin.

The paper's MD protocol (Sec 6.1) uses a 2 Å buffer (skin) and rebuilds the
list every 50 steps; :class:`NeighborList` reproduces that policy and adds a
safety check that no atom moved more than half the skin between rebuilds.

Pairs are stored as a *half* list (i < j); :func:`full_pairs` doubles it for
per-atom consumers like the DP environment matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.md.box import Box
from repro.md.system import System

# Above this atom count the cell-list builder is preferred when geometry allows.
_BRUTE_FORCE_MAX = 2048
_BLOCK = 1024


def _brute_force_pairs(positions: np.ndarray, box: Box, cutoff: float, pbc: bool = True):
    """Blocked O(N^2) half pair list with minimum-image distances.

    With ``pbc=False`` raw displacements are used — the mode for
    domain-decomposed sub-systems where periodic images are explicit ghost
    atoms (see :mod:`repro.parallel.decomp`).
    """
    n = positions.shape[0]
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    for start in range(0, n, _BLOCK):
        stop = min(start + _BLOCK, n)
        disp = positions[None, start:stop, :] - positions[:, None, :]
        if pbc:
            disp = box.minimum_image(disp)
        r2 = np.einsum("ijk,ijk->ij", disp, disp)
        ii, jj = np.nonzero(r2 <= cutoff * cutoff)
        jj = jj + start
        keep = ii < jj
        out_i.append(ii[keep])
        out_j.append(jj[keep])
    return np.concatenate(out_i), np.concatenate(out_j)


def _cell_list_pairs(positions: np.ndarray, box: Box, cutoff: float):
    """Vectorized linked-cell half pair list.

    Atoms are bucketed into cells no smaller than the cutoff; for each of the
    27 relative cell offsets candidate pairs are generated with ragged-array
    index arithmetic, then filtered by distance and deduplicated to i < j.
    """
    lengths = box.lengths
    ncell = np.maximum((lengths / cutoff).astype(int), 1)
    if np.any(ncell < 3):
        # Too few cells for offset uniqueness — duplicates would appear.
        return _brute_force_pairs(positions, box, cutoff)
    cell_size = lengths / ncell
    pos = box.wrap(positions)
    idx3 = np.minimum((pos / cell_size).astype(np.int64), ncell - 1)
    ncx, ncy, ncz = (int(x) for x in ncell)
    n_cells = ncx * ncy * ncz
    cid = (idx3[:, 0] * ncy + idx3[:, 1]) * ncz + idx3[:, 2]

    order = np.argsort(cid, kind="stable")
    cid_sorted = cid[order]
    starts = np.searchsorted(cid_sorted, np.arange(n_cells + 1))
    counts = np.diff(starts)

    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    cut2 = cutoff * cutoff
    base = idx3  # (N, 3) cell coordinates per atom
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                nb = (base + np.array([dx, dy, dz])) % ncell
                nb_cid = (nb[:, 0] * ncy + nb[:, 1]) * ncz + nb[:, 2]
                cand_counts = counts[nb_cid]
                total = int(cand_counts.sum())
                if total == 0:
                    continue
                # Expand ragged candidate lists: for atom i with k candidates
                # in its neighbor cell, emit indices starts[nb_cid[i]] .. +k.
                ii = np.repeat(np.arange(positions.shape[0]), cand_counts)
                offsets = np.arange(total) - np.repeat(
                    np.cumsum(cand_counts) - cand_counts, cand_counts
                )
                jj = order[starts[nb_cid][ii] + offsets]
                keep = ii < jj
                ii, jj = ii[keep], jj[keep]
                if ii.size == 0:
                    continue
                disp = box.minimum_image(positions[jj] - positions[ii])
                r2 = np.einsum("ij,ij->i", disp, disp)
                keep = r2 <= cut2
                out_i.append(ii[keep])
                out_j.append(jj[keep])
    if not out_i:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    return np.concatenate(out_i), np.concatenate(out_j)


def neighbor_pairs(
    system: System, cutoff: float, method: str = "auto", pbc: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Half pair list (i, j with i < j) within ``cutoff``.

    ``pbc=False`` computes open-boundary pairs on raw coordinates (used for
    domain-decomposed sub-systems whose periodic images are explicit ghosts).
    """
    if not pbc:
        return _brute_force_pairs(system.positions, system.box, cutoff, pbc=False)
    system.box.check_cutoff(cutoff)
    if method == "brute" or (
        method == "auto" and system.n_atoms <= _BRUTE_FORCE_MAX
    ):
        return _brute_force_pairs(system.positions, system.box, cutoff)
    if method in ("cell", "auto"):
        return _cell_list_pairs(system.positions, system.box, cutoff)
    raise ValueError(f"unknown neighbor method '{method}'")


def full_pairs(pair_i: np.ndarray, pair_j: np.ndarray):
    """Expand a half list to a full (directed) list."""
    return (
        np.concatenate([pair_i, pair_j]),
        np.concatenate([pair_j, pair_i]),
    )


def fitted_neighbor_list(
    system: System, cutoff: float, skin: float = 2.0, rebuild_every: int = 50
) -> "NeighborList":
    """A NeighborList whose skin is shrunk to satisfy minimum-image in small
    boxes (the displacement check keeps correctness; rebuilds just happen
    more often)."""
    max_skin = 0.5 * system.box.lengths.min() - cutoff
    if max_skin <= 0:
        raise ValueError(
            f"box {system.box.lengths} too small for cutoff {cutoff}"
        )
    return NeighborList(
        cutoff=cutoff, skin=min(skin, max_skin), rebuild_every=rebuild_every
    )


@dataclass
class NeighborList:
    """Verlet neighbor list with skin buffer and rebuild policy.

    Parameters
    ----------
    cutoff:
        Interaction cutoff r_c in Å.
    skin:
        Buffer added to the build radius (paper: 2 Å).
    rebuild_every:
        Rebuild cadence in steps (paper: 50); ``maybe_rebuild`` also forces a
        rebuild whenever some atom moved more than skin/2 since the last
        build, so the list is *always* correct.
    method:
        ``auto`` | ``brute`` | ``cell``.
    """

    cutoff: float
    skin: float = 2.0
    rebuild_every: int = 50
    method: str = "auto"
    pair_i: np.ndarray = field(default=None, repr=False)
    pair_j: np.ndarray = field(default=None, repr=False)
    n_builds: int = 0
    _ref_positions: Optional[np.ndarray] = field(default=None, repr=False)
    _last_build_step: int = field(default=-(10**9), repr=False)

    @property
    def build_radius(self) -> float:
        return self.cutoff + self.skin

    def build(self, system: System, step: int = 0) -> None:
        self.pair_i, self.pair_j = neighbor_pairs(
            system, self.build_radius, self.method
        )
        self._ref_positions = system.positions.copy()
        self._ref_box = system.box.lengths.copy()
        self._last_build_step = step
        self.n_builds += 1

    def max_displacement(self, system: System) -> float:
        if self._ref_positions is None:
            return np.inf
        disp = system.box.minimum_image(system.positions - self._ref_positions)
        return float(np.sqrt((disp**2).sum(axis=1).max()))

    def needs_rebuild(self, system: System, step: int) -> bool:
        if self._ref_positions is None:
            return True
        if self._ref_positions.shape != system.positions.shape:
            return True
        if not np.array_equal(self._ref_box, system.box.lengths):
            return True
        if step - self._last_build_step >= self.rebuild_every:
            return True
        return self.max_displacement(system) > 0.5 * self.skin

    def maybe_rebuild(self, system: System, step: int) -> bool:
        if self.needs_rebuild(system, step):
            self.build(system, step)
            return True
        return False

    def pairs_within_cutoff(self, system: System):
        """Filter the skin-padded list down to the true cutoff (half list)."""
        disp = system.box.minimum_image(
            system.positions[self.pair_j] - system.positions[self.pair_i]
        )
        r2 = np.einsum("ij,ij->i", disp, disp)
        keep = r2 <= self.cutoff * self.cutoff
        return self.pair_i[keep], self.pair_j[keep]
