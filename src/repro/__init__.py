"""repro — a from-scratch Python reproduction of "Pushing the limit of
molecular dynamics with ab initio accuracy to 100 million atoms with machine
learning" (Jia et al., SC '20, Gordon Bell Prize).

Subpackages
-----------
``repro.tfmini``
    Graph tensor engine with higher-order autodiff — the TensorFlow
    substitute, including the paper's Sec 5.3 graph-fusion passes.
``repro.md``
    LAMMPS-like MD substrate: neighbor lists, integrators, thermostats,
    barostat, minimizer, deformation, thermo, I/O.
``repro.oracles``
    "Ab initio" stand-in potentials (EAM copper, flexible water) that
    label training data in place of DFT.
``repro.dp``
    The Deep Potential core: se_a descriptor, the Sec 5.2 neighbor layout
    and 64-bit codec, baseline vs optimized custom operators, mixed
    precision, training with force matching, DP-GEN active learning.
``repro.serving``
    Dynamic micro-batching inference service over the batched engine:
    bounded request queue, per-model coalescing scheduler, worker thread,
    client futures, deterministic server stats.
``repro.parallel``
    Simulated MPI + domain decomposition with ghost halo exchange; the
    distributed driver matches the serial engine bit-for-bit.
``repro.perfmodel``
    Calibrated analytic Summit model regenerating the paper's scaling
    tables and figures.
``repro.analysis``
    Structure builders, RDFs, common neighbor analysis, stress, dynamics.

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

__all__ = [
    "tfmini",
    "md",
    "oracles",
    "dp",
    "serving",
    "parallel",
    "perfmodel",
    "analysis",
    "units",
    "zoo",
]
