"""Unit tests for the periodic box and the System container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.box import Box
from repro.md.system import System
from repro.units import KB, MVV_TO_EV


class TestBox:
    def test_volume(self):
        assert Box([2.0, 3.0, 4.0]).volume == pytest.approx(24.0)

    def test_invalid_lengths_raise(self):
        with pytest.raises(ValueError):
            Box([1.0, -1.0, 1.0])

    def test_wrap_into_primary_cell(self):
        box = Box([10.0, 10.0, 10.0])
        wrapped = box.wrap(np.array([[11.0, -1.0, 25.0]]))
        np.testing.assert_allclose(wrapped, [[1.0, 9.0, 5.0]])

    def test_minimum_image_halves(self):
        box = Box([10.0, 10.0, 10.0])
        d = box.minimum_image(np.array([6.0, -6.0, 4.0]))
        np.testing.assert_allclose(d, [-4.0, 4.0, 4.0])

    def test_displacement_accounts_for_pbc(self):
        box = Box([10.0, 10.0, 10.0])
        d = box.displacement(np.array([9.5, 0, 0]), np.array([0.5, 0, 0]))
        np.testing.assert_allclose(d, [1.0, 0.0, 0.0])

    def test_check_cutoff(self):
        box = Box([10.0, 10.0, 10.0])
        box.check_cutoff(5.0)  # exactly half is allowed
        with pytest.raises(ValueError, match="minimum-image"):
            box.check_cutoff(5.1)

    def test_scaled_copy_is_independent(self):
        box = Box([1.0, 1.0, 1.0])
        big = box.scaled([2.0, 1.0, 1.0])
        assert big.lengths[0] == 2.0
        assert box.lengths[0] == 1.0

    @given(
        coords=st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=3, max_size=3
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_wrap_idempotent_and_in_range(self, coords):
        box = Box([7.3, 9.1, 11.7])
        p = np.array([coords])
        w = box.wrap(p)
        assert np.all(w >= 0) and np.all(w < box.lengths + 1e-12)
        np.testing.assert_allclose(box.wrap(w), w, atol=1e-12)

    @given(
        coords=st.lists(st.floats(-30, 30, allow_nan=False), min_size=3, max_size=3)
    )
    @settings(max_examples=50, deadline=None)
    def test_property_minimum_image_within_half_box(self, coords):
        box = Box([8.0, 10.0, 12.0])
        d = box.minimum_image(np.array(coords))
        assert np.all(np.abs(d) <= box.lengths / 2 + 1e-9)


class TestSystem:
    def _system(self, n=4):
        rng = np.random.default_rng(0)
        return System(
            box=Box([10.0, 10.0, 10.0]),
            positions=rng.uniform(0, 10, size=(n, 3)),
            types=np.zeros(n, dtype=np.int64),
            masses=np.array([12.0]),
        )

    def test_shapes_validated(self):
        with pytest.raises(ValueError):
            System(Box([1, 1, 1]), np.zeros((3, 2)), np.zeros(3, int), np.ones(1))

    def test_type_index_validated(self):
        with pytest.raises(ValueError, match="type index"):
            System(Box([1, 1, 1]), np.zeros((2, 3)), np.array([0, 5]), np.ones(1))

    def test_default_velocities_zero(self):
        sys = self._system()
        assert np.all(sys.velocities == 0)
        assert sys.kinetic_energy() == 0.0

    def test_kinetic_energy_formula(self):
        sys = self._system(2)
        sys.velocities = np.array([[1.0, 0, 0], [0, 2.0, 0]])
        expected = 0.5 * MVV_TO_EV * 12.0 * (1.0 + 4.0)
        assert sys.kinetic_energy() == pytest.approx(expected)

    def test_temperature_consistency(self):
        sys = self._system(100)
        rng = np.random.default_rng(1)
        sys.velocities = rng.normal(size=(100, 3))
        ke = sys.kinetic_energy()
        n_dof = 3 * 100 - 3
        assert sys.temperature() == pytest.approx(2 * ke / (n_dof * KB))

    def test_copy_is_deep(self):
        sys = self._system()
        cp = sys.copy()
        cp.positions[0, 0] += 1.0
        cp.box.lengths[0] = 99.0
        assert sys.positions[0, 0] != cp.positions[0, 0]
        assert sys.box.lengths[0] == 10.0

    def test_type_counts(self):
        sys = System(
            Box([5, 5, 5]),
            np.zeros((3, 3)),
            np.array([0, 1, 1]),
            np.array([16.0, 1.0]),
        )
        np.testing.assert_array_equal(sys.type_counts(), [1, 2])
