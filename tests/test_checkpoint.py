"""Exact-restart checkpointing (:mod:`repro.md.checkpoint`).

The contract: kill a run at any step boundary, rebuild the driver with
the same constructor arguments, restore, finish — and every observable
(positions, velocities, forces, thermo rows, evaluation counters) is
**bitwise identical** to the uninterrupted run.  Pinned here for the
serial :class:`~repro.md.simulation.Simulation` (NVE / Langevin /
Nosé-Hoover / deforming box), the replica
:class:`~repro.md.ensemble.EnsembleSimulation`, and the domain-decomposed
:class:`~repro.parallel.driver.DistributedSimulation`.

The file layer is tested adversarially: flipped payload bytes and
truncation are *refused* (checksum), mismatched drivers/dt/system are
refused (meta checks), and a failed write never destroys the previous
checkpoint (atomic replace).  The trigger layer (:class:`CheckpointWriter`)
turns a real SIGTERM — raised synchronously via ``signal.raise_signal`` so
the test is deterministic — into save-then-interrupt at the next step
boundary.
"""

import os
import signal

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp.model import DeepPot, DPConfig
from repro.dp.pair import DeepPotPair
from repro.md import boltzmann_velocities
from repro.md.checkpoint import (
    MAGIC,
    CheckpointError,
    CheckpointInterrupt,
    CheckpointWriter,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.md.ensemble import EnsembleSimulation
from repro.md.integrators import Langevin, NoseHoover
from repro.md.neighbor import fitted_neighbor_list
from repro.md.simulation import Simulation
from repro.parallel import DistributedSimulation


@pytest.fixture(scope="module")
def model():
    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))


def make_sim(model, integrator=None, seed=1, thermo_every=4):
    system = water_box((2, 2, 2), seed=0)
    boltzmann_velocities(system, 300.0, seed=seed)
    kwargs = {} if integrator is None else {"integrator": integrator}
    return Simulation(
        system,
        DeepPotPair(model),
        dt=5e-4,
        neighbor=fitted_neighbor_list(system, model.config.rcut),
        thermo_every=thermo_every,
        **kwargs,
    )


def assert_sim_bitwise(a: Simulation, b: Simulation):
    assert a.step_count == b.step_count
    assert a.force_evaluations == b.force_evaluations
    assert np.array_equal(a.system.positions, b.system.positions)
    assert np.array_equal(a.system.velocities, b.system.velocities)
    assert a.last_result().energy == b.last_result().energy
    assert np.array_equal(a.last_result().forces, b.last_result().forces)
    assert [r.as_tuple() for r in a.thermo.rows] == [
        r.as_tuple() for r in b.thermo.rows
    ]


def roundtrip(sim, tmp_path, name="ckpt.repro"):
    path = save_checkpoint(sim, tmp_path / name)
    return path


# ---------------------------------------------------------------------------
# serial Simulation: bitwise resume
# ---------------------------------------------------------------------------


class TestSimulationResume:
    @pytest.mark.parametrize(
        "integrator",
        [None, Langevin(temperature=300.0, seed=7),
         NoseHoover(temperature=300.0)],
        ids=["nve", "langevin", "nosehoover"],
    )
    def test_resume_is_bitwise(self, model, tmp_path, integrator):
        """The headline contract, for every integrator with hidden state
        (Langevin: RNG stream; Nosé-Hoover: friction xi)."""
        total, cut = 14, 5
        ref = make_sim(model, integrator)
        ref.run(total)

        # type(integrator) reconstructs with the same ctor args.
        fresh_integ = (
            None if integrator is None
            else Langevin(temperature=300.0, seed=7)
            if isinstance(integrator, Langevin)
            else NoseHoover(temperature=300.0)
        )
        victim = make_sim(model, fresh_integ)
        victim.run(cut)
        path = roundtrip(victim, tmp_path)

        resumed_integ = (
            None if integrator is None
            else Langevin(temperature=300.0, seed=99)  # restore overwrites
            if isinstance(integrator, Langevin)
            else NoseHoover(temperature=300.0)
        )
        resumed = make_sim(model, resumed_integ, seed=13)  # velocities too
        restore_checkpoint(resumed, path)
        resumed.run(total - cut)
        assert_sim_bitwise(resumed, ref)

    def test_resume_preserves_neighbor_rebuild_schedule(self, model,
                                                        tmp_path):
        """force_evaluations and n_builds count identically across the
        cut — the restored ``_result`` must suppress re-initialization."""
        total, cut = 12, 7
        ref = make_sim(model)
        ref.run(total)
        victim = make_sim(model)
        victim.run(cut)
        path = roundtrip(victim, tmp_path)
        resumed = restore_checkpoint(make_sim(model), path)
        assert resumed.force_evaluations == victim.force_evaluations
        resumed.run(total - cut)
        assert resumed.neighbor.n_builds == ref.neighbor.n_builds
        assert resumed.force_evaluations == ref.force_evaluations

    def test_resume_at_thermo_boundary_no_duplicate_row(self, model,
                                                        tmp_path):
        """Cutting exactly on a thermo step must not duplicate the row:
        every ``run()`` re-records its starting step and the log
        deduplicates it."""
        total, cut = 12, 8  # thermo_every=4 -> cut lands on a logged step
        ref = make_sim(model)
        ref.run(total)
        victim = make_sim(model)
        victim.run(cut)
        path = roundtrip(victim, tmp_path)
        resumed = restore_checkpoint(make_sim(model), path)
        resumed.run(total - cut)
        steps = [r.step for r in resumed.thermo.rows]
        assert steps == sorted(set(steps))  # strictly increasing, no dupes
        assert_sim_bitwise(resumed, ref)

    def test_split_run_equals_single_run_without_checkpoint(self, model):
        """The thermo dedupe guard alone makes back-to-back ``run()`` calls
        equivalent to one long run (a pre-existing wart this PR fixes)."""
        a = make_sim(model)
        a.run(12)
        b = make_sim(model)
        b.run(5)
        b.run(7)
        assert_sim_bitwise(a, b)


# ---------------------------------------------------------------------------
# ensemble + distributed drivers
# ---------------------------------------------------------------------------


class TestEnsembleResume:
    def test_resume_is_bitwise(self, model, tmp_path):
        total, cut = 10, 4

        def make():
            return EnsembleSimulation.from_system(
                water_box((2, 2, 2), seed=0), model, n_replicas=3,
                temperature=(280.0, 320.0, 360.0), seed=5, dt=5e-4,
                thermo_every=4,
            )

        ref = make()
        ref.run(total)
        victim = make()
        victim.run(cut)
        path = save_checkpoint(victim, tmp_path / "ens.repro")
        resumed = restore_checkpoint(make(), path)
        resumed.run(total - cut)
        assert resumed.step_count == ref.step_count
        assert resumed.force_evaluations == ref.force_evaluations
        for k in range(3):
            assert np.array_equal(
                resumed.systems[k].positions, ref.systems[k].positions
            )
            assert np.array_equal(
                resumed.systems[k].velocities, ref.systems[k].velocities
            )
            assert [r.as_tuple() for r in resumed.thermo[k].rows] == [
                r.as_tuple() for r in ref.thermo[k].rows
            ]

    def test_replica_count_mismatch_refused(self, model, tmp_path):
        ens = EnsembleSimulation.from_system(
            water_box((2, 2, 2), seed=0), model, n_replicas=2, dt=5e-4
        )
        ens.run(2)
        path = save_checkpoint(ens, tmp_path / "ens2.repro")
        other = EnsembleSimulation.from_system(
            water_box((2, 2, 2), seed=0), model, n_replicas=3, dt=5e-4
        )
        with pytest.raises(CheckpointError, match="replica count"):
            restore_checkpoint(other, path)


class TestDistributedResume:
    def test_resume_is_bitwise(self, model, tmp_path):
        total, cut = 10, 4

        def make():
            system = water_box((3, 3, 3), seed=2)
            boltzmann_velocities(system, 300.0, seed=3)
            return DistributedSimulation(
                system, model, grid=(2, 1, 1), dt=5e-4, skin=1.0,
                thermo_every=4,
            )

        ref = make()
        ref.run(total)
        victim = make()
        victim.run(cut)
        path = save_checkpoint(victim, tmp_path / "dist.repro")
        resumed = restore_checkpoint(make(), path)
        resumed.run(total - cut)
        assert resumed.step_count == ref.step_count
        got, want = resumed.current_system(), ref.current_system()
        assert np.array_equal(got.positions, want.positions)
        assert np.array_equal(got.velocities, want.velocities)
        assert np.array_equal(resumed.forces_now(), ref.forces_now())
        assert [r.as_tuple() for r in resumed.thermo] == [
            r.as_tuple() for r in ref.thermo
        ]

    def test_grid_mismatch_refused(self, model, tmp_path):
        system = water_box((3, 3, 3), seed=2)
        sim = DistributedSimulation(system, model, grid=(2, 1, 1), dt=5e-4,
                                    skin=1.0)
        sim.run(2)
        path = save_checkpoint(sim, tmp_path / "grid.repro")
        other = DistributedSimulation(
            water_box((3, 3, 3), seed=2), model, grid=(1, 2, 1), dt=5e-4,
            skin=1.0,
        )
        with pytest.raises(CheckpointError, match="grid mismatch"):
            restore_checkpoint(other, path)


# ---------------------------------------------------------------------------
# file layer: refusals + atomicity
# ---------------------------------------------------------------------------


class TestFileLayer:
    def test_corrupted_payload_refused(self, model, tmp_path):
        sim = make_sim(model)
        sim.run(3)
        path = roundtrip(sim, tmp_path)
        data = bytearray(path.read_bytes())
        data[-7] ^= 0x01  # flip one payload bit
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_checkpoint(path)

    def test_truncated_file_refused(self, model, tmp_path):
        sim = make_sim(model)
        sim.run(3)
        path = roundtrip(sim, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_checkpoint(path)

    def test_bad_magic_refused(self, tmp_path):
        path = tmp_path / "junk.repro"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(path)

    def test_driver_kind_mismatch_refused(self, model, tmp_path):
        sim = make_sim(model)
        sim.run(2)
        path = roundtrip(sim, tmp_path)
        ens = EnsembleSimulation.from_system(
            water_box((2, 2, 2), seed=0), model, n_replicas=2, dt=5e-4
        )
        with pytest.raises(CheckpointError, match="driver is a"):
            restore_checkpoint(ens, path)

    def test_dt_mismatch_refused(self, model, tmp_path):
        sim = make_sim(model)
        sim.run(2)
        path = roundtrip(sim, tmp_path)
        system = water_box((2, 2, 2), seed=0)
        other = Simulation(
            system, DeepPotPair(model), dt=1e-3,
            neighbor=fitted_neighbor_list(system, model.config.rcut),
        )
        with pytest.raises(CheckpointError, match="dt mismatch"):
            restore_checkpoint(other, path)

    def test_integrator_kind_mismatch_refused(self, model, tmp_path):
        sim = make_sim(model, Langevin(temperature=300.0, seed=7))
        sim.run(2)
        path = roundtrip(sim, tmp_path)
        other = make_sim(model, NoseHoover(temperature=300.0))
        with pytest.raises(CheckpointError, match="integrator mismatch"):
            restore_checkpoint(other, path)

    def test_different_system_refused(self, model, tmp_path):
        sim = make_sim(model)
        sim.run(2)
        path = roundtrip(sim, tmp_path)
        bigger = water_box((3, 3, 3), seed=0)
        other = Simulation(
            bigger, DeepPotPair(model), dt=5e-4,
            neighbor=fitted_neighbor_list(bigger, model.config.rcut),
        )
        with pytest.raises(CheckpointError, match="different system"):
            restore_checkpoint(other, path)

    def test_save_overwrites_atomically(self, model, tmp_path):
        """A newer save replaces the file in one step; no temp litter."""
        sim = make_sim(model)
        sim.run(2)
        path = roundtrip(sim, tmp_path)
        first = path.read_bytes()
        sim.run(2)
        save_checkpoint(sim, path)
        second = path.read_bytes()
        assert first != second
        assert second.startswith(MAGIC)
        assert [p for p in os.listdir(tmp_path) if "tmp" in p] == []

    def test_save_is_deterministic_bytes(self, model, tmp_path):
        """Same state => same file bytes (no timestamps — the reason this
        is not an ``np.savez`` zip)."""
        sim = make_sim(model)
        sim.run(3)
        a = roundtrip(sim, tmp_path, "a.repro").read_bytes()
        b = roundtrip(sim, tmp_path, "b.repro").read_bytes()
        assert a == b


# ---------------------------------------------------------------------------
# triggers: periodic + SIGTERM
# ---------------------------------------------------------------------------


class TestCheckpointWriter:
    def test_periodic_saves(self, model, tmp_path):
        sim = make_sim(model)
        writer = CheckpointWriter(sim, tmp_path, every=5)
        sim.run(12, callback=writer)
        assert writer.saves == 2  # steps 5 and 10
        assert writer.path.exists()
        # The file on disk is the step-10 state, not the step-12 state.
        resumed = restore_checkpoint(make_sim(model), writer.path)
        assert resumed.step_count == 10

    def test_sigterm_saves_and_interrupts(self, model, tmp_path):
        """A real SIGTERM (raised synchronously for determinism) checkpoints
        at the NEXT step boundary and interrupts; resume finishes bitwise."""
        total, kill_at = 12, 7
        ref = make_sim(model, Langevin(temperature=300.0, seed=7))
        ref.run(total)

        victim = make_sim(model, Langevin(temperature=300.0, seed=7))
        writer = CheckpointWriter(victim, tmp_path).install_sigterm()

        def cb(s):
            if s.step_count == kill_at:
                signal.raise_signal(signal.SIGTERM)
            writer(s)

        try:
            with pytest.raises(CheckpointInterrupt):
                victim.run(total, callback=cb)
        finally:
            writer.uninstall_sigterm()
        assert victim.step_count == kill_at  # stopped at a step boundary
        assert writer.signaled and writer.saves == 1

        resumed = make_sim(model, Langevin(temperature=300.0, seed=7))
        restore_checkpoint(resumed, writer.path)
        resumed.run(total - kill_at)
        assert_sim_bitwise(resumed, ref)

    def test_uninstall_restores_previous_handler(self, model, tmp_path):
        before = signal.getsignal(signal.SIGTERM)
        writer = CheckpointWriter(make_sim(model), tmp_path).install_sigterm()
        assert signal.getsignal(signal.SIGTERM) == writer._on_signal
        writer.uninstall_sigterm()
        assert signal.getsignal(signal.SIGTERM) == before

    def test_negative_every_rejected(self, model, tmp_path):
        with pytest.raises(ValueError, match="every"):
            CheckpointWriter(make_sim(model), tmp_path, every=-1)
