"""``pair_style deepmd`` — the adapter that plugs DeepPot into repro.md.

Mirrors the paper's Sec 5.4 design: LAMMPS (repro.md) owns the atoms and the
spatial bookkeeping; the DP model replaces the EFF force computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.model import DeepPot
from repro.md.potential import Potential, PotentialResult
from repro.md.system import System


@dataclass
class DeepPotPair(Potential):
    """Potential interface around a DeepPot model."""

    model: DeepPot
    backend: str = "optimized"

    def __post_init__(self):
        self.cutoff = self.model.config.rcut

    def compute(
        self, system: System, pair_i: np.ndarray, pair_j: np.ndarray
    ) -> PotentialResult:
        return self.model.evaluate(system, pair_i, pair_j, backend=self.backend)
