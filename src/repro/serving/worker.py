"""The inference server: a pool of worker threads driving batched evaluations.

Architecture (the ROADMAP's "serving depth" rung)::

    clients                  queue                    worker pool
    ------- submit() --> [bounded FIFO, ---- pop_batch(only=model) --> worker "a"
    futures <----------   per-key deques \\-- pop_batch(only=model) --> worker "b"
                          + key-aware wakeups]        |  each: evaluate_batch
                                                      |  on its OWN engine,
                          results scattered back <----+  scatter to futures

Many client threads submit frames; each worker thread coalesces its share
into per-model micro-batches and runs each batch through a persistent
:class:`~repro.dp.batch.BatchedEvaluator` — whose graph executes as a
compiled execution plan (:mod:`repro.tfmini.plan`), so the steady-state
serving loop performs no graph traversal and no per-op output allocation.

Two pool shapes:

``workers="per-model"`` (default)
    One worker thread per registered model, parked on a key-aware queue
    condition so it only ever wakes for its own model's requests.  Each
    worker owns its model's registry engine exclusively; two-model traffic
    overlaps plan execution inside numpy's GIL-releasing BLAS/ufunc kernels
    instead of serializing behind one loop.  Per-model FIFO dispatch *and*
    completion order are preserved (one worker per model).

``workers=N``
    A shared pool of N workers, each taking whatever model heads the queue.
    A worker lazily acquires its **own** engine per model it serves (the
    registry engine is claimed by the first worker to need it; later
    workers build fresh ones), so N workers can run the same model's
    batches concurrently.  Per-model dispatch stays FIFO, but completion
    order across two in-flight batches of one model is not guaranteed.

**One-engine-one-thread invariant**: an engine's scratch pool and its
plan's buffer arenas are mutable run state, so an engine is only ever
*executed* by the single worker that owns it — never shared across threads
(``BatchedEvaluator`` guards against concurrent entry; see
:mod:`repro.dp.batch`).  Client threads touch only the locked queue, and
``executor_stats()`` reads are thread-safe counter snapshots.

Numerical contract: every request's result is **bitwise identical** to a
direct ``DeepPot.evaluate`` of the same frame, no matter which other
requests it shared a batch with or which worker interleaving executed it
(the engine's per-frame independence guarantee; asserted under genuinely
concurrent two-model load in ``tests/test_serving.py``).

Avoid calling ``model.evaluate`` on a model from another thread *while* the
server is processing requests for it: the model's default R=1 engine and
the server's engines hold separate scratch, but the profiling counters of a
shared session are not synchronized.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro.serving.metrics import ServerStats
from repro.serving.queue import (
    InferenceRequest,
    QueueFull,
    QuotaExceeded,
    RequestQueue,
    ResultCache,
    ServerClosed,
    WorkerCrashed,
    frame_content_key,
)
from repro.serving.scheduler import MicroBatchScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future

    from repro.dp.model import DeepPot
    from repro.md.system import System
    from repro.serving.faults import FaultPlan


class _Worker:
    """One pool member: a thread plus the engines that thread owns.

    ``only`` is the model name a per-model worker is bound to (``None`` for
    shared-pool workers).  ``engines`` holds the evaluators this worker has
    acquired — the structural form of the one-engine-one-thread invariant:
    nothing in here is ever executed by another thread.

    ``inflight`` is the batch currently being evaluated (set before the
    engine runs, cleared after the futures resolve) — the supervisor reads
    it when the thread dies mid-batch, so crash-stranded requests can be
    failed exactly once.  ``respawns`` counts how many predecessors this
    worker slot has burned (the crash-loop bound).
    """

    __slots__ = ("wid", "only", "thread", "engines", "inflight", "respawns")

    def __init__(self, wid: str, only: Optional[str]):
        self.wid = wid
        self.only = only
        self.thread: Optional[threading.Thread] = None
        self.engines: dict[str, object] = {}
        self.inflight: Optional[list[InferenceRequest]] = None
        self.respawns = 0


class InferenceServer:
    """Multi-client, multi-model DP inference with dynamic micro-batching.

    Parameters
    ----------
    models:
        Optional mapping ``{name: DeepPot}`` to register at construction.
    max_batch, max_wait_us:
        Coalescing policy (see :class:`~repro.serving.scheduler.
        MicroBatchScheduler`).
    max_queue:
        Bounded queue depth — the backpressure limit (``<= 0``: unbounded).
    workers:
        ``"per-model"`` (default): one worker thread per registered model,
        key-aware wakeups, strict per-model FIFO.  An integer ``N``: a
        shared pool of N workers drawing on the whole queue (``workers=1``
        reproduces the original single-worker loop exactly).
    autostart:
        Start the worker pool immediately.  Benchmarks pass ``False`` (or
        use :meth:`paused`) to pre-load the queue and get a deterministic
        batch count: N pre-queued requests execute in exactly
        ``ceil(N / max_batch)`` batches per model.
    backend:
        Environment-operator backend forwarded to ``evaluate_batch``.
    max_per_client:
        Per-client admission quota: at most this many queued requests per
        ``client_id`` (0 = unlimited; submissions without a client id are
        exempt).  Excess submissions raise :class:`~repro.serving.queue.
        QuotaExceeded` instead of starving other clients.
    cache_size:
        Result-cache capacity in entries (0 = off, the default — caching
        changes batch counters, so it is opt-in).  Repeated frames (an
        idle MD client resubmitting an unchanged step, an active-learning
        screen re-harvesting) are served straight from the cache, bitwise
        identical to a fresh evaluation.
    faults:
        Optional :class:`~repro.serving.faults.FaultPlan` — deterministic
        fault injection for the worker loop (crashes, transient failures)
        and the admission path.  ``None`` (the default) injects nothing.
    max_respawns:
        Crash-loop bound: how many times one worker slot may be respawned
        after its thread dies mid-batch.  Past the bound the slot stays
        down (its model's requests wait until shutdown cancels them) —
        a deterministically poisoned model must not burn CPU forever.
    plan_schedule, plan_span_workers, plan_backend:
        Plan-compiler knobs applied to every engine this server creates
        (see :class:`~repro.tfmini.plan.ExecutionPlan`): the tape-
        scheduling pass, the fork/join span thread count, and the kernel
        backend (``None`` defers to ``REPRO_PLAN_BACKEND``, then
        ``"numpy"``).  Schedules, span counts, and the bitwise backends
        are all bitwise identical; crash respawns and shared-pool claims
        inherit the same knobs.
    """

    def __init__(
        self,
        models: Optional[dict[str, "DeepPot"]] = None,
        *,
        max_batch: int = 8,
        max_wait_us: float = 1000.0,
        max_queue: int = 64,
        workers: Union[int, str] = "per-model",
        autostart: bool = True,
        backend: str = "optimized",
        max_per_client: int = 0,
        cache_size: int = 0,
        faults: Optional["FaultPlan"] = None,
        max_respawns: int = 8,
        plan_schedule: str = "liveness",
        plan_span_workers: int = 1,
        plan_backend: Optional[str] = None,
    ):
        from repro.dp.batch import BatchedEvaluator

        if workers != "per-model":
            try:
                workers = int(workers)
            except (TypeError, ValueError):
                raise ValueError(
                    f"workers must be 'per-model' or a positive integer, "
                    f"got {workers!r}"
                ) from None
            if workers < 1:
                raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._engine_cls = BatchedEvaluator
        # Plan-compiler knobs forwarded to every engine this server creates
        # (registration, shared-pool claims, crash respawns) — the tape
        # schedule, fork/join span thread count, and kernel backend.
        # Bitwise identical for every combination of schedule/span/bitwise
        # backend; defaults match BatchedEvaluator's.
        self.plan_schedule = plan_schedule
        self.plan_span_workers = plan_span_workers
        self.plan_backend = plan_backend
        self._models: dict[str, "DeepPot"] = {}
        self._engines: dict[str, object] = {}
        self.backend = backend
        self.faults = faults
        self.max_respawns = int(max_respawns)
        self.stats = ServerStats()
        self.queue = RequestQueue(
            maxsize=max_queue,
            on_drop=self.stats.record_cancelled,
            max_per_client=max_per_client,
            faults=faults,
        )
        self.cache = ResultCache(max_entries=cache_size, stats=self.stats)
        self.scheduler = MicroBatchScheduler(
            self.queue, max_batch=max_batch, max_wait_us=max_wait_us
        )
        self._gate = threading.Event()  # set = workers may take batches
        self._pool_lock = threading.Lock()  # guards _workers mutation
        self._workers: list[_Worker] = []
        self._started = False  # start() called (even with zero models yet)
        self._engine_lock = threading.Lock()
        self._claimable: dict[str, object] = {}  # registry engines, unclaimed
        if models:
            for name, model in models.items():
                self.register(name, model)
        if autostart:
            self.start()

    # ------------------------------------------------------------- registry

    def _new_engine(self, model: "DeepPot"):
        """Build an engine with this server's plan-compiler knobs applied.

        The single construction seam for all three creation paths
        (registration, shared-pool claims, crash respawns), so respawned
        engines never silently fall back to default knobs.
        """
        return self._engine_cls(
            model,
            plan_schedule=self.plan_schedule,
            plan_span_workers=self.plan_span_workers,
            plan_backend=self.plan_backend,
        )

    def register(self, name: str, model: "DeepPot") -> "InferenceServer":
        """Host ``model`` under ``name`` with its own persistent evaluator.

        The evaluator's compiled execution plan is built here (one graph
        topo-sort, at registration) so the first served request only pays
        the per-batch-shape arena warm-up, never graph compilation.  On a
        running per-model pool, registration also spawns the new model's
        worker.
        """
        if name in self._models:
            raise ValueError(f"model {name!r} already registered")
        self._models[name] = model
        engine = self._new_engine(model)
        engine.plan  # compile now, off the serving hot path
        self._engines[name] = engine
        if self.workers != "per-model":
            # Shared pools hand registry engines to the first worker that
            # needs them; per-model workers read the registry directly.
            with self._engine_lock:
                self._claimable[name] = engine
        # A started per-model pool grows a worker per registration — even
        # when this is the FIRST model (zero workers alive, so `running`
        # alone cannot stand in for "started").
        if (
            self.workers == "per-model"
            and self._started
            and not self.queue.closed
        ):
            self._spawn_worker(name, only=name)
        return self

    def model_names(self) -> list[str]:
        return sorted(self._models)

    def executor_stats(self) -> dict[str, dict]:
        """Per-engine compiled-plan counters (deterministic, lock-free
        snapshots — safe to call from a monitoring thread mid-traffic).

        Per-model pools report one entry per model (that model's worker
        owns exactly one engine).  Shared pools report one entry per
        *acquired* engine, keyed ``model@worker`` (plus any still-unclaimed
        registry engine under its bare model name).  For each engine:
        ``topo_sorts`` (1 per engine lifetime), ``runs``, ``arena_builds``
        (one per distinct batch shape seen), ``arena_allocs``, the colored
        arena footprint (``arena_nbytes``) next to the FIFO baseline it
        replaced (``arena_nbytes_fifo``), the scheduled tape's span
        structure (``spans``, ``max_span_width``, ``span_batches``), and
        the kernel-backend fusion counters (``backend``, ``records_fused``,
        ``fused_tiles_run`` — zero on the per-record numpy backend) — a
        steady workload stops growing everything except ``runs``,
        ``fused_tiles_run`` (and ``span_batches`` when
        ``plan_span_workers > 1``).
        """
        out: dict[str, dict] = {}

        def add(key: str, engine) -> None:
            plan = engine.plan
            out[key] = {
                "topo_sorts": plan.stats.topo_sorts,
                "runs": plan.stats.runs,
                "arena_builds": plan.stats.arena_builds,
                "arena_allocs": plan.alloc_count(),
                "arena_nbytes": plan.arena_nbytes(),
                "arena_nbytes_fifo": plan.fifo_arena_nbytes(),
                "spans": plan.stats.spans,
                "max_span_width": plan.stats.max_span_width,
                "span_batches": plan.stats.span_batches,
                "backend": plan.backend,
                "records_fused": plan.records_fused(),
                "fused_tiles_run": plan.fused_tiles_run(),
            }

        if self.workers == "per-model":
            for name, engine in list(self._engines.items()):
                add(name, engine)
            return out
        claimed: set[int] = set()
        for w in list(self._workers):
            for name, engine in list(w.engines.items()):
                add(f"{name}@{w.wid}", engine)
                claimed.add(id(engine))
        for name, engine in list(self._engines.items()):
            if id(engine) not in claimed:
                add(name, engine)
        return out

    def model(self, name: str) -> "DeepPot":
        return self._models[name]

    def invalidate_cache(self, model: Optional[str] = None) -> int:
        """Drop cached results (one model's, or all) — the hot-swap hook:
        call this whenever a model's weights change so stale results can
        never be served.  Returns the number of entries dropped."""
        return self.cache.invalidate(model)

    @classmethod
    def from_zoo(
        cls, names: Sequence[str] = ("water",), cache_dir: Optional[str] = None,
        **kwargs,
    ) -> "InferenceServer":
        """A server hosting pre-trained zoo models.

        Names are ``water`` / ``copper``, optionally suffixed with the
        network precision: ``water-double`` (default) or ``water-single``
        (the fp32-network mixed-precision engine; ``-mixed`` is accepted as
        an alias).  Models are trained on first use and cached by the zoo.
        """
        from repro import zoo

        builders = {"water": zoo.get_water_model, "copper": zoo.get_copper_model}
        # Resolve (and validate) every model BEFORE constructing the server:
        # with autostart a bad name would otherwise leak parked worker
        # threads attached to a server nobody holds a reference to.
        models: dict[str, "DeepPot"] = {}
        for name in names:
            base, _, prec = name.partition("-")
            if base not in builders:
                raise KeyError(
                    f"unknown zoo model {name!r} (expected water/copper"
                    f"[-double|-single])"
                )
            prec = {"": "double", "double": "double",
                    "single": "mixed", "mixed": "mixed"}.get(prec)
            if prec is None:
                raise KeyError(f"unknown precision suffix in {name!r}")
            models[name] = builders[base](precision=prec, cache_dir=cache_dir)
        return cls(models, **kwargs)

    # ------------------------------------------------------------ submission

    def submit(
        self,
        model: str,
        system: "System",
        pair_i: Optional[np.ndarray] = None,
        pair_j: Optional[np.ndarray] = None,
        block: bool = True,
        timeout: Optional[float] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
        client_id: Optional[str] = None,
        nloc: Optional[int] = None,
        pbc: bool = True,
    ) -> "Future":
        """Queue one frame for evaluation; returns its future.

        The neighbor pair list is computed here (caller's thread) when not
        supplied, keeping the worker threads free for graph execution.
        ``priority`` (bigger dispatches sooner) and ``deadline`` (seconds
        from now; EDF within a priority class) order the request among its
        model's pending set; ``client_id`` attributes it to one submitter
        for quota accounting; ``nloc``/``pbc`` carry the domain-
        decomposition frame mode (see :class:`~repro.dp.backend.
        ForceFrame`).  When the result cache is on and holds this exact
        frame, the returned future is already resolved — bitwise identical
        to a fresh evaluation — and nothing enters the queue.

        Raises :class:`KeyError` for an unregistered model,
        :class:`QueueFull` under backpressure, :class:`~repro.serving.
        queue.QuotaExceeded` over quota, :class:`ServerClosed` after
        shutdown.
        """
        if model not in self._models:
            raise KeyError(
                f"model {model!r} not registered (have {self.model_names()})"
            )
        if pair_i is None or pair_j is None:
            from repro.md.neighbor import neighbor_pairs

            pair_i, pair_j = neighbor_pairs(
                system, self._models[model].config.rcut
            )
        request = InferenceRequest(
            model=model,
            system=system,
            pair_i=pair_i,
            pair_j=pair_j,
            priority=int(priority),
            deadline=(
                None if deadline is None else time.perf_counter() + deadline
            ),
            client_id=client_id,
            nloc=nloc,
            pbc=pbc,
        )
        # Serving metadata for callers/tests — attached BEFORE the request
        # becomes visible to any worker: a worker may resolve the future
        # (and fire done-callbacks that read ``future.request``) the instant
        # the put returns.
        request.future.request = request
        # Count the submission BEFORE the request becomes visible to the
        # workers, so requests_completed can never transiently exceed
        # requests_submitted; a refused put takes the count back.
        self.stats.record_submit()
        if self.cache.enabled:
            key = frame_content_key(model, system, pair_i, pair_j, nloc, pbc)
            cached = self.cache.get(key)  # counts the hit/miss
            if cached is not None:
                # Served without touching the queue: the hit was recorded
                # as a completion, so conservation holds with zero batches.
                request.future.set_result(cached)
                return request.future
            request.cache_key = key
        try:
            self.queue.put(request, block=block, timeout=timeout)
        except QuotaExceeded:
            self.stats.undo_submit()
            self.stats.record_quota_reject()
            raise
        except QueueFull:
            self.stats.undo_submit()
            self.stats.record_reject()
            raise
        except ServerClosed:
            self.stats.undo_submit()
            raise
        return request.future

    def client(self, model: Optional[str] = None):
        """An :class:`~repro.serving.client.InferenceClient` bound to
        ``model`` (defaults to the sole registered model)."""
        from repro.serving.client import InferenceClient

        if model is None:
            if len(self._models) != 1:
                raise ValueError(
                    f"server hosts {self.model_names()}; pick one explicitly"
                )
            model = next(iter(self._models))
        return InferenceClient(self, model)

    # ------------------------------------------------------------- lifecycle

    @property
    def running(self) -> bool:
        return any(
            w.thread is not None and w.thread.is_alive()
            for w in list(self._workers)
        )

    def worker_ids(self) -> list[str]:
        """Ids of the pool's workers (model names in per-model mode)."""
        return [w.wid for w in list(self._workers)]

    def _spawn_worker(
        self, wid: str, only: Optional[str], respawns: int = 0
    ) -> _Worker:
        worker = _Worker(wid, only)
        worker.respawns = respawns
        worker.thread = threading.Thread(
            target=self._supervised_loop,
            args=(worker,),
            name=f"repro-serving-{wid}",
            daemon=True,
        )
        with self._pool_lock:
            # Append + start are atomic w.r.t. stop()'s snapshot: a worker
            # visible in the pool always has a started (joinable) thread.
            self._workers.append(worker)
            worker.thread.start()
        return worker

    def start(self) -> "InferenceServer":
        if self.running:
            return self
        if self.queue.closed:
            raise ServerClosed("server was stopped; build a new one")
        self._gate.set()
        self._started = True
        if self.workers == "per-model":
            spawned = {
                w.wid for w in list(self._workers) if w.thread.is_alive()
            }
            for name in self._models:
                if name not in spawned:
                    self._spawn_worker(name, only=name)
        else:
            for i in range(self.workers):
                self._spawn_worker(f"pool-{i}", only=None)
        return self

    def pause(self) -> None:
        """Stop taking new batches (in-flight batches finish first)."""
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()
        self.queue.kick()

    @contextmanager
    def paused(self):
        """``with server.paused(): submit(...)`` — requests accumulate in
        the queue, then coalesce maximally on resume.  Batch counts are
        fully deterministic when the server is idle at pause time (the
        benchmark pattern); under live traffic a batch a worker is
        already gathering still executes."""
        self.pause()
        try:
            yield self
        finally:
            self.resume()

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut down the worker pool.

        ``drain=True`` completes every queued request first; ``drain=False``
        cancels pending futures (waiters get ``CancelledError``).  In-flight
        batches always complete — results are never discarded mid-execution.
        Draining needs live workers: on a server that was never started,
        pending requests are cancelled either way.
        """
        if drain and self._workers:
            self.queue.close()
        else:
            pending = self.queue.close_and_drain()
            dropped = sum(1 for r in pending if r.future.cancel())
            self.stats.record_cancelled(dropped)
        if not self._workers:
            return
        self._gate.set()  # a paused pool must still wind down
        self.queue.kick()
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        # Snapshot under the pool lock: a worker crashing during the drain
        # removes itself from the pool (no respawn once the queue is
        # closed), so the live list may shrink under us; joining an
        # already-removed worker is fine, and the lock guarantees every
        # snapshotted thread has been started.
        with self._pool_lock:
            workers = list(self._workers)
        for w in workers:
            w.thread.join(
                None
                if deadline is None
                else max(0.0, deadline - time.perf_counter())
            )
        stuck = [w.wid for w in workers if w.thread.is_alive()]
        if stuck:  # pragma: no cover - join timeout
            raise RuntimeError(f"serving workers did not stop in time: {stuck}")

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop(drain=exc == (None, None, None))

    # ------------------------------------------------------------ worker loop

    def _supervised_loop(self, worker: _Worker) -> None:
        """The worker thread's real target: ``_serve_loop`` under
        supervision.  An unhandled exception anywhere in the loop (an
        engine bug outside the per-batch guard, a scheduler defect, an
        injected :class:`~repro.serving.faults.InjectedWorkerCrash`) used
        to strand the batch's futures forever *and* silently halve the
        pool; now it lands in :meth:`_on_worker_crash`, which fails the
        in-flight futures and respawns the slot."""
        try:
            self._serve_loop(worker)
        except BaseException as exc:
            self._on_worker_crash(worker, exc)

    def _serve_loop(self, worker: _Worker) -> None:
        while True:
            batch = self.scheduler.next_batch(gate=self._gate, only=worker.only)
            if batch is None:
                return
            self._run_batch(batch, worker)

    def _on_worker_crash(self, worker: _Worker, exc: BaseException) -> None:
        """Contain one worker thread's death (runs on the dying thread).

        1. fail the crashed batch's unresolved futures with
           :class:`WorkerCrashed` — each counted failed exactly once (the
           crashed batch never reached ``record_batch``), so conservation
           holds through the crash;
        2. drop the model's result-cache entries — the dead engine's state
           is suspect mid-batch, so nothing it produced may be replayed
           (counted in ``cache_invalidations``);
        3. respawn the slot with a **fresh engine** (per-model pools
           replace the registry engine; shared-pool replacements build
           their own lazily in :meth:`_engine_for`), unless the server is
           stopping or the slot hit :attr:`max_respawns`.
        """
        live = worker.inflight or []
        worker.inflight = None
        crash = WorkerCrashed(
            f"worker {worker.wid!r} died mid-batch: "
            f"{type(exc).__name__}: {exc}"
        )
        failed = 0
        for r in live:
            if not r.future.done():
                r.future.set_exception(crash)
                failed += 1
        self.stats.record_worker_crash(failed)
        with self._pool_lock:
            if worker in self._workers:
                self._workers.remove(worker)
        dropped = 0
        names = (
            [worker.only] if worker.only is not None else sorted(worker.engines)
        )
        for name in names:
            dropped += self.cache.invalidate(name)
        if dropped:
            self.stats.record_cache_invalidation(dropped)
        if self.queue.closed or not self._started:
            return  # shutting down: stop() drains/cancels the rest
        if worker.respawns >= self.max_respawns:
            return  # crash loop: leave the slot down
        if worker.only is not None:
            # The replacement gets a fresh registry engine — the crashed
            # one's scratch pool and plan arenas died mid-run.
            engine = self._new_engine(self._models[worker.only])
            engine.plan
            self._engines[worker.only] = engine
        self.stats.record_worker_respawn()
        self._spawn_worker(worker.wid, worker.only, respawns=worker.respawns + 1)

    def _engine_for(self, worker: _Worker, name: str):
        """The engine ``worker`` executes ``name``'s batches on.

        Per-model workers read the registry entry every batch (there is
        exactly one consumer per model, so the entry is effectively owned
        by that worker; tests may swap it to inject failures).  Shared-pool
        workers acquire engines for themselves: the registry engine goes to
        the first worker that needs the model, later workers build their
        own — two threads never execute one engine.
        """
        if worker.only is not None:
            return self._engines[name]
        engine = worker.engines.get(name)
        if engine is None:
            with self._engine_lock:
                engine = self._claimable.pop(name, None)
            if engine is None:
                engine = self._new_engine(self._models[name])
                # Compile before publishing: executor_stats() may reach
                # engine.plan from a monitoring thread the moment this
                # engine appears in worker.engines, and lazy compilation is
                # not safe to race (nor welcome on the serving hot path).
                engine.plan
            worker.engines[name] = engine
        return engine

    def _run_batch(self, batch: list[InferenceRequest], worker: _Worker) -> None:
        dispatched_at = time.perf_counter()
        live = [r for r in batch if r.future.set_running_or_notify_cancel()]
        if len(live) < len(batch):
            # Cancelled between queue extraction and dispatch (the queue
            # already dropped — and counted — anything cancelled earlier).
            self.stats.record_cancelled(len(batch) - len(live))
        if not live:
            return
        name = live[0].model
        engine = self._engine_for(worker, name)
        seqs = tuple(r.seq for r in live)
        waits = tuple(dispatched_at - r.enqueued_at for r in live)
        # Published before evaluation so the supervisor can fail exactly
        # these futures if this thread dies mid-batch.
        worker.inflight = live
        try:
            if self.faults is not None:
                self.faults.on_worker_batch(worker.wid, name)
            if any(r.nloc is not None or not r.pbc for r in live):
                # Domain-decomposition frames in the batch (explicit ghosts
                # and/or open boundaries): requests duck-type ForceFrame, so
                # the shape-bucketed path evaluates the mixed batch with the
                # same per-frame bitwise guarantee.
                results = engine.evaluate_frames(live, backend=self.backend)
            else:
                results = engine.evaluate_batch(
                    [r.system for r in live],
                    [(r.pair_i, r.pair_j) for r in live],
                    backend=self.backend,
                )
        except BaseException as exc:
            from repro.serving.faults import InjectedWorkerCrash

            if isinstance(exc, InjectedWorkerCrash):
                # Simulated unhandled bug: escape the per-batch guard so
                # the thread dies with its futures unresolved — the
                # supervisor (not this handler) must contain it.
                raise
            # One poisoned frame fails its whole batch, never the server:
            # the exception lands in each affected future and the loop moves
            # on to the next batch.
            for r in live:
                r.future.set_exception(exc)
            self.stats.record_batch(
                name, seqs, waits, failed=True, worker=worker.wid
            )
            worker.inflight = None
            return
        for r, result in zip(live, results):
            if r.cache_key is not None:
                self.cache.put(r.cache_key, name, result)
            r.future.set_result(result)
        self.stats.record_batch(name, seqs, waits, worker=worker.wid)
        worker.inflight = None
