"""Computation-graph node types for tfmini.

A graph is an immutable DAG of :class:`Node` objects.  Nodes are created by
the functional operator API in :mod:`repro.tfmini.ops`; leaves are constants,
placeholders, and variables.  Execution and differentiation never mutate
nodes, which is what makes graph rewriting (:mod:`repro.tfmini.passes`) safe.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable, Optional

import numpy as np

_node_counter = itertools.count()


class Node:
    """One operator application in the computation graph.

    Attributes
    ----------
    op:
        Operator name, e.g. ``"matmul"``; must exist in the op registry for
        execution.  Leaf ops are ``"constant"``, ``"placeholder"`` and
        ``"variable"``.
    inputs:
        Tuple of upstream :class:`Node` objects.
    attrs:
        Static operator attributes (axis numbers, target dtypes, ...).
    shape:
        Statically known shape or ``None``; used only by rewrite passes as a
        safety check, never required for execution.
    """

    __slots__ = ("op", "inputs", "attrs", "name", "uid", "shape", "dtype")

    def __init__(
        self,
        op: str,
        inputs: Iterable["Node"] = (),
        attrs: Optional[dict] = None,
        name: str = "",
        shape: Optional[tuple] = None,
        dtype: Optional[np.dtype] = None,
    ):
        self.op = op
        self.inputs = tuple(inputs)
        self.attrs = attrs or {}
        self.uid = next(_node_counter)
        self.name = name or f"{op}_{self.uid}"
        self.shape = shape
        self.dtype = np.dtype(dtype) if dtype is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} op={self.op} inputs={[i.name for i in self.inputs]}>"

    # Operator sugar so model code reads like math.  Imports are deferred to
    # avoid a circular import with repro.tfmini.ops.
    def __add__(self, other: "Node") -> "Node":
        from repro.tfmini import ops

        return ops.add(self, other)

    def __sub__(self, other: "Node") -> "Node":
        from repro.tfmini import ops

        return ops.sub(self, other)

    def __mul__(self, other: "Node") -> "Node":
        from repro.tfmini import ops

        return ops.mul(self, other)

    def __neg__(self) -> "Node":
        from repro.tfmini import ops

        return ops.neg(self)

    def __matmul__(self, other: "Node") -> "Node":
        from repro.tfmini import ops

        return ops.matmul(self, other)


class Variable(Node):
    """A trainable leaf holding a mutable numpy array.

    The executor reads ``self.value`` at run time, so optimizer updates are a
    plain in-place assignment — mirroring TF1 variables.
    """

    __slots__ = ("value",)

    def __init__(self, value: np.ndarray, name: str = ""):
        value = np.asarray(value)
        super().__init__(
            "variable", (), name=name, shape=value.shape, dtype=value.dtype
        )
        self.value = value

    def assign(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=self.value.dtype)
        if value.shape != self.value.shape:
            raise ValueError(
                f"variable {self.name}: shape {value.shape} != {self.value.shape}"
            )
        self.value = value


def constant(value, name: str = "", dtype=None) -> Node:
    """Create a constant leaf node wrapping ``value``."""
    arr = np.asarray(value, dtype=dtype)
    node = Node("constant", (), {"value": arr}, name=name, shape=arr.shape, dtype=arr.dtype)
    return node


def placeholder(name: str, shape: Optional[tuple] = None, dtype=np.float64) -> Node:
    """Create an input leaf to be fed at run time via ``Session.run(feeds=...)``."""
    return Node("placeholder", (), name=name, shape=shape, dtype=dtype)


def variable(value, name: str = "") -> Variable:
    """Create a trainable :class:`Variable` initialised to ``value``."""
    return Variable(np.asarray(value), name=name)


# Global invocation counter.  Compiled execution plans (repro.tfmini.plan)
# exist to pay this traversal once per graph instead of once per run; the
# plan benchmarks assert on deltas of this counter to prove it.
TOPO_SORT_CALLS = 0


def topo_sort(fetches: Iterable[Node]) -> list[Node]:
    """Return all nodes reachable from ``fetches`` in topological order.

    Iterative DFS — graphs from deep backprop chains overflow Python's
    recursion limit otherwise.
    """
    global TOPO_SORT_CALLS
    TOPO_SORT_CALLS += 1
    order: list[Node] = []
    seen: set[int] = set()
    stack: list[tuple[Node, bool]] = [(f, False) for f in fetches]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for inp in node.inputs:
            if id(inp) not in seen:
                stack.append((inp, False))
    return order


def all_variables(fetches: Iterable[Node]) -> list[Variable]:
    """Collect every :class:`Variable` reachable from ``fetches``."""
    return [n for n in topo_sort(fetches) if isinstance(n, Variable)]


def count_params(fetches: Iterable[Node]) -> int:
    """Total number of scalar parameters reachable from ``fetches``."""
    return sum(v.value.size for v in all_variables(fetches))


def param_nbytes(fetches: Iterable[Node]) -> int:
    """Total parameter memory in bytes — used for the Sec 7.1.3 memory claim."""
    return sum(v.value.nbytes for v in all_variables(fetches))
