"""Tests for DP model variants: pair-typed embeddings (type_one_side=False),
virial-matching loss, and extensivity/supercell properties."""

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp import DeepPot, DPConfig, TrainConfig, Trainer, label_frames, sample_md_frames
from repro.dp.serialize import load_model, save_model
from repro.md.box import Box
from repro.md.neighbor import neighbor_pairs
from repro.md.system import System
from repro.oracles import FlexibleWater


@pytest.fixture(scope="module")
def small_water():
    return water_box((3, 3, 3), seed=0)


@pytest.fixture(scope="module")
def tiny_dataset():
    oracle = FlexibleWater(cutoff=4.0)
    base = water_box((3, 3, 3), seed=0)
    frames = sample_md_frames(
        base, oracle, n_frames=4, stride=5, equilibration=15, seed=0
    )
    return label_frames(frames, oracle)


class TestPairTypedEmbedding:
    def test_parameter_count_scales_with_type_pairs(self):
        one_side = DeepPot(DPConfig.tiny(type_one_side=True))
        pair_typed = DeepPot(DPConfig.tiny(type_one_side=False))
        assert len(one_side.embedding_params) == 2
        assert len(pair_typed.embedding_params) == 4
        assert pair_typed.param_count() > one_side.param_count()

    def test_physics_invariants_hold(self, small_water):
        model = DeepPot(DPConfig.tiny(type_one_side=False, seed=5))
        pi, pj = neighbor_pairs(small_water, model.config.rcut)
        res = model.evaluate(small_water, pi, pj)
        np.testing.assert_allclose(res.forces.sum(axis=0), 0, atol=1e-12)
        # force = -dE/dx still
        eps = 1e-5
        sysw = small_water.copy()
        p0 = sysw.positions[4, 1]
        sysw.positions[4, 1] = p0 + eps
        a, b = neighbor_pairs(sysw, model.config.rcut)
        ep = model.evaluate(sysw, a, b).energy
        sysw.positions[4, 1] = p0 - eps
        a, b = neighbor_pairs(sysw, model.config.rcut)
        em = model.evaluate(sysw, a, b).energy
        assert res.forces[4, 1] == pytest.approx(-(ep - em) / (2 * eps), rel=1e-5)

    def test_serialization_roundtrip(self, small_water, tmp_path):
        model = DeepPot(DPConfig.tiny(type_one_side=False, seed=7))
        path = str(tmp_path / "pair_typed.npz")
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.config.type_one_side is False
        pi, pj = neighbor_pairs(small_water, model.config.rcut)
        a = model.evaluate(small_water, pi, pj)
        b = loaded.evaluate(small_water, pi, pj)
        assert b.energy == pytest.approx(a.energy, rel=1e-12)

    def test_trainable(self, tiny_dataset):
        model = DeepPot(DPConfig.tiny(rcut=4.0, type_one_side=False))
        tiny_dataset.apply_stats(model)
        trainer = Trainer(
            model, tiny_dataset, TrainConfig(n_steps=30, log_every=30)
        )
        first = trainer.step()
        for _ in range(29):
            last = trainer.step()
        assert np.isfinite(last)


class TestVirialLoss:
    def test_virial_term_changes_loss(self, tiny_dataset):
        model = DeepPot(DPConfig.tiny(rcut=4.0, seed=1))
        tiny_dataset.apply_stats(model)
        t_no_v = Trainer(model, tiny_dataset, TrainConfig(seed=0))
        feeds, _ = t_no_v._frame_feeds(tiny_dataset[0])
        loss_no_v = float(model.session.run(t_no_v.node_loss, feeds))

        model2 = DeepPot(DPConfig.tiny(rcut=4.0, seed=1))
        tiny_dataset.apply_stats(model2)
        t_v = Trainer(
            model2, tiny_dataset,
            TrainConfig(seed=0, pref_v_start=1.0, pref_v_limit=1.0),
        )
        feeds2, _ = t_v._frame_feeds(tiny_dataset[0])
        loss_v = float(model2.session.run(t_v.node_loss, feeds2))
        assert loss_v > loss_no_v  # extra non-negative term, nonzero pre-fit

    def test_virial_gradient_matches_fd(self, tiny_dataset):
        model = DeepPot(DPConfig.tiny(rcut=4.0, seed=2))
        tiny_dataset.apply_stats(model)
        trainer = Trainer(
            model, tiny_dataset,
            TrainConfig(seed=0, pref_v_start=2.0, pref_v_limit=2.0),
        )
        feeds, _ = trainer._frame_feeds(tiny_dataset[0])
        out = model.session.run(trainer._fetches, feeds)
        grads = out[3:]
        v = trainer.variables[0]
        eps = 1e-5
        flat = v.value.reshape(-1)
        old = flat[0]
        flat[0] = old + eps
        lp = float(model.session.run(trainer.node_loss, feeds))
        flat[0] = old - eps
        lm = float(model.session.run(trainer.node_loss, feeds))
        flat[0] = old
        num = (lp - lm) / (2 * eps)
        assert float(np.asarray(grads[0]).reshape(-1)[0]) == pytest.approx(
            num, rel=1e-4, abs=1e-8
        )

    def test_virial_training_reduces_virial_error(self, tiny_dataset):
        model = DeepPot(DPConfig.tiny(rcut=4.0, seed=3))
        tiny_dataset.apply_stats(model)
        trainer = Trainer(
            model, tiny_dataset,
            TrainConfig(
                n_steps=60, lr_start=2e-3, decay_steps=20,
                pref_v_start=10.0, pref_v_limit=1.0, log_every=60,
            ),
        )

        def virial_rmse():
            errs = []
            for frame in tiny_dataset.frames:
                pi, pj = neighbor_pairs(frame.system, model.config.rcut)
                res = model.evaluate(frame.system, pi, pj)
                errs.append(np.sqrt(np.mean((res.virial - frame.virial) ** 2)))
            return float(np.mean(errs))

        before = virial_rmse()
        trainer.train()
        after = virial_rmse()
        assert after < before


class TestExtensivity:
    def test_supercell_doubles_energy(self, small_water):
        """E is extensive: a 2x supercell along z has exactly twice the
        energy and replicated forces — a strong end-to-end identity for the
        descriptor + network + bias pipeline under PBC."""
        model = DeepPot(DPConfig.tiny(seed=4))
        pi, pj = neighbor_pairs(small_water, model.config.rcut)
        single = model.evaluate(small_water, pi, pj)

        n = small_water.n_atoms
        doubled = System(
            box=Box(small_water.box.lengths * np.array([1.0, 1.0, 2.0])),
            positions=np.concatenate(
                [
                    small_water.positions,
                    small_water.positions + np.array([0, 0, small_water.box.lengths[2]]),
                ]
            ),
            types=np.tile(small_water.types, 2),
            masses=small_water.masses,
            type_names=small_water.type_names,
        )
        a, b = neighbor_pairs(doubled, model.config.rcut)
        double_res = model.evaluate(doubled, a, b)
        assert double_res.energy == pytest.approx(2 * single.energy, rel=1e-10)
        np.testing.assert_allclose(double_res.forces[:n], single.forces, atol=1e-10)
        np.testing.assert_allclose(double_res.forces[n:], single.forces, atol=1e-10)

    def test_isolated_atom_energy_is_bias(self):
        """A single atom with no neighbors: E = fitting(0-descriptor) + e0 —
        finite and independent of box size."""
        model = DeepPot(DPConfig.tiny(type_names=("Cu",), sel=(8,), rcut=4.0))
        for box_len in (20.0, 40.0):
            sys = System(
                box=Box([box_len] * 3),
                positions=np.array([[box_len / 2] * 3]),
                types=np.zeros(1, dtype=np.int64),
                masses=np.array([63.5]),
            )
            pi, pj = neighbor_pairs(sys, model.config.rcut)
            res = model.evaluate(sys, pi, pj)
            assert np.isfinite(res.energy)
            if box_len == 20.0:
                ref = res.energy
        assert res.energy == pytest.approx(ref, rel=1e-12)
