"""Coverage for smaller helpers: graph utilities, simulation bookkeeping,
thermo log access, and the model zoo's precision cloning."""

import numpy as np
import pytest

import repro.tfmini as tf
from repro.analysis.structures import _FCC_BASIS, water_box
from repro.md import Simulation, System, boltzmann_velocities
from repro.md.box import Box
from repro.md.lj import LennardJones
from repro.tfmini.graph import all_variables, count_params, param_nbytes


def lj_system(n=3, a_lat=5.26, temperature=30.0):
    grid = np.stack(
        np.meshgrid(*[np.arange(n)] * 3, indexing="ij"), axis=-1
    ).reshape(-1, 3)
    pos = (grid[:, None, :] + _FCC_BASIS[None]).reshape(-1, 3) * a_lat
    sys = System(
        box=Box([n * a_lat] * 3),
        positions=pos,
        types=np.zeros(len(pos), dtype=np.int64),
        masses=np.array([39.948]),
    )
    boltzmann_velocities(sys, temperature, seed=0)
    return sys


class TestGraphHelpers:
    def test_all_variables_found_through_graph(self):
        w = tf.variable(np.zeros((3, 4)), name="w")
        b = tf.variable(np.zeros(4), name="b")
        x = tf.constant(np.ones((2, 3)))
        y = tf.add(tf.matmul(x, w), b)
        found = all_variables([y])
        assert {v.name for v in found} == {"w", "b"}

    def test_count_params_and_nbytes(self):
        w = tf.variable(np.zeros((3, 4)), name="w")
        b = tf.variable(np.zeros(4, dtype=np.float32), name="b")
        y = tf.add(tf.matmul(tf.constant(np.ones((1, 3))), w), b)
        assert count_params([y]) == 16
        assert param_nbytes([y]) == 12 * 8 + 4 * 4

    def test_node_repr_is_printable(self):
        node = tf.tanh(tf.constant(1.0))
        assert "tanh" in repr(node)


class TestSimulationBookkeeping:
    def test_trajectory_capture_interval(self):
        sys = lj_system()
        sim = Simulation(
            sys,
            LennardJones(epsilon=0.0104, sigma=3.4, cutoff=5.0),
            dt=0.002,
            trajectory_every=5,
        )
        sim.run(20)
        assert len(sim.trajectory) == 4
        assert sim.trajectory[0].shape == (sys.n_atoms, 3)

    def test_callback_sees_every_step(self):
        sys = lj_system()
        seen = []
        sim = Simulation(
            sys, LennardJones(epsilon=0.0104, sigma=3.4, cutoff=5.0), dt=0.002
        )
        sim.run(7, callback=lambda s: seen.append(s.step_count))
        assert seen == list(range(1, 8))

    def test_loop_time_accumulates_across_runs(self):
        sys = lj_system()
        sim = Simulation(
            sys, LennardJones(epsilon=0.0104, sigma=3.4, cutoff=5.0), dt=0.002
        )
        sim.run(5)
        t1 = sim.loop_seconds
        sim.run(5)
        assert sim.loop_seconds > t1
        assert sim.step_count == 10

    def test_tts_nan_before_running(self):
        sys = lj_system()
        sim = Simulation(
            sys, LennardJones(epsilon=0.0104, sigma=3.4, cutoff=5.0), dt=0.002
        )
        assert np.isnan(sim.time_to_solution())

    def test_last_result_requires_initialization(self):
        sys = lj_system()
        sim = Simulation(
            sys, LennardJones(epsilon=0.0104, sigma=3.4, cutoff=5.0), dt=0.002
        )
        with pytest.raises(RuntimeError, match="not initialised"):
            sim.last_result()
        sim.initialize()
        assert sim.last_result().forces.shape == (sys.n_atoms, 3)


class TestThermoLogAccess:
    def test_column_extraction(self):
        sys = lj_system()
        sim = Simulation(
            sys,
            LennardJones(epsilon=0.0104, sigma=3.4, cutoff=5.0),
            dt=0.002,
            thermo_every=5,
        )
        sim.run(10)
        steps = sim.thermo.column("step")
        temps = sim.thermo.column("temperature")
        assert list(steps) == [0, 5, 10]
        assert temps.shape == (3,)

    def test_as_tuple_roundtrip(self):
        sys = lj_system()
        sim = Simulation(
            sys, LennardJones(epsilon=0.0104, sigma=3.4, cutoff=5.0), dt=0.002
        )
        sim.run(1)
        row = sim.thermo.rows[0]
        tup = row.as_tuple()
        assert tup[0] == row.step
        assert tup[4] == row.total_energy


class TestZooCloning:
    def test_as_mixed_precision_preserves_stats(self):
        from repro.dp.model import DeepPot, DPConfig
        from repro.zoo import as_mixed_precision

        model = DeepPot(DPConfig.tiny(seed=0))
        model.set_stats(
            np.full((2, 4), 0.1), np.full((2, 4), 2.0), np.array([-1.0, -2.0])
        )
        mixed = as_mixed_precision(model)
        np.testing.assert_allclose(mixed.davg, model.davg)
        np.testing.assert_allclose(mixed.dstd, model.dstd)
        np.testing.assert_allclose(mixed.e0, model.e0)
        assert mixed.config.precision == "mixed"

    def test_water_and_copper_configs_distinct(self):
        from repro.zoo import copper_config, water_config

        w, c = water_config(), copper_config()
        assert w.n_types == 2 and c.n_types == 1
        assert c.rcut > w.rcut
