"""SimComm — in-process message passing with MPI semantics and accounting.

Ranks execute in lockstep inside one Python process (SPMD emulation), so
"communication" is mailbox delivery — but every call is accounted exactly as
its MPI counterpart would be (message counts, payload bytes, collective
sizes), which is what the Summit cost model consumes.  The Iallreduce
handle reproduces the paper's Sec 5.4 optimization of overlapping the
global thermo reduction with compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np


@dataclass
class CommStats:
    """Accumulated communication accounting across all ranks."""

    p2p_messages: int = 0
    p2p_bytes: int = 0
    allreduce_calls: int = 0
    iallreduce_calls: int = 0
    bcast_calls: int = 0
    bcast_bytes: int = 0
    barrier_calls: int = 0

    def reset(self) -> None:
        self.p2p_messages = 0
        self.p2p_bytes = 0
        self.allreduce_calls = 0
        self.iallreduce_calls = 0
        self.bcast_calls = 0
        self.bcast_bytes = 0
        self.barrier_calls = 0


def _payload_bytes(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(p) for p in payload)
    if isinstance(payload, (int, float, np.floating, np.integer)):
        return 8
    return 0


class PendingReduce:
    """Handle returned by iallreduce; ``wait()`` yields the reduced value."""

    def __init__(self, value):
        self._value = value
        self.completed = False

    def wait(self):
        self.completed = True
        return self._value


class SimComm:
    """A communicator over ``size`` simulated ranks.

    Point-to-point messages are addressed (src, dst, tag); collectives take
    the per-rank contributions at once since ranks run in lockstep.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("communicator needs at least one rank")
        self.size = size
        self.stats = CommStats()
        self._mail: dict[tuple[int, int, Any], list] = {}

    # -------------------------------------------------------------- point-to-point

    def send(self, src: int, dst: int, payload, tag=0) -> None:
        self._check(src)
        self._check(dst)
        self._mail.setdefault((src, dst, tag), []).append(payload)
        self.stats.p2p_messages += 1
        self.stats.p2p_bytes += _payload_bytes(payload)

    def recv(self, dst: int, src: int, tag=0):
        queue = self._mail.get((src, dst, tag))
        if not queue:
            raise RuntimeError(
                f"recv deadlock: no message from rank {src} to {dst} (tag {tag})"
            )
        return queue.pop(0)

    def sendrecv(self, src: int, dst: int, payload, tag=0):
        """Convenience for the lockstep driver: immediate delivery."""
        self.send(src, dst, payload, tag)
        return self.recv(dst, src, tag)

    # ---------------------------------------------------------------- collectives

    def bcast(self, root: int, payload):
        """Broadcast from root; returns the payload every rank sees."""
        self._check(root)
        self.stats.bcast_calls += 1
        # A tree broadcast moves ~(P-1) copies in log2(P) latency stages.
        self.stats.bcast_bytes += _payload_bytes(payload) * max(self.size - 1, 0)
        return payload

    def allreduce(self, contributions: list, op: Optional[Callable] = None):
        """Blocking allreduce over per-rank contributions (default: sum)."""
        if len(contributions) != self.size:
            raise ValueError(
                f"allreduce needs {self.size} contributions, got {len(contributions)}"
            )
        self.stats.allreduce_calls += 1
        return self._reduce(contributions, op)

    def iallreduce(
        self, contributions: list, op: Optional[Callable] = None
    ) -> PendingReduce:
        """Non-blocking allreduce (the paper's MPI_Iallreduce swap, Sec 5.4)."""
        if len(contributions) != self.size:
            raise ValueError(
                f"iallreduce needs {self.size} contributions, got {len(contributions)}"
            )
        self.stats.iallreduce_calls += 1
        return PendingReduce(self._reduce(contributions, op))

    def barrier(self) -> None:
        self.stats.barrier_calls += 1

    # ------------------------------------------------------------------ helpers

    def _reduce(self, contributions, op):
        if op is not None:
            out = contributions[0]
            for c in contributions[1:]:
                out = op(out, c)
            return out
        total = contributions[0]
        if isinstance(total, np.ndarray):
            total = total.copy()
        for c in contributions[1:]:
            total = total + c
        return total

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")

    def pending_messages(self) -> int:
        return sum(len(q) for q in self._mail.values())
