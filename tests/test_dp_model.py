"""Tests for the DP model: environment matrix, custom ops, symmetries,
force/virial consistency, mixed precision, serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.structures import water_box, fcc_lattice
from repro.dp.env_mat import env_rows, smooth_weight
from repro.dp.model import DeepPot, DPConfig
from repro.dp.nlist_fmt import format_neighbors
from repro.dp.ops_baseline import (
    environment_baseline,
    prod_force_baseline,
    prod_virial_baseline,
)
from repro.dp.ops_optimized import environment_op, prod_force_op, prod_virial_op
from repro.dp.pair import DeepPotPair
from repro.dp.serialize import load_model, model_bytes, model_from_bytes, save_model
from repro.md.neighbor import neighbor_pairs


@pytest.fixture(scope="module")
def tiny_model():
    return DeepPot(DPConfig.tiny())


@pytest.fixture(scope="module")
def small_water():
    return water_box((3, 3, 3), seed=0)


def pairs_for(sys, cfg):
    return neighbor_pairs(sys, cfg.rcut)


class TestSmoothing:
    def test_inverse_r_below_smth(self):
        s, ds = smooth_weight(np.array([1.0]), 2.0, 4.0)
        assert s[0] == pytest.approx(1.0)
        assert ds[0] == pytest.approx(-1.0)

    def test_zero_beyond_cutoff(self):
        s, ds = smooth_weight(np.array([4.5]), 2.0, 4.0)
        assert s[0] == 0.0 and ds[0] == 0.0

    def test_zero_distance_is_padded_slot(self):
        s, ds = smooth_weight(np.array([0.0]), 2.0, 4.0)
        assert s[0] == 0.0 and ds[0] == 0.0

    def test_continuity_at_cutoff(self):
        eps = 1e-7
        s, _ = smooth_weight(np.array([4.0 - eps]), 2.0, 4.0)
        assert abs(s[0]) < 1e-10

    @given(r=st.floats(0.3, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_property_derivative_matches_fd(self, r):
        if abs(r - 2.0) < 1e-4 or abs(r - 4.0) < 1e-4:
            return  # C^2 joins: FD noise at the seams
        h = 1e-7
        sp, _ = smooth_weight(np.array([r + h]), 2.0, 4.0)
        sm, _ = smooth_weight(np.array([r - h]), 2.0, 4.0)
        _, ds = smooth_weight(np.array([r]), 2.0, 4.0)
        assert ds[0] == pytest.approx((sp[0] - sm[0]) / (2 * h), rel=1e-4, abs=1e-6)

    @given(r=st.floats(0.1, 6.0))
    @settings(max_examples=40, deadline=None)
    def test_property_monotone_decreasing(self, r):
        s, _ = smooth_weight(np.array([r, r + 0.01]), 0.5, 4.0)
        assert s[0] >= s[1] - 1e-12


class TestEnvRows:
    def test_row_structure(self):
        d = np.array([[1.5, 0.0, 0.0]])
        rows, deriv, r = env_rows(d, 2.0, 4.0)
        assert r[0] == pytest.approx(1.5)
        s = 1.0 / 1.5
        np.testing.assert_allclose(rows[0], [s, s, 0.0, 0.0])

    def test_zero_displacement_row_is_zero(self):
        rows, deriv, _ = env_rows(np.zeros((1, 3)), 2.0, 4.0)
        assert np.all(rows == 0) and np.all(deriv == 0)

    @given(
        seed=st.integers(0, 10**6),
        scale=st.floats(0.5, 3.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_deriv_matches_fd(self, seed, scale):
        rng = np.random.default_rng(seed)
        d = rng.normal(size=3)
        d = d / np.linalg.norm(d) * scale
        rows, deriv, _ = env_rows(d[None], 2.0, 4.0)
        h = 1e-7
        for k in range(3):
            dp = d.copy()
            dp[k] += h
            dm = d.copy()
            dm[k] -= h
            rp, _, _ = env_rows(dp[None], 2.0, 4.0)
            rm, _, _ = env_rows(dm[None], 2.0, 4.0)
            num = (rp[0] - rm[0]) / (2 * h)
            np.testing.assert_allclose(deriv[0, :, k], num, rtol=1e-5, atol=1e-7)


class TestCustomOpsEquivalence:
    """Baseline (looped/AoS) and optimized (vectorized/SoA) ops must agree."""

    def _setup(self, sys, cfg):
        pi, pj = pairs_for(sys, cfg)
        fmt = format_neighbors(sys, pi, pj, cfg.rcut, cfg.sel)
        return fmt

    def test_environment_equivalence(self, small_water):
        cfg = DPConfig.tiny()
        fmt = self._setup(small_water, cfg)
        em_o, ed_o, rij_o = environment_op(small_water, fmt, cfg.rcut_smth, cfg.rcut)
        em_b, ed_b, rij_b = environment_baseline(
            small_water, fmt, cfg.rcut_smth, cfg.rcut
        )
        np.testing.assert_allclose(em_o, em_b, atol=1e-14)
        np.testing.assert_allclose(ed_o, ed_b, atol=1e-14)
        np.testing.assert_allclose(rij_o, rij_b, atol=1e-14)

    def test_prod_force_equivalence(self, small_water):
        cfg = DPConfig.tiny()
        fmt = self._setup(small_water, cfg)
        em, ed, rij = environment_op(small_water, fmt, cfg.rcut_smth, cfg.rcut)
        rng = np.random.default_rng(0)
        nd = rng.normal(size=em.shape)
        idx = np.arange(small_water.n_atoms)
        f_o = prod_force_op(nd, ed, fmt.nlist, idx, small_water.n_atoms)
        f_b = prod_force_baseline(nd, ed, fmt.nlist, idx, small_water.n_atoms)
        np.testing.assert_allclose(f_o, f_b, atol=1e-12)

    def test_prod_virial_equivalence(self, small_water):
        cfg = DPConfig.tiny()
        fmt = self._setup(small_water, cfg)
        em, ed, rij = environment_op(small_water, fmt, cfg.rcut_smth, cfg.rcut)
        rng = np.random.default_rng(1)
        nd = rng.normal(size=em.shape)
        w_o = prod_virial_op(nd, ed, rij, fmt.nlist)
        w_b = prod_virial_baseline(nd, ed, rij, fmt.nlist)
        np.testing.assert_allclose(w_o, w_b, atol=1e-12)


class TestModelPhysics:
    def test_forces_are_gradient(self, tiny_model, small_water):
        cfg = tiny_model.config
        pi, pj = pairs_for(small_water, cfg)
        res = tiny_model.evaluate(small_water, pi, pj)
        eps = 1e-5
        sys = small_water.copy()
        for atom, comp in [(0, 0), (11, 2), (50, 1)]:
            p0 = sys.positions[atom, comp]
            sys.positions[atom, comp] = p0 + eps
            a, b = pairs_for(sys, cfg)
            ep = tiny_model.evaluate(sys, a, b).energy
            sys.positions[atom, comp] = p0 - eps
            a, b = pairs_for(sys, cfg)
            em = tiny_model.evaluate(sys, a, b).energy
            sys.positions[atom, comp] = p0
            assert res.forces[atom, comp] == pytest.approx(
                -(ep - em) / (2 * eps), rel=1e-5, abs=1e-8
            )

    def test_forces_sum_to_zero(self, tiny_model, small_water):
        pi, pj = pairs_for(small_water, tiny_model.config)
        res = tiny_model.evaluate(small_water, pi, pj)
        np.testing.assert_allclose(res.forces.sum(axis=0), 0, atol=1e-12)

    def test_permutation_invariance(self, tiny_model, small_water):
        pi, pj = pairs_for(small_water, tiny_model.config)
        res = tiny_model.evaluate(small_water, pi, pj)
        rng = np.random.default_rng(4)
        perm = rng.permutation(small_water.n_atoms)
        shuffled = small_water.copy()
        shuffled.positions = small_water.positions[perm]
        shuffled.types = small_water.types[perm]
        a, b = pairs_for(shuffled, tiny_model.config)
        res2 = tiny_model.evaluate(shuffled, a, b)
        assert res2.energy == pytest.approx(res.energy, rel=1e-12)
        np.testing.assert_allclose(res2.forces, res.forces[perm], atol=1e-12)

    def test_rotation_invariance(self, tiny_model, small_water):
        """90° rotation about z maps the cubic box onto itself."""
        pi, pj = pairs_for(small_water, tiny_model.config)
        res = tiny_model.evaluate(small_water, pi, pj)
        rot = np.array([[0.0, -1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
        rotated = small_water.copy()
        rotated.positions = rotated.box.wrap(small_water.positions @ rot.T)
        a, b = pairs_for(rotated, tiny_model.config)
        res2 = tiny_model.evaluate(rotated, a, b)
        assert res2.energy == pytest.approx(res.energy, rel=1e-12)
        np.testing.assert_allclose(res2.forces, res.forces @ rot.T, atol=1e-10)

    def test_translation_invariance(self, tiny_model, small_water):
        pi, pj = pairs_for(small_water, tiny_model.config)
        e0 = tiny_model.evaluate(small_water, pi, pj).energy
        moved = small_water.copy()
        moved.positions = moved.box.wrap(moved.positions + np.array([1.1, -0.4, 2.2]))
        a, b = pairs_for(moved, tiny_model.config)
        assert tiny_model.evaluate(moved, a, b).energy == pytest.approx(e0, rel=1e-12)

    def test_virial_matches_volume_derivative(self, tiny_model, small_water):
        cfg = tiny_model.config
        pi, pj = pairs_for(small_water, cfg)
        res = tiny_model.evaluate(small_water, pi, pj)

        def energy_at(scale):
            s = small_water.copy()
            s.positions = s.positions * scale
            s.box = s.box.scaled([scale] * 3)
            a, b = pairs_for(s, cfg)
            return tiny_model.evaluate(s, a, b).energy

        h = 1e-6
        num = -(energy_at(1 + h) - energy_at(1 - h)) / (2 * h)
        assert np.trace(res.virial) == pytest.approx(num, rel=1e-4, abs=1e-8)

    def test_atom_energies_sum_to_total(self, tiny_model, small_water):
        pi, pj = pairs_for(small_water, tiny_model.config)
        res = tiny_model.evaluate(small_water, pi, pj)
        assert res.atom_energies.sum() == pytest.approx(res.energy, rel=1e-12)

    def test_baseline_backend_equals_optimized(self, tiny_model, small_water):
        pi, pj = pairs_for(small_water, tiny_model.config)
        opt = tiny_model.evaluate(small_water, pi, pj, backend="optimized")
        base = tiny_model.evaluate(small_water, pi, pj, backend="baseline")
        assert base.energy == pytest.approx(opt.energy, rel=1e-12)
        np.testing.assert_allclose(base.forces, opt.forces, atol=1e-12)
        np.testing.assert_allclose(base.virial, opt.virial, atol=1e-12)

    def test_energy_bias_applied(self, small_water):
        model = DeepPot(DPConfig.tiny())
        pi, pj = pairs_for(small_water, model.config)
        e_before = model.evaluate(small_water, pi, pj).energy
        bias = np.array([-1.0, -0.5])
        model.set_stats(model.davg, model.dstd, bias)
        e_after = model.evaluate(small_water, pi, pj).energy
        counts = small_water.type_counts()
        assert e_after - e_before == pytest.approx(counts @ bias, rel=1e-12)

    def test_monatomic_copper_config(self):
        # fcc at a=3.615 has 12+6+24=42 neighbors within 5 Å; sel=48 keeps all
        cfg = DPConfig.tiny(type_names=("Cu",), sel=(48,), rcut=5.0)
        model = DeepPot(cfg)
        sys = fcc_lattice((3, 3, 3))
        pi, pj = neighbor_pairs(sys, cfg.rcut)
        res = model.evaluate(sys, pi, pj)
        assert np.isfinite(res.energy)
        # perfect lattice: forces vanish by symmetry
        assert np.abs(res.forces).max() < 1e-9

    def test_sel_overflow_breaks_symmetry_slightly(self):
        """The Sec 5.2.1 caveat: when a type block overflows sel, ties among
        dropped equidistant shells break the lattice symmetry — the forces
        are tiny (the dropped neighbors sit near the smooth cutoff) but
        nonzero.  This is the artifact distance-sorting minimizes."""
        cfg = DPConfig.tiny(type_names=("Cu",), sel=(24,), rcut=5.0)
        model = DeepPot(cfg)
        sys = fcc_lattice((3, 3, 3))
        pi, pj = neighbor_pairs(sys, cfg.rcut)
        res = model.evaluate(sys, pi, pj)
        fmax = np.abs(res.forces).max()
        assert 0.0 < fmax < 1e-3


class TestMixedPrecision:
    def test_mixed_matches_double_within_tolerance(self, small_water):
        """The Sec 7.1.3 check: energy and force deviations are small."""
        double = DeepPot(DPConfig.tiny(precision="double"))
        mixed = DeepPot(DPConfig.tiny(precision="mixed"))
        # identical parameters (mixed stores them in fp32)
        for vd, vm in zip(double.trainable_variables(), mixed.trainable_variables()):
            vm.assign(vd.value.astype(np.float32))
        pi, pj = pairs_for(small_water, double.config)
        rd = double.evaluate(small_water, pi, pj)
        rm = mixed.evaluate(small_water, pi, pj)
        n_mol = small_water.n_atoms // 3
        de_per_mol = abs(rd.energy - rm.energy) / n_mol
        f_rmsd = float(np.sqrt(np.mean((rd.forces - rm.forces) ** 2)))
        assert de_per_mol < 5e-3  # eV/molecule; paper: 0.32 meV on trained model
        assert f_rmsd < 5e-2  # eV/Å; paper: 0.029

    def test_mixed_outputs_are_float64(self, small_water):
        mixed = DeepPot(DPConfig.tiny(precision="mixed"))
        pi, pj = pairs_for(small_water, mixed.config)
        res = mixed.evaluate(small_water, pi, pj)
        assert res.forces.dtype == np.float64

    def test_mixed_params_are_float32_and_half_memory(self):
        double = DeepPot(DPConfig.tiny(precision="double"))
        mixed = DeepPot(DPConfig.tiny(precision="mixed"))
        assert all(v.value.dtype == np.float32 for v in mixed.trainable_variables())
        assert mixed.param_nbytes() * 2 == double.param_nbytes()

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            DPConfig(precision="half")


class TestSerialization:
    def test_roundtrip_through_file(self, tmp_path, small_water):
        model = DeepPot(DPConfig.tiny(seed=9))
        model.set_stats(
            np.random.default_rng(0).normal(size=(2, 4)) * 0.1,
            np.abs(np.random.default_rng(1).normal(size=(2, 4))) + 0.5,
            np.array([-2.0, -1.0]),
        )
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        loaded = load_model(path)
        pi, pj = pairs_for(small_water, model.config)
        a = model.evaluate(small_water, pi, pj)
        b = loaded.evaluate(small_water, pi, pj)
        assert b.energy == pytest.approx(a.energy, rel=1e-12)
        np.testing.assert_allclose(b.forces, a.forces, atol=1e-14)

    def test_roundtrip_through_bytes(self, small_water):
        model = DeepPot(DPConfig.tiny(seed=11))
        blob = model_bytes(model)
        loaded = model_from_bytes(blob)
        pi, pj = pairs_for(small_water, model.config)
        a = model.evaluate(small_water, pi, pj)
        b = loaded.evaluate(small_water, pi, pj)
        assert b.energy == pytest.approx(a.energy, rel=1e-12)

    def test_config_preserved(self, tmp_path):
        cfg = DPConfig.tiny(precision="mixed", sel=(10, 20))
        model = DeepPot(cfg)
        path = str(tmp_path / "m.npz")
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.config.precision == "mixed"
        assert loaded.config.sel == (10, 20)


class TestPairAdapter:
    def test_cutoff_mirrors_model(self, tiny_model):
        pair = DeepPotPair(tiny_model)
        assert pair.cutoff == tiny_model.config.rcut

    def test_compute_matches_evaluate(self, tiny_model, small_water):
        pair = DeepPotPair(tiny_model)
        pi, pj = pairs_for(small_water, tiny_model.config)
        a = pair.compute(small_water, pi, pj)
        b = tiny_model.evaluate(small_water, pi, pj)
        assert a.energy == pytest.approx(b.energy, rel=1e-14)
