"""Serving throughput — micro-batch coalescing under multi-client load.

The service's thesis is the batched engine's thesis moved behind a queue:
N requests that arrive together should cost ~1 batched evaluation per
``max_batch`` of them, not N serial evaluations.  Assertions follow the
repo's bench-timing policy:

* deterministic (always on): N coalesced requests execute in exactly
  ``ceil(N / max_batch)`` batched graph runs — counted by ``ServerStats``
  (batches/frames/occupancy) AND by the engine's own
  ``batch_evaluations`` counter, so the amortization is structural; every
  served result stays bitwise identical to a direct evaluation;
* wall-clock (paired, median-based, gated on ``REPRO_BENCH_STRICT``):
  serving N pre-queued requests with ``max_batch=16`` vs ``max_batch=1``
  through the *same* stack (queue, scheduler, worker thread) — isolating
  the micro-batching win from serving overhead; and interleaved two-model
  traffic through the per-model worker pool vs a single shared worker —
  the pool overlaps plan execution inside numpy's GIL-releasing kernels,
  so on a multi-core host it must win outright, and on any host it must
  not cost more than single-worker serving.
"""

import os

import numpy as np
import pytest

from benchmarks.conftest import bench_paired_trials, bench_strict, print_header
from repro.analysis.structures import water_box
from repro.dp.model import DeepPot, DPConfig
from repro.md.neighbor import neighbor_pairs
from repro.serving import InferenceServer

N_REQUESTS = 32
MAX_BATCH = 8
WAIT = 120.0


@pytest.fixture(scope="module")
def model():
    # rcut shrunk so the 24-atom cell satisfies minimum image — the small-
    # frame regime where fixed per-evaluation cost dominates (the regime
    # the batched engine, and therefore the service, targets).
    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))


@pytest.fixture(scope="module")
def workload(model):
    base = water_box((2, 2, 2), seed=0)
    frames, pair_lists = [], []
    for k in range(N_REQUESTS):
        s = base.copy()
        rng = np.random.default_rng(1000 + k)
        s.positions = s.positions + rng.normal(scale=0.02, size=s.positions.shape)
        frames.append(s)
        pair_lists.append(neighbor_pairs(s, model.config.rcut))
    return frames, pair_lists


def serve_all(model, workload, max_batch):
    """Pre-queue the full workload, then let the worker coalesce it."""
    frames, pair_lists = workload
    server = InferenceServer(
        {"water": model}, max_batch=max_batch, max_queue=0, autostart=False
    )
    futures = [
        server.submit("water", s, pi, pj)
        for s, (pi, pj) in zip(frames, pair_lists)
    ]
    server.start()
    results = [f.result(WAIT) for f in futures]
    server.stop(timeout=WAIT)
    return server, results


def test_coalescing_is_structural(model, workload):
    """Deterministic: 32 pre-queued requests -> exactly ceil(32/8) = 4
    batched evaluations, perfect occupancy, bitwise results."""
    server, results = serve_all(model, workload, MAX_BATCH)
    snap = server.stats.snapshot()
    expected_batches = -(-N_REQUESTS // MAX_BATCH)
    assert snap["batches"] <= expected_batches  # the acceptance bound...
    assert snap["batches"] == expected_batches  # ...met exactly here
    assert snap["frames"] == N_REQUESTS
    assert snap["requests_completed"] == N_REQUESTS
    assert snap["occupancy"] == pytest.approx(N_REQUESTS / expected_batches)
    # the engine agrees: ONE graph execution per batch, none elsewhere
    engine = server._engines["water"]
    assert engine.batch_evaluations == expected_batches
    assert engine.frames_evaluated == N_REQUESTS
    # per-request correspondence stays bitwise under maximal coalescing
    frames, pair_lists = workload
    for s, (pi, pj), res in zip(frames[:4], pair_lists[:4], results[:4]):
        ref = model.evaluate(s, pi, pj)
        assert res.energy == ref.energy
        assert np.array_equal(res.forces, ref.forces)
        assert np.array_equal(res.virial, ref.virial)


def test_throughput_vs_unbatched_serving(model, workload):
    """The same serving stack with coalescing on (max_batch=16) vs off
    (max_batch=1): per-request cost must fall.  Paired interleaved trials,
    median ratio, gated on REPRO_BENCH_STRICT per the bench policy."""
    ratios = bench_paired_trials(
        lambda: serve_all(model, workload, max_batch=16),
        lambda: serve_all(model, workload, max_batch=1),
        trials=5,
    )
    median = float(np.median(ratios))
    best = float(np.min(ratios))
    print_header("Serving throughput — dynamic micro-batching vs per-request")
    print(f"{N_REQUESTS} pre-queued requests, 24-atom frames")
    print(f"batched serving runs at {median:.2f}x (median) / {best:.2f}x "
          f"(best) the cost of")
    print(f"unbatched serving ({1 / median:.2f}x throughput)")
    print("(fixed per-evaluation cost amortized across client requests —")
    print(" the paper's Sec 7 lesson applied behind a request queue)")
    if bench_strict():
        assert median < 0.95
        assert best < 0.9


# --------------------------------------------------------------------------
# Two-model traffic: per-model worker pool vs one shared worker.
# Bigger nets and frames than the coalescing workload above, so each batch
# spends most of its time inside GIL-releasing BLAS/ufunc kernels — the
# regime the pool exists to overlap.

N_TWO_MODEL = 16
POOL_MAX_BATCH = 4


@pytest.fixture(scope="module")
def pool_models():
    cfg = dict(sel=(24, 48), rcut=4.0, embedding_layers=(16, 32, 64),
               fitting_layers=(64, 64, 64), axis_neuron=8)
    return (
        DeepPot(DPConfig.tiny(**cfg)),
        DeepPot(DPConfig.tiny(seed=7, **cfg)),
    )


@pytest.fixture(scope="module")
def two_model_workload(pool_models):
    model_a, _ = pool_models
    base = water_box((4, 4, 4), seed=0)  # 192-atom frames
    frames, pair_lists = [], []
    for k in range(N_TWO_MODEL):
        s = base.copy()
        rng = np.random.default_rng(2000 + k)
        s.positions = s.positions + rng.normal(scale=0.02, size=s.positions.shape)
        frames.append(s)
        pair_lists.append(neighbor_pairs(s, model_a.config.rcut))
    return frames, pair_lists


def serve_two_models(pool_models, workload, workers):
    """Pre-queue interleaved a/b traffic, then serve it with ``workers``."""
    model_a, model_b = pool_models
    frames, pair_lists = workload
    server = InferenceServer(
        {"a": model_a, "b": model_b}, max_batch=POOL_MAX_BATCH,
        max_queue=0, workers=workers, autostart=False,
    )
    futures = [
        server.submit("a" if k % 2 == 0 else "b", s, pi, pj)
        for k, (s, (pi, pj)) in enumerate(zip(frames, pair_lists))
    ]
    server.start()
    results = [f.result(WAIT) for f in futures]
    server.stop(timeout=WAIT)
    return server, results


def test_two_model_pool_ownership_is_structural(pool_models, two_model_workload):
    """Deterministic: with workers="per-model", each model's ceil(8/4) = 2
    batches executed on that model's own worker, results bitwise."""
    server, results = serve_two_models(
        pool_models, two_model_workload, workers="per-model"
    )
    log = server.stats.batch_log
    assert all(rec.worker == rec.model for rec in log)
    per_model = -(-N_TWO_MODEL // 2 // POOL_MAX_BATCH)
    snap = server.stats.snapshot()
    assert snap["batches_per_worker"] == {"a": per_model, "b": per_model}
    assert snap["frames_per_worker"] == {
        "a": N_TWO_MODEL // 2, "b": N_TWO_MODEL // 2
    }
    assert snap["requests_completed"] == N_TWO_MODEL
    model_a, model_b = pool_models
    frames, pair_lists = two_model_workload
    for k in (0, 1):  # one spot check per model
        ref = (model_a if k % 2 == 0 else model_b).evaluate(
            frames[k], *pair_lists[k]
        )
        assert results[k].energy == ref.energy
        assert np.array_equal(results[k].forces, ref.forces)
        assert np.array_equal(results[k].virial, ref.virial)


def test_two_model_pool_throughput_vs_single_worker(
    pool_models, two_model_workload
):
    """Paired interleaved trials: the per-model pool vs one shared worker
    over identical pre-queued two-model traffic.  On a multi-core host the
    pool overlaps the two models' plan executions inside GIL-released
    kernels and must win outright; on a single core no parallel win exists,
    so the assert degrades to "the pool costs no more than the single
    worker" (thresholds per the bench-timing policy, REPRO_BENCH_STRICT-
    gated)."""
    ratios = bench_paired_trials(
        lambda: serve_two_models(pool_models, two_model_workload, "per-model"),
        lambda: serve_two_models(pool_models, two_model_workload, 1),
        trials=5,
    )
    median = float(np.median(ratios))
    best = float(np.min(ratios))
    cores = os.cpu_count() or 1
    print_header("Serving throughput — per-model worker pool vs single worker")
    print(f"{N_TWO_MODEL} pre-queued requests, 2 models interleaved, "
          f"192-atom frames, {cores} core(s)")
    print(f"pool serving runs at {median:.2f}x (median) / {best:.2f}x (best)")
    print(f"the cost of single-worker serving "
          f"({1 / median:.2f}x throughput)")
    print("(per-model workers overlap plan execution inside numpy's")
    print(" GIL-releasing kernels — a parallel win needs > 1 core)")
    if bench_strict():
        assert median < (1.0 if cores > 1 else 1.15)
