"""Common neighbor analysis (CNA) — the Fig 7 structure classifier.

Conventional CNA with a fixed cutoff (Clarke & Jónsson / Jónsson & Andersen,
the paper's refs [19, 30]): for every bonded pair, compute the signature
(n_common, n_bonds, l_chain) over the common-neighbor subgraph.  An atom is

* fcc  if all 12 of its bonds have signature (4, 2, 1);
* hcp  if 6 bonds are (4, 2, 1) and 6 are (4, 2, 2);
* bcc  if 8 bonds are (6, 6, 6) and 6 are (4, 4, 4);
* other (surfaces, grain boundaries, defects) otherwise.

In the deformed nanocrystal, hcp-classified atoms inside an fcc matrix mark
stacking faults — exactly the analysis in Fig 7 (b).
"""

from __future__ import annotations

import numpy as np

from repro.md.neighbor import neighbor_pairs
from repro.md.system import System

CNA_OTHER = 0
CNA_FCC = 1
CNA_HCP = 2
CNA_BCC = 3

CNA_LABELS = {CNA_OTHER: "other", CNA_FCC: "fcc", CNA_HCP: "hcp", CNA_BCC: "bcc"}


def fcc_cna_cutoff(lattice: float) -> float:
    """Midpoint of first/second neighbor shells of fcc: (1/√2 + 1)/2 · a."""
    return 0.5 * (1.0 / np.sqrt(2.0) + 1.0) * lattice


def _longest_chain(adj: dict[int, set[int]], members: list[int]) -> int:
    """Longest continuous chain of bonds in the common-neighbor graph.

    CNA convention: each *bond* may be used once but vertices may repeat, so
    a closed 6-ring (the bcc (6,6,6) signature) counts 6, not 5.  The graphs
    have at most ~6 vertices, so exhaustive edge-trail DFS is fine.
    """
    best = 0

    def dfs(v: int, used: set[frozenset], length: int) -> None:
        nonlocal best
        best = max(best, length)
        for w in adj.get(v, ()):
            edge = frozenset((v, w))
            if edge not in used:
                used.add(edge)
                dfs(w, used, length + 1)
                used.remove(edge)

    for v in members:
        dfs(v, set(), 0)
    return best


def cna_signatures(neigh_sets: list[set[int]], i: int, j: int) -> tuple[int, int, int]:
    """The (n_common, n_bonds, longest_chain) triplet for bond i-j."""
    common = neigh_sets[i] & neigh_sets[j]
    n_common = len(common)
    members = list(common)
    adj: dict[int, set[int]] = {v: set() for v in members}
    n_bonds = 0
    for a_idx, a in enumerate(members):
        for b in members[a_idx + 1 :]:
            if b in neigh_sets[a]:
                adj[a].add(b)
                adj[b].add(a)
                n_bonds += 1
    l_chain = _longest_chain(adj, members) if n_bonds else 0
    return n_common, n_bonds, l_chain


def common_neighbor_analysis(system: System, cutoff: float) -> np.ndarray:
    """Per-atom CNA classification with the given bond cutoff.

    Returns an int array of CNA_* codes.
    """
    n = system.n_atoms
    pi, pj = neighbor_pairs(system, cutoff)
    neigh_sets: list[set[int]] = [set() for _ in range(n)]
    for a, b in zip(pi.tolist(), pj.tolist()):
        neigh_sets[a].add(b)
        neigh_sets[b].add(a)

    labels = np.full(n, CNA_OTHER, dtype=np.int64)
    # Cache bond signatures (computed once per unordered bond).
    sig_cache: dict[tuple[int, int], tuple[int, int, int]] = {}

    for atom in range(n):
        nb = neigh_sets[atom]
        n_nb = len(nb)
        if n_nb == 12:
            sigs = []
            for other in nb:
                key = (atom, other) if atom < other else (other, atom)
                s = sig_cache.get(key)
                if s is None:
                    s = cna_signatures(neigh_sets, key[0], key[1])
                    sig_cache[key] = s
                sigs.append(s)
            n421 = sum(1 for s in sigs if s == (4, 2, 1))
            n422 = sum(1 for s in sigs if s == (4, 2, 2))
            if n421 == 12:
                labels[atom] = CNA_FCC
            elif n421 == 6 and n422 == 6:
                labels[atom] = CNA_HCP
        elif n_nb == 14:
            sigs = []
            for other in nb:
                key = (atom, other) if atom < other else (other, atom)
                s = sig_cache.get(key)
                if s is None:
                    s = cna_signatures(neigh_sets, key[0], key[1])
                    sig_cache[key] = s
                sigs.append(s)
            n666 = sum(1 for s in sigs if s == (6, 6, 6))
            n444 = sum(1 for s in sigs if s == (4, 4, 4))
            if n666 == 8 and n444 == 6:
                labels[atom] = CNA_BCC
    return labels


def cna_fractions(labels: np.ndarray) -> dict[str, float]:
    """Fraction of atoms per structure class — the Fig 7 color statistics."""
    n = len(labels)
    if n == 0:
        return {name: 0.0 for name in CNA_LABELS.values()}
    return {
        name: float(np.count_nonzero(labels == code)) / n
        for code, name in CNA_LABELS.items()
    }
