"""``pair_style deepmd`` — the adapter that plugs DeepPot into repro.md.

Mirrors the paper's Sec 5.4 design: LAMMPS (repro.md) owns the atoms and the
spatial bookkeeping; the DP model replaces the EFF force computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.model import DeepPot
from repro.md.potential import Potential, PotentialResult
from repro.md.system import System


@dataclass
class DeepPotPair(Potential):
    """Potential interface around a DeepPot model.

    ``compute`` routes through the model's batched evaluation engine as an
    R=1 stack (see :mod:`repro.dp.batch`), so a serial ``Simulation`` and a
    multi-replica ``EnsembleSimulation`` share one executor; ``compute_batch``
    exposes the fused multi-frame evaluation directly.
    """

    model: DeepPot
    backend: str = "optimized"

    def __post_init__(self):
        self.cutoff = self.model.config.rcut

    def compute(
        self, system: System, pair_i: np.ndarray, pair_j: np.ndarray
    ) -> PotentialResult:
        return self.model.evaluate(system, pair_i, pair_j, backend=self.backend)

    def compute_batch(
        self, systems, pair_lists
    ) -> list[PotentialResult]:
        """Fused evaluation of R frames in one batched graph run."""
        return self.model.evaluate_batch(systems, pair_lists, backend=self.backend)
