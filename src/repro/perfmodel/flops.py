"""Analytic FLOP counts for the DP model.

Counts the forward pass exactly (per atom), then applies a backward factor
(forces require full backprop, ~2x forward) and an instruction-mix
calibration factor that maps "algebraic" FLOPs onto the NVPROF-counted FLOPs
the paper reports (FMA accounting, tanh instruction sequences, masked padded
lanes).  With the default calibration, the paper's water model lands at the
2.0e7 FLOPs/atom/step implied by Sec 6.1's "124.83 PFLOPs for 500 steps of
12,582,912 atoms", and the copper/water ratio (~3.3-3.5x) emerges from the
neighbor counts rather than being pinned by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.tfmini.ops import TANH_FLOPS_PER_ELEM

#: forces need dE/dR~ via backprop: roughly one reverse pass per forward.
BACKWARD_FACTOR = 2.0

#: algebraic->counted FLOPs (FMA/instruction-mix); calibrated so the paper's
#: water model reproduces the quoted 124.83 PFLOPs / 500 steps / 12.58M atoms.
INSTRUCTION_MIX_FACTOR = 2.28


@dataclass
class FlopBreakdown:
    """Per-atom forward FLOPs by component."""

    embedding: float
    descriptor: float
    fitting: float
    custom_ops: float

    @property
    def forward(self) -> float:
        return self.embedding + self.descriptor + self.fitting + self.custom_ops

    def per_step(
        self,
        backward_factor: float = BACKWARD_FACTOR,
        calibration: float = INSTRUCTION_MIX_FACTOR,
    ) -> float:
        """Total counted FLOPs per atom per MD step (forward + backward)."""
        return self.forward * (1.0 + backward_factor) * calibration


def _mlp_flops(n_in: int, layers: Sequence[int], rows: float) -> float:
    """Forward FLOPs of an MLP over ``rows`` rows: GEMM + bias + tanh + skip."""
    total = 0.0
    prev = n_in
    for width in layers:
        total += rows * (2.0 * prev * width + width)  # GEMM + bias
        total += rows * width * TANH_FLOPS_PER_ELEM  # activation
        if width in (prev, 2 * prev):
            total += rows * width  # skip-connection add
        prev = width
    return total


def dp_flops_per_atom(config) -> FlopBreakdown:
    """Forward FLOPs per atom for a :class:`repro.dp.model.DPConfig`."""
    nnei = config.nnei
    m1 = config.embedding_layers[-1]
    m2 = config.axis_neuron

    embedding = _mlp_flops(1, config.embedding_layers, rows=float(nnei))
    # T = R~^T G (4 x nnei x m1), D = T^T T2 (m1 x 4 x m2)
    descriptor = 2.0 * 4 * nnei * m1 + 2.0 * m1 * 4 * m2
    fitting = _mlp_flops(m1 * m2, config.fitting_layers, rows=1.0)
    fitting += 2.0 * config.fitting_layers[-1] + 1  # final linear layer
    # environment rows (4 + 12 deriv components, ~8 flops each) + force/virial
    custom = nnei * (16.0 * 8 + 4 * 3 * 2 + 4 * 9 * 2)
    return FlopBreakdown(
        embedding=embedding,
        descriptor=descriptor,
        fitting=fitting,
        custom_ops=custom,
    )


def gemm_fraction(config) -> float:
    """Fraction of forward FLOPs in GEMM-like ops — the Fig 3 GEMM share."""
    b = dp_flops_per_atom(config)
    nnei = config.nnei
    m1 = config.embedding_layers[-1]
    gemm = 0.0
    prev = 1
    for width in config.embedding_layers:
        gemm += nnei * 2.0 * prev * width
        prev = width
    gemm += 2.0 * 4 * nnei * m1 + 2.0 * m1 * 4 * config.axis_neuron
    prev = m1 * config.axis_neuron
    for width in config.fitting_layers:
        gemm += 2.0 * prev * width
        prev = width
    gemm += 2.0 * prev
    return gemm / b.forward
