"""The staged plan compiler: scheduling, interference coloring, spans.

Covers the compiler-grade pipeline in :mod:`repro.tfmini.plan`:

- the tape scheduler (``schedule="none"|"liveness"|"grouped"``) is
  deterministic and dependency-correct;
- the interference-coloring allocator beats the FIFO shape-keyed baseline
  on every zoo plan (strictly — the counter-asserted acceptance bar) while
  verifying clean under P101–P109;
- parallel span execution (``span_workers``) is bitwise identical to the
  sequential loop and to the ``Session.run`` oracle for every
  schedule × worker combination, with deterministic span counters;
- the fused kernel backend (``backend="fused"``) stays bitwise across the
  same matrix and the whole zoo, with its fusion counters firing and P110
  verifying clean (the fusion pass itself is tested in
  ``tests/test_fusion.py``).
"""

import itertools

import numpy as np
import pytest

from repro import tfmini as tf
from repro.analysis.plancheck import check_all_plans, plan_metrics
from repro.analysis.structures import water_box
from repro.dp.batch import BatchedEvaluator
from repro.dp.model import DeepPot
from repro.md.neighbor import neighbor_pairs
from repro.tfmini.ops import scale
from repro.tfmini.plan import SCHEDULES, compile_plan
from repro.zoo import water_config


@pytest.fixture(scope="module")
def water():
    model = DeepPot(water_config("double"))
    system = water_box((3, 3, 3), seed=0)
    pairs = neighbor_pairs(system, model.config.rcut)
    return model, system, pairs


@pytest.fixture(scope="module")
def water_oracle(water):
    model, system, pairs = water
    res = BatchedEvaluator(model, use_plan=False).evaluate_batch(
        [system], [pairs])[0]
    return res


def fan_plan(k=8, schedule="liveness", span_workers=1):
    """K independent tanh branches of one feed — one span of width K.

    numpy backend pinned: the span-structure assertions below count the
    unfused records (fusion would collapse each tanh+scale branch).
    """
    x = tf.placeholder("x", dtype=np.float64)
    branches = [scale(tf.tanh(x), 1.0 + i) for i in range(k)]
    plan = compile_plan(
        branches, [x], schedule=schedule, span_workers=span_workers,
        backend="numpy",
    )
    return plan, x


class TestScheduler:
    def test_rejects_unknown_schedule(self):
        x = tf.placeholder("x", dtype=np.float64)
        with pytest.raises(ValueError):
            compile_plan([tf.tanh(x)], [x], schedule="alphabetical")

    def test_none_keeps_topological_order(self, water):
        model, _system, _pairs = water
        feeds = (list(model.ph_env)
                 + [model.ph_em_deriv, model.ph_rij, model.ph_nlist,
                    model.ph_atom_idx, model.ph_natoms])
        fetches = [model._f_forces]
        # numpy backend: fused records carry fresh synthetic nodes, so the
        # id()-based identity below only holds per-record.
        base = compile_plan(fetches, feeds, schedule="none", backend="numpy")
        again = compile_plan(fetches, feeds, schedule="none", backend="numpy")
        assert [id(r.node) for r in base._records] == \
            [id(r.node) for r in again._records]

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_deterministic(self, water, schedule):
        model, _system, _pairs = water
        feeds = (list(model.ph_env)
                 + [model.ph_em_deriv, model.ph_rij, model.ph_nlist,
                    model.ph_atom_idx, model.ph_natoms])
        fetches = [model._f_forces, model._f_net_deriv] + list(model._f_e_atoms)
        p1 = compile_plan(fetches, feeds, schedule=schedule, backend="numpy")
        p2 = compile_plan(fetches, feeds, schedule=schedule, backend="numpy")
        assert [id(r.node) for r in p1._records] == \
            [id(r.node) for r in p2._records]
        assert p1.spans == p2.spans

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_dependencies_respected(self, water, schedule):
        model, _system, _pairs = water
        feeds = (list(model.ph_env)
                 + [model.ph_em_deriv, model.ph_rij, model.ph_nlist,
                    model.ph_atom_idx, model.ph_natoms])
        plan = compile_plan([model._f_forces], feeds, schedule=schedule)
        producer_pos = {r.out_slot: i for i, r in enumerate(plan._records)}
        for i, rec in enumerate(plan._records):
            for s in rec.input_slots:
                if s in producer_pos:
                    assert producer_pos[s] < i, (schedule, i, rec.op)

    def test_grouped_groups_kernels(self, water):
        """Grouped scheduling produces at least as many same-kernel
        adjacencies as the raw topological order on the DP graph."""
        model, _system, _pairs = water
        feeds = (list(model.ph_env)
                 + [model.ph_em_deriv, model.ph_rij, model.ph_nlist,
                    model.ph_atom_idx, model.ph_natoms])
        fetches = [model._f_forces]

        def adjacencies(plan):
            ops = [r.op for r in plan._records]
            return sum(a == b for a, b in zip(ops, ops[1:]))

        none = compile_plan(fetches, feeds, schedule="none", backend="numpy")
        grouped = compile_plan(
            fetches, feeds, schedule="grouped", backend="numpy")
        assert adjacencies(grouped) >= adjacencies(none)


class TestSpans:
    def test_widths_tile_the_tape(self, water):
        model, _system, _pairs = water
        feeds = (list(model.ph_env)
                 + [model.ph_em_deriv, model.ph_rij, model.ph_nlist,
                    model.ph_atom_idx, model.ph_natoms])
        plan = compile_plan([model._f_forces], feeds)
        widths = plan.span_widths()
        assert sum(widths) == plan.n_records
        assert len(widths) == plan.stats.spans
        assert max(widths) == plan.stats.max_span_width
        # The DP graph's per-type branches give the scheduler real
        # parallelism — spans must compress the tape, not degenerate to
        # one record each.
        assert plan.stats.max_span_width >= 2
        assert plan.stats.spans < plan.n_records

    def test_fan_plan_grouped_gives_wide_spans(self):
        # Under "grouped", the 8 independent tanh records batch first and
        # the 8 scale records (each reading one tanh) follow — two
        # width-8 spans.
        plan, _x = fan_plan(k=8, schedule="grouped")
        widths = plan.span_widths()
        assert sum(widths) == plan.n_records == 16
        assert widths == [8, 8]
        assert plan.stats.max_span_width == 8

    def test_span_batches_counter(self):
        ref_plan, x = fan_plan(k=8, span_workers=1)
        feeds = {x: np.linspace(-1.0, 1.0, 12).reshape(4, 3)}
        ref = ref_plan.run(feeds)
        assert ref_plan.stats.span_batches == 0

        par_plan, x2 = fan_plan(k=8, span_workers=3)
        feeds2 = {x2: np.linspace(-1.0, 1.0, 12).reshape(4, 3)}
        out1 = par_plan.run(feeds2)
        batches_after_warm = par_plan.stats.span_batches
        out2 = par_plan.run(feeds2)
        # Steady runs dispatch every multi-record span to the pool.
        multi = sum(1 for w in par_plan.span_widths() if w > 1)
        assert par_plan.stats.span_batches == batches_after_warm + multi
        for a, b, c in zip(ref, out1, out2):
            assert np.array_equal(a, b) and np.array_equal(b, c)

    def test_span_min_bytes_inlines_tiny_spans(self):
        """The per-span cost model: multi-record spans whose arena bytes
        fall under ``span_min_bytes`` run inline instead of forking to the
        pool — counted by ``spans_inlined``, bitwise unchanged."""
        x = tf.placeholder("x", dtype=np.float64)
        branches = [scale(tf.tanh(x), 1.0 + i) for i in range(4)]
        feeds = {x: np.linspace(-1.0, 1.0, 6).reshape(2, 3)}
        ref = compile_plan(branches, [x], backend="numpy").run(feeds)

        plan = compile_plan(
            branches, [x], span_workers=2, span_min_bytes=1 << 30,
            backend="numpy",
        )
        plan.run(feeds)  # warm
        inlined0 = plan.stats.spans_inlined
        out = plan.run(feeds)  # steady: every span under the threshold
        multi = sum(1 for w in plan.span_widths() if w > 1)
        assert multi >= 1
        assert plan.stats.spans_inlined == inlined0 + multi
        assert plan.stats.span_batches == 0  # nothing ever hit the pool
        for a, b in zip(ref, out):
            assert np.array_equal(a, b)

        # Threshold zero (the default) disables the cost model entirely.
        free = compile_plan(
            branches, [x], span_workers=2, backend="numpy")
        free.run(feeds)
        free.run(feeds)
        assert free.stats.spans_inlined == 0
        assert free.stats.span_batches > 0

    def test_release_arenas_shuts_span_pool(self):
        plan, x = fan_plan(k=4, span_workers=2)
        plan.run({x: np.ones((2, 2))})
        plan.run({x: np.ones((2, 2))})
        assert plan._pool is not None
        plan.release_arenas()
        assert plan._pool is None
        # Re-warms and rebuilds the pool transparently.
        out = plan.run({x: np.ones((2, 2))})
        out = plan.run({x: np.ones((2, 2))})
        assert plan._pool is not None
        assert np.array_equal(out[0], np.tanh(np.ones((2, 2))))


class TestBitwiseOracle:
    @pytest.mark.parametrize(
        "schedule,workers", list(itertools.product(SCHEDULES, (1, 2)))
    )
    def test_engine_all_configs_vs_session_oracle(
        self, water, water_oracle, schedule, workers
    ):
        model, system, pairs = water
        engine = BatchedEvaluator(
            model, plan_schedule=schedule, plan_span_workers=workers
        )
        for _ in range(2):  # warm + steady paths both checked
            out = engine.evaluate_batch([system], [pairs])[0]
            assert np.array_equal(
                np.asarray(water_oracle.energy), np.asarray(out.energy))
            assert np.array_equal(water_oracle.forces, out.forces)
            assert np.array_equal(
                np.asarray(water_oracle.virial), np.asarray(out.virial))
        if workers > 1:
            assert engine.plan.stats.span_batches > 0
        else:
            assert engine.plan.stats.span_batches == 0

    @pytest.mark.parametrize("schedule,workers",
                             [("liveness", 2), ("grouped", 2), ("none", 2)])
    def test_trainer_bitwise_vs_session_oracle(self, schedule, workers):
        from repro.dp.data import label_frames
        from repro.dp.train import TrainConfig, Trainer
        from repro.oracles import FlexibleWater

        def run(use_plan, **knobs):
            model = DeepPot(water_config("double"))
            base = water_box((3, 3, 3), seed=0)
            dataset = label_frames([base], FlexibleWater(cutoff=4.0))
            dataset.apply_stats(model)
            trainer = Trainer(
                model, dataset, TrainConfig(n_steps=2, log_every=10),
                use_plan=use_plan, **knobs,
            )
            trainer.train()
            return trainer

        ref = run(False)
        got = run(True, plan_schedule=schedule, plan_span_workers=workers)
        assert [r.loss for r in ref.history] == [r.loss for r in got.history]
        for va, vb in zip(ref.model.trainable_variables(),
                          got.model.trainable_variables()):
            assert np.array_equal(va.value, vb.value)


class TestFusedBackendMatrix:
    """The fused backend across the schedule × span_workers matrix and the
    zoo: bitwise identical to the ``Session.run`` oracle, fusion counters
    firing unconditionally, P110 clean on every plan."""

    @pytest.mark.parametrize(
        "schedule,workers", list(itertools.product(SCHEDULES, (1, 2)))
    )
    def test_engine_fused_all_configs_vs_session_oracle(
        self, water, water_oracle, schedule, workers
    ):
        model, system, pairs = water
        engine = BatchedEvaluator(
            model, plan_schedule=schedule, plan_span_workers=workers,
            plan_backend="fused",
        )
        for _ in range(2):  # warm + steady (blocked-interpreter) paths
            out = engine.evaluate_batch([system], [pairs])[0]
            assert np.array_equal(
                np.asarray(water_oracle.energy), np.asarray(out.energy))
            assert np.array_equal(water_oracle.forces, out.forces)
            assert np.array_equal(
                np.asarray(water_oracle.virial), np.asarray(out.virial))
        plan = engine.plan
        assert plan.backend == "fused"
        assert plan.records_fused() > 0
        assert plan.fused_tiles_run() > 0
        report = plan.verify(check_values=True)
        assert report.ok, report.summary()

    def test_trainer_fused_bitwise_vs_session_oracle(self):
        from repro.dp.data import label_frames
        from repro.dp.train import TrainConfig, Trainer
        from repro.oracles import FlexibleWater

        def run(use_plan, **knobs):
            model = DeepPot(water_config("double"))
            base = water_box((3, 3, 3), seed=0)
            dataset = label_frames([base], FlexibleWater(cutoff=4.0))
            dataset.apply_stats(model)
            trainer = Trainer(
                model, dataset, TrainConfig(n_steps=2, log_every=10),
                use_plan=use_plan, **knobs,
            )
            trainer.train()
            return trainer

        ref = run(False)
        got = run(True, plan_backend="fused")
        assert [r.loss for r in ref.history] == [r.loss for r in got.history]
        for va, vb in zip(ref.model.trainable_variables(),
                          got.model.trainable_variables()):
            assert np.array_equal(va.value, vb.value)
        assert got.plan.records_fused() > 0

    def test_zoo_fused_clean_with_counters(self):
        """Every zoo plan fuses at least one elementwise chain, verifies
        clean under P101–P110, and its colored arena shrinks at least to
        (and in practice below) the unfused colored footprint."""
        results = check_all_plans(report=True, plan_backend="fused")
        assert len(results) == 10
        for entry in results:
            assert entry["report"].ok, (
                entry["plan"] + "\n" + entry["report"].summary())
            m = entry["metrics"]
            assert m["backend"] == "fused", entry["plan"]
            assert m["records_fused"] > 0, entry["plan"]
            assert m["fused_chains"] > 0, entry["plan"]
            assert m["fused_passes_saved"] == (
                m["records_fused"] - m["fused_chains"])
            # fused intermediates own no colored-arena bytes: the fused
            # footprint never exceeds the simulated unfused footprint.
            assert m["arena_nbytes_colored"] <= m["arena_nbytes_prefusion"], (
                entry["plan"], m)
            assert m["arena_fusion_saved"] == (
                m["arena_nbytes_prefusion"] - m["arena_nbytes_colored"])


class TestColoringAllocator:
    def test_zoo_colored_strictly_below_fifo(self):
        """The acceptance bar: coloring beats the FIFO recycler on every
        zoo plan (water/copper x double/mixed x evaluate/train/serving),
        measured on warmed arenas, with every plan verifying clean."""
        results = check_all_plans(report=True)
        assert len(results) == 10
        for entry in results:
            assert entry["report"].ok, (
                entry["plan"] + "\n" + entry["report"].summary())
            m = entry["metrics"]
            assert m["arena_nbytes_colored"] < m["arena_nbytes_fifo"], (
                entry["plan"], m)
            assert m["arena_bytes_saved"] == (
                m["arena_nbytes_fifo"] - m["arena_nbytes_colored"])

    def test_best_fit_is_third_candidate_and_min_wins(self, water):
        """Size-aware coloring: every warmed arena records byte totals for
        all three candidate orders (first-fit by size, first-fit in tape
        order, best-fit by size) and realizes the minimum — so adding
        best-fit can never regress the footprint."""
        model, system, pairs = water
        engine = BatchedEvaluator(model)
        engine.evaluate_batch([system], [pairs])
        trainer_checked = 0
        for arena in engine.plan.arenas.values():
            cand = arena.color_candidates
            assert set(cand) == {
                "first_fit_size", "first_fit_tape", "best_fit_size"}
            assert min(cand.values()) <= cand["first_fit_size"]
            trainer_checked += 1
        assert trainer_checked >= 1
        assert engine.plan.arena_nbytes() == sum(
            min(a.color_candidates.values())
            for a in engine.plan.arenas.values())

    def test_footprint_independent_of_span_workers(self, water):
        model, system, pairs = water
        sizes = []
        for workers in (1, 2):
            engine = BatchedEvaluator(model, plan_span_workers=workers)
            engine.evaluate_batch([system], [pairs])
            sizes.append(engine.plan.arena_nbytes())
        assert sizes[0] == sizes[1]

    def test_metrics_shape(self, water):
        model, system, pairs = water
        engine = BatchedEvaluator(model)
        engine.evaluate_batch([system], [pairs])
        m = plan_metrics(engine.plan)
        assert m["records"] == engine.plan.n_records
        assert m["schedule"] == "liveness"
        assert sum(int(k) * v for k, v in
                   m["span_width_histogram"].items()) == m["records"]
        assert m["arenas"] == 1


class TestServingKnobs:
    def test_executor_stats_report_span_and_coloring_counters(self, water):
        from repro.serving import InferenceServer

        model, system, pairs = water
        server = InferenceServer(
            {"water": model}, autostart=False,
            plan_schedule="grouped", plan_span_workers=2,
        )
        try:
            engine = server._engines["water"]
            assert engine.plan_schedule == "grouped"
            assert engine.plan_span_workers == 2
            engine.evaluate_batch([system], [pairs])
            stats = server.executor_stats()["water"]
            for key in ("spans", "max_span_width", "span_batches",
                        "arena_nbytes", "arena_nbytes_fifo"):
                assert key in stats
            assert stats["spans"] > 0
            assert stats["arena_nbytes"] < stats["arena_nbytes_fifo"]
        finally:
            server.stop()
