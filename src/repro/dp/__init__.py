"""repro.dp — the Deep Potential model, the paper's core contribution.

Submodules mirror the structure of the optimized DeePMD-kit:

* :mod:`repro.dp.nlist_fmt` — the Sec 5.2.1 neighbor-list layout (type-sorted,
  distance-sorted, padded) and the Sec 5.2.2 64-bit compression codec;
* :mod:`repro.dp.env_mat` — the smoothed environment matrix R~ and its
  position derivative;
* :mod:`repro.dp.ops_baseline` / :mod:`repro.dp.ops_optimized` — the three
  customized operators (Environment, ProdForce, ProdVirial) in the original
  AoS/looped form and in the optimized vectorized form (Table 3);
* :mod:`repro.dp.network` — embedding and fitting nets with the paper's skip
  connections, built on tfmini;
* :mod:`repro.dp.model` — :class:`DeepPot`: energies, forces, virial, with
  double or mixed precision (Sec 5.2.3);
* :mod:`repro.dp.batch` — :class:`BatchedEvaluator`: R replica frames stacked
  through one set of batched GEMMs with persistent scratch buffers;
* :mod:`repro.dp.backend` — :class:`ForceBackend`: the shape-bucketed
  evaluation seam all MD drivers (serial, ensemble, distributed,
  distributed-ensemble) feed :class:`ForceFrame` s into;
* :mod:`repro.dp.pair` — the ``pair_style deepmd`` adapter into repro.md;
* :mod:`repro.dp.train` — energy+force loss with double backprop, Adam;
* :mod:`repro.dp.data` — labeled datasets generated from the oracles;
* :mod:`repro.dp.active` — DP-GEN-style concurrent learning (ref [68]);
* :mod:`repro.dp.serialize` — model save/load.
"""

from repro.dp.model import DeepPot, DPConfig
from repro.dp.batch import (
    BatchedEvaluator,
    ScratchPool,
    frame_bucket_key,
    plan_frame_buckets,
)
from repro.dp.backend import ForceBackend, ForceFrame
from repro.dp.pair import DeepPotPair
from repro.dp.nlist_fmt import (
    FormattedNeighbors,
    compress_entries,
    decompress_entries,
    format_neighbors,
)
from repro.dp.data import LabeledFrame, Dataset, label_frames, sample_md_frames
from repro.dp.train import Trainer, TrainConfig
from repro.dp.serialize import save_model, load_model
from repro.dp.active import ModelEnsemble, ActiveLearner

__all__ = [
    "DeepPot",
    "DPConfig",
    "BatchedEvaluator",
    "ScratchPool",
    "frame_bucket_key",
    "plan_frame_buckets",
    "ForceBackend",
    "ForceFrame",
    "DeepPotPair",
    "FormattedNeighbors",
    "compress_entries",
    "decompress_entries",
    "format_neighbors",
    "LabeledFrame",
    "Dataset",
    "label_frames",
    "sample_md_frames",
    "Trainer",
    "TrainConfig",
    "save_model",
    "load_model",
    "ModelEnsemble",
    "ActiveLearner",
]
