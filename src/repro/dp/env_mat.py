"""The smoothed environment matrix R~ — the DP descriptor's raw input.

For center atom i and neighbor j at displacement d = r_j - r_i, |d| = r:

    s(r) = 1/r                            r <  r_smth
         = (1/r) * S(u)                   r_smth <= r < r_cut
         = 0                              r >= r_cut

with u = (r - r_smth)/(r_cut - r_smth) and the quintic switch
S(u) = u^3(-6u^2 + 15u - 10) + 1 (C^2 at both ends).  The row of R~ is

    (s(r),  s(r)·x/r,  s(r)·y/r,  s(r)·z/r).

:func:`env_row_and_deriv` also returns dR~/dd — the (4, 3) Jacobian w.r.t.
the *neighbor* position — which ProdForce/ProdVirial consume.  Everything
here is plain math shared by the baseline and optimized operator sets.
"""

from __future__ import annotations

import numpy as np


def smooth_weight(r: np.ndarray, r_smth: float, r_cut: float):
    """s(r) and ds/dr, vectorized; r may contain zeros (padded slots)."""
    r = np.asarray(r, dtype=np.float64)
    safe_r = np.where(r > 0, r, 1.0)
    inv_r = np.where(r > 0, 1.0 / safe_r, 0.0)

    s = inv_r.copy()
    ds = -inv_r * inv_r  # d(1/r)/dr

    mid = (r >= r_smth) & (r < r_cut)
    u = (r[mid] - r_smth) / (r_cut - r_smth)
    sw = u**3 * (-6.0 * u**2 + 15.0 * u - 10.0) + 1.0
    dsw = -30.0 * u**2 * (u - 1.0) ** 2 / (r_cut - r_smth)
    s[mid] = inv_r[mid] * sw
    ds[mid] = -inv_r[mid] ** 2 * sw + inv_r[mid] * dsw

    out = r >= r_cut
    s[out] = 0.0
    ds[out] = 0.0
    zero = r <= 0
    s[zero] = 0.0
    ds[zero] = 0.0
    return s, ds


def env_rows(
    disp: np.ndarray,
    r_smth: float,
    r_cut: float,
    out_rows: np.ndarray | None = None,
    out_deriv: np.ndarray | None = None,
):
    """Environment rows and derivatives for displacement vectors.

    Parameters
    ----------
    disp:
        (..., 3) displacements d = r_j - r_i; zero rows mean padded slots.
    out_rows, out_deriv:
        Optional preallocated destinations of shape (..., 4) and (..., 4, 3).
        Every element is overwritten, so stale contents are harmless — this is
        what lets the batched evaluation engine keep persistent scratch
        buffers instead of reallocating per step.

    Returns
    -------
    rows:
        (..., 4) — the R~ rows.
    deriv:
        (..., 4, 3) — d rows / d d (derivative w.r.t. neighbor position).
    r:
        (...,) distances.
    """
    disp = np.asarray(disp, dtype=np.float64)
    r = np.sqrt(np.einsum("...i,...i->...", disp, disp))
    s, ds = smooth_weight(r, r_smth, r_cut)

    safe_r = np.where(r > 0, r, 1.0)
    u = disp / safe_r[..., None]  # unit vectors; zero rows stay finite
    u = np.where(r[..., None] > 0, u, 0.0)

    rows = out_rows if out_rows is not None else np.empty(disp.shape[:-1] + (4,))
    rows[..., 0] = s
    rows[..., 1:] = s[..., None] * u

    # dR0/dd_k = ds/dr * u_k
    # dRc/dd_k = ds/dr u_k u_c + s (δ_ck - u_c u_k)/r
    deriv = (
        out_deriv if out_deriv is not None else np.zeros(disp.shape[:-1] + (4, 3))
    )
    deriv[..., 0, :] = ds[..., None] * u
    eye = np.eye(3)
    s_over_r = np.where(r > 0, s / safe_r, 0.0)
    deriv[..., 1:, :] = (
        ds[..., None, None] * u[..., :, None] * u[..., None, :]
        + s_over_r[..., None, None] * (eye - u[..., :, None] * u[..., None, :])
    )
    mask = (r > 0) & (r < r_cut)
    deriv *= mask[..., None, None]
    return rows, deriv, r
