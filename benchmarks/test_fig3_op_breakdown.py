"""Fig 3 — percent stacked operator-time breakdown of the DP graph.

Paper (V100): GEMM dominates — 74% (Cu double), 72% (Cu mixed), 63% (water
double), 62% (water mixed); TANH, SLICE, CUSTOM and Others share the rest;
copper shows a *larger* GEMM share than water because the monoatomic system
needs no per-type sorting/slicing.

Here the instrumented tfmini executor measures wall time per operator
category for the same four configurations.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header
import repro.tfmini as tf
from repro.analysis.structures import fcc_lattice, water_box
from repro.dp.model import DeepPot, DPConfig
from repro.md.neighbor import neighbor_pairs
from repro.zoo import as_mixed_precision

BREAKDOWNS = {}
CATEGORIES = ("GEMM", "TANH", "SLICE", "CUSTOM", "Others")

PAPER_GEMM_SHARE = {
    ("copper", "double"): 74,
    ("copper", "mixed"): 72,
    ("water", "double"): 63,
    ("water", "mixed"): 62,
}


def _measure(model, system, n_evals=3):
    import gc

    pi, pj = neighbor_pairs(system, model.config.rcut)
    # Measurement hygiene: earlier planned evaluations leave the engine's
    # buffer arena resident (hundreds of MB at paper-sized sel), which
    # distorts the *allocating* serial path this breakdown profiles — the
    # SLICE/Others categories are allocation-bound and slow down several-
    # fold under that heap pressure.  Release the persistent buffers so the
    # profiled oracle runs in the same allocator state as a standalone
    # process.
    if model._batched is not None:
        model.batched.release_buffers()
    gc.collect()
    model.session = tf.Session(profile=True)
    for _ in range(n_evals):
        # The serial path keeps energy reduction and ProdVirial inside the
        # profiled graph — the op set the paper's Fig 3 breaks down.  (The
        # batched engine computes those outside the graph, which would
        # silently shrink the CUSTOM share being measured here.)
        model.evaluate_serial(system, pi, pj)
    pct = model.session.stats.category_percentages()
    return {c: pct.get(c, 0.0) for c in CATEGORIES}


@pytest.fixture(scope="module")
def systems():
    return {
        "water": water_box((4, 4, 4), seed=0),
        "copper": fcc_lattice((4, 4, 4)),
    }


@pytest.mark.parametrize("system_name", ["water", "copper"])
@pytest.mark.parametrize("precision", ["double", "mixed"])
def test_breakdown(benchmark, systems, system_name, precision):
    # paper-sized nets; sel shrunk only as far as the small cells require
    if system_name == "water":
        cfg = DPConfig(
            type_names=("O", "H"), rcut=6.0, rcut_smth=0.5, sel=(46, 92),
            precision=precision,
        )
    else:
        cfg = DPConfig(
            type_names=("Cu",), rcut=7.0, rcut_smth=2.0, sel=(220,),
            precision=precision,
        )
    model = DeepPot(cfg)
    system = systems[system_name]

    pi, pj = neighbor_pairs(system, cfg.rcut)
    benchmark.pedantic(
        lambda: model.evaluate(system, pi, pj),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    BREAKDOWNS[(system_name, precision)] = _measure(model, system)


def test_zz_report(benchmark, systems):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(BREAKDOWNS) == 4
    print_header("Fig 3 — operator time breakdown (% of graph execution time)")
    print(f"{'config':<18}" + "".join(f"{c:>9}" for c in CATEGORIES)
          + f"{'paper GEMM':>12}")
    for (system_name, precision), pct in sorted(BREAKDOWNS.items()):
        row = f"{system_name + '-' + precision:<18}"
        row += "".join(f"{pct[c]:>8.1f}%" for c in CATEGORIES)
        row += f"{PAPER_GEMM_SHARE[(system_name, precision)]:>11}%"
        print(row)

    # Shape assertions: the network math (GEMM + TANH) dominates every
    # configuration, with GEMM always a leading category.  (On the paper's
    # V100 GEMM alone is 62-74%; NumPy's transcendental tanh is relatively
    # slower than its BLAS, which shifts some share from GEMM to TANH.)
    # The percentages are profiled wall-clock shares, so the thresholds honor
    # the REPRO_BENCH_STRICT=0 escape hatch like every timing comparison.
    from benchmarks.conftest import bench_strict

    if bench_strict():
        for key, pct in BREAKDOWNS.items():
            assert pct["GEMM"] + pct["TANH"] > 40.0, key
            top_two = sorted(pct.values(), reverse=True)[:2]
            assert pct["GEMM"] >= top_two[1] - 5.0, key
