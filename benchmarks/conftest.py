"""Shared fixtures for the benchmark harness.

One benchmark module per paper table/figure (see DESIGN.md's experiment
index).  Absolute numbers are laptop numbers; every module prints its
measured values next to the paper's so the *shape* comparison is explicit
(EXPERIMENTS.md records a full run).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.structures import fcc_lattice, water_box
from repro.dp.model import DeepPot, DPConfig
from repro.md.neighbor import neighbor_pairs


@pytest.fixture(scope="session")
def water_192():
    """192-atom water cell — big enough for the paper's 6 Å water cutoff."""
    return water_box((4, 4, 4), seed=0)


@pytest.fixture(scope="session")
def water_81():
    return water_box((3, 3, 3), seed=0)


@pytest.fixture(scope="session")
def copper_256():
    return fcc_lattice((4, 4, 4))


@pytest.fixture(scope="session")
def paper_water_config():
    """The paper's water hyper-parameters (r_c=6 Å, sel=[46,92], 25/50/100,
    240^3) — used where fidelity to the paper's op shapes matters."""
    return DPConfig.paper_water()


@pytest.fixture(scope="session")
def zoo_water_model():
    from repro.zoo import get_water_model

    return get_water_model()


@pytest.fixture(scope="session")
def zoo_copper_model():
    from repro.zoo import get_copper_model

    return get_copper_model()


def pairs_for(system, cutoff):
    return neighbor_pairs(system, cutoff)


def print_header(title: str) -> None:
    print("\n" + "=" * 74)
    print(title)
    print("=" * 74)
