"""Per-step cost model: roofline compute + overhead + ghosts + communication.

    t_step(n_atom, n_ghost) =  F·n_atom / (P_gpu · eff)      (network compute)
                             + t_fixed                        (latency floor)
                             + t_ghost · n_ghost              (env/halo work)
                             + t_comm(ghost bytes, messages)  (halo exchange)

with F the counted FLOPs/atom/step (:mod:`repro.perfmodel.flops`), P_gpu the
per-GPU peak for the precision, and eff the calibrated sustained GEMM
efficiency.  Ghost counts come from exact sub-domain geometry — the same
construction :mod:`repro.parallel.decomp` performs with real atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.perfmodel.flops import dp_flops_per_atom
from repro.perfmodel.machine import SUMMIT, SummitMachine


@dataclass(frozen=True)
class SystemSpec:
    """A benchmark system for the cost model."""

    name: str
    flops_per_atom_step: float  # counted FLOPs (fwd+bwd, calibrated)
    number_density: float  # atoms / Å^3
    ghost_cutoff: float  # r_c + skin, Å
    gemm_efficiency: float  # calibrated sustained efficiency
    timestep_fs: float
    bytes_per_ghost_step: float = 24.0  # 3 doubles of position forwarded
    # fp32 GEMMs on tall-skinny shapes sustain a lower fraction of their
    # (doubled) peak; 0.78 reproduces the paper's ~1.5x mixed speedup.
    mixed_efficiency_factor: float = 0.78


def _paper_config(system: str):
    from repro.dp.model import DPConfig

    return DPConfig.paper_water() if system == "water" else DPConfig.paper_copper()


def make_spec(system: str) -> SystemSpec:
    """Build the water/copper spec with FLOPs from the analytic counter."""
    cfg = _paper_config(system)
    flops = dp_flops_per_atom(cfg).per_step()
    if system == "water":
        # liquid water at ambient density: 0.1004 atoms/Å^3
        return SystemSpec(
            name="water",
            flops_per_atom_step=flops,
            number_density=0.1004,
            ghost_cutoff=cfg.rcut + 2.0,
            gemm_efficiency=0.42,
            timestep_fs=0.5,
        )
    # fcc copper: 4 atoms / a^3, a = 3.615 Å
    return SystemSpec(
        name="copper",
        flops_per_atom_step=flops,
        number_density=4.0 / 3.615**3,
        ghost_cutoff=cfg.rcut + 2.0,
        gemm_efficiency=0.49,
        timestep_fs=1.0,
    )


WATER_SPEC = make_spec("water")
COPPER_SPEC = make_spec("copper")


def decompose_gpus(n_gpus: int) -> tuple[int, int, int]:
    """Near-cubic factorization of the GPU count into a 3D process grid."""
    best = (n_gpus, 1, 1)
    best_score = float("inf")
    for px in range(1, int(round(n_gpus ** (1 / 3))) * 2 + 2):
        if n_gpus % px:
            continue
        rest = n_gpus // px
        for py in range(1, int(np.sqrt(rest)) + 1):
            if rest % py:
                continue
            pz = rest // py
            dims = sorted((px, py, pz))
            score = dims[2] / dims[0]  # aspect ratio
            if score < best_score:
                best_score = score
                best = (px, py, pz)
    return best


def ghost_count(
    n_atoms: int, n_gpus: int, spec: SystemSpec
) -> float:
    """Average ghost atoms per GPU from exact shell geometry.

    The global box is cubic with V = N/ρ; each GPU owns a rectangular
    sub-domain from the near-cubic grid factorization; the ghost region is
    the r_ghost-thick shell around it.
    """
    volume = n_atoms / spec.number_density
    edge = volume ** (1.0 / 3.0)
    px, py, pz = decompose_gpus(n_gpus)
    lx, ly, lz = edge / px, edge / py, edge / pz
    rg = spec.ghost_cutoff
    shell = (lx + 2 * rg) * (ly + 2 * rg) * (lz + 2 * rg) - lx * ly * lz
    return shell * spec.number_density


def memory_per_gpu(
    n_atoms: int,
    n_gpus: int,
    spec: SystemSpec,
    precision: str = "double",
    config=None,
) -> float:
    """Estimated GPU memory footprint in bytes for the DP working set.

    Dominated by per-(atom, neighbor-slot) arrays: the environment matrix
    (4), its derivative (12), rij (3), the neighbor list (1), embedding
    activations (sum of layer widths, saved for backprop) and the final
    embedding output.  Sec 6.1's observation that copper is ~3.5x water in
    memory under equal atom counts emerges from the neighbor counts
    (500 vs 138).  Network parameters are negligible in comparison.
    """
    if config is None:
        config = _paper_config(spec.name)
    atoms = n_atoms / n_gpus + ghost_count(n_atoms, n_gpus, spec)
    nnei = config.nnei
    elem_bytes = 4.0 if precision == "mixed" else 8.0
    # resident per slot: env matrix (4) + derivative (12) + rij (3) in fp64,
    # the int64 neighbor list, and the embedding output G plus one gradient
    # buffer (intermediate layer activations are freed/recomputed).
    act_width = 2 * config.embedding_layers[-1]
    per_slot = (4 + 12 + 3) * 8.0 + 8.0 + act_width * elem_bytes
    per_atom = nnei * per_slot + config.embedding_layers[-1] * config.axis_neuron * elem_bytes
    return atoms * per_atom


def step_time(
    n_atoms: int,
    n_gpus: int,
    spec: SystemSpec,
    precision: str = "double",
    machine: SummitMachine = SUMMIT,
) -> dict:
    """Model one MD step; returns the component breakdown (seconds)."""
    atoms_per_gpu = n_atoms / n_gpus
    ghosts = ghost_count(n_atoms, n_gpus, spec)

    peak = machine.gpu_peak(precision)
    eff = spec.gemm_efficiency
    if precision == "mixed":
        eff *= spec.mixed_efficiency_factor
    flops = spec.flops_per_atom_step * atoms_per_gpu
    t_compute = flops / (peak * eff)
    t_fixed = machine.fixed_step_seconds
    t_ghost = machine.ghost_env_seconds * ghosts
    # halo exchange: 26 neighbor messages + position bytes over the NIC share
    nic_per_gpu = machine.nic_bandwidth / machine.gpus_per_node
    t_comm = 26 * machine.mpi_latency + ghosts * spec.bytes_per_ghost_step / nic_per_gpu

    total = t_compute + t_fixed + t_ghost + t_comm
    return {
        "atoms_per_gpu": atoms_per_gpu,
        "ghosts_per_gpu": ghosts,
        "t_compute": t_compute,
        "t_fixed": t_fixed,
        "t_ghost": t_ghost,
        "t_comm": t_comm,
        "t_step": total,
        "flops_per_gpu_step": flops,
    }
