"""Concurrent learning (DP-GEN, the paper's ref [68]).

The paper's models were produced by an active-learning loop: train an
ensemble of DP models from different seeds, explore configuration space with
DP-driven MD, and harvest configurations where the ensemble disagrees (the
"model deviation" criterion) for new ab initio labeling.  This module
reproduces that loop against the oracle potentials.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.dp.data import Dataset, label_frames
from repro.dp.model import DeepPot, DPConfig
from repro.dp.pair import DeepPotPair
from repro.dp.train import TrainConfig, Trainer
from repro.md.integrators import Langevin
from repro.md.neighbor import neighbor_pairs
from repro.md.potential import Potential
from repro.md.simulation import Simulation
from repro.md.system import System
from repro.md.velocity import boltzmann_velocities


@dataclass
class ModelEnsemble:
    """N independently initialised DP models sharing one dataset."""

    config: DPConfig
    n_models: int = 4
    models: list[DeepPot] = field(default_factory=list)

    def __post_init__(self):
        if not self.models:
            self.models = [
                DeepPot(self.config, rng=np.random.default_rng(1000 + 17 * k))
                for k in range(self.n_models)
            ]
        self._engines = None

    @property
    def engines(self):
        """One persistent :class:`~repro.dp.batch.BatchedEvaluator` per
        member, so repeated deviation screens reuse warm scratch buffers."""
        if self._engines is None:
            from repro.dp.batch import BatchedEvaluator

            self._engines = [BatchedEvaluator(m) for m in self.models]
        return self._engines

    def train_all(self, dataset: Dataset, train_config: TrainConfig) -> None:
        for k, model in enumerate(self.models):
            dataset.apply_stats(model)
            cfg = TrainConfig(**{**train_config.__dict__, "seed": train_config.seed + k})
            Trainer(model, dataset, cfg).train()

    def force_deviations(
        self, systems: Sequence[System], chunk: int = 64
    ) -> np.ndarray:
        """Max-over-atoms std-over-models of the force, one value per frame.

        The model-deviation screen is embarrassingly batchable: each member
        evaluates batched graph executions of up to ``chunk`` frames instead
        of n_frames × n_models single-frame evaluations.  Work proceeds
        chunk-by-chunk — pair lists built, every member evaluated, the
        chunk's deviations reduced, results discarded — so peak memory
        (engine scratch AND retained results) is bounded by the chunk size
        on huge harvests, like the serving layer's ``max_batch``.  Per-frame
        forces are bitwise identical to what ``model.evaluate`` would return
        (the engine's batch-composition independence), so the deviation
        values match the serial screen exactly — and are independent of
        ``chunk``.
        """
        systems = list(systems)
        if not systems:
            return np.zeros(0)
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        deviations = np.empty(len(systems))
        for lo in range(0, len(systems), chunk):
            chunk_systems = systems[lo : lo + chunk]
            pair_lists = [
                neighbor_pairs(s, self.config.rcut) for s in chunk_systems
            ]
            per_model = [
                engine.evaluate_batch(chunk_systems, pair_lists)
                for engine in self.engines
            ]
            for k in range(len(chunk_systems)):
                forces = np.stack(
                    [results[k].forces for results in per_model]
                )  # (n_models, N, 3)
                mean = forces.mean(axis=0)
                var = ((forces - mean) ** 2).mean(axis=0).sum(axis=1)
                deviations[lo + k] = np.sqrt(var).max()
        return deviations

    def force_deviation(self, system: System) -> float:
        """Single-frame convenience wrapper around :meth:`force_deviations`."""
        return float(self.force_deviations([system])[0])


@dataclass
class ActiveLearner:
    """The DP-GEN loop: explore -> select -> label -> retrain.

    Configurations whose ensemble force deviation falls inside
    [trust_lo, trust_hi] are "candidates" (inaccurate but not unphysical) and
    get oracle labels; below trust_lo the models already agree, above
    trust_hi the configuration is discarded as garbage — the standard DP-GEN
    selection windows.
    """

    ensemble: ModelEnsemble
    oracle: Potential
    trust_lo: float = 0.05  # eV/Å
    trust_hi: float = 0.50
    md_steps: int = 100
    md_stride: int = 10
    temperature: float = 330.0
    dt: float = 0.0005
    seed: int = 0

    def explore(self, start: System) -> list[System]:
        """DP-driven MD with the first ensemble member; harvest snapshots."""
        from repro.md.neighbor import fitted_neighbor_list

        sysw = start.copy()
        boltzmann_velocities(sysw, self.temperature, seed=self.seed)
        pair = DeepPotPair(self.ensemble.models[0])
        sim = Simulation(
            sysw,
            pair,
            dt=self.dt,
            integrator=Langevin(
                temperature=self.temperature, damp=0.1, seed=self.seed
            ),
            neighbor=fitted_neighbor_list(sysw, pair.cutoff),
        )
        frames: list[System] = []
        for _ in range(self.md_steps // self.md_stride):
            sim.run(self.md_stride)
            frames.append(sysw.copy())
        return frames

    def select(self, frames: Sequence[System]) -> tuple[list[System], dict]:
        """Split explored frames into accurate / candidate / failed.

        The whole harvest is screened with :meth:`ModelEnsemble.
        force_deviations` — one batched evaluation per ensemble member —
        and the selection windows are applied to the resulting vector.
        """
        stats = {"accurate": 0, "candidate": 0, "failed": 0}
        candidates: list[System] = []
        frames = list(frames)  # the screen + window loop both iterate it
        deviations = self.ensemble.force_deviations(frames)
        for frame, dev in zip(frames, deviations):
            if dev < self.trust_lo:
                stats["accurate"] += 1
            elif dev <= self.trust_hi:
                stats["candidate"] += 1
                candidates.append(frame)
            else:
                stats["failed"] += 1
        return candidates, stats

    def iteration(
        self, dataset: Dataset, start: System, train_config: TrainConfig
    ) -> dict:
        """One full DP-GEN cycle; mutates ``dataset`` in place."""
        frames = self.explore(start)
        candidates, stats = self.select(frames)
        if candidates:
            labeled = label_frames(candidates, self.oracle)
            for f in labeled.frames:
                dataset.add(f)
            self.ensemble.train_all(dataset, train_config)
        stats["n_added"] = len(candidates)
        stats["dataset_size"] = len(dataset)
        return stats
