"""numexpr evaluation of fused elementwise groups (optional backend).

Imported only by :class:`repro.tfmini.backends.NumexprBackend`, which is
registered only when the optional ``numexpr`` package is importable — this
module must never be imported unconditionally.  Groups whose members all
map onto numexpr syntax evaluate the whole chain in one ``ne.evaluate``
call (numexpr runs its own blocked VM over the inputs); anything else
falls back to the blocked member-kernel interpreter, which is always
available.  numexpr results are tolerance-tiered, not bitwise: its VM may
reassociate and substitutes its own transcendental kernels.
"""

from __future__ import annotations

try:
    import numexpr as ne
except ImportError as _exc:  # pragma: no cover - numexpr absent in CI
    raise ImportError(
        "repro.tfmini.numexpr_group requires the optional 'numexpr' package; "
        "the numexpr backend is only registered when it is importable"
    ) from _exc
import numpy as np

from repro.tfmini.fusion import FusedGroup, _sig

# op -> expression template; {0}/{1} are input subexpressions, attrs
# interpolate as repr'd python floats (deterministic for a fixed graph).
_TEMPLATES = {
    "add": "({0} + {1})",
    "sub": "({0} - {1})",
    "mul": "({0} * {1})",
    "div": "({0} / {1})",
    "neg": "(-{0})",
    "square": "({0} * {0})",
    "one_minus": "(1.0 - {0})",
    "tanh": "tanh({0})",
    "exp": "exp({0})",
    "log": "log({0})",
    "sqrt": "sqrt({0})",
    "sigmoid": "(1.0 / (1.0 + exp(-{0})))",
    "tanh_grad": "({1} * (1.0 - {0} * {0}))",
}


class NumexprGroup(FusedGroup):
    """A fused group evaluated through numexpr when expressible."""

    __slots__ = ("_expr", "_expr_names")

    def __init__(self, members, tile_bytes=None):
        super().__init__(members, tile_bytes=tile_bytes)
        self._expr = None
        self._expr_names = None
        self._compile_expr()

    def _compile_expr(self) -> None:
        names = [f"i{k}" for k in range(len(self.ext_slots))]
        by_slot = dict(zip(self.ext_slots, names))
        exprs: dict[int, str] = {}
        for m in self.members:
            args = [
                exprs.get(s) or by_slot.get(s) for s in m.input_slots
            ]
            if any(a is None for a in args):
                return  # unexpected wiring — keep the blocked fallback
            op = m.op
            if op == "scale":
                expr = f"({args[0]} * {m.attrs['s']!r})"
            elif op == "pow_scalar":
                expr = f"({args[0]} ** {m.attrs['p']!r})"
            elif op in _TEMPLATES:
                expr = _TEMPLATES[op].format(*args)
            else:
                return  # cast/relu/step_mask etc.: not expressible
            exprs[m.out_slot] = expr
        self._expr = exprs[self.out_slot]
        self._expr_names = names

    def run_blocked(self, ins, attrs, out: np.ndarray) -> None:
        if self._expr is None:
            super().run_blocked(ins, attrs, out)
            return
        local = {
            name: v if isinstance(v, np.ndarray) else np.asarray(v)
            for name, v in zip(self._expr_names, ins)
        }
        ne.evaluate(self._expr, local_dict=local, out=out, casting="unsafe")
        key = tuple(_sig(a) for a in ins)
        if key not in self._meta:
            # Keep metadata warm for consumers (plancheck, reporting).
            self._remember(self._meta, key, self.last_meta or [])
        self.blocked_runs += 1
