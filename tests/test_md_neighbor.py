"""Neighbor-list correctness: cell list == brute force, skin/rebuild policy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.box import Box
from repro.md.neighbor import (
    NeighborList,
    _brute_force_pairs,
    _cell_list_pairs,
    full_pairs,
    neighbor_pairs,
)
from repro.md.system import System


def random_system(n, box_len, seed):
    rng = np.random.default_rng(seed)
    return System(
        box=Box([box_len] * 3),
        positions=rng.uniform(0, box_len, size=(n, 3)),
        types=np.zeros(n, dtype=np.int64),
        masses=np.ones(1),
    )


def pair_set(pi, pj):
    return set(zip(pi.tolist(), pj.tolist()))


class TestPairBuilders:
    def test_two_atoms_within_cutoff(self):
        sys = random_system(2, 20.0, 0)
        sys.positions[:] = [[1.0, 1.0, 1.0], [3.0, 1.0, 1.0]]
        pi, pj = neighbor_pairs(sys, 2.5)
        assert pair_set(pi, pj) == {(0, 1)}

    def test_pair_through_boundary(self):
        sys = random_system(2, 20.0, 0)
        sys.positions[:] = [[0.5, 10.0, 10.0], [19.5, 10.0, 10.0]]
        pi, pj = neighbor_pairs(sys, 2.0)
        assert pair_set(pi, pj) == {(0, 1)}

    def test_no_self_pairs_and_half_list(self):
        sys = random_system(50, 15.0, 3)
        pi, pj = neighbor_pairs(sys, 5.0)
        assert np.all(pi < pj)

    def test_cutoff_respected(self):
        sys = random_system(100, 20.0, 4)
        pi, pj = neighbor_pairs(sys, 4.0)
        disp = sys.box.minimum_image(sys.positions[pj] - sys.positions[pi])
        r = np.sqrt((disp**2).sum(axis=1))
        assert np.all(r <= 4.0 + 1e-12)

    def test_cutoff_too_large_raises(self):
        sys = random_system(10, 8.0, 5)
        with pytest.raises(ValueError, match="minimum-image"):
            neighbor_pairs(sys, 4.5)

    def test_empty_system(self):
        sys = random_system(0, 10.0, 0)
        pi, pj = neighbor_pairs(sys, 3.0)
        assert pi.size == 0 and pj.size == 0

    @given(
        n=st.integers(2, 120),
        seed=st.integers(0, 10**6),
        cutoff=st.floats(1.0, 6.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_cell_list_matches_brute_force(self, n, seed, cutoff):
        sys = random_system(n, 20.0, seed)
        bi, bj = _brute_force_pairs(sys.positions, sys.box, cutoff)
        ci, cj = _cell_list_pairs(sys.positions, sys.box, cutoff)
        assert pair_set(bi, bj) == pair_set(ci, cj)

    def test_cell_list_large_dense_system(self):
        sys = random_system(3000, 30.0, 9)
        bi, bj = _brute_force_pairs(sys.positions, sys.box, 4.5)
        ci, cj = _cell_list_pairs(sys.positions, sys.box, 4.5)
        assert pair_set(bi, bj) == pair_set(ci, cj)

    def test_full_pairs_doubles(self):
        pi = np.array([0, 1])
        pj = np.array([2, 3])
        fi, fj = full_pairs(pi, pj)
        assert pair_set(fi, fj) == {(0, 2), (1, 3), (2, 0), (3, 1)}


class TestVerletList:
    def test_build_and_filter(self):
        sys = random_system(60, 18.0, 7)
        nl = NeighborList(cutoff=4.0, skin=2.0)
        nl.build(sys)
        # skin-padded list is a superset of the true list
        ti, tj = neighbor_pairs(sys, 4.0)
        assert pair_set(ti, tj) <= pair_set(nl.pair_i, nl.pair_j)
        fi, fj = nl.pairs_within_cutoff(sys)
        assert pair_set(fi, fj) == pair_set(ti, tj)

    def test_rebuild_every_n_steps(self):
        sys = random_system(20, 18.0, 8)
        nl = NeighborList(cutoff=4.0, skin=2.0, rebuild_every=50)
        nl.build(sys, step=0)
        assert not nl.needs_rebuild(sys, step=10)
        assert nl.needs_rebuild(sys, step=50)

    def test_rebuild_on_large_displacement(self):
        sys = random_system(20, 18.0, 8)
        nl = NeighborList(cutoff=4.0, skin=2.0, rebuild_every=50)
        nl.build(sys, step=0)
        sys.positions[0] += [1.5, 0, 0]  # > skin/2
        assert nl.needs_rebuild(sys, step=1)

    def test_no_rebuild_on_small_displacement(self):
        sys = random_system(20, 18.0, 8)
        nl = NeighborList(cutoff=4.0, skin=2.0, rebuild_every=50)
        nl.build(sys, step=0)
        sys.positions[0] += [0.4, 0, 0]  # < skin/2
        assert not nl.needs_rebuild(sys, step=1)

    def test_rebuild_on_box_change(self):
        sys = random_system(20, 18.0, 8)
        nl = NeighborList(cutoff=4.0, skin=2.0)
        nl.build(sys, step=0)
        sys.box.lengths[2] *= 1.01
        assert nl.needs_rebuild(sys, step=1)

    def test_maybe_rebuild_counts_builds(self):
        sys = random_system(20, 18.0, 8)
        nl = NeighborList(cutoff=4.0, skin=2.0, rebuild_every=2)
        nl.maybe_rebuild(sys, 0)
        nl.maybe_rebuild(sys, 1)
        nl.maybe_rebuild(sys, 2)
        assert nl.n_builds == 2

    def test_verlet_list_stays_correct_between_rebuilds(self):
        """Atoms drifting < skin/2: the padded list still contains every
        true pair — the invariant that makes rebuild-every-50 sound."""
        sys = random_system(80, 18.0, 11)
        nl = NeighborList(cutoff=4.0, skin=2.0)
        nl.build(sys, step=0)
        rng = np.random.default_rng(0)
        for _ in range(5):
            sys.positions += rng.normal(scale=0.1, size=sys.positions.shape)
            ti, tj = neighbor_pairs(sys, 4.0)
            assert pair_set(ti, tj) <= pair_set(nl.pair_i, nl.pair_j)
