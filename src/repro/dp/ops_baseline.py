"""Baseline customized operators — the pre-optimization DeePMD-kit CPU path.

These mirror the original serial implementation the paper benchmarks against
in Table 3: per-atom Python loops over AoS neighbor records, with explicit
per-neighbor branching on the atomic type when locating the slot in the
embedding layout.  They produce *bit-comparable* results to the optimized
operators (differential-tested), and exist so the Table 3 speedups can be
measured rather than asserted.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dp.env_mat import smooth_weight
from repro.dp.nlist_fmt import PAD, FormattedNeighbors
from repro.md.system import System


def environment_baseline(
    system: System,
    fmt: FormattedNeighbors,
    r_smth: float,
    r_cut: float,
    pbc: bool = True,
):
    """Loop/branch implementation of the Environment operator."""
    nloc, nnei = fmt.nlist.shape
    em = np.zeros((nloc, nnei, 4))
    em_deriv = np.zeros((nloc, nnei, 4, 3))
    rij = np.zeros((nloc, nnei, 3))
    lengths = system.box.lengths
    pos = system.positions
    eye = np.eye(3)

    for i in range(nloc):
        for jj in range(nnei):
            j = fmt.nlist[i, jj]
            if j == PAD:
                continue  # the branch the optimized layout removes
            d = pos[j] - pos[i]
            if pbc:
                # minimum image, scalar form
                d = d - lengths * np.round(d / lengths)
            r = math.sqrt(d @ d)
            rij[i, jj] = d
            s_arr, ds_arr = smooth_weight(np.array([r]), r_smth, r_cut)
            s, ds = float(s_arr[0]), float(ds_arr[0])
            if s == 0.0 and ds == 0.0:
                continue
            u = d / r
            em[i, jj, 0] = s
            em[i, jj, 1:] = s * u
            em_deriv[i, jj, 0, :] = ds * u
            em_deriv[i, jj, 1:, :] = ds * np.outer(u, u) + (s / r) * (
                eye - np.outer(u, u)
            )
    return em, em_deriv, rij


def prod_force_baseline(
    net_deriv: np.ndarray,
    em_deriv: np.ndarray,
    nlist: np.ndarray,
    atom_idx: np.ndarray,
    natoms: int,
) -> np.ndarray:
    """Loop implementation of ProdForce."""
    forces = np.zeros((natoms, 3))
    nloc, nnei = nlist.shape
    for row in range(nloc):
        i = atom_idx[row]
        for jj in range(nnei):
            j = nlist[row, jj]
            if j == PAD:
                continue
            contrib = np.zeros(3)
            for c in range(4):
                contrib += net_deriv[row, jj, c] * em_deriv[row, jj, c]
            forces[i] += contrib
            forces[j] -= contrib
    return forces


def prod_virial_baseline(
    net_deriv: np.ndarray,
    em_deriv: np.ndarray,
    rij: np.ndarray,
    nlist: np.ndarray,
) -> np.ndarray:
    """Loop implementation of ProdVirial."""
    virial = np.zeros((3, 3))
    nloc, nnei = nlist.shape
    for row in range(nloc):
        for jj in range(nnei):
            if nlist[row, jj] == PAD:
                continue
            de_dd = np.zeros(3)
            for c in range(4):
                de_dd += net_deriv[row, jj, c] * em_deriv[row, jj, c]
            virial -= np.outer(rij[row, jj], de_dd)
    return virial
