"""Embarrassingly-parallel sampling with the batched multi-replica engine.

R replicas of a DP water box — each with its own velocity seed and Langevin
temperature — advance in lockstep through ONE batched force evaluation per
step (:class:`repro.md.ensemble.EnsembleSimulation`).  Statistics that need
many decorrelated samples, like the O–O radial distribution function, then
average over replicas *and* time, collecting R× the samples per MD step.

The run ends with a paired timing comparison: the same frames evaluated as
one R-frame batch vs R separate single-frame evaluations — the per-frame
amortization the engine exists for (the paper's Sec 7 lesson, applied across
replicas instead of atoms).

Run:  python examples/ensemble_sampling.py [--replicas R] [--steps N]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis.rdf import average_rdf
from repro.analysis.structures import water_box
from repro.dp.batch import BatchedEvaluator
from repro.md import Langevin
from repro.md.ensemble import EnsembleMSD, EnsembleSimulation
from repro.zoo import get_water_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replicas", type=int, default=8)
    parser.add_argument("--steps", type=int, default=60)
    parser.add_argument("--temperature", type=float, default=330.0)
    args = parser.parse_args()

    model = get_water_model()
    base = water_box((3, 3, 3), seed=2)

    # A small temperature ladder around the target, one seed per replica.
    temps = np.linspace(
        0.9 * args.temperature, 1.1 * args.temperature, args.replicas
    )
    ens = EnsembleSimulation.from_system(
        base,
        model,
        n_replicas=args.replicas,
        temperature=temps,
        seed=11,
        dt=0.0005,
        integrators=[
            Langevin(temperature=float(t), damp=0.1, seed=100 + k)
            for k, t in enumerate(temps)
        ],
    )

    print(f"{args.replicas} replicas x {base.n_atoms} atoms, "
          f"T = {temps[0]:.0f}..{temps[-1]:.0f} K")
    frames: list[np.ndarray] = []
    msd = EnsembleMSD(ens, every=5)  # replica-resolved unwrapped trajectories

    def collect(sim: EnsembleSimulation) -> None:
        if sim.step_count % 10 == 0:
            frames.extend(s.positions.copy() for s in sim.systems)
        msd(sim)

    ens.run(args.steps, callback=collect)

    print(f"ran {args.steps} steps: {ens.force_evaluations} batched "
          f"evaluations ({ens.engine.frames_evaluated} frames), "
          f"{ens.loop_seconds:.2f} s loop")
    for k, system in enumerate(ens.systems):
        res = ens.last_results()[k]
        print(f"  replica {k}: T = {system.temperature():6.1f} K  "
              f"E = {res.energy:10.4f} eV")

    # O-O RDF averaged over replicas and strided frames.
    r_max = 0.45 * base.box.lengths.min()
    centers, g = average_rdf(frames, template=base, r_max=r_max, n_bins=60,
                             type_a=0, type_b=0)
    peak = centers[np.argmax(g)]
    print(f"\nO-O g(r) from {len(frames)} frames: first peak at "
          f"{peak:.2f} Å (experiment: ~2.8 Å)")

    # Replica-averaged MSD/diffusion: every replica contributes an
    # independent curve, so the spread over replicas is an honest error bar
    # (the ROADMAP's "ensemble-aware analysis" estimator).
    mean_msd, msd_err = msd.msd()
    est = msd.diffusion(fit_from=0.4)
    print(f"\nMSD over {msd.n_frames} frames x {msd.n_replicas} replicas: "
          f"final {mean_msd[-1]:.3f} ± {msd_err[-1]:.3f} Å²")
    print(f"D = {est.mean:.4f} ± {est.stderr:.4f} Å²/ps "
          f"(per-replica spread over {est.per_replica.size} estimates; "
          f"experiment ~0.23 Å²/ps at 300 K)")

    # Paired amortization measurement on the final configurations.
    systems = ens.systems
    pls = [(nl.pair_i, nl.pair_j) for nl in ens.neighbors]
    batch_engine = ens.engine
    single_engine = BatchedEvaluator(model)
    for s, pl in zip(systems, pls):  # warm the single-frame scratch
        single_engine.evaluate_batch([s], [pl])
    t0 = time.perf_counter()
    batch_engine.evaluate_batch(systems, pls)
    t_batch = time.perf_counter() - t0
    t0 = time.perf_counter()
    for s, pl in zip(systems, pls):
        single_engine.evaluate_batch([s], [pl])
    t_single = time.perf_counter() - t0
    print(f"\nbatched: {t_batch * 1e3:6.1f} ms for R={len(systems)} "
          f"({t_batch / len(systems) * 1e3:.2f} ms/frame)")
    print(f"serial : {t_single * 1e3:6.1f} ms "
          f"({t_single / len(systems) * 1e3:.2f} ms/frame)")
    print(f"per-frame ratio (serial/batched): {t_single / t_batch:.2f}x")
    print("(amortization grows as frames shrink relative to fixed per-eval")
    print(" cost — see benchmarks/test_batched_eval.py for the scan over R)")


if __name__ == "__main__":
    main()
