"""Domain-decomposed DP molecular dynamics on simulated MPI ranks (Sec 5.4).

Demonstrates the parallel machinery the paper scales to 27,360 GPUs:

* spatial partitioning of the box into one sub-domain per rank (Fig 1 (a));
* ghost-region halo exchange each step (forward communication), ghost-force
  return (reverse communication);
* thermodynamic output via non-blocking Iallreduce at reduced frequency;
* exact agreement with the serial engine, plus the communication ledger.

Run:  python examples/distributed_md.py [--grid 2 2 1] [--steps N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.structures import water_box
from repro.dp.pair import DeepPotPair
from repro.md import NeighborList, Simulation, boltzmann_velocities
from repro.parallel import DistributedSimulation
from repro.zoo import get_water_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid", type=int, nargs=3, default=(2, 2, 1))
    parser.add_argument("--steps", type=int, default=20)
    args = parser.parse_args()

    model = get_water_model()
    system = water_box((4, 4, 4), seed=0)
    boltzmann_velocities(system, 330.0, seed=3)
    grid = tuple(args.grid)
    n_ranks = int(np.prod(grid))
    print(f"System: {system.n_atoms} atoms; grid {grid} -> {n_ranks} ranks")

    # --- serial reference ------------------------------------------------------
    serial_sys = system.copy()
    serial = Simulation(
        serial_sys,
        DeepPotPair(model),
        dt=0.0005,
        neighbor=NeighborList(cutoff=model.config.rcut, skin=1.0, rebuild_every=10),
    )
    serial.run(args.steps)

    # --- distributed -----------------------------------------------------------
    dist = DistributedSimulation(
        system.copy(), model, grid=grid, dt=0.0005, skin=1.0,
        rebuild_every=10, thermo_every=10,
    )
    print("\nRank domains and ghost regions (Fig 1 (a)):")
    for dom in dist.decomp.domains:
        print(
            f"  rank {dom.rank}: {dom.n_own:>4} local atoms, "
            f"{dom.n_ghost:>4} ghost atoms"
        )
    dist.run(args.steps)

    gathered = dist.current_system()
    diff = gathered.box.minimum_image(
        gathered.positions - gathered.box.wrap(serial_sys.positions)
    )
    print(f"\nMax |distributed - serial| after {args.steps} steps: "
          f"{np.abs(diff).max():.2e} Å (bitwise-level agreement)")

    s = dist.comm.stats
    print("\nCommunication ledger:")
    print(f"  point-to-point messages: {s.p2p_messages}")
    print(f"  point-to-point bytes:    {s.p2p_bytes:,}")
    print(f"  non-blocking allreduces: {s.iallreduce_calls} "
          f"(thermo every {dist.thermo_every} steps — the Sec 5.4 "
          f"reduced-output-frequency optimization)")

    print("\nThermo log (reduced across ranks):")
    print(f"{'step':>6} {'E_tot/eV':>12} {'T/K':>8}")
    for row in dist.thermo:
        print(f"{row.step:>6} {row.total_energy:>12.4f} {row.temperature:>8.1f}")


if __name__ == "__main__":
    main()
