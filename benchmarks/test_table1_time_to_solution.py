"""Table 1 — time-to-solution survey: this work vs prior ab-initio-accuracy MD.

Two kinds of rows are reproduced:

* measured — our Python DP engine's actual TtS (s/step/atom) on laptop-scale
  water and copper cells, both for the optimized path and for the baseline
  (pre-optimization) custom-op path, mirroring the "Baseline DeePMD-kit"
  row;
* modeled — the Summit cost-model TtS for the paper's 403M-atom water and
  113M-atom copper headline rows.

The headline shape: DP beats every DFT row by >=5 orders of magnitude, and
the optimized path beats the baseline path by a large factor.
"""

import pytest

from benchmarks.conftest import print_header
from repro.dp.pair import DeepPotPair
from repro.md import Simulation, boltzmann_velocities
from repro.md.neighbor import fitted_neighbor_list
from repro.perfmodel import table1_rows
from repro.perfmodel.scaling import TABLE1_LITERATURE

RESULTS = {}
N_STEPS = 10


def _tts(model, system, backend: str) -> float:
    sysw = system.copy()
    boltzmann_velocities(sysw, 330.0, seed=1)
    pair = DeepPotPair(model, backend=backend)
    sim = Simulation(
        sysw, pair, dt=0.0005, neighbor=fitted_neighbor_list(sysw, pair.cutoff)
    )
    sim.run(N_STEPS)
    return sim.time_to_solution()


def test_water_optimized(benchmark, zoo_water_model, water_81):
    benchmark.pedantic(
        lambda: RESULTS.__setitem__(
            "water_opt", _tts(zoo_water_model, water_81, "optimized")
        ),
        rounds=1, iterations=1,
    )


def test_water_baseline_ops(benchmark, zoo_water_model, water_81):
    benchmark.pedantic(
        lambda: RESULTS.__setitem__(
            "water_base", _tts(zoo_water_model, water_81, "baseline")
        ),
        rounds=1, iterations=1,
    )


def test_copper_optimized(benchmark, zoo_copper_model, copper_256):
    benchmark.pedantic(
        lambda: RESULTS.__setitem__(
            "cu_opt", _tts(zoo_copper_model, copper_256, "optimized")
        ),
        rounds=1, iterations=1,
    )


def test_zz_report(benchmark):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert {"water_opt", "water_base", "cu_opt"} <= RESULTS.keys()
    print_header("Table 1 — time-to-solution survey (s/step/atom)")
    print(f"{'work':<34} {'system':<6} {'TtS':>10}")
    for name, year, pot, system, n_atoms, where, tts in TABLE1_LITERATURE:
        print(f"{name:<34} {system:<6} {tts:>10.1e}")
    print(f"{'This repo, baseline ops (Python)':<34} {'H2O':<6} "
          f"{RESULTS['water_base']:>10.1e}")
    print(f"{'This repo, optimized ops (Python)':<34} {'H2O':<6} "
          f"{RESULTS['water_opt']:>10.1e}")
    print(f"{'This repo, optimized ops (Python)':<34} {'Cu':<6} "
          f"{RESULTS['cu_opt']:>10.1e}")
    for r in table1_rows():
        print(f"{'This work, Summit model':<34} {r['system']:<6} "
              f"{r['tts_model']:>10.1e}  (paper: {r['tts_paper']:.1e})")

    # Shape assertions.
    assert RESULTS["water_opt"] < RESULTS["water_base"]
    # Our laptop Python TtS still beats every DFT row of Table 1.
    dft_best = 4.0e-3  # CONQUEST
    assert RESULTS["water_opt"] < dft_best
    # Summit-model headline rows match the paper.
    rows = {r["system"]: r for r in table1_rows()}
    assert rows["Cu"]["tts_model"] == pytest.approx(7.3e-10, rel=0.15)
    assert rows["H2O"]["tts_model"] == pytest.approx(2.7e-10, rel=0.15)
