"""Tests for the simulated-MPI layer: comm semantics, decomposition/ghost
correctness, distributed-vs-serial equality, setup staging."""

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp import DeepPot, DPConfig, DeepPotPair
from repro.dp.serialize import save_model
from repro.md import NeighborList, Simulation, boltzmann_velocities
from repro.md.neighbor import neighbor_pairs
from repro.parallel import (
    DistributedSimulation,
    DomainDecomposition,
    SimComm,
    baseline_setup,
    optimized_setup,
)


@pytest.fixture(scope="module")
def tiny_model():
    return DeepPot(DPConfig.tiny())


@pytest.fixture()
def water_sys():
    sys = water_box((4, 4, 4), seed=0)
    boltzmann_velocities(sys, 250.0, seed=2)
    return sys


class TestSimComm:
    def test_send_recv_fifo(self):
        comm = SimComm(2)
        comm.send(0, 1, np.array([1.0]))
        comm.send(0, 1, np.array([2.0]))
        assert comm.recv(1, 0)[0] == 1.0
        assert comm.recv(1, 0)[0] == 2.0

    def test_recv_without_send_deadlocks(self):
        comm = SimComm(2)
        with pytest.raises(RuntimeError, match="deadlock"):
            comm.recv(1, 0)

    def test_byte_accounting(self):
        comm = SimComm(2)
        comm.send(0, 1, np.zeros(10))  # 80 bytes
        assert comm.stats.p2p_bytes == 80
        assert comm.stats.p2p_messages == 1

    def test_allreduce_sum(self):
        comm = SimComm(3)
        assert comm.allreduce([1.0, 2.0, 3.0]) == pytest.approx(6.0)
        assert comm.stats.allreduce_calls == 1

    def test_allreduce_arrays(self):
        comm = SimComm(2)
        out = comm.allreduce([np.eye(2), np.eye(2)])
        np.testing.assert_array_equal(out, 2 * np.eye(2))

    def test_allreduce_wrong_count_raises(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.allreduce([1.0])

    def test_iallreduce_is_deferred(self):
        comm = SimComm(2)
        handle = comm.iallreduce([1.0, 2.0])
        assert not handle.completed
        assert handle.wait() == pytest.approx(3.0)
        assert handle.completed
        assert comm.stats.iallreduce_calls == 1

    def test_bcast_accounts_tree_traffic(self):
        comm = SimComm(4)
        out = comm.bcast(0, np.zeros(10))
        assert out.shape == (10,)
        assert comm.stats.bcast_bytes == 80 * 3

    def test_invalid_rank_raises(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.send(0, 5, b"x")


class TestDecomposition:
    def test_grid_rank_mismatch_raises(self):
        with pytest.raises(ValueError, match="grid"):
            DomainDecomposition((2, 2, 1), SimComm(3))

    def test_atoms_partitioned_completely(self, water_sys):
        comm = SimComm(8)
        decomp = DomainDecomposition((2, 2, 2), comm)
        decomp.assign_atoms(water_sys)
        all_ids = np.concatenate([d.global_idx for d in decomp.domains])
        assert sorted(all_ids.tolist()) == list(range(water_sys.n_atoms))

    def test_atoms_inside_their_domains(self, water_sys):
        comm = SimComm(4)
        decomp = DomainDecomposition((2, 2, 1), comm)
        decomp.assign_atoms(water_sys)
        for dom in decomp.domains:
            assert np.all(dom.positions >= dom.lo - 1e-12)
            assert np.all(dom.positions < dom.hi + 1e-12)

    def test_ghost_region_complete(self, water_sys):
        """Every atom within the ghost cutoff of a domain (under PBC) must be
        present as a local or ghost — verified against brute force."""
        comm = SimComm(4)
        decomp = DomainDecomposition((2, 2, 1), comm)
        decomp.assign_atoms(water_sys)
        gc = 3.0
        decomp.build_ghost_lists(water_sys.box, gc)
        box = water_sys.box
        for dom in decomp.domains:
            local = dom.local_system(box, water_sys.masses, water_sys.type_names)
            # brute force: for each owned atom, all neighbors within gc must
            # appear among local+ghost coordinates at the right displacement
            pi, pj = neighbor_pairs(water_sys, gc)
            for a, b in zip(pi, pj):
                for center, other in ((a, b), (b, a)):
                    rows = np.flatnonzero(dom.global_idx == center)
                    if rows.size == 0:
                        continue
                    d_global = box.minimum_image(
                        water_sys.positions[other] - water_sys.positions[center]
                    )
                    target = local.positions[rows[0]] + d_global
                    dists = np.linalg.norm(local.positions - target, axis=1)
                    assert dists.min() < 1e-9, (center, other)

    def test_ghost_counts_scale_with_cutoff(self, water_sys):
        comm = SimComm(4)
        decomp = DomainDecomposition((2, 2, 1), comm)
        decomp.assign_atoms(water_sys)
        decomp.build_ghost_lists(water_sys.box, 2.0)
        small = decomp.ghost_counts().sum()
        decomp.build_ghost_lists(water_sys.box, 4.0)
        large = decomp.ghost_counts().sum()
        assert large > small

    def test_ghost_cutoff_too_large_raises(self, water_sys):
        comm = SimComm(2)
        decomp = DomainDecomposition((2, 1, 1), comm)
        decomp.assign_atoms(water_sys)
        with pytest.raises(ValueError, match="ghost cutoff"):
            decomp.build_ghost_lists(water_sys.box, water_sys.box.lengths.min() + 1)

    def test_gather_roundtrip(self, water_sys):
        comm = SimComm(4)
        decomp = DomainDecomposition((4, 1, 1), comm)
        decomp.assign_atoms(water_sys)
        gathered = decomp.gather_system(water_sys)
        np.testing.assert_allclose(
            gathered.positions, water_sys.box.wrap(water_sys.positions), atol=1e-12
        )


class TestDistributedSimulation:
    @pytest.mark.parametrize("grid", [(2, 1, 1), (2, 2, 1), (1, 1, 2)])
    def test_initial_forces_match_serial(self, tiny_model, water_sys, grid):
        pi, pj = neighbor_pairs(water_sys, tiny_model.config.rcut)
        serial = tiny_model.evaluate(water_sys, pi, pj)
        dist = DistributedSimulation(
            water_sys.copy(), tiny_model, grid=grid, dt=0.0005, skin=1.0
        )
        np.testing.assert_allclose(dist.forces_now(), serial.forces, atol=1e-12)
        assert dist.total_energy_now() == pytest.approx(serial.energy, rel=1e-12)

    def test_trajectory_matches_serial_exactly(self, tiny_model, water_sys):
        serial_sys = water_sys.copy()
        sim = Simulation(
            serial_sys,
            DeepPotPair(tiny_model),
            dt=0.0005,
            neighbor=NeighborList(
                cutoff=tiny_model.config.rcut, skin=1.0, rebuild_every=4
            ),
        )
        sim.run(8)
        dist = DistributedSimulation(
            water_sys.copy(),
            tiny_model,
            grid=(2, 2, 1),
            dt=0.0005,
            skin=1.0,
            rebuild_every=4,
        )
        dist.run(8)
        gathered = dist.current_system()
        diff = gathered.box.minimum_image(
            gathered.positions - gathered.box.wrap(serial_sys.positions)
        )
        assert np.abs(diff).max() < 1e-10

    def test_energy_conservation_distributed(self, tiny_model, water_sys):
        dist = DistributedSimulation(
            water_sys.copy(),
            tiny_model,
            grid=(2, 1, 1),
            dt=0.0005,
            skin=1.0,
            thermo_every=2,
            rebuild_every=5,
        )
        dist.run(20)
        e = np.array([row.total_energy for row in dist.thermo])
        assert (e.max() - e.min()) / water_sys.n_atoms < 5e-5

    def test_iallreduce_used_when_enabled(self, tiny_model, water_sys):
        dist = DistributedSimulation(
            water_sys.copy(), tiny_model, grid=(2, 1, 1), dt=0.0005,
            skin=1.0, thermo_every=2, use_iallreduce=True,
        )
        dist.run(6)
        assert dist.comm.stats.iallreduce_calls > 0
        assert dist.comm.stats.allreduce_calls == 0

    def test_blocking_allreduce_fallback(self, tiny_model, water_sys):
        dist = DistributedSimulation(
            water_sys.copy(), tiny_model, grid=(2, 1, 1), dt=0.0005,
            skin=1.0, thermo_every=2, use_iallreduce=False,
        )
        dist.run(4)
        assert dist.comm.stats.allreduce_calls > 0

    def test_thermo_rows_at_output_frequency(self, tiny_model, water_sys):
        dist = DistributedSimulation(
            water_sys.copy(), tiny_model, grid=(2, 1, 1), dt=0.0005,
            skin=1.0, thermo_every=5,
        )
        dist.run(10)
        steps = [r.step for r in dist.thermo]
        assert steps == [0, 5, 10]


class TestStaging:
    def test_both_paths_produce_identical_state(self, tiny_model, tmp_path, water_sys):
        path = str(tmp_path / "model.npz")
        save_model(tiny_model, path)
        grid = (2, 1, 1)

        comm_a = SimComm(2)
        decomp_a, models_a, report_a = baseline_setup(
            lambda: water_sys.copy(), path, comm_a, grid
        )
        comm_b = SimComm(2)
        decomp_b, models_b, report_b = optimized_setup(
            lambda rank: water_sys.copy(), path, comm_b, grid
        )
        for da, db in zip(decomp_a.domains, decomp_b.domains):
            np.testing.assert_array_equal(da.global_idx, db.global_idx)
        pi, pj = neighbor_pairs(water_sys, tiny_model.config.rcut)
        ea = models_a[0].evaluate(water_sys, pi, pj).energy
        eb = models_b[0].evaluate(water_sys, pi, pj).energy
        assert ea == pytest.approx(eb, rel=1e-12)

    def test_baseline_scatters_optimized_does_not(self, tiny_model, tmp_path, water_sys):
        path = str(tmp_path / "model.npz")
        save_model(tiny_model, path)
        grid = (2, 1, 1)
        comm_a = SimComm(2)
        *_, report_a = baseline_setup(lambda: water_sys.copy(), path, comm_a, grid)
        comm_b = SimComm(2)
        *_, report_b = optimized_setup(lambda rank: water_sys.copy(), path, comm_b, grid)
        assert report_a.p2p_bytes > 0
        assert report_b.p2p_bytes == 0
        assert report_a.model_reads == 2
        assert report_b.model_reads == 1
        assert report_b.bcast_bytes > 0
