"""Distributed MD driver: lockstep SPMD over simulated ranks.

One step follows the LAMMPS/DeePMD-kit schedule (Sec 5.4):

1. velocity-Verlet first half on every rank (local atoms only);
2. reneighbor check — on rebuild, atoms migrate to their new owners and the
   ghost exchange lists are rebuilt; otherwise ghost *positions* are
   forward-communicated along the fixed lists;
3. DP force evaluation per rank over local+ghost atoms (nloc rows);
4. reverse communication adds ghost forces back to their owner ranks;
5. velocity-Verlet second half;
6. every ``thermo_every`` steps, energy/virial are (I)allreduced — the
   output-frequency and non-blocking-reduction optimizations of Sec 5.4.

The driver produces *identical physics* to the serial engine (see
tests/test_parallel.py) while exercising the real communication pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.dp.model import DeepPot
from repro.md.system import System
from repro.md.thermo import ThermoState, compute_thermo
from repro.md.neighbor import neighbor_pairs
from repro.parallel.comm import SimComm
from repro.parallel.decomp import DomainDecomposition
from repro.units import MVV_TO_EV


@dataclass
class DistributedSimulation:
    """Domain-decomposed DP molecular dynamics on simulated MPI ranks."""

    system: System
    model: DeepPot
    grid: tuple[int, int, int] = (2, 1, 1)
    dt: float = 0.001
    skin: float = 2.0
    rebuild_every: int = 50
    thermo_every: int = 20
    use_iallreduce: bool = True

    def __post_init__(self):
        self.comm = SimComm(int(np.prod(self.grid)))
        self.decomp = DomainDecomposition(self.grid, self.comm)
        self.step_count = 0
        self.thermo: list[ThermoState] = []
        self._ref_positions: Optional[dict[int, np.ndarray]] = None
        self._pending_thermo = []
        self._setup()

    # ----------------------------------------------------------------- setup

    @property
    def ghost_cutoff(self) -> float:
        return self.model.config.rcut + self.skin

    def _setup(self) -> None:
        self.decomp.assign_atoms(self.system)
        self.decomp.build_ghost_lists(self.system.box, self.ghost_cutoff)
        self._snapshot_reference()
        self._compute_forces()

    def _snapshot_reference(self) -> None:
        self._ref_positions = {
            d.rank: d.positions.copy() for d in self.decomp.domains
        }
        self._last_rebuild = self.step_count

    def _needs_rebuild(self) -> bool:
        if self.step_count - self._last_rebuild >= self.rebuild_every:
            return True
        half_skin = 0.5 * self.skin
        for dom in self.decomp.domains:
            ref = self._ref_positions[dom.rank]
            if ref.shape != dom.positions.shape:
                return True
            disp = dom.positions - ref
            if disp.size and np.max(np.einsum("ij,ij->i", disp, disp)) > half_skin**2:
                return True
        return False

    # ----------------------------------------------------------------- forces

    def _compute_forces(self) -> None:
        """Per-rank DP evaluation + reverse ghost-force communication."""
        ghost_forces: dict[int, np.ndarray] = {}
        self._rank_energy = np.zeros(self.comm.size)
        self._rank_virial = np.zeros((self.comm.size, 3, 3))
        for dom in self.decomp.domains:
            if dom.n_own == 0:
                dom.forces = np.zeros((0, 3))
                ghost_forces[dom.rank] = np.zeros((dom.n_ghost, 3))
                continue
            local = dom.local_system(
                self.system.box, self.system.masses, self.system.type_names
            )
            pi, pj = neighbor_pairs(local, self.model.config.rcut, pbc=False)
            res = self.model.evaluate(local, pi, pj, nloc=dom.n_own, pbc=False)
            dom.forces = res.forces[: dom.n_own].copy()
            ghost_forces[dom.rank] = res.forces[dom.n_own :]
            self._rank_energy[dom.rank] = res.energy
            self._rank_virial[dom.rank] = res.virial
        self.decomp.reverse_exchange(ghost_forces)

    # ------------------------------------------------------------------- run

    def run(self, n_steps: int) -> list[ThermoState]:
        self._maybe_record_thermo()
        for _ in range(n_steps):
            self._step()
        self._flush_pending_thermo()
        return self.thermo

    def _step(self) -> None:
        dt = self.dt
        # 1. first half kick + drift (per rank)
        for dom in self.decomp.domains:
            if dom.n_own == 0:
                continue
            inv_m = 1.0 / (self.system.masses[dom.types] * MVV_TO_EV)
            dom.velocities += 0.5 * dt * dom.forces * inv_m[:, None]
            dom.positions += dt * dom.velocities
        self.step_count += 1

        # 2. reneighbor or forward-communicate ghosts
        if self._needs_rebuild():
            snapshot = self.decomp.gather_system(self._template())
            self.decomp.assign_atoms(snapshot)
            self.decomp.build_ghost_lists(self.system.box, self.ghost_cutoff)
            self._snapshot_reference()
        else:
            self.decomp.forward_exchange()

        # 3-4. forces + reverse communication
        self._compute_forces()

        # 5. second half kick
        for dom in self.decomp.domains:
            if dom.n_own == 0:
                continue
            inv_m = 1.0 / (self.system.masses[dom.types] * MVV_TO_EV)
            dom.velocities += 0.5 * dt * dom.forces * inv_m[:, None]

        # 6. thermo reduction at the paper's reduced output frequency
        self._maybe_record_thermo()

    def _template(self) -> System:
        return self.system

    # ----------------------------------------------------------------- thermo

    def _maybe_record_thermo(self) -> None:
        if self.step_count % self.thermo_every != 0:
            return
        e_contrib = list(self._rank_energy)
        w_contrib = list(self._rank_virial)
        ke_contrib = []
        for dom in self.decomp.domains:
            m = self.system.masses[dom.types]
            ke_contrib.append(
                0.5 * MVV_TO_EV * float(np.sum(m[:, None] * dom.velocities**2))
            )
        if self.use_iallreduce:
            handle_e = self.comm.iallreduce(e_contrib)
            handle_w = self.comm.iallreduce(w_contrib)
            handle_k = self.comm.iallreduce(ke_contrib)
            self._pending_thermo.append(
                (self.step_count, handle_e, handle_w, handle_k)
            )
            # Overlap window: resolve the previous pending reduction now.
            if len(self._pending_thermo) > 1:
                self._resolve_thermo(self._pending_thermo.pop(0))
        else:
            e = self.comm.allreduce(e_contrib)
            w = self.comm.allreduce(w_contrib)
            k = self.comm.allreduce(ke_contrib)
            self._record(self.step_count, e, w, k)

    def _flush_pending_thermo(self) -> None:
        while self._pending_thermo:
            self._resolve_thermo(self._pending_thermo.pop(0))

    def _resolve_thermo(self, item) -> None:
        step, he, hw, hk = item
        self._record(step, he.wait(), hw.wait(), hk.wait())

    def _record(self, step: int, energy: float, virial, kinetic: float) -> None:
        # Built from the *reduced* scalars — no global gather, as on Summit.
        from repro.units import EVA3_TO_BAR, kinetic_temperature

        n_dof = max(3 * self.system.n_atoms - 3, 1)
        volume = self.system.box.volume
        pressure = (
            (2.0 * kinetic + float(np.trace(np.asarray(virial).reshape(3, 3))))
            / (3.0 * volume)
            * EVA3_TO_BAR
        )
        self.thermo.append(
            ThermoState(
                step=step,
                time_ps=step * self.dt,
                kinetic_energy=kinetic,
                potential_energy=float(energy),
                total_energy=kinetic + float(energy),
                temperature=kinetic_temperature(kinetic, n_dof),
                pressure=pressure,
            )
        )

    # ------------------------------------------------------------------ views

    def current_system(self) -> System:
        """Global system assembled from all ranks (positions + velocities)."""
        return self.decomp.gather_system(self.system)

    def total_energy_now(self) -> float:
        return float(self._rank_energy.sum())

    def forces_now(self) -> np.ndarray:
        """Global force array gathered from rank-local blocks."""
        out = np.zeros((self.system.n_atoms, 3))
        for dom in self.decomp.domains:
            out[dom.global_idx] = dom.forces
        return out
