"""DistributedEnsembleSimulation (R replicas x P ranks, one fused backend
call per step) and the decomposition edge cases the parallel layer relies
on: pz > 1 grids, migration across periodic boundaries on rebuild, and
ghost-force reverse-communication conservation."""

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp import DeepPot, DPConfig, DeepPotPair
from repro.md import NeighborList, Simulation, boltzmann_velocities
from repro.md.neighbor import neighbor_pairs
from repro.parallel import (
    DistributedEnsembleSimulation,
    DistributedSimulation,
    DomainDecomposition,
    SimComm,
)


@pytest.fixture(scope="module")
def tiny_model():
    return DeepPot(DPConfig.tiny())


@pytest.fixture()
def water_sys():
    sys = water_box((4, 4, 4), seed=0)
    boltzmann_velocities(sys, 250.0, seed=2)
    return sys


SIM_KW = dict(dt=0.0005, skin=1.0, rebuild_every=4)


class TestDistributedEnsemble:
    @pytest.mark.parametrize("grid", [(2, 1, 1), (2, 2, 1)])
    def test_bitwise_vs_independent_distributed_runs(
        self, tiny_model, water_sys, grid
    ):
        """R=3 lockstep replicas == 3 independent DistributedSimulations,
        bitwise: positions, velocities, forces, and every thermo row."""
        ens = DistributedEnsembleSimulation.from_system(
            water_sys, tiny_model, n_replicas=3, temperature=300.0, seed=7,
            grid=grid, **SIM_KW,
        )
        ens.run(6)
        for k in range(3):
            solo_sys = water_sys.copy()
            boltzmann_velocities(solo_sys, 300.0, seed=7 + k)
            solo = DistributedSimulation(
                solo_sys, tiny_model, grid=grid, **SIM_KW
            )
            solo.run(6)
            g_ens = ens.replicas[k].current_system()
            g_solo = solo.current_system()
            assert np.array_equal(g_ens.positions, g_solo.positions)
            assert np.array_equal(g_ens.velocities, g_solo.velocities)
            assert np.array_equal(
                ens.replicas[k].forces_now(), solo.forces_now()
            )
            assert ens.replicas[k].thermo == solo.thermo

    def test_matches_serial_engine_trajectory(self, tiny_model, water_sys):
        """Each ensemble replica reproduces the serial engine's trajectory
        (the established distributed == serial contract)."""
        ens = DistributedEnsembleSimulation.from_system(
            water_sys, tiny_model, n_replicas=3, temperature=300.0, seed=11,
            grid=(2, 2, 1), **SIM_KW,
        )
        ens.run(8)
        for k in range(3):
            serial_sys = water_sys.copy()
            boltzmann_velocities(serial_sys, 300.0, seed=11 + k)
            sim = Simulation(
                serial_sys,
                DeepPotPair(tiny_model),
                dt=SIM_KW["dt"],
                neighbor=NeighborList(
                    cutoff=tiny_model.config.rcut, skin=1.0, rebuild_every=4
                ),
            )
            sim.run(8)
            gathered = ens.replicas[k].current_system()
            diff = gathered.box.minimum_image(
                gathered.positions - gathered.box.wrap(serial_sys.positions)
            )
            assert np.abs(diff).max() < 1e-10

    @pytest.mark.parametrize("grid", [(2, 1, 1), (2, 2, 1)])
    def test_one_evaluation_per_bucket_not_per_rank_replica(
        self, tiny_model, water_sys, grid
    ):
        """The acceptance counter: a step issues exactly ``bucket_count``
        batched evaluations, strictly fewer than R x P."""
        R = 3
        P = int(np.prod(grid))
        ens = DistributedEnsembleSimulation.from_system(
            water_sys, tiny_model, n_replicas=R, temperature=300.0, seed=3,
            grid=grid, dt=0.0005, skin=1.0, rebuild_every=1000,
        )
        backend = ens.force_backend
        before = backend.evaluations
        ens.run(3)
        per_step = (backend.evaluations - before) / 3
        assert per_step == backend.bucket_count
        assert backend.bucket_count < R * P
        # No rebuild happened, so the partition was computed exactly once.
        assert backend.rebuckets == 1
        # Every step's evaluation went through the stacked staging path.
        assert backend.engine.general_batches == 0
        assert backend.engine.ghost_stacked_batches > 0

    def test_rebuild_rebuckets_once_not_per_step(self, tiny_model, water_sys):
        ens = DistributedEnsembleSimulation.from_system(
            water_sys, tiny_model, n_replicas=2, temperature=300.0, seed=5,
            grid=(2, 1, 1), dt=0.0005, skin=1.0, rebuild_every=3,
        )
        ens.run(7)  # rebuilds at steps 3 and 6
        assert ens.force_backend.rebuckets <= 1 + 2
        assert ens.step_count == 7

    def test_thermo_structure_and_blocking_reduction(self, tiny_model, water_sys):
        ens = DistributedEnsembleSimulation.from_system(
            water_sys, tiny_model, n_replicas=2, temperature=280.0, seed=1,
            grid=(2, 1, 1), dt=0.0005, skin=1.0, thermo_every=2,
            use_iallreduce=False,
        )
        logs = ens.run(4)
        assert len(logs) == 2
        for rep_log in logs:
            assert [row.step for row in rep_log] == [0, 2, 4]
        assert all(
            rep.comm.stats.allreduce_calls > 0 for rep in ens.replicas
        )

    def test_empty_replica_list_rejected(self, tiny_model):
        with pytest.raises(ValueError, match="at least one replica"):
            DistributedEnsembleSimulation([], tiny_model)

    def test_mismatched_sequences_rejected(self, tiny_model, water_sys):
        with pytest.raises(ValueError, match="one entry per replica"):
            DistributedEnsembleSimulation.from_system(
                water_sys, tiny_model, n_replicas=3, temperature=[300.0, 310.0]
            )


class TestDecompositionEdgeCases:
    """Satellite coverage: pz > 1 grids, PBC migration, reverse-comm."""

    @pytest.mark.parametrize("grid", [(1, 1, 2), (1, 2, 2), (2, 2, 2)])
    def test_pz_grids_partition_completely(self, water_sys, grid):
        comm = SimComm(int(np.prod(grid)))
        decomp = DomainDecomposition(grid, comm)
        decomp.assign_atoms(water_sys)
        all_ids = np.concatenate([d.global_idx for d in decomp.domains])
        assert sorted(all_ids.tolist()) == list(range(water_sys.n_atoms))
        for dom in decomp.domains:
            if dom.n_own:
                assert np.all(dom.positions >= dom.lo - 1e-12)
                assert np.all(dom.positions < dom.hi + 1e-12)

    @pytest.mark.parametrize("grid", [(1, 1, 2), (1, 2, 2)])
    def test_pz_grid_forces_match_serial(self, tiny_model, water_sys, grid):
        pi, pj = neighbor_pairs(water_sys, tiny_model.config.rcut)
        serial = tiny_model.evaluate(water_sys, pi, pj)
        dist = DistributedSimulation(
            water_sys.copy(), tiny_model, grid=grid, dt=0.0005, skin=1.0
        )
        np.testing.assert_allclose(dist.forces_now(), serial.forces, atol=1e-12)

    def test_migration_across_periodic_boundary_on_rebuild(
        self, tiny_model, water_sys
    ):
        """An atom drifting out of the box must be wrapped and reassigned to
        the periodically-correct owner when the rebuild reassigns atoms."""
        dist = DistributedSimulation(
            water_sys.copy(), tiny_model, grid=(2, 1, 1), dt=0.0005,
            skin=1.0, rebuild_every=2,
        )
        # Push one atom of rank 0 across the -x periodic boundary: after a
        # wrap it belongs to the *last* domain along x.
        dom0 = dist.decomp.domains[0]
        lengths = dist.system.box.lengths
        moved_global = int(dom0.global_idx[0])
        dom0.positions[0, 0] = -0.05  # just outside, wraps to L - 0.05
        snapshot = dist.decomp.gather_system(dist.system)
        dist.decomp.assign_atoms(snapshot)
        owners = {
            int(g): d.rank for d in dist.decomp.domains for g in d.global_idx
        }
        assert owners[moved_global] == 1  # wrapped into the high-x domain
        wrapped_x = snapshot.box.wrap(snapshot.positions)[moved_global, 0]
        assert wrapped_x == pytest.approx(lengths[0] - 0.05)
        # Partition stays complete after the migration.
        all_ids = np.concatenate(
            [d.global_idx for d in dist.decomp.domains]
        )
        assert sorted(all_ids.tolist()) == list(range(snapshot.n_atoms))

    def test_rebuilds_with_migration_stay_bitwise_vs_oracle(
        self, tiny_model, water_sys
    ):
        """Hot trajectory with frequent rebuilds (guaranteed migrations):
        the bucketed path tracks the per-rank oracle bitwise throughout."""
        hot = water_sys.copy()
        boltzmann_velocities(hot, 600.0, seed=9)
        kw = dict(grid=(2, 2, 1), dt=0.0005, skin=1.0, rebuild_every=2)
        a = DistributedSimulation(hot.copy(), tiny_model, **kw)
        b = DistributedSimulation(
            hot.copy(), tiny_model, force_path="per-rank", **kw
        )
        a.run(10)
        b.run(10)
        assert np.array_equal(
            a.current_system().positions, b.current_system().positions
        )
        assert np.array_equal(a.forces_now(), b.forces_now())

    def test_reverse_comm_conserves_every_ghost_contribution(self, water_sys):
        """Exact conservation: with integer-valued ghost forces, the sum
        accumulated onto owners equals the sum sent, component by
        component (no row lost, duplicated, or misrouted)."""
        comm = SimComm(4)
        decomp = DomainDecomposition((2, 2, 1), comm)
        decomp.assign_atoms(water_sys)
        decomp.build_ghost_lists(water_sys.box, 3.0)
        rng = np.random.default_rng(0)
        ghost_forces = {}
        sent_total = np.zeros(3)
        for dom in decomp.domains:
            vals = rng.integers(-5, 6, size=(dom.n_ghost, 3)).astype(float)
            ghost_forces[dom.rank] = vals
            sent_total += vals.sum(axis=0)
            dom.forces = np.zeros((dom.n_own, 3))
        decomp.reverse_exchange(ghost_forces)
        received_total = np.zeros(3)
        for dom in decomp.domains:
            received_total += dom.forces.sum(axis=0)
        # Integer arithmetic in floats: exact equality, not approx.
        assert np.array_equal(received_total, sent_total)

    def test_distributed_force_sum_matches_serial(self, tiny_model, water_sys):
        """After reverse communication the global force sum (momentum
        change) agrees with the serial engine's to accumulation
        round-off."""
        pi, pj = neighbor_pairs(water_sys, tiny_model.config.rcut)
        serial = tiny_model.evaluate(water_sys, pi, pj)
        dist = DistributedSimulation(
            water_sys.copy(), tiny_model, grid=(2, 2, 1), dt=0.0005, skin=1.0
        )
        np.testing.assert_allclose(
            dist.forces_now().sum(axis=0), serial.forces.sum(axis=0),
            atol=1e-10,
        )
        # Both paths conserve momentum (Newton's third law holds on the
        # reassembled forces).
        assert np.abs(dist.forces_now().sum(axis=0)).max() < 1e-9
