"""Tests for the paper's secondary/outlook claims: fp16 rejection (Sec 5.2.3),
GPU memory footprints (Sec 6.1/6.2), and the exascale projection (Sec 8.2)."""

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp.model import DeepPot, DPConfig
from repro.dp.precision_study import precision_sweep
from repro.perfmodel import COPPER_SPEC, SUMMIT, WATER_SPEC
from repro.perfmodel.costmodel import memory_per_gpu
from repro.perfmodel.scaling import exascale_projection


class TestPrecisionStudy:
    @pytest.fixture(scope="class")
    def sweep(self):
        model = DeepPot(DPConfig.tiny(seed=3))
        system = water_box((3, 3, 3), seed=1)
        return {r.precision: r for r in precision_sweep(model, system)}

    def test_fp64_is_exact_reference(self, sweep):
        assert sweep["fp64"].energy_dev_per_atom == 0.0
        assert sweep["fp64"].force_rmsd == 0.0

    def test_fp32_deviations_negligible(self, sweep):
        """Sec 5.2.3: single precision preserves accuracy — deviations far
        below any training error (~1e-3 eV/Å)."""
        assert sweep["fp32"].force_rmsd < 1e-4
        assert sweep["fp32"].energy_dev_per_atom < 1e-5

    def test_fp16_deviations_disqualifying(self, sweep):
        """Sec 5.2.3: half precision 'cannot preserve the required accuracy'
        — its deviations are orders of magnitude above fp32's."""
        assert sweep["fp16"].force_rmsd > 50 * sweep["fp32"].force_rmsd
        assert (
            sweep["fp16"].energy_dev_per_atom
            > 50 * sweep["fp32"].energy_dev_per_atom
        )


class TestMemoryModel:
    def test_copper_about_3_5x_water_per_atom(self):
        """Sec 6.1: 'the copper system can be 3.5 times bigger both in terms
        of floating point operations and GPU memory footprint under the same
        number of atoms'.  Measured at large atoms/GPU so ghost-shell
        geometry (which differs between the systems) does not dominate."""
        n_atoms, n_gpus = 12_582_912, 6
        water = memory_per_gpu(n_atoms, n_gpus, WATER_SPEC)
        copper = memory_per_gpu(n_atoms, n_gpus, COPPER_SPEC)
        assert copper / water == pytest.approx(3.5, rel=0.15)

    def test_headline_runs_fit_in_gpu_memory(self):
        """Both full-scale runs must fit Summit's 16 GB per GPU."""
        gpu_mem = 16e9
        water = memory_per_gpu(402_653_184, 4560 * 6, WATER_SPEC)
        copper = memory_per_gpu(113_246_208, 4560 * 6, COPPER_SPEC)
        assert water < gpu_mem
        assert copper < gpu_mem
        # and they are not trivially small either — memory is a real
        # constraint, as the paper's footprint discussion implies
        assert copper > 0.05 * gpu_mem

    def test_mixed_precision_halves_activation_memory(self):
        """Sec 7.1.3: mixed precision 'saves half of the GPU memory cost' of
        the network tensors (geometry arrays stay fp64)."""
        d = memory_per_gpu(12_582_912, 3840, WATER_SPEC, precision="double")
        m = memory_per_gpu(12_582_912, 3840, WATER_SPEC, precision="mixed")
        assert 0.5 < m / d < 0.95

    def test_strong_scaling_reduces_footprint(self):
        small = memory_per_gpu(12_582_912, 27360, WATER_SPEC)
        large = memory_per_gpu(12_582_912, 480, WATER_SPEC)
        assert small < large


class TestExascaleProjection:
    def test_projection_reaches_billion_atoms(self):
        points = exascale_projection()
        assert points[-1].n_atoms > 1_000_000_000

    def test_weak_scaling_stays_linear_past_summit(self):
        """Sec 8.2: 'no intrinsic obstacles' — efficiency holds as the model
        extrapolates beyond 4,560 nodes."""
        points = exascale_projection()
        for p in points:
            assert p.efficiency > 0.97

    def test_exaflop_scale_reached(self):
        points = exascale_projection(max_nodes=80_000)
        # 16x Summit's nodes at mixed precision crosses ~0.5 EFLOPS
        assert points[-1].pflops > 500

    def test_projection_timestep_throughput(self):
        """A billion-atom copper system still advances at ~1 ns/day-ish."""
        points = exascale_projection()
        big = points[-1]
        assert big.ns_per_day(COPPER_SPEC.timestep_fs) > 0.5
