"""3D spatial domain decomposition with ghost-region halo exchange.

Implements the LAMMPS partitioning the paper inherits (Fig 1 (a)): the box
is split into a ``px x py x pz`` grid of sub-domains, one per rank.  Each
rank owns the atoms inside its sub-domain ("local sub-region", green) and
maintains copies of all atoms within the ghost cutoff of its boundary
("ghost region", blue), including periodic images with the correct shifts.

Exchange lists are rebuilt on reneighboring; between rebuilds only positions
flow (forward communication each step) and ghost forces flow back (reverse
communication), exactly the LAMMPS/DeePMD-kit protocol of Sec 5.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.md.box import Box
from repro.md.system import System
from repro.parallel.comm import SimComm


@dataclass
class GhostBatch:
    """One (src -> dst) ghost transfer list, fixed between rebuilds.

    All fields are required (no defaults), so the dataclass carries no
    mutable-default hazard; ``src_indices`` and ``shift`` are stored as the
    arrays the builder passes in — :meth:`DomainDecomposition.
    build_ghost_lists` hands each batch its own freshly-built arrays.
    """

    src: int
    dst: int
    src_indices: np.ndarray  # local indices on the source rank
    shift: np.ndarray  # (3,) cartesian PBC shift applied to positions


@dataclass
class RankDomain:
    """Per-rank state: owned atoms + ghost copies.

    The per-atom fields are ``Optional`` and default to ``None`` (the
    not-yet-assigned state before :meth:`DomainDecomposition.assign_atoms`
    runs); ``None`` is immutable, so no ``field(default_factory=...)`` is
    needed — sharing one default across instances cannot alias state.  Every
    array field is (re)bound wholesale on assignment/exchange, never mutated
    through a default.
    """

    rank: int
    lo: np.ndarray  # (3,) domain lower corner
    hi: np.ndarray  # (3,) domain upper corner
    global_idx: Optional[np.ndarray] = None  # (n_own,) global atom ids
    positions: Optional[np.ndarray] = None  # (n_own, 3)
    velocities: Optional[np.ndarray] = None
    types: Optional[np.ndarray] = None
    forces: Optional[np.ndarray] = None
    ghost_positions: Optional[np.ndarray] = None  # (n_ghost, 3), shift-applied
    ghost_types: Optional[np.ndarray] = None

    @property
    def n_own(self) -> int:
        return 0 if self.global_idx is None else len(self.global_idx)

    @property
    def n_ghost(self) -> int:
        return 0 if self.ghost_positions is None else len(self.ghost_positions)

    def local_system(self, box: Box, masses: np.ndarray, type_names) -> System:
        """Own + ghost atoms as an open-boundary System (locals first)."""
        pos = (
            np.concatenate([self.positions, self.ghost_positions])
            if self.n_ghost
            else self.positions.copy()
        )
        types = (
            np.concatenate([self.types, self.ghost_types])
            if self.n_ghost
            else self.types.copy()
        )
        return System(
            box=box.copy(),
            positions=pos,
            types=types,
            masses=masses,
            type_names=type_names,
        )


class DomainDecomposition:
    """Owns the rank grid, atom assignment, and ghost exchange lists."""

    def __init__(self, grid: tuple[int, int, int], comm: SimComm):
        self.grid = tuple(int(g) for g in grid)
        if int(np.prod(self.grid)) != comm.size:
            raise ValueError(
                f"grid {self.grid} needs {np.prod(self.grid)} ranks, "
                f"communicator has {comm.size}"
            )
        self.comm = comm
        self.domains: list[RankDomain] = []
        self._batches: list[GhostBatch] = []

    # ------------------------------------------------------------ partitioning

    def _make_domains(self, box: Box) -> None:
        px, py, pz = self.grid
        self.domains = []
        lengths = box.lengths
        for r in range(self.comm.size):
            ix = r % px
            iy = (r // px) % py
            iz = r // (px * py)
            frac_lo = np.array([ix / px, iy / py, iz / pz])
            frac_hi = np.array([(ix + 1) / px, (iy + 1) / py, (iz + 1) / pz])
            self.domains.append(
                RankDomain(rank=r, lo=frac_lo * lengths, hi=frac_hi * lengths)
            )

    def assign_atoms(self, system: System) -> None:
        """(Re)distribute atoms to owning ranks by wrapped position."""
        self._make_domains(system.box)
        pos = system.box.wrap(system.positions)
        px, py, pz = self.grid
        frac = pos / system.box.lengths
        ix = np.minimum((frac[:, 0] * px).astype(int), px - 1)
        iy = np.minimum((frac[:, 1] * py).astype(int), py - 1)
        iz = np.minimum((frac[:, 2] * pz).astype(int), pz - 1)
        owner = ix + px * (iy + py * iz)
        for dom in self.domains:
            mine = np.flatnonzero(owner == dom.rank)
            dom.global_idx = mine
            dom.positions = pos[mine].copy()
            dom.velocities = system.velocities[mine].copy()
            dom.types = system.types[mine].copy()
            dom.forces = np.zeros((len(mine), 3))

    # ---------------------------------------------------------- ghost exchange

    def build_ghost_lists(self, box: Box, ghost_cutoff: float) -> None:
        """Rebuild (src, dst, shift) transfer lists geometrically.

        For every rank pair and every periodic image shift, source atoms whose
        shifted position falls inside the destination's expanded sub-domain
        are registered.  Self-transfers with non-zero shift cover grids of 1-2
        sub-domains per dimension, where a rank needs images of its own atoms.
        """
        if ghost_cutoff > box.lengths.min():
            # ±1 image shifts cover ghost regions up to one full box length.
            raise ValueError(
                f"ghost cutoff {ghost_cutoff} exceeds the smallest box edge "
                f"{box.lengths.min()}; second-shell images are not supported"
            )
        self._batches = []
        lengths = box.lengths
        shifts = [
            np.array([sx, sy, sz], dtype=np.float64) * lengths
            for sx in (-1, 0, 1)
            for sy in (-1, 0, 1)
            for sz in (-1, 0, 1)
        ]
        for dst_dom in self.domains:
            lo = dst_dom.lo - ghost_cutoff
            hi = dst_dom.hi + ghost_cutoff
            for src_dom in self.domains:
                if src_dom.n_own == 0:
                    continue
                for shift in shifts:
                    if src_dom.rank == dst_dom.rank and not shift.any():
                        continue  # own atoms are already local
                    shifted = src_dom.positions + shift
                    inside = np.all((shifted >= lo) & (shifted < hi), axis=1)
                    idx = np.flatnonzero(inside)
                    if idx.size:
                        self._batches.append(
                            GhostBatch(
                                src=src_dom.rank,
                                dst=dst_dom.rank,
                                src_indices=idx,
                                shift=shift.copy(),
                            )
                        )
        self.forward_exchange(first=True)

    def forward_exchange(self, first: bool = False) -> None:
        """Send current positions along the fixed ghost lists (every step)."""
        per_dst: dict[int, list[np.ndarray]] = {d.rank: [] for d in self.domains}
        per_dst_types: dict[int, list[np.ndarray]] = {d.rank: [] for d in self.domains}
        for batch in self._batches:
            src_dom = self.domains[batch.src]
            payload = src_dom.positions[batch.src_indices] + batch.shift
            self.comm.send(batch.src, batch.dst, payload, tag=("fwd", id(batch)))
            received = self.comm.recv(batch.dst, batch.src, tag=("fwd", id(batch)))
            per_dst[batch.dst].append(received)
            if first:
                per_dst_types[batch.dst].append(src_dom.types[batch.src_indices])
        for dom in self.domains:
            chunks = per_dst[dom.rank]
            dom.ghost_positions = (
                np.concatenate(chunks) if chunks else np.zeros((0, 3))
            )
            if first:
                tchunks = per_dst_types[dom.rank]
                dom.ghost_types = (
                    np.concatenate(tchunks)
                    if tchunks
                    else np.zeros(0, dtype=np.int64)
                )

    def reverse_exchange(self, ghost_forces: dict[int, np.ndarray]) -> None:
        """Send ghost-atom forces back to their owners and accumulate.

        ``ghost_forces[rank]`` is the (n_ghost, 3) force block computed on
        that rank, ordered like its ghost array (i.e. batch concatenation
        order).
        """
        offsets = {d.rank: 0 for d in self.domains}
        for batch in self._batches:
            dst_forces = ghost_forces[batch.dst]
            k = len(batch.src_indices)
            start = offsets[batch.dst]
            chunk = dst_forces[start : start + k]
            offsets[batch.dst] = start + k
            self.comm.send(batch.dst, batch.src, chunk, tag=("rev", id(batch)))
            received = self.comm.recv(batch.src, batch.dst, tag=("rev", id(batch)))
            np.add.at(self.domains[batch.src].forces, batch.src_indices, received)

    # -------------------------------------------------------------- gathering

    def gather_system(self, template: System) -> System:
        """Reassemble a global System (rank 0's view after a gather)."""
        out = template.copy()
        for dom in self.domains:
            out.positions[dom.global_idx] = template.box.wrap(dom.positions)
            out.velocities[dom.global_idx] = dom.velocities
        return out

    def max_ghost_count(self) -> int:
        return max((d.n_ghost for d in self.domains), default=0)

    def ghost_counts(self) -> np.ndarray:
        return np.array([d.n_ghost for d in self.domains])
