"""Labeled datasets for DP training, generated from the oracle potentials.

The pipeline mirrors the paper's: reference (ab initio, here: oracle) MD
produces configurations; each is labeled with energy/forces/virial; the
dataset also supplies the descriptor normalization statistics (davg/dstd) and
the per-type energy bias — exactly DeePMD-kit's ``data_stat`` stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.dp.env_mat import env_rows
from repro.dp.nlist_fmt import format_neighbors
from repro.dp.ops_optimized import environment_op
from repro.md.integrators import Langevin
from repro.md.neighbor import neighbor_pairs
from repro.md.potential import Potential
from repro.md.simulation import Simulation
from repro.md.system import System
from repro.md.velocity import boltzmann_velocities


@dataclass
class LabeledFrame:
    """One training configuration with its reference labels."""

    system: System
    energy: float
    forces: np.ndarray
    virial: np.ndarray

    @property
    def n_atoms(self) -> int:
        return self.system.n_atoms


@dataclass
class Dataset:
    """A list of labeled frames plus bookkeeping."""

    frames: list[LabeledFrame] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.frames)

    def __getitem__(self, i: int) -> LabeledFrame:
        return self.frames[i]

    def add(self, frame: LabeledFrame) -> None:
        self.frames.append(frame)

    def split(self, fraction: float, seed: int = 0) -> tuple["Dataset", "Dataset"]:
        """Random train/validation split."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.frames))
        n_train = int(round(fraction * len(self.frames)))
        train = Dataset([self.frames[i] for i in order[:n_train]])
        valid = Dataset([self.frames[i] for i in order[n_train:]])
        return train, valid

    # ------------------------------------------------------------------ stats

    def energy_bias(self, n_types: int) -> np.ndarray:
        """Least-squares per-type atomic energy bias (DeePMD's e0 stats)."""
        counts = np.array(
            [np.bincount(f.system.types, minlength=n_types) for f in self.frames],
            dtype=np.float64,
        )
        energies = np.array([f.energy for f in self.frames])
        bias, *_ = np.linalg.lstsq(counts, energies, rcond=None)
        return bias

    def descriptor_stats(self, config) -> tuple[np.ndarray, np.ndarray]:
        """davg/dstd of the environment matrix per neighbor type.

        Statistics include padded slots, matching how normalization is applied
        at run time (padded rows map to the same constant the real rows
        approach as r -> r_cut, preserving continuity).
        """
        n_types = config.n_types
        sum_s = np.zeros(n_types)
        sum_s2 = np.zeros(n_types)
        sum_r2 = np.zeros(n_types)
        count = np.zeros(n_types)
        for frame in self.frames:
            sysf = frame.system
            pi, pj = neighbor_pairs(sysf, config.rcut)
            fmt = format_neighbors(sysf, pi, pj, config.rcut, config.sel)
            em, _ed, _rij = environment_op(sysf, fmt, config.rcut_smth, config.rcut)
            slot_t = fmt.slot_types()
            for t in range(n_types):
                block = em[:, slot_t == t, :]
                sum_s[t] += block[..., 0].sum()
                sum_s2[t] += (block[..., 0] ** 2).sum()
                sum_r2[t] += (block[..., 1:] ** 2).sum()
                count[t] += block[..., 0].size
        count = np.maximum(count, 1)
        mean_s = sum_s / count
        std_s = np.sqrt(np.maximum(sum_s2 / count - mean_s**2, 0.0))
        std_r = np.sqrt(sum_r2 / (3 * count))
        protect = 1e-2
        davg = np.zeros((n_types, 4))
        davg[:, 0] = mean_s
        dstd = np.empty((n_types, 4))
        dstd[:, 0] = np.maximum(std_s, protect)
        dstd[:, 1:] = np.maximum(std_r, protect)[:, None]
        return davg, dstd

    def apply_stats(self, model) -> None:
        """Install davg/dstd/e0 computed from this dataset into ``model``."""
        davg, dstd = self.descriptor_stats(model.config)
        e0 = self.energy_bias(model.config.n_types)
        model.set_stats(davg, dstd, e0)


def label_frames(systems: Sequence[System], oracle: Potential) -> Dataset:
    """Evaluate the oracle on each configuration to produce labels."""
    ds = Dataset()
    for sysf in systems:
        res = oracle.compute_dense(sysf)
        ds.add(
            LabeledFrame(
                system=sysf.copy(),
                energy=res.energy,
                forces=res.forces.copy(),
                virial=res.virial.copy(),
            )
        )
    return ds


def sample_md_frames(
    system: System,
    potential: Potential,
    n_frames: int,
    stride: int = 20,
    dt: float = 0.0005,
    temperature: float = 330.0,
    equilibration: int = 50,
    seed: int = 0,
) -> list[System]:
    """Run oracle MD and harvest snapshots — the "AIMD trajectory" stage.

    Langevin dynamics at the paper's 330 K keeps short sampling runs stable
    regardless of the starting configuration.
    """
    from repro.md.neighbor import fitted_neighbor_list

    sysw = system.copy()
    boltzmann_velocities(sysw, temperature, seed=seed)
    neighbor = fitted_neighbor_list(sysw, potential.cutoff)
    sim = Simulation(
        sysw,
        potential,
        dt=dt,
        integrator=Langevin(temperature=temperature, damp=0.1, seed=seed),
        thermo_every=max(stride, 1),
        neighbor=neighbor,
    )
    if equilibration:
        sim.run(equilibration)
    frames: list[System] = []
    for _ in range(n_frames):
        sim.run(stride)
        frames.append(sysw.copy())
    return frames
