"""Operator registry and functional API for tfmini.

Each operator provides:

* ``forward(inputs, attrs) -> np.ndarray`` — the kernel;
* ``vjp(node, grad) -> list[Node | None]`` — builds *graph nodes* for the
  vector-Jacobian product w.r.t. each input (``None`` = no gradient), which is
  what makes gradients of gradients possible;
* ``flops(node, inputs, output) -> int`` — the FLOP estimate used by the
  instrumented executor and validated against :mod:`repro.perfmodel.flops`.

The operator set is intentionally the same vocabulary the paper profiles:
MATMUL, SUM (broadcast add), CONCAT, TANH (+TANHGrad), SLICE, plus the fused
GEMM and fused-TANH kernels that the Sec 5.3 rewrite passes introduce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.tfmini.graph import Node, constant

# Estimated FLOPs per element for a transcendental tanh evaluation; NVPROF
# counts real instruction mixes, we use a fixed conventional weight.
TANH_FLOPS_PER_ELEM = 10


@dataclass
class OpDef:
    forward: Callable
    vjp: Optional[Callable] = None
    flops: Optional[Callable] = None
    # ``forward_out(inputs, attrs, out) -> None`` — destination-passing
    # kernel variant used by compiled execution plans (repro.tfmini.plan).
    # Contract: fully overwrite ``out`` (which never aliases an input) with
    # a result bitwise identical to ``forward(inputs, attrs)``.  Ops without
    # one still work under plans via the allocate-and-copy-into-slot
    # fallback.
    forward_out: Optional[Callable] = None
    # ``infer(in_shapes, in_dtypes, attrs, ctx) -> (shape, dtype)`` —
    # symbolic shape/dtype rule used by the static plan verifier
    # (repro.analysis.plancheck).  Shapes are tuples whose entries are ints
    # or symbolic dims supporting +/-/*; anything harder (unification,
    # broadcasting, exact division, fresh symbols) goes through ``ctx`` so
    # rules need no imports.  Multi-output kernels return a list of
    # (shape, dtype) pairs.  Ops without a rule still verify — their
    # outputs become fresh symbols and the report carries a note.
    infer: Optional[Callable] = None


_REGISTRY: dict[str, OpDef] = {}


def register_op(name: str, forward, vjp=None, flops=None, forward_out=None, infer=None) -> None:
    """Register an operator.  Used by DP custom ops as well as the built-ins."""
    _REGISTRY[name] = OpDef(forward, vjp, flops, forward_out, infer)


def register_out_kernel(name: str, forward_out) -> None:
    """Attach (or replace) the destination-passing kernel of a registered op."""
    get_op(name).forward_out = forward_out


def register_infer(name: str, infer) -> None:
    """Attach (or replace) the symbolic shape/dtype rule of a registered op."""
    get_op(name).infer = infer


def get_op(name: str) -> OpDef:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown op '{name}'; registered: {sorted(_REGISTRY)}") from None


def op_flops(node: Node, inputs: Sequence[np.ndarray], output) -> int:
    fn = get_op(node.op).flops
    if fn is None:
        return 0
    return int(fn(node, inputs, output))


# Ops that legitimately never get an ``out=`` kernel.  Alias/view ops run
# zero-copy under plans (an out= kernel would *add* a copy); structural
# pseudo-ops never appear as tape records (plans resolve them to slots at
# compile time).  Everything else without ``forward_out`` is a coverage gap
# paying the allocate-and-copy fallback — ``out_kernel_coverage()`` makes
# the gap visible in ``repro info``.
OUT_KERNEL_EXEMPT = {
    # alias/view ops (see repro.tfmini.plan.ALIAS_OPS)
    "reshape", "reshape_like", "item", "reduce_to_shape",
    # structural: never executed as tape records
    "constant", "placeholder", "variable",
    # synthesized by the plan compiler's fusion pass; its kernels are bound
    # per-group (repro.tfmini.fusion), not registered here
    "fused_elementwise",
}


def out_kernel_coverage() -> dict:
    """Destination-passing kernel coverage of the op registry.

    Returns ``{"covered": n, "eligible": m, "missing": [names...]}`` where
    *eligible* excludes :data:`OUT_KERNEL_EXEMPT` (view ops and structural
    pseudo-ops, which by design run without an ``out=`` kernel).
    """
    covered = []
    missing = []
    for name in sorted(_REGISTRY):
        if name in OUT_KERNEL_EXEMPT:
            continue
        if _REGISTRY[name].forward_out is not None:
            covered.append(name)
        else:
            missing.append(name)
    return {
        "covered": len(covered),
        "eligible": len(covered) + len(missing),
        "missing": missing,
    }


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _unbroadcast_shape(shape_in: tuple, shape_out: tuple):
    """Axes that were broadcast when going from shape_in to shape_out."""
    ndiff = len(shape_out) - len(shape_in)
    axes = list(range(ndiff))
    for i, s in enumerate(shape_in):
        if s == 1 and shape_out[ndiff + i] != 1:
            axes.append(ndiff + i)
    return tuple(axes), ndiff


def reduce_to_shape(node: Node, like: Node) -> Node:
    """Sum ``node`` down to the (runtime) shape of ``like``.

    This is the standard unbroadcasting step in the VJP of broadcasting ops.
    The target shape is resolved at execution time from ``like``'s value.
    """
    return Node("reduce_to_shape", (node, like), shape=like.shape)


def _fwd_reduce_to_shape(inputs, attrs):
    x, like = inputs
    target = like.shape
    if x.shape == target:
        return x
    axes, ndiff = _unbroadcast_shape(target, x.shape)
    out = x.sum(axis=axes, keepdims=True) if axes else x
    return np.asarray(out).reshape(target)


register_op(
    "reduce_to_shape",
    _fwd_reduce_to_shape,
    vjp=lambda node, g: [Node("broadcast_like", (g, node.inputs[0])), None],
    flops=lambda node, ins, out: ins[0].size,
)

register_op(
    "broadcast_like",
    lambda inputs, attrs: np.broadcast_to(inputs[0], inputs[1].shape).copy(),
    vjp=lambda node, g: [reduce_to_shape(g, node.inputs[0]), None],
    flops=lambda node, ins, out: 0,
    forward_out=lambda inputs, attrs, out: np.copyto(out, inputs[0]),
)


# ---------------------------------------------------------------------------
# leaves
# ---------------------------------------------------------------------------

register_op("constant", lambda inputs, attrs: attrs["value"])
register_op("placeholder", lambda inputs, attrs: _missing_feed(attrs))
register_op("variable", lambda inputs, attrs: _missing_feed(attrs))


def _missing_feed(attrs):  # pragma: no cover - executor intercepts leaves
    raise RuntimeError("leaf nodes must be resolved by the executor")


# ---------------------------------------------------------------------------
# elementwise arithmetic
# ---------------------------------------------------------------------------


def add(a: Node, b: Node) -> Node:
    return Node("add", (a, b))


def sub(a: Node, b: Node) -> Node:
    return Node("sub", (a, b))


def mul(a: Node, b: Node) -> Node:
    return Node("mul", (a, b))


def neg(a: Node) -> Node:
    return Node("neg", (a,))


def square(a: Node) -> Node:
    return Node("square", (a,))


def scale(a: Node, s: float) -> Node:
    """Multiply by a python scalar (kept as an attr, not a graph input)."""
    return Node("scale", (a,), {"s": float(s)})


register_op(
    "add",
    lambda inputs, attrs: inputs[0] + inputs[1],
    vjp=lambda node, g: [
        reduce_to_shape(g, node.inputs[0]),
        reduce_to_shape(g, node.inputs[1]),
    ],
    flops=lambda node, ins, out: out.size,
    forward_out=lambda inputs, attrs, out: np.add(inputs[0], inputs[1], out=out),
)

register_op(
    "sub",
    lambda inputs, attrs: inputs[0] - inputs[1],
    vjp=lambda node, g: [
        reduce_to_shape(g, node.inputs[0]),
        reduce_to_shape(neg(g), node.inputs[1]),
    ],
    flops=lambda node, ins, out: out.size,
    forward_out=lambda inputs, attrs, out: np.subtract(
        inputs[0], inputs[1], out=out
    ),
)

register_op(
    "mul",
    lambda inputs, attrs: inputs[0] * inputs[1],
    vjp=lambda node, g: [
        reduce_to_shape(mul(g, node.inputs[1]), node.inputs[0]),
        reduce_to_shape(mul(g, node.inputs[0]), node.inputs[1]),
    ],
    flops=lambda node, ins, out: out.size,
    forward_out=lambda inputs, attrs, out: np.multiply(
        inputs[0], inputs[1], out=out
    ),
)

register_op(
    "neg",
    lambda inputs, attrs: -inputs[0],
    vjp=lambda node, g: [neg(g)],
    flops=lambda node, ins, out: out.size,
    forward_out=lambda inputs, attrs, out: np.negative(inputs[0], out=out),
)

register_op(
    "square",
    lambda inputs, attrs: inputs[0] * inputs[0],
    vjp=lambda node, g: [mul(g, scale(node.inputs[0], 2.0))],
    flops=lambda node, ins, out: out.size,
    forward_out=lambda inputs, attrs, out: np.multiply(
        inputs[0], inputs[0], out=out
    ),
)

register_op(
    "scale",
    lambda inputs, attrs: inputs[0] * attrs["s"],
    vjp=lambda node, g: [scale(g, node.attrs["s"])],
    flops=lambda node, ins, out: out.size,
    forward_out=lambda inputs, attrs, out: np.multiply(
        inputs[0], attrs["s"], out=out
    ),
)


# ---------------------------------------------------------------------------
# matrix products
# ---------------------------------------------------------------------------


def matmul(a: Node, b: Node) -> Node:
    """2-D matrix product — the TF MATMUL operator."""
    return Node("matmul", (a, b))


def gemm(a: Node, b: Node, c: Node, beta: float = 1.0) -> Node:
    """Fused ``a @ b + beta * c`` with broadcasting on ``c`` — one CUBLAS call.

    This is the operator the Sec 5.3.1/5.3.2 rewrites produce.
    """
    return Node("gemm", (a, b, c), {"beta": float(beta)})


def bmm(a: Node, b: Node) -> Node:
    """Batched matmul over leading dimension: (B,m,k) @ (B,k,n) -> (B,m,n)."""
    return Node("bmm", (a, b))


def _fwd_matmul_2d(a, b):
    # BLAS picks its matrix-vector kernel by row count, so an N==1 product
    # can give bitwise-different rows depending on how many other rows are
    # stacked with them — which would break the batched engine's guarantee
    # that a frame's result is independent of its batch-mates.  Reduce
    # row-wise instead: per-row pairwise sums over K never see the row count.
    if (
        a.ndim == 2
        and b.ndim == 2
        and b.shape[1] == 1
        and a.shape[1] == b.shape[0]  # let `a @ b` raise on K mismatch
    ):
        return (a * b[:, 0]).sum(axis=1, keepdims=True)
    return a @ b


def _out_matmul_2d(a, b, out):
    """Destination-passing twin of :func:`_fwd_matmul_2d`.

    The N==1 matvec branch keeps the exact row-count-independent reduction
    (its temporary survives; only the result lands in ``out``); the general
    branch hands ``out`` straight to the same BLAS gufunc ``a @ b`` calls.
    """
    if (
        a.ndim == 2
        and b.ndim == 2
        and b.shape[1] == 1
        and a.shape[1] == b.shape[0]
    ):
        np.copyto(out, (a * b[:, 0]).sum(axis=1, keepdims=True))
    else:
        np.matmul(a, b, out=out)


register_op(
    "matmul",
    lambda inputs, attrs: _fwd_matmul_2d(inputs[0], inputs[1]),
    vjp=lambda node, g: [
        matmul(g, transpose(node.inputs[1])),
        matmul(transpose(node.inputs[0]), g),
    ],
    flops=lambda node, ins, out: 2 * ins[0].shape[0] * ins[0].shape[1] * ins[1].shape[1],
    forward_out=lambda inputs, attrs, out: _out_matmul_2d(
        inputs[0], inputs[1], out
    ),
)


def _fwd_gemm(inputs, attrs):
    a, b, c = inputs
    beta = attrs.get("beta", 1.0)
    out = _fwd_matmul_2d(a, b)
    if beta == 1.0:
        out += c
    elif beta != 0.0:
        out += beta * c
    return out


def _out_gemm(inputs, attrs, out):
    a, b, c = inputs
    beta = attrs.get("beta", 1.0)
    _out_matmul_2d(a, b, out)
    if beta == 1.0:
        out += c
    elif beta != 0.0:
        out += beta * c


register_op(
    "gemm",
    _fwd_gemm,
    vjp=lambda node, g: [
        matmul(g, transpose(node.inputs[1])),
        matmul(transpose(node.inputs[0]), g),
        reduce_to_shape(scale(g, node.attrs.get("beta", 1.0)), node.inputs[2]),
    ],
    flops=lambda node, ins, out: 2 * ins[0].shape[0] * ins[0].shape[1] * ins[1].shape[1]
    + out.size,
    forward_out=_out_gemm,
)

register_op(
    "bmm",
    lambda inputs, attrs: np.matmul(inputs[0], inputs[1]),
    vjp=lambda node, g: [
        bmm(g, transpose(node.inputs[1], (0, 2, 1))),
        bmm(transpose(node.inputs[0], (0, 2, 1)), g),
    ],
    flops=lambda node, ins, out: 2
    * ins[0].shape[0]
    * ins[0].shape[1]
    * ins[0].shape[2]
    * ins[1].shape[2],
    forward_out=lambda inputs, attrs, out: np.matmul(
        inputs[0], inputs[1], out=out
    ),
)


# ---------------------------------------------------------------------------
# shape ops (the paper's SLICE/CONCAT category)
# ---------------------------------------------------------------------------


def concat(a: Node, b: Node, axis: int = -1) -> Node:
    return Node("concat", (a, b), {"axis": int(axis)})


def slice_cols(a: Node, start: int, stop: int) -> Node:
    """Slice along the last axis: ``a[..., start:stop]`` — the TF SLICE op."""
    return Node("slice", (a,), {"start": int(start), "stop": int(stop)})


def slice_axis(a: Node, axis: int, start: int, stop: int) -> Node:
    """Slice ``a[..., start:stop, ...]`` along an arbitrary axis."""
    return Node(
        "slice_axis", (a,), {"axis": int(axis), "start": int(start), "stop": int(stop)}
    )


def _slicer(ndim: int, axis: int, start: int, stop: int):
    sl = [slice(None)] * ndim
    sl[axis] = slice(start, stop)
    return tuple(sl)


def _fwd_slice_axis(inputs, attrs):
    x = inputs[0]
    return np.ascontiguousarray(
        x[_slicer(x.ndim, attrs["axis"], attrs["start"], attrs["stop"])]
    )


def _vjp_slice_axis(node, g):
    return [Node("slice_axis_grad", (g, node.inputs[0]), dict(node.attrs))]


def _fwd_slice_axis_grad(inputs, attrs):
    g, x = inputs
    out = np.zeros_like(x)
    out[_slicer(x.ndim, attrs["axis"], attrs["start"], attrs["stop"])] = g
    return out


def _out_slice_axis(inputs, attrs, out):
    x = inputs[0]
    np.copyto(out, x[_slicer(x.ndim, attrs["axis"], attrs["start"], attrs["stop"])])


def _out_slice_axis_grad(inputs, attrs, out):
    g, x = inputs
    out.fill(0)
    out[_slicer(x.ndim, attrs["axis"], attrs["start"], attrs["stop"])] = g


register_op(
    "slice_axis",
    _fwd_slice_axis,
    _vjp_slice_axis,
    lambda n, i, o: 0,
    forward_out=_out_slice_axis,
)
register_op(
    "slice_axis_grad",
    _fwd_slice_axis_grad,
    vjp=lambda node, g: [
        Node("slice_axis", (g,), dict(node.attrs)),
        None,
    ],
    flops=lambda n, i, o: 0,
    forward_out=_out_slice_axis_grad,
)


def reshape(a: Node, shape: tuple) -> Node:
    return Node("reshape", (a,), {"shape": tuple(int(s) for s in shape)})


def transpose(a: Node, perm: Optional[tuple] = None) -> Node:
    return Node("transpose", (a,), {"perm": tuple(perm) if perm is not None else None})


def _vjp_concat(node, g):
    a, b = node.inputs
    axis = node.attrs["axis"]
    return [
        Node("split_part", (g, a, b), {"axis": axis, "part": 0}),
        Node("split_part", (g, a, b), {"axis": axis, "part": 1}),
    ]


def _fwd_split_part(inputs, attrs):
    g, a, b = inputs
    axis = attrs["axis"]
    na = a.shape[axis]
    sl = [slice(None)] * g.ndim
    sl[axis] = slice(0, na) if attrs["part"] == 0 else slice(na, None)
    return g[tuple(sl)]


register_op(
    "concat",
    lambda inputs, attrs: np.concatenate(inputs, axis=attrs["axis"]),
    vjp=_vjp_concat,
    flops=lambda node, ins, out: 0,
    forward_out=lambda inputs, attrs, out: np.concatenate(
        inputs, axis=attrs["axis"], out=out
    ),
)

def _vjp_split_part(node, g):
    # d(split)/d(gradient-being-split): pad the cotangent back into place.
    return [Node("split_part_grad", (g, node.inputs[1], node.inputs[2]), dict(node.attrs)), None, None]


def _fwd_split_part_grad(inputs, attrs):
    h, a, b = inputs
    axis = attrs["axis"]
    shape = list(h.shape)
    shape[axis] = a.shape[axis] + b.shape[axis]
    out = np.zeros(shape, dtype=h.dtype)
    na = a.shape[axis]
    sl = [slice(None)] * len(shape)
    sl[axis] = slice(0, na) if attrs["part"] == 0 else slice(na, None)
    out[tuple(sl)] = h
    return out


def _out_split_part_grad(inputs, attrs, out):
    h, a, b = inputs
    axis = attrs["axis"]
    out.fill(0)
    na = a.shape[axis]
    sl = [slice(None)] * out.ndim
    sl[axis] = slice(0, na) if attrs["part"] == 0 else slice(na, None)
    out[tuple(sl)] = h


def _out_split_part(inputs, attrs, out):
    # The forward is a zero-cost view; the out= kernel materializes the
    # same slice straight into the arena slot (what the copy fallback did
    # in two steps: view, then copy) without the interposed view object.
    np.copyto(out, _fwd_split_part(inputs, attrs))


register_op(
    "split_part",
    _fwd_split_part,
    vjp=_vjp_split_part,
    flops=lambda node, ins, out: 0,
    forward_out=_out_split_part,
)
register_op(
    "split_part_grad",
    _fwd_split_part_grad,
    vjp=lambda node, g: [Node("split_part", (g, node.inputs[1], node.inputs[2]), dict(node.attrs)), None, None],
    flops=lambda node, ins, out: 0,
    forward_out=_out_split_part_grad,
)


def _vjp_slice(node, g):
    return [Node("slice_grad", (g, node.inputs[0]), dict(node.attrs))]


def _fwd_slice_grad(inputs, attrs):
    g, x = inputs
    out = np.zeros_like(x)
    out[..., attrs["start"] : attrs["stop"]] = g
    return out


def _out_slice_grad(inputs, attrs, out):
    g, _x = inputs
    out.fill(0)
    out[..., attrs["start"] : attrs["stop"]] = g


register_op(
    "slice",
    lambda inputs, attrs: np.ascontiguousarray(
        inputs[0][..., attrs["start"] : attrs["stop"]]
    ),
    vjp=_vjp_slice,
    flops=lambda node, ins, out: 0,
    forward_out=lambda inputs, attrs, out: np.copyto(
        out, inputs[0][..., attrs["start"] : attrs["stop"]]
    ),
)
register_op(
    "slice_grad",
    _fwd_slice_grad,
    vjp=lambda node, g: [
        Node("slice", (g,), dict(node.attrs)),
        None,
    ],
    flops=lambda node, ins, out: 0,
    forward_out=_out_slice_grad,
)

register_op(
    "reshape",
    lambda inputs, attrs: inputs[0].reshape(attrs["shape"]),
    vjp=lambda node, g: [Node("reshape_like", (g, node.inputs[0]))],
    flops=lambda node, ins, out: 0,
)
register_op(
    "reshape_like",
    lambda inputs, attrs: inputs[0].reshape(inputs[1].shape),
    vjp=lambda node, g: [Node("reshape_like", (g, node.inputs[0])), None],
    flops=lambda node, ins, out: 0,
)


def _fwd_transpose(inputs, attrs):
    return np.ascontiguousarray(np.transpose(inputs[0], attrs["perm"]))


def _vjp_transpose(node, g):
    perm = node.attrs["perm"]
    if perm is None:
        return [transpose(g)]
    inv = tuple(np.argsort(perm))
    return [transpose(g, inv)]


register_op(
    "transpose",
    _fwd_transpose,
    vjp=_vjp_transpose,
    flops=lambda n, i, o: 0,
    forward_out=lambda inputs, attrs, out: np.copyto(
        out, np.transpose(inputs[0], attrs["perm"])
    ),
)


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def reduce_sum(a: Node, axis: Optional[int] = None) -> Node:
    return Node("reduce_sum", (a,), {"axis": axis})


def reduce_mean(a: Node, axis: Optional[int] = None) -> Node:
    return Node("reduce_mean", (a,), {"axis": axis})


def _fwd_reduce_sum(inputs, attrs):
    return np.asarray(inputs[0].sum(axis=attrs["axis"]))


def _vjp_reduce_sum(node, g):
    axis = node.attrs["axis"]
    return [Node("bcast_reduce_grad", (g, node.inputs[0]), {"axis": axis, "mean": False})]


def _fwd_reduce_mean(inputs, attrs):
    return np.asarray(inputs[0].mean(axis=attrs["axis"]))


def _vjp_reduce_mean(node, g):
    axis = node.attrs["axis"]
    return [Node("bcast_reduce_grad", (g, node.inputs[0]), {"axis": axis, "mean": True})]


def _fwd_bcast_reduce_grad(inputs, attrs):
    g, x = inputs
    axis = attrs["axis"]
    if axis is None:
        out = np.broadcast_to(g, x.shape)
        denom = x.size
    else:
        out = np.broadcast_to(np.expand_dims(g, axis), x.shape)
        denom = x.shape[axis]
    out = out.copy()
    if attrs["mean"]:
        out /= denom
    return out


def _out_bcast_reduce_grad(inputs, attrs, out):
    g, x = inputs
    axis = attrs["axis"]
    if axis is None:
        np.copyto(out, g)
        denom = x.size
    else:
        np.copyto(out, np.expand_dims(g, axis))
        denom = x.shape[axis]
    if attrs["mean"]:
        out /= denom


def _out_reduce_sum(inputs, attrs, out):
    # np.sum's out= path runs the same pairwise reduction as the
    # allocating form — bitwise identical, required by the plan contract.
    np.sum(inputs[0], axis=attrs["axis"], out=out)


def _out_reduce_mean(inputs, attrs, out):
    np.mean(inputs[0], axis=attrs["axis"], out=out)


register_op("reduce_sum", _fwd_reduce_sum, _vjp_reduce_sum,
            lambda n, i, o: i[0].size, forward_out=_out_reduce_sum)
register_op("reduce_mean", _fwd_reduce_mean, _vjp_reduce_mean,
            lambda n, i, o: i[0].size, forward_out=_out_reduce_mean)
register_op(
    "bcast_reduce_grad",
    _fwd_bcast_reduce_grad,
    vjp=lambda node, g: [
        reduce_sum(g, node.attrs["axis"])
        if not node.attrs["mean"]
        else reduce_mean(g, node.attrs["axis"]),
        None,
    ],
    flops=lambda n, i, o: o.size,
    forward_out=_out_bcast_reduce_grad,
)


# ---------------------------------------------------------------------------
# activations
# ---------------------------------------------------------------------------


def tanh(a: Node) -> Node:
    return Node("tanh", (a,))


def tanh_grad(y: Node, dy: Node) -> Node:
    """TF's TANHGrad: dy * (1 - y**2), with y the *output* of tanh."""
    return Node("tanh_grad", (y, dy))


register_op(
    "tanh",
    lambda inputs, attrs: np.tanh(inputs[0]),
    vjp=lambda node, g: [tanh_grad(node, g)],
    flops=lambda node, ins, out: TANH_FLOPS_PER_ELEM * out.size,
    forward_out=lambda inputs, attrs, out: np.tanh(inputs[0], out=out),
)


def _fwd_tanh_grad(inputs, attrs):
    y, dy = inputs
    return dy * (1.0 - y * y)


def _out_tanh_grad(inputs, attrs, out):
    # Same ufunc sequence as the allocating kernel: y*y, 1-(..), dy*(..).
    y, dy = inputs
    np.multiply(y, y, out=out)
    np.subtract(1.0, out, out=out)
    np.multiply(dy, out, out=out)


def _vjp_tanh_grad(node, g):
    y, dy = node.inputs
    # d/dy [dy*(1-y^2)] = -2*y*dy ; d/ddy [...] = (1-y^2)
    return [
        mul(g, scale(mul(y, dy), -2.0)),
        Node("tanh_grad", (y, g)),
    ]


register_op(
    "tanh_grad",
    _fwd_tanh_grad,
    _vjp_tanh_grad,
    flops=lambda node, ins, out: 3 * out.size,
    forward_out=_out_tanh_grad,
)


def exp(a: Node) -> Node:
    return Node("exp", (a,))


register_op(
    "exp",
    lambda inputs, attrs: np.exp(inputs[0]),
    vjp=lambda node, g: [mul(g, node)],
    flops=lambda node, ins, out: TANH_FLOPS_PER_ELEM * out.size,
    forward_out=lambda inputs, attrs, out: np.exp(inputs[0], out=out),
)


def log(a: Node) -> Node:
    return Node("log", (a,))


register_op(
    "log",
    lambda inputs, attrs: np.log(inputs[0]),
    vjp=lambda node, g: [Node("div", (g, node.inputs[0]))],
    flops=lambda node, ins, out: TANH_FLOPS_PER_ELEM * out.size,
    forward_out=lambda inputs, attrs, out: np.log(inputs[0], out=out),
)


def div(a: Node, b: Node) -> Node:
    return Node("div", (a, b))


def _vjp_div(node, g):
    a, b = node.inputs
    ga = Node("div", (g, b))
    gb = neg(Node("div", (mul(g, node), b)))  # -g * (a/b) / b
    return [reduce_to_shape(ga, a), reduce_to_shape(gb, b)]


register_op(
    "div",
    lambda inputs, attrs: inputs[0] / inputs[1],
    vjp=_vjp_div,
    flops=lambda node, ins, out: out.size,
    forward_out=lambda inputs, attrs, out: np.divide(
        inputs[0], inputs[1], out=out
    ),
)


def sqrt(a: Node) -> Node:
    return Node("sqrt", (a,))


register_op(
    "sqrt",
    lambda inputs, attrs: np.sqrt(inputs[0]),
    # d sqrt(x) = 1/(2 sqrt(x)) = 0.5 / y
    vjp=lambda node, g: [mul(g, scale(Node("div", (constant(np.float64(1.0)), node)), 0.5))],
    flops=lambda node, ins, out: 4 * out.size,
    forward_out=lambda inputs, attrs, out: np.sqrt(inputs[0], out=out),
)


def sigmoid(a: Node) -> Node:
    return Node("sigmoid", (a,))


def _out_sigmoid(inputs, attrs, out):
    # Same ufunc sequence as the allocating kernel: -x, exp, 1+, 1/.
    np.negative(inputs[0], out=out)
    np.exp(out, out=out)
    np.add(1.0, out, out=out)
    np.divide(1.0, out, out=out)


register_op(
    "sigmoid",
    lambda inputs, attrs: 1.0 / (1.0 + np.exp(-inputs[0])),
    # d sigma = sigma * (1 - sigma)
    vjp=lambda node, g: [mul(g, mul(node, Node("one_minus", (node,))))],
    flops=lambda node, ins, out: TANH_FLOPS_PER_ELEM * out.size,
    forward_out=_out_sigmoid,
)

register_op(
    "one_minus",
    lambda inputs, attrs: 1.0 - inputs[0],
    vjp=lambda node, g: [neg(g)],
    flops=lambda node, ins, out: out.size,
    forward_out=lambda inputs, attrs, out: np.subtract(1.0, inputs[0], out=out),
)


def relu(a: Node) -> Node:
    return Node("relu", (a,))


register_op(
    "relu",
    lambda inputs, attrs: np.maximum(inputs[0], 0.0),
    vjp=lambda node, g: [mul(g, Node("step_mask", (node.inputs[0],)))],
    flops=lambda node, ins, out: out.size,
    forward_out=lambda inputs, attrs, out: np.maximum(inputs[0], 0.0, out=out),
)

def _out_step_mask(inputs, attrs, out):
    # casting="unsafe" only covers the bool -> float cast; the values are
    # exactly 0.0 / 1.0, bitwise equal to the astype in the allocating form.
    np.greater(inputs[0], 0, out=out, casting="unsafe")


register_op(
    "step_mask",
    lambda inputs, attrs: (inputs[0] > 0).astype(inputs[0].dtype),
    vjp=lambda node, g: [None],
    flops=lambda node, ins, out: out.size,
    forward_out=_out_step_mask,
)


def pow_scalar(a: Node, exponent: float) -> Node:
    """Elementwise a**p for a python-scalar exponent."""
    return Node("pow_scalar", (a,), {"p": float(exponent)})


def _vjp_pow_scalar(node, g):
    p = node.attrs["p"]
    return [mul(g, scale(pow_scalar(node.inputs[0], p - 1.0), p))]


register_op(
    "pow_scalar",
    lambda inputs, attrs: inputs[0] ** attrs["p"],
    vjp=_vjp_pow_scalar,
    flops=lambda node, ins, out: 4 * out.size,
    forward_out=lambda inputs, attrs, out: np.power(
        inputs[0], attrs["p"], out=out
    ),
)


# Fused TANH (Sec 5.3.3): one kernel produces both tanh(x) and 1 - tanh(x)^2,
# trading memory for a second elementwise pass.  The executor caches the
# tuple; `item` nodes select components.


def tanh_fused(a: Node) -> Node:
    both = Node("tanh_fused", (a,))
    return Node("item", (both,), {"index": 0}), Node("item", (both,), {"index": 1})


def _fwd_tanh_fused(inputs, attrs):
    y = np.tanh(inputs[0])
    g = 1.0 - y * y
    return (y, g)


def _out_tanh_fused(inputs, attrs, out):
    # ``out`` is the (y, g) buffer pair; same ufunc sequence as the
    # allocating kernel: tanh, y*y, 1-(..).
    y, g = out
    np.tanh(inputs[0], out=y)
    np.multiply(y, y, out=g)
    np.subtract(1.0, g, out=g)


register_op(
    "tanh_fused",
    _fwd_tanh_fused,
    flops=lambda node, ins, out: (TANH_FLOPS_PER_ELEM + 2) * out[0].size,
    forward_out=_out_tanh_fused,
)
# ``item`` is a pure component selector on a tuple-valued input — compiled
# plans treat it as an aliasing op (its output shares the producer's
# storage), so it gets no destination-passing kernel on purpose.
register_op(
    "item",
    lambda inputs, attrs: inputs[0][attrs["index"]],
    flops=lambda node, ins, out: 0,
)


# ---------------------------------------------------------------------------
# dtype casting (mixed precision, Sec 5.2.3)
# ---------------------------------------------------------------------------


def cast(a: Node, dtype) -> Node:
    return Node(
        "cast", (a,), {"dtype": np.dtype(dtype)}, shape=a.shape, dtype=np.dtype(dtype)
    )


register_op(
    "cast",
    lambda inputs, attrs: inputs[0].astype(attrs["dtype"], copy=False),
    # The cotangent must come back in the *runtime* dtype of the cast's
    # input.  Most nodes carry no static dtype, so resolving it at execution
    # time (cast_like) keeps the mixed-precision backward pass in fp32
    # between the two cast boundaries instead of silently promoting every
    # gradient kernel to fp64 against fp32 weights.
    vjp=lambda node, g: [Node("cast_like", (g, node.inputs[0]))],
    flops=lambda node, ins, out: 0,
    # astype(copy=False) may return the input itself (same dtype); the
    # destination-passing variant always materializes — same bits either way,
    # and it keeps plan buffers free of aliasing.
    forward_out=lambda inputs, attrs, out: np.copyto(
        out, inputs[0], casting="unsafe"
    ),
)

register_op(
    "cast_like",
    lambda inputs, attrs: inputs[0].astype(inputs[1].dtype, copy=False),
    vjp=lambda node, g: [Node("cast_like", (g, node.inputs[0])), None],
    flops=lambda node, ins, out: 0,
    forward_out=lambda inputs, attrs, out: np.copyto(
        out, inputs[0], casting="unsafe"
    ),
)


# ---------------------------------------------------------------------------
# FLOP category mapping for Fig-3 style breakdowns
# ---------------------------------------------------------------------------

# Category assignment mirrors Fig 3's legend: GEMM, TANH, SLICE, CUSTOM, Others.
# The plan compiler's elementwise-fusion pass (repro.tfmini.fusion)
# synthesizes "fused_elementwise" records; the registry entry exists so
# profiled plan runs can attribute FLOPs/category, but its forward/
# forward_out are bound per fused group, never looked up here.
def _fused_elementwise_unbound(inputs, attrs):  # pragma: no cover
    raise RuntimeError(
        "fused_elementwise executes only through a compiled plan's fused "
        "group kernels (repro.tfmini.fusion), never the registry forward"
    )


register_op(
    "fused_elementwise",
    _fused_elementwise_unbound,
    flops=lambda node, ins, out: node.attrs.get("flops_per_elem", 1)
    * (out.size if isinstance(out, np.ndarray) else 0),
)


OP_CATEGORY = {
    "matmul": "GEMM",
    "fused_elementwise": "CUSTOM",
    "gemm": "GEMM",
    "bmm": "GEMM",
    "tanh": "TANH",
    "tanh_grad": "TANH",
    "tanh_fused": "TANH",
    "slice": "SLICE",
    "slice_grad": "SLICE",
    "slice_axis": "SLICE",
    "slice_axis_grad": "SLICE",
    "concat": "SLICE",
    "split_part": "SLICE",
    "reshape": "SLICE",
    "reshape_like": "SLICE",
    "transpose": "SLICE",
}


def op_category(op_name: str) -> str:
    """Fig-3 category for an operator name (custom DP ops self-register)."""
    if op_name in OP_CATEGORY:
        return OP_CATEGORY[op_name]
    if op_name.startswith(("env_mat", "prod_force", "prod_virial", "format_nlist")):
        return "CUSTOM"
    return "Others"


# ---------------------------------------------------------------------------
# symbolic shape/dtype inference rules (static plan verification)
# ---------------------------------------------------------------------------
#
# Consumed by repro.analysis.plancheck: each rule receives the input shapes
# (tuples of ints / symbolic dims), input dtypes, the node attrs and an
# InferContext, and returns (out_shape, out_dtype).  Rules only use plain
# dim arithmetic plus ctx helpers, so this module stays import-free of the
# symbolic algebra.


def _promote(*dtypes):
    out = dtypes[0]
    for d in dtypes[1:]:
        out = np.promote_types(out, d)
    return out


def _norm_axis(axis: int, rank: int, ctx):
    ax = axis if axis >= 0 else axis + rank
    if not 0 <= ax < rank:
        ctx.fail(f"axis {axis} out of range for rank {rank}")
    return ax


def _inf_unary(shapes, dtypes, attrs, ctx):
    return shapes[0], dtypes[0]


def _inf_binary(shapes, dtypes, attrs, ctx):
    return ctx.broadcast(shapes[0], shapes[1]), _promote(dtypes[0], dtypes[1])


def _inf_matmul(shapes, dtypes, attrs, ctx):
    a, b = shapes
    if len(a) != 2 or len(b) != 2:
        ctx.fail(f"matmul expects 2-D operands, got ranks {len(a)} and {len(b)}")
    ctx.unify(a[1], b[0], "matmul inner dim")
    return (a[0], b[1]), _promote(dtypes[0], dtypes[1])


def _inf_gemm(shapes, dtypes, attrs, ctx):
    a, b, c = shapes
    if len(a) != 2 or len(b) != 2:
        ctx.fail(f"gemm expects 2-D operands, got ranks {len(a)} and {len(b)}")
    ctx.unify(a[1], b[0], "gemm inner dim")
    out = (a[0], b[1])
    # ``+= c`` requires c to broadcast into the product shape, not widen it.
    ctx.unify_shapes(ctx.broadcast(out, c), out, "gemm bias")
    return out, _promote(*dtypes)


def _inf_bmm(shapes, dtypes, attrs, ctx):
    a, b = shapes
    if len(a) != 3 or len(b) != 3:
        ctx.fail(f"bmm expects 3-D operands, got ranks {len(a)} and {len(b)}")
    batch = ctx.unify(a[0], b[0], "bmm batch dim")
    ctx.unify(a[2], b[1], "bmm inner dim")
    return (batch, a[1], b[2]), _promote(dtypes[0], dtypes[1])


def _inf_concat(shapes, dtypes, attrs, ctx):
    a, b = shapes
    if len(a) != len(b):
        ctx.fail(f"concat rank mismatch: {len(a)} vs {len(b)}")
    ax = _norm_axis(attrs["axis"], len(a), ctx)
    out = []
    for i, (da, db) in enumerate(zip(a, b)):
        out.append(da + db if i == ax else ctx.unify(da, db, f"concat dim {i}"))
    return tuple(out), _promote(dtypes[0], dtypes[1])


def _sliced_extent(dim, start, stop, ctx):
    # Mirror numpy's clamping slice semantics when the extent is concrete.
    if isinstance(dim, (int, np.integer)):
        lo, hi = min(start, dim), min(stop, dim)
        return max(0, hi - lo)
    return stop - start


def _inf_slice(shapes, dtypes, attrs, ctx):
    x = shapes[0]
    out = x[:-1] + (_sliced_extent(x[-1], attrs["start"], attrs["stop"], ctx),)
    return out, dtypes[0]


def _inf_slice_grad(shapes, dtypes, attrs, ctx):
    g, x = shapes
    want = x[:-1] + (_sliced_extent(x[-1], attrs["start"], attrs["stop"], ctx),)
    ctx.unify_shapes(g, want, "slice_grad cotangent")
    return x, dtypes[1]


def _inf_slice_axis(shapes, dtypes, attrs, ctx):
    x = shapes[0]
    ax = _norm_axis(attrs["axis"], len(x), ctx)
    out = list(x)
    out[ax] = _sliced_extent(x[ax], attrs["start"], attrs["stop"], ctx)
    return tuple(out), dtypes[0]


def _inf_slice_axis_grad(shapes, dtypes, attrs, ctx):
    g, x = shapes
    ax = _norm_axis(attrs["axis"], len(x), ctx)
    want = list(x)
    want[ax] = _sliced_extent(x[ax], attrs["start"], attrs["stop"], ctx)
    ctx.unify_shapes(g, tuple(want), "slice_axis_grad cotangent")
    return x, dtypes[1]


def _inf_split_part(shapes, dtypes, attrs, ctx):
    g, a, b = shapes
    ax = _norm_axis(attrs["axis"], len(g), ctx)
    ctx.unify(g[ax], a[ax] + b[ax], "split_part total extent")
    out = list(g)
    out[ax] = a[ax] if attrs["part"] == 0 else b[ax]
    return tuple(out), dtypes[0]


def _inf_split_part_grad(shapes, dtypes, attrs, ctx):
    h, a, b = shapes
    ax = _norm_axis(attrs["axis"], len(h), ctx)
    ctx.unify(h[ax], a[ax] if attrs["part"] == 0 else b[ax], "split_part_grad extent")
    out = list(h)
    out[ax] = a[ax] + b[ax]
    return tuple(out), dtypes[0]


def _inf_reshape(shapes, dtypes, attrs, ctx):
    x = shapes[0]
    target = attrs["shape"]
    total = ctx.prod(x)
    if -1 in target:
        known = ctx.prod(d for d in target if d != -1)
        inferred = ctx.div(total, known)
        if inferred is None:
            if isinstance(total, (int, np.integer)):
                ctx.fail(
                    f"reshape cannot infer -1: {total} not divisible by {known}"
                )
            ctx.note(f"reshape -1 left symbolic: {total} / {known}")
            inferred = ctx.fresh("reshape")
        return tuple(inferred if d == -1 else d for d in target), dtypes[0]
    verdict = ctx.eq(total, ctx.prod(target))
    if verdict is False:
        ctx.fail(f"reshape element count mismatch: {total} -> {target}")
    if verdict is None:
        ctx.note(f"assumed reshape count: {total} == prod{tuple(target)}")
    return tuple(target), dtypes[0]


def _inf_reshape_like(shapes, dtypes, attrs, ctx):
    x, like = shapes
    verdict = ctx.eq(ctx.prod(x), ctx.prod(like))
    if verdict is False:
        ctx.fail(
            f"reshape_like element count mismatch: prod{tuple(x)} != prod{tuple(like)}"
        )
    return like, dtypes[0]


def _inf_transpose(shapes, dtypes, attrs, ctx):
    x = shapes[0]
    perm = attrs["perm"]
    if perm is None:
        return tuple(reversed(x)), dtypes[0]
    if sorted(perm) != list(range(len(x))):
        ctx.fail(f"transpose perm {perm} invalid for rank {len(x)}")
    return tuple(x[p] for p in perm), dtypes[0]


def _inf_reduce(shapes, dtypes, attrs, ctx):
    x = shapes[0]
    axis = attrs["axis"]
    if axis is None:
        return (), dtypes[0]
    ax = _norm_axis(axis, len(x), ctx)
    return x[:ax] + x[ax + 1 :], dtypes[0]


def _inf_bcast_reduce_grad(shapes, dtypes, attrs, ctx):
    g, x = shapes
    axis = attrs["axis"]
    if axis is not None:
        ax = _norm_axis(axis, len(x), ctx)
        ctx.unify_shapes(g, x[:ax] + x[ax + 1 :], "bcast_reduce_grad cotangent")
    return x, dtypes[0]


def _inf_reduce_to_shape(shapes, dtypes, attrs, ctx):
    return shapes[1], dtypes[0]


def _inf_broadcast_like(shapes, dtypes, attrs, ctx):
    x, like = shapes
    ctx.unify_shapes(ctx.broadcast(x, like), like, "broadcast_like target")
    return like, dtypes[0]


def _inf_tanh_fused(shapes, dtypes, attrs, ctx):
    return [(shapes[0], dtypes[0]), (shapes[0], dtypes[0])]


def _inf_cast(shapes, dtypes, attrs, ctx):
    return shapes[0], np.dtype(attrs["dtype"])


def _inf_cast_like(shapes, dtypes, attrs, ctx):
    return shapes[0], dtypes[1]


_INFER_RULES = {
    "add": _inf_binary,
    "sub": _inf_binary,
    "mul": _inf_binary,
    "div": _inf_binary,
    "tanh_grad": _inf_binary,
    "neg": _inf_unary,
    "square": _inf_unary,
    "scale": _inf_unary,
    "tanh": _inf_unary,
    "exp": _inf_unary,
    "log": _inf_unary,
    "sqrt": _inf_unary,
    "sigmoid": _inf_unary,
    "one_minus": _inf_unary,
    "relu": _inf_unary,
    "step_mask": _inf_unary,
    "pow_scalar": _inf_unary,
    "matmul": _inf_matmul,
    "gemm": _inf_gemm,
    "bmm": _inf_bmm,
    "concat": _inf_concat,
    "slice": _inf_slice,
    "slice_grad": _inf_slice_grad,
    "slice_axis": _inf_slice_axis,
    "slice_axis_grad": _inf_slice_axis_grad,
    "split_part": _inf_split_part,
    "split_part_grad": _inf_split_part_grad,
    "reshape": _inf_reshape,
    "reshape_like": _inf_reshape_like,
    "transpose": _inf_transpose,
    "reduce_sum": _inf_reduce,
    "reduce_mean": _inf_reduce,
    "bcast_reduce_grad": _inf_bcast_reduce_grad,
    "reduce_to_shape": _inf_reduce_to_shape,
    "broadcast_like": _inf_broadcast_like,
    "tanh_fused": _inf_tanh_fused,
    "cast": _inf_cast,
    "cast_like": _inf_cast_like,
    # "item" is resolved structurally by the verifier (tuple component
    # selection needs the producer's per-part shapes, not a local rule).
}

for _name, _rule in _INFER_RULES.items():
    _REGISTRY[_name].infer = _rule
