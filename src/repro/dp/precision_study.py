"""Precision study: why the paper uses fp32 but rejects fp16 (Sec 5.2.3).

"We remark that although half precision is more power efficient on the
NVIDIA V100 GPU than single precision (120 TFLOPS against 14 TFLOPS), our
tests show that, due to the limited representation range with 16 binary
bits, the corresponding DP model cannot preserve the required accuracy of
the energy and forces."

:func:`precision_sweep` reproduces that test: the same trained model is
evaluated with its network parameters and activations cast to fp64, fp32,
and fp16, and the deviations from the fp64 reference are reported.  The
expected shape: fp32 deviations are negligible (orders of magnitude below
the training error), fp16 deviations are orders of magnitude larger than
fp32 — disqualifying.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.dp.model import DeepPot
from repro.md.neighbor import neighbor_pairs
from repro.md.system import System


@dataclass
class PrecisionResult:
    precision: str
    energy_dev_per_atom: float  # |ΔE|/N vs fp64, eV
    force_rmsd: float  # eV/Å
    force_max_dev: float  # eV/Å


def _clone_at_dtype(model: DeepPot, dtype) -> DeepPot:
    """Clone a model with network parameters stored/executed at ``dtype``."""
    precision = {np.float64: "double", np.float32: "mixed"}.get(dtype)
    if precision is not None:
        cfg = replace(model.config, precision=precision)
        clone = DeepPot(cfg)
        for vs, vd in zip(model.trainable_variables(), clone.trainable_variables()):
            vd.assign(vs.value.astype(vd.value.dtype))
        clone.set_stats(model.davg, model.dstd, model.e0)
        return clone
    # fp16 has no engine mode (the paper rejects it); emulate by rounding the
    # parameters through fp16 inside the fp32 engine — this captures the
    # 10-bit mantissa's representation error, the paper's stated failure mode.
    cfg = replace(model.config, precision="mixed")
    clone = DeepPot(cfg)
    for vs, vd in zip(model.trainable_variables(), clone.trainable_variables()):
        vd.assign(vs.value.astype(np.float16).astype(np.float32))
    davg = model.davg.astype(np.float16).astype(np.float64)
    dstd = model.dstd.astype(np.float16).astype(np.float64)
    clone.set_stats(davg, np.maximum(dstd, 1e-2), model.e0)
    return clone


def precision_sweep(model: DeepPot, system: System) -> list[PrecisionResult]:
    """Evaluate ``system`` at fp64 / fp32 / fp16-emulated parameter precision."""
    pi, pj = neighbor_pairs(system, model.config.rcut)
    reference = _clone_at_dtype(model, np.float64).evaluate(system, pi, pj)

    out: list[PrecisionResult] = []
    for name, dtype in (("fp64", np.float64), ("fp32", np.float32), ("fp16", np.float16)):
        res = _clone_at_dtype(model, dtype).evaluate(system, pi, pj)
        df = res.forces - reference.forces
        out.append(
            PrecisionResult(
                precision=name,
                energy_dev_per_atom=abs(res.energy - reference.energy)
                / system.n_atoms,
                force_rmsd=float(np.sqrt(np.mean(df**2))),
                force_max_dev=float(np.abs(df).max()),
            )
        )
    return out
