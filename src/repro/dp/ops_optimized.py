"""Optimized customized operators: Environment, ProdForce, ProdVirial.

These are the GPU kernels of Sec 5.2.2, reproduced as fully vectorized NumPy
on the padded canonical layout from :mod:`repro.dp.nlist_fmt` — no
per-neighbor branching, contiguous SoA arrays, scatter-adds for force
accumulation.  They are also registered as tfmini graph operators (with
VJPs w.r.t. the network derivative) so force-matching training can backprop
through them.
"""

from __future__ import annotations

import numpy as np

from repro.dp.env_mat import env_rows
from repro.dp.nlist_fmt import PAD, FormattedNeighbors
from repro.md.system import System
from repro.tfmini.graph import Node
from repro.tfmini.ops import register_op


def environment_op(
    system: System,
    fmt: FormattedNeighbors,
    r_smth: float,
    r_cut: float,
    pbc: bool = True,
    out: tuple | None = None,
):
    """Compute R~, dR~/dd, and rij for every (atom, slot).

    ``out``, when given, is an ``(em, em_deriv, rij)`` triple of preallocated
    destination arrays (e.g. slices of the batched engine's persistent scratch
    buffers); every element is overwritten and the same arrays are returned.

    Returns
    -------
    em:       (nloc, nnei, 4)
    em_deriv: (nloc, nnei, 4, 3)
    rij:      (nloc, nnei, 3)   displacements r_j - r_i (zero in padded slots)
    """
    nlist = fmt.nlist
    nloc = nlist.shape[0]
    mask = nlist != PAD
    safe = np.where(mask, nlist, 0)
    disp = system.positions[safe] - system.positions[:nloc, None, :]
    if pbc:
        disp = system.box.minimum_image(disp)
    disp = np.where(mask[..., None], disp, 0.0)
    if out is None:
        em, em_deriv, _r = env_rows(disp, r_smth, r_cut)
        return em, em_deriv, disp
    em_buf, ed_buf, rij_buf = out
    rij_buf[...] = disp
    env_rows(disp, r_smth, r_cut, out_rows=em_buf, out_deriv=ed_buf)
    return em_buf, ed_buf, rij_buf


def prod_force_op(
    net_deriv: np.ndarray,
    em_deriv: np.ndarray,
    nlist: np.ndarray,
    atom_idx: np.ndarray,
    natoms: int,
) -> np.ndarray:
    """Assemble forces from dE/dR~ (Sec 5.2.2's ProdForce).

    ``net_deriv`` rows are in the model's (type-sorted) atom order;
    ``atom_idx`` maps each row back to its original atom index.  For slot
    (i, jj) with neighbor j:  F_i += Σ_c nd[i,jj,c]·ed[i,jj,c,:]  and
    F_j -= the same (since dR~/dr_i = -dR~/dr_j).
    """
    forces = np.zeros((natoms, 3))
    # Σ_c nd * ed  -> per-slot 3-vector: dE/d r_j  (before sign)
    slot = np.einsum("ijc,ijck->ijk", net_deriv, em_deriv)
    # center-atom accumulation
    np.add.at(forces, atom_idx, slot.sum(axis=1))
    # neighbor scatter
    mask = nlist != PAD
    np.add.at(forces, nlist[mask], -slot[mask])
    return forces


def prod_virial_op(
    net_deriv: np.ndarray,
    em_deriv: np.ndarray,
    rij: np.ndarray,
    nlist: np.ndarray,
) -> np.ndarray:
    """Assemble the virial tensor from dE/dR~ (Sec 5.2.2's ProdVirial).

    W = -Σ_slots d_ij ⊗ (dE/dd_ij) with d_ij = r_j - r_i.
    """
    slot = np.einsum("ijc,ijck->ijk", net_deriv, em_deriv)  # dE/dd per slot
    return -np.einsum("ija,ijb->ab", rij, slot)


# ---------------------------------------------------------------------------
# tfmini graph registration (training path)
# ---------------------------------------------------------------------------


def _fwd_prod_force(inputs, attrs):
    net_deriv, em_deriv, nlist, atom_idx, natoms_vec = inputs
    return prod_force_op(
        net_deriv, em_deriv, nlist.astype(np.int64), atom_idx.astype(np.int64),
        int(natoms_vec.reshape(-1)[0]),
    )


def _vjp_prod_force(node, g):
    # Only the network derivative is a differentiation path; geometry inputs
    # (em_deriv, nlist, atom_idx) are constants w.r.t. model parameters.
    nd, ed, nlist, aidx, nvec = node.inputs
    return [Node("prod_force_grad", (g, ed, nlist, aidx)), None, None, None, None]


def _fwd_prod_force_grad(inputs, attrs):
    g, em_deriv, nlist, atom_idx = inputs
    nlist = nlist.astype(np.int64)
    atom_idx = atom_idx.astype(np.int64)
    # dL/dnd[i,jj,c] = Σ_k ed[i,jj,c,k] (g[center_i,k] - g[j,k])
    mask = nlist != PAD
    safe = np.where(mask, nlist, 0)
    g_nb = np.where(mask[..., None], g[safe], 0.0)
    diff = g[atom_idx][:, None, :] - g_nb  # (nloc, nnei, 3)
    return np.einsum("ijck,ijk->ijc", em_deriv, diff)


def _out_prod_force(inputs, attrs, out):
    # Same einsum + np.add.at accumulation order as the allocating kernel,
    # just scattering into a zeroed caller-owned buffer.
    net_deriv, em_deriv, nlist, atom_idx, _natoms_vec = inputs
    nlist = nlist.astype(np.int64)
    out.fill(0.0)
    slot = np.einsum("ijc,ijck->ijk", net_deriv, em_deriv)
    np.add.at(out, atom_idx.astype(np.int64), slot.sum(axis=1))
    mask = nlist != PAD
    np.add.at(out, nlist[mask], -slot[mask])


def _out_prod_force_grad(inputs, attrs, out):
    g, em_deriv, nlist, atom_idx = inputs
    nlist = nlist.astype(np.int64)
    atom_idx = atom_idx.astype(np.int64)
    mask = nlist != PAD
    safe = np.where(mask, nlist, 0)
    g_nb = np.where(mask[..., None], g[safe], 0.0)
    diff = g[atom_idx][:, None, :] - g_nb
    np.einsum("ijck,ijk->ijc", em_deriv, diff, out=out)


def _inf_prod_force(shapes, dtypes, attrs, ctx):
    nd, ed = shapes[0], shapes[1]
    # nd is (nloc, nnei, 4); em_deriv is (nloc, nnei, 4, 3).
    if len(nd) != 3 or len(ed) != 4:
        ctx.fail(f"prod_force expects 3-D/4-D inputs, got ranks {len(nd)}/{len(ed)}")
    ctx.unify_shapes(nd, ed[:3], "prod_force net_deriv/em_deriv")
    ctx.unify(ed[3], 3, "prod_force displacement components")
    # Output rows come from the *value* of the natoms feed (input 4) —
    # the scatter target covers ghosts too, not just the nd rows.
    rows = ctx.value(4)
    if rows is None:
        rows = ctx.fresh("natoms")
        ctx.note("prod_force output rows unknown (natoms value unbound)")
    return (rows, 3), np.promote_types(dtypes[0], dtypes[1])


def _inf_prod_force_grad(shapes, dtypes, attrs, ctx):
    g, ed = shapes[0], shapes[1]
    if len(g) != 2 or len(ed) != 4:
        ctx.fail(f"prod_force_grad expects 2-D/4-D inputs, got ranks {len(g)}/{len(ed)}")
    ctx.unify(g[1], 3, "prod_force_grad force components")
    return ed[:3], np.promote_types(dtypes[0], dtypes[1])


register_op(
    "prod_force",
    _fwd_prod_force,
    vjp=_vjp_prod_force,
    flops=lambda node, ins, out: ins[0].size * 3 * 2,
    forward_out=_out_prod_force,
    infer=_inf_prod_force,
)
register_op(
    "prod_force_grad",
    _fwd_prod_force_grad,
    # Second-order: linear in g, so its VJP is prod_force applied to the
    # cotangent — but training never needs third derivatives; omit.
    flops=lambda node, ins, out: out.size * 3 * 2,
    forward_out=_out_prod_force_grad,
    infer=_inf_prod_force_grad,
)


def _fwd_prod_virial(inputs, attrs):
    net_deriv, em_deriv, rij, nlist = inputs
    return prod_virial_op(net_deriv, em_deriv, rij, nlist.astype(np.int64))


def _vjp_prod_virial(node, g):
    nd, ed, rij, nlist = node.inputs
    return [Node("prod_virial_grad", (g, ed, rij)), None, None, None]


def _fwd_prod_virial_grad(inputs, attrs):
    g, em_deriv, rij = inputs
    # dL/dnd[i,jj,c] = -Σ_{a,b} g[a,b] rij[i,jj,a] ed[i,jj,c,b]
    return -np.einsum("ab,ija,ijcb->ijc", g, rij, em_deriv)


def _out_prod_virial(inputs, attrs, out):
    net_deriv, em_deriv, rij, _nlist = inputs
    slot = np.einsum("ijc,ijck->ijk", net_deriv, em_deriv)
    np.einsum("ija,ijb->ab", rij, slot, out=out)
    np.negative(out, out=out)


def _out_prod_virial_grad(inputs, attrs, out):
    g, em_deriv, rij = inputs
    np.einsum("ab,ija,ijcb->ijc", g, rij, em_deriv, out=out)
    np.negative(out, out=out)


def _inf_prod_virial(shapes, dtypes, attrs, ctx):
    nd, ed, rij = shapes[0], shapes[1], shapes[2]
    if len(nd) != 3 or len(ed) != 4 or len(rij) != 3:
        ctx.fail(
            "prod_virial expects 3-D/4-D/3-D inputs, got ranks "
            f"{len(nd)}/{len(ed)}/{len(rij)}"
        )
    ctx.unify_shapes(nd, ed[:3], "prod_virial net_deriv/em_deriv")
    ctx.unify_shapes(rij, (ed[0], ed[1], 3), "prod_virial rij")
    return (3, 3), np.promote_types(np.promote_types(dtypes[0], dtypes[1]), dtypes[2])


def _inf_prod_virial_grad(shapes, dtypes, attrs, ctx):
    g, ed, rij = shapes[0], shapes[1], shapes[2]
    if len(g) != 2 or len(ed) != 4:
        ctx.fail(
            f"prod_virial_grad expects 2-D/4-D inputs, got ranks {len(g)}/{len(ed)}"
        )
    ctx.unify_shapes(g, (3, 3), "prod_virial_grad cotangent")
    return ed[:3], np.promote_types(np.promote_types(dtypes[0], dtypes[1]), dtypes[2])


register_op(
    "prod_virial",
    _fwd_prod_virial,
    vjp=_vjp_prod_virial,
    flops=lambda node, ins, out: ins[0].size * 9 * 2,
    forward_out=_out_prod_virial,
    infer=_inf_prod_virial,
)
register_op(
    "prod_virial_grad",
    _fwd_prod_virial_grad,
    flops=lambda node, ins, out: out.size * 9 * 2,
    forward_out=_out_prod_virial_grad,
    infer=_inf_prod_virial_grad,
)
