"""Builders for the paper's benchmark systems.

* :func:`fcc_lattice` — perfect fcc copper cells (strong/weak scaling runs);
* :func:`water_box` — liquid-water cells of O,H,H molecules on a perturbed
  lattice (the 4096-molecule system of Secs 5.2.3/7.1, at any size);
* :func:`nanocrystal_fcc` — Voronoi-construction nanocrystalline metal with
  randomly oriented grains (the Fig 7 microstructure).
"""

from __future__ import annotations

import numpy as np

from repro.md.box import Box
from repro.md.system import System
from repro.units import MASSES

# fcc basis in fractional coordinates.
_FCC_BASIS = np.array(
    [
        [0.0, 0.0, 0.0],
        [0.5, 0.5, 0.0],
        [0.5, 0.0, 0.5],
        [0.0, 0.5, 0.5],
    ]
)

#: Experimental fcc lattice constant of copper (Å).
CU_LATTICE = 3.615


def fcc_positions(n_cells: tuple[int, int, int], lattice: float) -> np.ndarray:
    """Cartesian positions of an fcc lattice with ``n_cells`` unit cells."""
    nx, ny, nz = n_cells
    grid = np.stack(
        np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"),
        axis=-1,
    ).reshape(-1, 3)
    pos = (grid[:, None, :] + _FCC_BASIS[None, :, :]).reshape(-1, 3) * lattice
    return pos


def fcc_lattice(
    n_cells: tuple[int, int, int] = (3, 3, 3),
    lattice: float = CU_LATTICE,
    element: str = "Cu",
) -> System:
    """A perfect single-crystal fcc system (4 atoms per unit cell)."""
    pos = fcc_positions(n_cells, lattice)
    box = Box(np.array(n_cells, dtype=float) * lattice)
    return System(
        box=box,
        positions=pos,
        types=np.zeros(len(pos), dtype=np.int64),
        masses=np.array([MASSES.get(element, 63.546)]),
        type_names=[element],
    )


def water_box(
    n_molecules_per_dim: tuple[int, int, int] = (4, 4, 4),
    density_spacing: float = 3.104,
    jitter: float = 0.05,
    seed: int = 0,
) -> System:
    """Liquid-water cell: molecules on a cubic lattice with random orientations.

    ``density_spacing`` = 3.104 Å per molecule-lattice edge reproduces ambient
    density (0.997 g/cm^3).  Atoms are ordered O,H,H per molecule with
    ``mol_ids`` set, as the oracle requires.  A short equilibration run melts
    the lattice into a liquid.
    """
    rng = np.random.default_rng(seed)
    nx, ny, nz = n_molecules_per_dim
    n_mol = nx * ny * nz
    grid = np.stack(
        np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"),
        axis=-1,
    ).reshape(-1, 3)
    centers = (grid + 0.5) * density_spacing
    centers += rng.normal(scale=jitter, size=centers.shape)

    # SPC/E monomer geometry: O at origin, H at 1.0 Å, 109.47° apart.
    r_oh = 1.0
    half = np.deg2rad(109.47 / 2)
    monomer = np.array(
        [
            [0.0, 0.0, 0.0],
            [r_oh * np.sin(half), 0.0, r_oh * np.cos(half)],
            [-r_oh * np.sin(half), 0.0, r_oh * np.cos(half)],
        ]
    )

    positions = np.empty((n_mol * 3, 3))
    for m in range(n_mol):
        # Random rotation via QR of a Gaussian matrix (Haar-ish; adequate).
        q, _ = np.linalg.qr(rng.normal(size=(3, 3)))
        if np.linalg.det(q) < 0:
            q[:, 0] *= -1
        positions[3 * m : 3 * m + 3] = centers[m] + monomer @ q.T

    types = np.tile([0, 1, 1], n_mol)
    mol_ids = np.repeat(np.arange(n_mol), 3)
    box = Box(np.array([nx, ny, nz], dtype=float) * density_spacing)
    sys = System(
        box=box,
        positions=positions,
        types=types,
        masses=np.array([MASSES["O"], MASSES["H"]]),
        type_names=["O", "H"],
        mol_ids=mol_ids,
    )
    sys.wrap()
    return sys


def _random_rotations(n: int, rng: np.random.Generator) -> np.ndarray:
    mats = np.empty((n, 3, 3))
    for k in range(n):
        q, _ = np.linalg.qr(rng.normal(size=(3, 3)))
        if np.linalg.det(q) < 0:
            q[:, 0] *= -1
        mats[k] = q
    return mats


def nanocrystal_fcc(
    box_length: float,
    n_grains: int = 8,
    lattice: float = CU_LATTICE,
    element: str = "Cu",
    min_separation: float = 2.0,
    seed: int = 0,
) -> System:
    """Voronoi-construction nanocrystal (Fig 7 (a)), Schiøtz-style.

    Random grain centers are drawn in the periodic box; each center and each
    of its 26 periodic images is an *anchor* carrying the grain's randomly
    oriented fcc lattice.  A candidate atom (anchor + rotated lattice vector,
    landing inside the primary box) is kept only when its own anchor is the
    nearest of all anchors — the periodic Voronoi condition with seamless
    wrap-around.  Cross-grain contacts closer than ``min_separation`` are
    then removed, leaving physical grain-boundary gaps.
    """
    rng = np.random.default_rng(seed)
    box = Box([box_length] * 3)
    centers = rng.uniform(0, box_length, size=(n_grains, 3))
    rotations = _random_rotations(n_grains, rng)

    # All anchors: grain centers plus their 26 periodic images.
    shifts = np.array(
        [
            [sx, sy, sz]
            for sx in (-1, 0, 1)
            for sy in (-1, 0, 1)
            for sz in (-1, 0, 1)
        ],
        dtype=np.float64,
    ) * box_length
    anchors = (centers[:, None, :] + shifts[None, :, :]).reshape(-1, 3)
    anchor_grain = np.repeat(np.arange(n_grains), len(shifts))

    # Lattice block big enough that each anchor's Voronoi region (bounded by
    # the box size) is fully covered.
    n_rep = int(np.ceil(2.0 * box_length / lattice)) + 2
    base = fcc_positions((n_rep, n_rep, n_rep), lattice)
    base -= base.mean(axis=0)

    kept: list[np.ndarray] = []
    grain_of: list[np.ndarray] = []
    anchor_of: list[np.ndarray] = []
    for a_idx in range(len(anchors)):
        g = anchor_grain[a_idx]
        pts = anchors[a_idx] + base @ rotations[g].T
        inside = np.all((pts >= 0.0) & (pts < box_length), axis=1)
        pts = pts[inside]
        if not len(pts):
            continue
        # own anchor must be the nearest of all anchors (plain Euclidean —
        # images are explicit)
        d2 = ((pts[:, None, :] - anchors[None, :, :]) ** 2).sum(axis=2)
        mine = d2.argmin(axis=1) == a_idx
        pts = pts[mine]
        if len(pts):
            kept.append(pts)
            grain_of.append(np.full(len(pts), g))
            anchor_of.append(np.full(len(pts), a_idx))

    positions = np.concatenate(kept)
    grains = np.concatenate(grain_of)
    anchor_ids = np.concatenate(anchor_of)

    # Remove too-close contacts at boundaries.  Anchor identity (not grain id)
    # distinguishes a grain from its own periodic image, whose lattices meet
    # at a genuine boundary.
    from repro.md.neighbor import neighbor_pairs

    tmp = System(
        box=box,
        positions=positions,
        types=np.zeros(len(positions), dtype=np.int64),
        masses=np.array([MASSES.get(element, 63.546)]),
    )
    pi, pj = neighbor_pairs(tmp, min_separation)
    cross = anchor_ids[pi] != anchor_ids[pj]
    drop = np.zeros(len(positions), dtype=bool)
    # Greedy: for each offending boundary pair, drop the later atom.
    for a, b in zip(pi[cross], pj[cross]):
        if not drop[a] and not drop[b]:
            drop[max(a, b)] = True
    positions = positions[~drop]
    grains = grains[~drop]

    sys = System(
        box=box,
        positions=positions,
        types=np.zeros(len(positions), dtype=np.int64),
        masses=np.array([MASSES.get(element, 63.546)]),
        type_names=[element],
    )
    sys.grain_ids = grains  # extra annotation used by tests/examples
    return sys
