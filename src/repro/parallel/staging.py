"""Setup-time staging (Sec 7.3): baseline vs optimized initialisation.

The paper reports >240 s setup for the 113M-atom copper system on 4,560
nodes with the baseline scheme — rank 0 builds the whole atomic structure
and scatters it, and *every* rank reads the model file from disk — reduced
to <5 s by (a) building the structure on every rank locally without
communication and (b) reading the model once and broadcasting it.

Both code paths are implemented here against the simulated communicator so
the benchmark can measure real work and real (accounted) traffic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.dp.model import DeepPot
from repro.dp.serialize import model_bytes, model_from_bytes, save_model, load_model
from repro.md.system import System
from repro.parallel.comm import SimComm
from repro.parallel.decomp import DomainDecomposition


@dataclass
class SetupReport:
    seconds: float
    structure_seconds: float
    model_seconds: float
    p2p_bytes: int
    bcast_bytes: int
    model_reads: int


def baseline_setup(
    build_structure: Callable[[], System],
    model_path: str,
    comm: SimComm,
    grid: tuple[int, int, int],
) -> tuple[DomainDecomposition, list[DeepPot], SetupReport]:
    """The original scheme: rank-0 build + scatter; every rank reads the model."""
    t0 = time.perf_counter()

    # rank 0 constructs the full structure...
    system = build_structure()
    # ...and scatters per-rank blocks over point-to-point messages.
    decomp = DomainDecomposition(grid, comm)
    decomp.assign_atoms(system)
    for dom in decomp.domains:
        if dom.rank == 0:
            continue
        comm.send(0, dom.rank, dom.positions, tag="scatter_pos")
        comm.send(0, dom.rank, dom.types, tag="scatter_type")
        comm.recv(dom.rank, 0, tag="scatter_pos")
        comm.recv(dom.rank, 0, tag="scatter_type")
    t_struct = time.perf_counter() - t0

    # every rank opens and parses the model file independently
    t1 = time.perf_counter()
    models = [load_model(model_path) for _ in range(comm.size)]
    t_model = time.perf_counter() - t1

    total = time.perf_counter() - t0
    report = SetupReport(
        seconds=total,
        structure_seconds=t_struct,
        model_seconds=t_model,
        p2p_bytes=comm.stats.p2p_bytes,
        bcast_bytes=comm.stats.bcast_bytes,
        model_reads=comm.size,
    )
    return decomp, models, report


def optimized_setup(
    build_structure_local: Callable[[int], System],
    model_path: str,
    comm: SimComm,
    grid: tuple[int, int, int],
) -> tuple[DomainDecomposition, list[DeepPot], SetupReport]:
    """The Sec 7.3 scheme: replicated local build + read-once model broadcast.

    ``build_structure_local(rank)`` builds the same global structure on each
    rank without communication (in the paper each rank constructs only its
    own sub-block; here the distinction is the absence of scatter traffic).
    """
    t0 = time.perf_counter()
    decomp = DomainDecomposition(grid, comm)
    # all ranks build concurrently and keep only their own atoms — no messages
    system = build_structure_local(0)
    decomp.assign_atoms(system)
    t_struct = time.perf_counter() - t0

    # rank 0 reads the model once; everyone else receives the broadcast blob
    t1 = time.perf_counter()
    blob = open(model_path, "rb").read()
    blob = comm.bcast(0, blob)
    models = [model_from_bytes(blob) for _ in range(comm.size)]
    t_model = time.perf_counter() - t1

    total = time.perf_counter() - t0
    report = SetupReport(
        seconds=total,
        structure_seconds=t_struct,
        model_seconds=t_model,
        p2p_bytes=comm.stats.p2p_bytes,
        bcast_bytes=comm.stats.bcast_bytes,
        model_reads=1,
    )
    return decomp, models, report
