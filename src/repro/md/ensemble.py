"""Lockstep multi-replica MD through the batched DP evaluation engine.

:class:`EnsembleSimulation` advances R replicas of a system — typically the
same structure with different velocity seeds and/or thermostat temperatures,
for RDF statistics, diffusion averaging, or embarrassingly-parallel sampling
— in lockstep.  Each replica keeps its own :class:`~repro.md.neighbor.
NeighborList`, integrator, and thermo log (exactly the per-replica state a
serial :class:`~repro.md.simulation.Simulation` would hold), but every force
evaluation is fused across replicas into one batched graph execution
(:mod:`repro.dp.batch`), amortizing the fixed per-evaluation cost the paper's
Sec 7 measurements identify as the scaling limiter.

A one-replica ensemble follows the exact step sequence of ``Simulation``, and
the batched engine's R=1 results are bitwise identical to the serial path —
so single- and multi-replica MD share one executor and one numerical history.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.md.integrators import Integrator, VelocityVerlet
from repro.md.neighbor import NeighborList, fitted_neighbor_list
from repro.md.potential import PotentialResult
from repro.md.system import System
from repro.md.thermo import ThermoLog
from repro.md.velocity import boltzmann_velocities


class EnsembleSimulation:
    """R replicas advanced in lockstep with fused force evaluations.

    Parameters
    ----------
    systems:
        The replica snapshots (mutated in place, like ``Simulation``).
    model:
        A :class:`repro.dp.model.DeepPot` (or a ``DeepPotPair`` wrapper, which
        is unwrapped).  Forces come from one batched evaluation per step.
    dt:
        Timestep in ps, shared by all replicas.
    integrators:
        One per replica; defaults to NVE velocity-Verlet everywhere.  Pass
        e.g. Langevin integrators at different temperatures for a
        replica-ladder.
    neighbors:
        One :class:`NeighborList` per replica; defaults to skin-fitted lists
        (the paper's 2 Å skin, shrunk when the box is small).
    backend:
        Environment-operator backend, as in ``DeepPot.evaluate``.
    force_backend:
        Optional injected evaluation seam (anything with
        ``evaluate(frames)`` / ``invalidate_buckets()`` — e.g. a
        :class:`~repro.dp.backend.ServingForceBackend` submitting to a
        shared serving pool).  When given, ``model`` may be ``None`` if
        ``cutoff`` (or explicit ``neighbors``) is supplied.
    cutoff:
        Neighbor-list cutoff in Å; defaults to ``model.config.rcut``.
        Required when an injected backend leaves ``model=None``.
    """

    def __init__(
        self,
        systems: Sequence[System],
        model=None,
        dt: float = 0.001,
        integrators: Optional[Sequence[Integrator]] = None,
        neighbors: Optional[Sequence[NeighborList]] = None,
        thermo_every: int = 20,
        backend: str = "optimized",
        force_backend=None,
        cutoff: Optional[float] = None,
    ):
        # Imported here, not at module scope: repro.dp modules import from
        # repro.md, so a top-level import would make package import order
        # significant (repro.dp before repro.md raised ImportError).
        from repro.dp.backend import ForceBackend

        model = getattr(model, "model", model)  # unwrap DeepPotPair
        self.systems = list(systems)
        if not self.systems:
            raise ValueError("EnsembleSimulation needs at least one replica")
        self.model = model
        self.dt = dt
        self.backend = backend
        if force_backend is not None:
            # Injected seam (a serving pool, a test double): the ensemble
            # evaluates through it unchanged.  Remote backends have no local
            # engine — self.engine stays None and counters live server-side.
            self.force_backend = force_backend
            self.engine = getattr(force_backend, "engine", None)
        else:
            if model is None:
                raise ValueError("need a model (or an injected force_backend)")
            # The shared evaluation seam (see repro.dp.backend): replicas
            # are submitted as frames and bucketed into one stacked
            # evaluation per step.  A dedicated engine (not model.batched)
            # keeps the R-replica scratch shapes from being thrashed by
            # unrelated R=1 evaluations.
            self.force_backend = ForceBackend(model, op_backend=backend)
            self.engine = self.force_backend.engine
        if cutoff is None and model is not None:
            cutoff = model.config.rcut
        if neighbors is None and cutoff is None:
            raise ValueError(
                "need a cutoff (or a model, or explicit neighbor lists)"
            )
        R = len(self.systems)
        self.integrators = (
            list(integrators)
            if integrators is not None
            else [VelocityVerlet() for _ in range(R)]
        )
        if len(self.integrators) != R:
            raise ValueError(f"{R} replicas but {len(self.integrators)} integrators")
        self.neighbors = (
            list(neighbors)
            if neighbors is not None
            else [
                fitted_neighbor_list(s, cutoff, skin=2.0)
                for s in self.systems
            ]
        )
        if len(self.neighbors) != R:
            raise ValueError(f"{R} replicas but {len(self.neighbors)} neighbor lists")
        self.thermo = [ThermoLog(every=thermo_every) for _ in range(R)]
        self.step_count = 0
        self.loop_seconds = 0.0
        self.setup_seconds = 0.0
        self.force_evaluations = 0  # batched evaluations (R frames each)
        self._results: Optional[list[PotentialResult]] = None

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_system(
        cls,
        system: System,
        model,
        n_replicas: int,
        temperature: float | Sequence[float] = 330.0,
        seed: int | Sequence[int] = 0,
        **kwargs,
    ) -> "EnsembleSimulation":
        """Clone one structure into R replicas with fresh Boltzmann velocities.

        ``temperature`` and ``seed`` may be scalars (seed is then offset per
        replica so trajectories decorrelate) or per-replica sequences — the
        mixed-seed/mixed-temperature sampling setup.
        """
        # np.ndim == 0 (not np.isscalar, which rejects numpy scalars like a
        # value pulled out of an array) distinguishes scalar from sequence.
        temps = (
            [float(temperature)] * n_replicas
            if np.ndim(temperature) == 0
            else [float(t) for t in temperature]
        )
        seeds = (
            [int(seed) + k for k in range(n_replicas)]
            if np.ndim(seed) == 0
            else [int(s) for s in seed]
        )
        if len(temps) != n_replicas or len(seeds) != n_replicas:
            raise ValueError("temperature/seed sequences must have one entry per replica")
        replicas = []
        for k in range(n_replicas):
            rep = system.copy()
            boltzmann_velocities(rep, temps[k], seed=seeds[k])
            replicas.append(rep)
        return cls(replicas, model, **kwargs)

    # ---------------------------------------------------------------- stepping

    @property
    def n_replicas(self) -> int:
        return len(self.systems)

    def _evaluate(self) -> list[PotentialResult]:
        from repro.dp.backend import ForceFrame

        results = self.force_backend.evaluate(
            [
                ForceFrame(system, nl.pair_i, nl.pair_j)
                for system, nl in zip(self.systems, self.neighbors)
            ]
        )
        self.force_evaluations += 1
        self._results = results
        return results

    def initialize(self) -> list[PotentialResult]:
        """Build all neighbor lists and evaluate initial forces (setup time)."""
        t0 = time.perf_counter()
        for nl, system in zip(self.neighbors, self.systems):
            nl.build(system, step=0)
        results = self._evaluate()
        self.setup_seconds += time.perf_counter() - t0
        return results

    def run(self, n_steps: int, callback: Optional[Callable] = None) -> list[ThermoLog]:
        """Advance all replicas ``n_steps`` in lockstep.

        Per step and per replica this performs the exact sequence of
        ``Simulation.run`` (half-kick, rebuild check, force evaluation,
        half-kick, thermo record); only the force evaluations are fused.
        """
        if self._results is None:
            self.initialize()

        t0 = time.perf_counter()
        for k, (system, res) in enumerate(zip(self.systems, self._results)):
            self.thermo[k].maybe_record(
                system, res.energy, res.virial, self.step_count, self.dt
            )
        for _ in range(n_steps):
            for k, system in enumerate(self.systems):
                self.integrators[k].first_half(
                    system, self._results[k].forces, self.dt
                )
            self.step_count += 1
            for k, system in enumerate(self.systems):
                self.neighbors[k].maybe_rebuild(system, self.step_count)
            results = self._evaluate()
            for k, system in enumerate(self.systems):
                self.integrators[k].second_half(system, results[k].forces, self.dt)
                self.thermo[k].maybe_record(
                    system, results[k].energy, results[k].virial,
                    self.step_count, self.dt,
                )
            if callback is not None:
                callback(self)
        self.loop_seconds += time.perf_counter() - t0
        return self.thermo

    # ----------------------------------------------------------------- metrics

    def total_atoms(self) -> int:
        return sum(s.n_atoms for s in self.systems)

    def time_to_solution(self) -> float:
        """Seconds per MD step per atom, aggregated over all replicas."""
        if self.step_count == 0:
            return float("nan")
        return self.loop_seconds / self.step_count / self.total_atoms()

    def last_results(self) -> list[PotentialResult]:
        if self._results is None:
            raise RuntimeError("ensemble not initialised")
        return self._results


@dataclass
class DiffusionEstimate:
    """Replica-averaged diffusion coefficient with its spread.

    ``mean`` and ``stderr`` are in Å²/ps (Einstein relation, D = slope/6);
    ``per_replica`` carries each replica's independent estimate so callers
    can inspect the distribution behind the error bar.
    """

    mean: float
    stderr: float
    per_replica: np.ndarray


class EnsembleMSD:
    """Replica-averaged MSD/diffusion with per-replica error bars.

    The estimator the replica ensemble exists for: each replica contributes
    an *independent* MSD curve (its own thermostat seed decorrelates it), so
    averaging over replicas both sharpens the mean and — unlike averaging
    time origins within one trajectory — yields an honest standard error.

    Use as an :meth:`EnsembleSimulation.run` callback::

        ens = EnsembleSimulation.from_system(base, model, n_replicas=8)
        msd = EnsembleMSD(ens, every=10)
        ens.run(500, callback=msd)
        mean, err = msd.msd()
        d = msd.diffusion()          # DiffusionEstimate(mean, stderr, ...)

    Coordinates are unwrapped on the fly (periodic jumps removed between
    recorded frames), the requirement of the Einstein estimator.
    """

    def __init__(
        self,
        ensemble: EnsembleSimulation,
        every: int = 10,
        atom_mask: Optional[np.ndarray] = None,
    ):
        # Lazy import mirrors the BatchedEvaluator import above: repro.md
        # must stay importable before repro.analysis.
        from repro.analysis.dynamics import UnwrappedTrajectory

        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self.atom_mask = atom_mask
        self.dt_between_frames = ensemble.dt * self.every
        # Frame spacing is measured from the step at which the collector was
        # attached, so an equilibration run of any length may precede it
        # without skewing the time axis of the first interval.
        self._start_step = ensemble.step_count
        self._trajectories = [
            UnwrappedTrajectory(s.box) for s in ensemble.systems
        ]
        self._record(ensemble)  # frame 0: the configurations at attachment

    def __call__(self, sim: EnsembleSimulation) -> None:
        """``EnsembleSimulation.run`` callback: record every Nth step."""
        if (sim.step_count - self._start_step) % self.every == 0:
            self._record(sim)

    def _record(self, sim) -> None:
        for trajectory, system in zip(self._trajectories, sim.systems):
            trajectory.add(system.positions)

    @property
    def n_replicas(self) -> int:
        return len(self._trajectories)

    @property
    def n_frames(self) -> int:
        return len(self._trajectories[0].frames)

    def replica_msd(self) -> np.ndarray:
        """(R, n_frames) MSD curves, one per replica, in Å²."""
        from repro.analysis.dynamics import mean_squared_displacement

        return np.stack(
            [
                mean_squared_displacement(t.as_array(), self.atom_mask)
                for t in self._trajectories
            ]
        )

    def msd(self) -> tuple[np.ndarray, np.ndarray]:
        """Replica-mean MSD(t) and its standard error over replicas."""
        per = self.replica_msd()
        mean = per.mean(axis=0)
        if self.n_replicas > 1:
            stderr = per.std(axis=0, ddof=1) / np.sqrt(self.n_replicas)
        else:
            stderr = np.zeros_like(mean)
        return mean, stderr

    def diffusion(self, fit_from: float = 0.5) -> DiffusionEstimate:
        """Einstein-relation D per replica, averaged with an error bar."""
        from repro.analysis.dynamics import diffusion_coefficient

        per = np.array(
            [
                diffusion_coefficient(m, self.dt_between_frames, fit_from)
                for m in self.replica_msd()
            ]
        )
        stderr = (
            float(per.std(ddof=1) / np.sqrt(per.size)) if per.size > 1 else 0.0
        )
        return DiffusionEstimate(
            mean=float(per.mean()), stderr=stderr, per_replica=per
        )
