"""Multi-client DP inference through the micro-batching service.

Spins up an :class:`~repro.serving.InferenceServer` hosting the zoo water
model, then drives it with N closed-loop client threads — each submits a
frame, waits for the result, and submits the next, so no client ever has
more than one request in flight.  Coalescing across *clients* is therefore
the only batching available, and the scheduler's ``max_wait_us`` window is
what makes it happen: requests that arrive within the window ride the same
batched graph execution.

Every served result is bitwise identical to a direct ``DeepPot.evaluate``
of the same frame — batching is invisible to clients except in throughput.

Run:  python examples/inference_service.py [--clients N] [--requests M]
"""

from __future__ import annotations

import argparse
import time

from repro.analysis.structures import water_box
from repro.serving import (
    InferenceServer,
    perturbed_frames,
    run_closed_loop_clients,
    served_matches_direct,
)
from repro.zoo import get_water_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--requests", type=int, default=10)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-us", type=float, default=1500.0)
    parser.add_argument("--workers", default="per-model",
                        help="'per-model' or an integer shared-pool size")
    args = parser.parse_args()

    model = get_water_model()
    base = water_box((3, 3, 3), seed=0)
    server = InferenceServer(
        {"water": model},
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        workers=args.workers,  # 'per-model' or an int (server coerces)
    )
    print(f"server up: model 'water' ({base.n_atoms}-atom frames), "
          f"max_batch={args.max_batch}, max_wait={args.max_wait_us:.0f} us, "
          f"workers={server.workers}")

    frame_sets = {
        tid: perturbed_frames(base, args.requests, seed0=100 * (tid + 1))
        for tid in range(args.clients)
    }

    t0 = time.perf_counter()
    served = run_closed_loop_clients(server, "water", frame_sets, timeout=300)
    wall = time.perf_counter() - t0
    server.stop()

    total = args.clients * args.requests
    print(f"\n{total} requests from {args.clients} clients in {wall:.2f} s "
          f"({total / wall:.1f} frames/s)")
    print(server.stats.report())

    # The serving guarantee, spot-checked on every client's last frame.
    matches = sum(
        served_matches_direct(model, *mine[-1]) for mine in served.values()
    )
    print(f"\nbitwise vs direct evaluate: "
          f"{matches}/{args.clients} spot checks identical")


if __name__ == "__main__":
    main()
