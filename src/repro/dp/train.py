"""DP training: energy+force matching with double backprop (DeePMD-kit's loss).

The loss per frame is

    L = p_e(t) * (ΔE / N)^2  +  p_f(t) * |ΔF|^2 / (3N)

with the DeePMD prefactor schedule p(t) = p_limit + (p_start - p_limit) *
lr(t)/lr(0): force-dominated early, energy weight growing as the learning
rate decays.  The force term requires d(loss)/dθ of a quantity that is
itself a gradient (F = ProdForce(dE/dR~)); tfmini's graph-building autodiff
handles the double backprop (see tests/test_tfmini_autodiff.py).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

import repro.tfmini as tf
from repro.dp.data import Dataset, LabeledFrame
from repro.dp.model import DeepPot
from repro.md.neighbor import neighbor_pairs
from repro.tfmini.ops import scale as tf_scale


@dataclass
class TrainConfig:
    n_steps: int = 1000
    lr_start: float = 2e-3
    lr_stop: float = 1e-5
    decay_steps: int = 200
    pref_e_start: float = 0.02
    pref_e_limit: float = 1.0
    pref_f_start: float = 1000.0
    pref_f_limit: float = 1.0
    # virial matching is optional (the paper's models train on E + F)
    pref_v_start: float = 0.0
    pref_v_limit: float = 0.0
    seed: int = 0
    log_every: int = 100

    @property
    def use_virial(self) -> bool:
        return self.pref_v_start > 0.0 or self.pref_v_limit > 0.0


@dataclass
class TrainRecord:
    step: int
    lr: float
    loss: float
    rmse_e_per_atom: float
    rmse_f: float


class Trainer:
    """Single-frame-batch Adam trainer for a DeepPot model.

    The forward+backward+double-backward loss graph executes through a
    compiled execution plan (:mod:`repro.tfmini.plan`) — topo-sorted once at
    first step, then a flat tape walk per step with persistent output
    buffers (frames of equal size share one arena).  ``use_plan=False``
    keeps the step on ``Session.run``, the bitwise reference oracle.
    """

    def __init__(
        self,
        model: DeepPot,
        dataset: Dataset,
        config: Optional[TrainConfig] = None,
        use_plan: bool = True,
        plan_schedule: str = "liveness",
        plan_span_workers: int = 1,
        plan_backend: Optional[str] = None,
    ):
        if len(dataset) == 0:
            raise ValueError("dataset is empty")
        self.model = model
        self.dataset = dataset
        self.config = config or TrainConfig()
        self.use_plan = use_plan
        # Plan-compiler knobs (tape schedule, span thread count, kernel
        # backend), forwarded to ``compile_plan``; every schedule/span
        # combination and the bitwise backends are bitwise identical.
        self.plan_schedule = plan_schedule
        self.plan_span_workers = plan_span_workers
        self.plan_backend = plan_backend
        self._plan = None  # compiled lazily: one topo_sort per trainer
        self._rng = np.random.default_rng(self.config.seed)

        decay_rate = self._decay_rate()
        self.schedule = tf.ExponentialDecay(
            start=self.config.lr_start,
            stop=self.config.lr_stop,
            decay_steps=self.config.decay_steps,
            rate=decay_rate,
        )
        self.optimizer = tf.Adam(lr=self.schedule)
        self._build_loss_graph()
        self.history: list[TrainRecord] = []

    def _decay_rate(self) -> float:
        """Rate such that lr decays from start to stop over n_steps."""
        c = self.config
        n_cycles = max(c.n_steps / max(c.decay_steps, 1), 1.0)
        return float((c.lr_stop / c.lr_start) ** (1.0 / n_cycles))

    def _build_loss_graph(self) -> None:
        m = self.model
        self.ph_e_label = tf.placeholder("e_label", dtype=np.float64)
        self.ph_f_label = tf.placeholder("f_label", dtype=np.float64)
        self.ph_pref_e = tf.placeholder("pref_e", dtype=np.float64)
        self.ph_pref_f = tf.placeholder("pref_f", dtype=np.float64)
        self.ph_inv_natoms = tf.placeholder("inv_natoms", dtype=np.float64)

        de = tf.sub(m.node_energy, self.ph_e_label)
        loss_e = tf.mul(tf.square(tf.mul(de, self.ph_inv_natoms)), self.ph_pref_e)
        df = tf.sub(m.node_forces, self.ph_f_label)
        loss_f = tf.mul(tf.reduce_mean(tf.square(df)), self.ph_pref_f)
        self.node_loss = tf.add(loss_e, loss_f)
        if self.config.use_virial:
            self.ph_v_label = tf.placeholder("v_label", dtype=np.float64)
            self.ph_pref_v = tf.placeholder("pref_v", dtype=np.float64)
            dv = tf.sub(m.node_virial, self.ph_v_label)
            loss_v = tf.mul(
                tf.mul(tf.reduce_sum(tf.square(dv)), self.ph_inv_natoms),
                self.ph_pref_v,
            )
            self.node_loss = tf.add(self.node_loss, loss_v)
        self.variables = m.trainable_variables()
        self.grad_nodes = tf.grad(self.node_loss, self.variables)
        # Variables untouched by a given center-type block yield None only if
        # disconnected; with all types present they are all connected.
        self._fetches = [self.node_loss, m.node_energy, m.node_forces] + [
            g if g is not None else tf.constant(0.0) for g in self.grad_nodes
        ]
        self._feed_nodes = (
            list(m.ph_env)
            + [m.ph_em_deriv, m.ph_rij, m.ph_nlist, m.ph_atom_idx, m.ph_natoms]
            + [
                self.ph_e_label,
                self.ph_f_label,
                self.ph_inv_natoms,
                self.ph_pref_e,
                self.ph_pref_f,
            ]
        )
        if self.config.use_virial:
            self._feed_nodes += [self.ph_v_label, self.ph_pref_v]

    @property
    def plan(self):
        """Compiled execution plan of the training-step fetches (lazy)."""
        if self._plan is None:
            self._plan = tf.compile_plan(
                self._fetches,
                self._feed_nodes,
                copy_fetches=False,
                schedule=self.plan_schedule,
                span_workers=self.plan_span_workers,
                backend=self.plan_backend,
            )
        return self._plan

    # ---------------------------------------------------------------- feeding

    def _frame_feeds(self, frame: LabeledFrame):
        sysf = frame.system
        pi, pj = neighbor_pairs(sysf, self.model.config.rcut)
        feeds, _order = self.model.prepare_feeds(sysf, pi, pj)
        n = sysf.n_atoms
        # The graph energy excludes the per-type bias; shift the label instead.
        e_label = frame.energy - self.model.e0[sysf.types].sum()
        feeds[self.ph_e_label] = np.float64(e_label)
        feeds[self.ph_f_label] = frame.forces
        feeds[self.ph_inv_natoms] = np.float64(1.0 / n)
        lr_now = self.schedule(self.optimizer.step)
        lr_frac = lr_now / self.config.lr_start
        c = self.config
        feeds[self.ph_pref_e] = np.float64(
            c.pref_e_limit + (c.pref_e_start - c.pref_e_limit) * lr_frac
        )
        feeds[self.ph_pref_f] = np.float64(
            c.pref_f_limit + (c.pref_f_start - c.pref_f_limit) * lr_frac
        )
        if c.use_virial:
            feeds[self.ph_v_label] = frame.virial
            feeds[self.ph_pref_v] = np.float64(
                c.pref_v_limit + (c.pref_v_start - c.pref_v_limit) * lr_frac
            )
        return feeds, n

    # --------------------------------------------------------------- training

    def step(self) -> float:
        frame = self.dataset[self._rng.integers(len(self.dataset))]
        feeds, _n = self._frame_feeds(frame)
        if self.use_plan:
            out = self.plan.run(feeds, session=self.model.session)
        else:
            out = self.model.session.run(self._fetches, feeds)
        loss = float(out[0])
        grads = out[3:]
        self.optimizer.apply(self.variables, grads)
        return loss

    def train(self, n_steps: Optional[int] = None, verbose: bool = False) -> list[TrainRecord]:
        n_steps = n_steps or self.config.n_steps
        for k in range(n_steps):
            loss = self.step()
            if (k + 1) % self.config.log_every == 0 or k == n_steps - 1:
                rmse_e, rmse_f = self.evaluate_errors(max_frames=4)
                rec = TrainRecord(
                    step=self.optimizer.step,
                    lr=self.schedule(self.optimizer.step),
                    loss=loss,
                    rmse_e_per_atom=rmse_e,
                    rmse_f=rmse_f,
                )
                self.history.append(rec)
                if verbose:
                    print(
                        f"step {rec.step:6d} lr {rec.lr:.2e} loss {rec.loss:.3e} "
                        f"rmse_e/atom {rec.rmse_e_per_atom:.3e} rmse_f {rec.rmse_f:.3e}"
                    )
        return self.history

    # -------------------------------------------------------------- validation

    def evaluate_errors(
        self, dataset: Optional[Dataset] = None, max_frames: Optional[int] = None
    ) -> tuple[float, float]:
        """(RMSE of E/atom, RMSE of force components) over ``dataset``."""
        ds = dataset or self.dataset
        frames = ds.frames[:max_frames] if max_frames else ds.frames
        se, sf, ne, nf = 0.0, 0.0, 0, 0
        for frame in frames:
            sysf = frame.system
            pi, pj = neighbor_pairs(sysf, self.model.config.rcut)
            res = self.model.evaluate(sysf, pi, pj)
            se += ((res.energy - frame.energy) / sysf.n_atoms) ** 2
            ne += 1
            sf += float(((res.forces - frame.forces) ** 2).sum())
            nf += frame.forces.size
        return float(np.sqrt(se / max(ne, 1))), float(np.sqrt(sf / max(nf, 1)))
