"""FIRE energy minimization (Bitzek et al. 2006) — LAMMPS ``min_style fire``.

Used to relax as-built structures (e.g. the Fig 7 nanocrystal's grain
boundaries) before dynamics, removing unphysical contact forces that would
otherwise show up as a temperature spike at step 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.md.neighbor import NeighborList
from repro.md.potential import Potential
from repro.md.system import System


@dataclass
class FireResult:
    converged: bool
    n_iterations: int
    energy: float
    max_force: float
    energy_history: list[float] = field(default_factory=list)


def fire_minimize(
    system: System,
    potential: Potential,
    force_tol: float = 1e-3,
    max_steps: int = 500,
    dt_start: float = 0.002,
    dt_max: float = 0.02,
    n_min: int = 5,
    f_inc: float = 1.1,
    f_dec: float = 0.5,
    alpha_start: float = 0.1,
    f_alpha: float = 0.99,
    neighbor: Optional[NeighborList] = None,
) -> FireResult:
    """Relax ``system`` in place until max |F| < ``force_tol`` (eV/Å).

    Standard FIRE: velocity-Verlet steps with a mixing of velocity toward
    the force direction; uphill moves reset velocities and shrink dt.
    """
    if neighbor is None:
        from repro.md.neighbor import fitted_neighbor_list

        neighbor = fitted_neighbor_list(system, potential.cutoff)
    neighbor.build(system, step=0)

    vel = np.zeros_like(system.positions)
    dt = dt_start
    alpha = alpha_start
    steps_since_neg = 0
    history: list[float] = []

    res = potential.compute(system, neighbor.pair_i, neighbor.pair_j)
    for it in range(1, max_steps + 1):
        forces = res.forces
        fmax = float(np.abs(forces).max()) if forces.size else 0.0
        history.append(res.energy)
        if fmax < force_tol:
            return FireResult(True, it - 1, res.energy, fmax, history)

        power = float(np.vdot(forces, vel))
        if power > 0:
            steps_since_neg += 1
            f_norm = np.linalg.norm(forces)
            v_norm = np.linalg.norm(vel)
            if f_norm > 0:
                vel = (1.0 - alpha) * vel + alpha * v_norm * forces / f_norm
            if steps_since_neg > n_min:
                dt = min(dt * f_inc, dt_max)
                alpha *= f_alpha
        else:
            steps_since_neg = 0
            vel[:] = 0.0
            dt *= f_dec
            alpha = alpha_start

        # mass-free MD step (uniform fictitious mass = 1 gives plain descent
        # dynamics; adequate for minimization)
        vel = vel + dt * forces
        system.positions += dt * vel
        neighbor.maybe_rebuild(system, it)
        res = potential.compute(system, neighbor.pair_i, neighbor.pair_j)

    fmax = float(np.abs(res.forces).max()) if res.forces.size else 0.0
    history.append(res.energy)
    return FireResult(False, max_steps, res.energy, fmax, history)
