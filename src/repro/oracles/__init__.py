"""repro.oracles — reference potentials standing in for the paper's DFT labels.

The DP models in the paper are trained on DFT (ab initio) energies and
forces.  Offline we have no DFT engine, so these smooth many-body classical
potentials play the role of the first-principles oracle:

* :class:`repro.oracles.eam.SuttonChenEAM` — many-body EAM copper, the
  reference for the Cu benchmark system (surfaces, stacking faults, fcc
  ground state all emerge from the density term);
* :class:`repro.oracles.water.FlexibleWater` — flexible 3-site water with
  intramolecular springs, LJ, and damped-shifted-force electrostatics, the
  reference for the H2O benchmark system.

Every training pipeline consumes only (positions, types) -> (E, F, virial),
exactly the contract a DFT code would provide, so swapping a real oracle back
in changes nothing downstream (see DESIGN.md, substitution table).
"""

from repro.oracles.eam import SuttonChenEAM
from repro.oracles.water import FlexibleWater

__all__ = ["SuttonChenEAM", "FlexibleWater"]
