"""Out-of-process serving: the wire protocol, the daemon, and the backend.

Four layers, tested bottom-up:

1. **framing** (:mod:`repro.serving.protocol`) — pure encode/decode round
   trips, bitwise array transport (0-d energies included), malformed-frame
   and version-mismatch refusal;
2. **daemon + client** (:mod:`repro.serving.net`) — a real TCP round trip
   is bitwise identical to in-process serving; errors (backpressure,
   quotas, unknown model) surface as the same exception types; STATS and
   CONTROL round-trip; disconnecting a client cancels its queued work;
3. **ServingForceBackend** (:mod:`repro.dp.backend`) — a ``Simulation``
   and an ``EnsembleSimulation`` driven over the socket produce
   trajectories bitwise identical to in-process runs;
4. **drain** — stopping the daemon under traffic completes queued
   requests, flushes every connection, and conserves requests
   (submitted == completed + failed + cancelled).

Everything asserts deterministically — counters and bitwise equality,
never wall-clock thresholds (the repo's bench-timing policy).
"""

import socket as socketmod
import threading

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp.backend import BackendPotential, ForceFrame, ServingForceBackend
from repro.dp.model import DeepPot, DPConfig
from repro.dp.pair import DeepPotPair
from repro.md.neighbor import fitted_neighbor_list, neighbor_pairs
from repro.md.simulation import Simulation
from repro.serving import (
    InferenceServer,
    ProtocolError,
    QueueFull,
    QuotaExceeded,
    ServerClosed,
    ServingDaemon,
    SocketClient,
    perturbed_frames,
    run_closed_loop_clients,
    served_matches_direct,
)
from repro.serving import protocol as proto

WAIT = 60.0


@pytest.fixture(scope="module")
def model():
    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))


@pytest.fixture(scope="module")
def base():
    return water_box((2, 2, 2), seed=0)


def direct(model, system):
    return model.evaluate(system, *neighbor_pairs(system, model.config.rcut))


def assert_bitwise(result, reference):
    assert result.energy == reference.energy
    assert np.array_equal(result.forces, reference.forces)
    assert np.array_equal(result.virial, reference.virial)


# ---------------------------------------------------------------------------
# 1. framing
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_arrays_round_trip_bitwise(self):
        arrays = {
            "f64": np.linspace(-1, 1, 12).reshape(4, 3),
            "i64": np.arange(7, dtype=np.int64),
            "scalar": np.float64(-17.25),
            "f32": np.float32([1.5, -2.25]),
            "empty": np.empty((0, 3)),
        }
        specs, blob = proto.pack_arrays(arrays)
        out = proto.unpack_arrays(specs, blob)
        assert set(out) == set(arrays)
        for name, arr in arrays.items():
            got = out[name]
            assert got.dtype == np.asarray(arr).dtype
            assert got.shape == np.asarray(arr).shape
            assert np.array_equal(got, np.asarray(arr))
        assert out["scalar"].shape == ()  # 0-d survives (no 1-d promotion)
        assert out["f64"].flags.writeable

    def test_noncontiguous_input_round_trips(self):
        arr = np.arange(24, dtype=np.float64).reshape(4, 6)[:, ::2]
        assert not arr.flags["C_CONTIGUOUS"]
        specs, blob = proto.pack_arrays({"x": arr})
        assert np.array_equal(proto.unpack_arrays(specs, blob)["x"], arr)

    def test_frame_round_trip(self):
        header = {"req": 7, "model": "water", "deadline": None, "pbc": True}
        arrays = {"positions": np.random.default_rng(0).normal(size=(5, 3))}
        frame = proto.encode_frame(proto.MsgType.SUBMIT, header, arrays)
        mtype, got_header, got_arrays = proto.decode_payload(frame[4:])
        assert mtype == proto.MsgType.SUBMIT
        assert got_header == header  # "arrays" spec key is stripped
        assert np.array_equal(got_arrays["positions"], arrays["positions"])

    def test_version_mismatch_refused(self):
        frame = proto.encode_frame(proto.MsgType.HELLO, {})
        payload = bytearray(frame[4:])
        payload[0] = proto.PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            proto.decode_payload(bytes(payload))

    def test_malformed_frames_refused(self):
        with pytest.raises(ProtocolError, match="truncated"):
            proto.decode_payload(b"\x01")
        frame = proto.encode_frame(proto.MsgType.HELLO, {})
        payload = bytearray(frame[4:])
        payload[1] = 200  # unknown message type
        with pytest.raises(ProtocolError, match="message type"):
            proto.decode_payload(bytes(payload))
        # array spec overrunning the blob
        specs = [["x", "<f8", [100]]]
        with pytest.raises(ProtocolError, match="overruns"):
            proto.unpack_arrays(specs, b"\x00" * 8)
        # trailing garbage after the last array
        with pytest.raises(ProtocolError, match="trailing"):
            proto.unpack_arrays([["x", "<f8", [1]]], b"\x00" * 16)

    def test_oversized_frame_refused_before_allocation(self):
        huge = proto._LEN.pack(proto.MAX_FRAME_BYTES + 1)

        class FakeSock:
            def __init__(self, data):
                self.data = data

            def recv(self, n):
                out, self.data = self.data[:n], self.data[n:]
                return out

        with pytest.raises(ProtocolError, match="MAX_FRAME_BYTES"):
            proto.read_frame(FakeSock(huge))

    def test_system_and_result_round_trip(self, model, base):
        system = proto.build_system(
            proto.unpack_arrays(*proto.pack_arrays(proto.system_arrays(base)))
        )
        assert np.array_equal(system.positions, base.positions)
        assert np.array_equal(system.types, base.types)
        assert np.array_equal(system.box.lengths, base.box.lengths)
        ref = direct(model, base)
        result = proto.build_result(
            proto.unpack_arrays(*proto.pack_arrays(proto.result_arrays(ref)))
        )
        assert_bitwise(result, ref)  # energy through a 0-d f64, never JSON


# ---------------------------------------------------------------------------
# 2. daemon + client
# ---------------------------------------------------------------------------


def make_daemon(model, **server_kw):
    server_kw.setdefault("max_batch", 4)
    server = InferenceServer({"water": model}, **server_kw)
    return ServingDaemon(server).start()


class TestDaemonRoundTrip:
    def test_served_over_socket_bitwise(self, model, base):
        with make_daemon(model) as daemon:
            with SocketClient(daemon.address, "water") as client:
                for frame in perturbed_frames(base, 4, seed0=10):
                    result = client.evaluate(frame, timeout=WAIT)
                    assert served_matches_direct(model, frame, result)

    def test_pipelined_futures_over_socket(self, model, base):
        frames = perturbed_frames(base, 8, seed0=20)
        with make_daemon(model) as daemon:
            with SocketClient(daemon.address, "water") as client:
                results = client.evaluate_many(frames, timeout=WAIT)
        for frame, result in zip(frames, results):
            assert_bitwise(result, direct(model, frame))

    def test_closed_loop_clients_coalesce_across_connections(self, model, base):
        """The generalized load generator drives SocketClients unchanged;
        traffic from separate TCP connections lands in shared batches."""
        frame_sets = {
            tid: perturbed_frames(base, 3, seed0=100 * (tid + 1))
            for tid in range(3)
        }
        with make_daemon(model, max_wait_us=20000) as daemon:
            served = run_closed_loop_clients(
                None, None, frame_sets, timeout=WAIT,
                client_factory=lambda tid: SocketClient(
                    daemon.address, "water", client=f"t{tid}"
                ),
            )
            snap = daemon.server.stats.snapshot()
        assert sum(len(v) for v in served.values()) == 9
        assert snap["requests_completed"] == 9
        for results in served.values():
            for frame, result in results:
                assert_bitwise(result, direct(model, frame))

    def test_welcome_reports_models_and_limits(self, model):
        with make_daemon(model, max_queue=17, max_per_client=5) as daemon:
            with SocketClient(daemon.address) as client:  # sole model: bound
                assert client.model == "water"
                assert client.cutoff == model.config.rcut
                assert client.models["water"]["n_types"] == model.config.n_types
                assert client.limits["max_queue"] == 17
                assert client.limits["max_per_client"] == 5

    def test_unknown_model_rejected_at_bind(self, model):
        with make_daemon(model) as daemon:
            with pytest.raises(KeyError, match="copper"):
                SocketClient(daemon.address, "copper")

    def test_version_mismatch_closes_connection(self, model):
        with make_daemon(model) as daemon:
            with socketmod.create_connection(daemon.address) as raw:
                frame = proto.encode_frame(proto.MsgType.HELLO, {})
                bad = bytearray(frame)
                bad[4] = proto.PROTOCOL_VERSION + 1
                raw.sendall(bytes(bad))
                # daemon refuses the handshake and closes: EOF
                assert raw.recv(1) == b""

    def test_stats_and_cache_control_round_trip(self, model, base):
        with make_daemon(model, cache_size=8) as daemon:
            with SocketClient(daemon.address, "water") as client:
                frame = perturbed_frames(base, 1, seed0=30)[0]
                r1 = client.evaluate(frame, timeout=WAIT)
                r2 = client.evaluate(frame, timeout=WAIT)
                assert_bitwise(r2, r1)  # cache hit, bitwise over the wire
                snap = client.stats()
                assert snap["cache_hits"] == 1
                assert snap["requests_completed"] == 2
                assert client.invalidate_cache() == 1
                assert client.stats()["cache_hits"] == 1  # unchanged
                client.evaluate(frame, timeout=WAIT)  # re-miss after flush
                assert client.stats()["cache_misses"] == 2

    def test_quota_exceeded_surfaces_remotely(self, model, base):
        """A connection over its per-client quota gets QuotaExceeded, while
        the same load through a second connection is admitted."""
        with make_daemon(
            model, max_per_client=2, autostart=False, max_queue=16
        ) as daemon:
            frames = perturbed_frames(base, 3, seed0=40)
            with SocketClient(daemon.address, "water") as greedy:
                futures = [
                    greedy.submit(f, block=False) for f in frames[:2]
                ]
                with pytest.raises(QuotaExceeded):
                    greedy.submit(frames[2], block=False).result(WAIT)
                with SocketClient(daemon.address, "water") as other:
                    fut = other.submit(frames[2], block=False)
                    daemon.server.start()
                    assert fut.result(WAIT) is not None
                    for f in futures:
                        f.result(WAIT)
            snap = daemon.server.stats.snapshot()
            assert snap["quota_rejections"] == 1

    def test_backpressure_surfaces_remotely(self, model, base):
        with make_daemon(model, autostart=False, max_queue=2) as daemon:
            frames = perturbed_frames(base, 3, seed0=50)
            with SocketClient(daemon.address, "water") as client:
                futures = [
                    client.submit(f, block=False) for f in frames[:2]
                ]
                with pytest.raises(QueueFull):
                    client.submit(frames[2], block=False).result(WAIT)
                daemon.server.start()
                for f in futures:
                    f.result(WAIT)

    def test_disconnect_cancels_queued_requests(self, model, base):
        """Dropping a connection mid-queue cancels its pending work: the
        slots free up and the cancellations are counted (conservation)."""
        with make_daemon(model, autostart=False, max_queue=8) as daemon:
            frames = perturbed_frames(base, 3, seed0=60)
            client = SocketClient(daemon.address, "water")
            for f in frames:
                client.submit(f, block=False)
            client.close()  # connection gone before any worker starts
            # the conn reader notices the close and cancels this conn's
            # pending work; the queue discards cancelled requests eagerly
            pause = threading.Event()
            for _ in range(200):
                if len(daemon.server.queue) == 0:
                    break
                pause.wait(0.05)
            assert len(daemon.server.queue) == 0
            daemon.stop(drain=True)
        snap = daemon.server.stats.snapshot()
        assert snap["requests_submitted"] == 3
        assert snap["requests_cancelled"] == 3
        assert snap["requests_completed"] == 0
        assert snap["batches"] == 0

    def test_submit_after_close_raises(self, model, base):
        with make_daemon(model) as daemon:
            client = SocketClient(daemon.address, "water")
            client.close()
            with pytest.raises(ServerClosed):
                client.submit(base)


# ---------------------------------------------------------------------------
# 3. ServingForceBackend: MD drivers over the socket
# ---------------------------------------------------------------------------


class TestServingForceBackend:
    def test_simulation_over_socket_bitwise(self, model, base):
        """The acceptance contract: a Simulation whose forces come through
        a SocketClient reproduces the in-process trajectory bitwise."""
        steps = 5
        ref_sys = base.copy()
        Simulation(
            ref_sys, DeepPotPair(model), dt=0.0005,
            neighbor=fitted_neighbor_list(ref_sys, model.config.rcut),
        ).run(steps)

        with make_daemon(model) as daemon:
            with SocketClient(daemon.address, "water") as client:
                sys_b = base.copy()
                backend = ServingForceBackend(client, timeout=WAIT)
                Simulation(
                    sys_b,
                    BackendPotential(backend, cutoff=client.cutoff),
                    dt=0.0005,
                    neighbor=fitted_neighbor_list(sys_b, client.cutoff),
                ).run(steps)
        assert np.array_equal(ref_sys.positions, sys_b.positions)
        assert np.array_equal(ref_sys.velocities, sys_b.velocities)
        assert backend.evaluations > 0

    def test_ensemble_over_injected_backend_bitwise(self, model, base):
        """EnsembleSimulation accepts an injected force backend; replicas
        stepped through the daemon match independent in-process replicas."""
        from repro.md.ensemble import EnsembleSimulation

        steps, R = 3, 2
        ref = [base.copy() for _ in range(R)]
        EnsembleSimulation(ref, model, dt=0.0005).run(steps)

        with make_daemon(model) as daemon:
            with SocketClient(daemon.address, "water") as client:
                reps = [base.copy() for _ in range(R)]
                ens = EnsembleSimulation(
                    reps,
                    force_backend=ServingForceBackend(client, timeout=WAIT),
                    cutoff=client.cutoff,
                    dt=0.0005,
                )
                ens.run(steps)
        for a, b in zip(ref, reps):
            assert np.array_equal(a.positions, b.positions)
            assert np.array_equal(a.velocities, b.velocities)

    def test_in_process_client_same_seam(self, model, base):
        """The same ServingForceBackend drives an in-process
        InferenceClient — the drivers cannot tell the transports apart."""
        frames = [
            ForceFrame(s, *neighbor_pairs(s, model.config.rcut))
            for s in perturbed_frames(base, 3, seed0=70)
        ]
        server = InferenceServer({"water": model}, max_batch=4)
        try:
            backend = ServingForceBackend(server.client("water"), timeout=WAIT)
            results = backend.evaluate(frames)
        finally:
            server.stop()
        for frame, result in zip(frames, results):
            assert_bitwise(result, direct(model, frame.system))
        backend.invalidate_buckets()
        assert backend.invalidations == 1


# ---------------------------------------------------------------------------
# 4. drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_completes_queued_work_and_conserves(self, model, base):
        """Daemon stop under pre-loaded traffic: every queued request
        completes, flushes to its connection, and the ledger balances."""
        with make_daemon(model, autostart=False, max_queue=32) as daemon:
            frames = perturbed_frames(base, 6, seed0=80)
            client = SocketClient(daemon.address, "water")
            futures = [client.submit(f, block=False) for f in frames]
            daemon.server.start()
            daemon.stop(drain=True)  # drains workers, flushes outboxes
            results = [f.result(WAIT) for f in futures]
            for frame, result in zip(frames, results):
                assert_bitwise(result, direct(model, frame))
            client.close()
        snap = daemon.server.stats.snapshot()
        assert snap["requests_submitted"] == 6
        assert snap["requests_completed"] == 6
        assert snap["requests_submitted"] == (
            snap["requests_completed"]
            + snap["requests_failed"]
            + snap["requests_cancelled"]
        )

    def test_submit_during_drain_refused_with_server_closed(self, model, base):
        with make_daemon(model) as daemon:
            client = SocketClient(daemon.address, "water")
            daemon.stop(drain=True)
            # the daemon flushed a GOODBYE; once the client's reader has
            # processed it, submissions fail fast with ServerClosed
            client._reader.join(WAIT)
            with pytest.raises(ServerClosed):
                client.submit(base)
            client.close()

    def test_no_drain_cancels_pending(self, model, base):
        with make_daemon(model, autostart=False, max_queue=32) as daemon:
            frames = perturbed_frames(base, 4, seed0=90)
            client = SocketClient(daemon.address, "water")
            futures = [client.submit(f, block=False) for f in frames]
            # submit() returns once the frame is on the wire; wait for the
            # daemon reader to actually admit all 4 before pulling the plug
            # (a stop that beats admission refuses them instead — that path
            # is test_submit_during_drain_refused_with_server_closed's)
            pause = threading.Event()
            for _ in range(200):
                if len(daemon.server.queue) == 4:
                    break
                pause.wait(0.05)
            assert len(daemon.server.queue) == 4
            daemon.stop(drain=False)
            for f in futures:
                with pytest.raises(Exception):
                    f.result(WAIT)  # CancelledError (or ServerClosed)
            client.close()
        snap = daemon.server.stats.snapshot()
        assert snap["requests_cancelled"] == 4
        assert snap["requests_submitted"] == (
            snap["requests_completed"]
            + snap["requests_failed"]
            + snap["requests_cancelled"]
        )
