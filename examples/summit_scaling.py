"""Regenerate the paper's Summit-scale results from the performance model.

Prints, side by side with the paper's measured values:

* Table 4 — water strong scaling (atoms/GPU, ghosts, loop time, efficiency,
  PFLOPS, %peak);
* Fig 5 — strong scaling for water (12.58M atoms) and copper (25.7M atoms),
  double and mixed precision;
* Fig 6 — weak scaling to 403M (water) / 113M (copper) atoms;
* Table 1 — the headline time-to-solution rows;
* the abstract's claims (86/137 PFLOPS, 1 ns/day for 100M+ atoms).

Run:  python examples/summit_scaling.py
"""

from repro.perfmodel.report import print_all

if __name__ == "__main__":
    print_all()
