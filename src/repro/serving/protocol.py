"""Wire protocol for out-of-process serving (:mod:`repro.serving.net`).

Every message is one **length-prefixed binary frame**::

    +----------------+---------+----------+-------------+-----------------+
    | u32 payload len| u8 ver  | u8 type  | JSON header | raw array bytes |
    +----------------+---------+----------+-------------+-----------------+
                     |<-------------- payload (len bytes) --------------->|

The 4-byte big-endian length counts everything after itself.  The first
payload byte is :data:`PROTOCOL_VERSION`; a peer speaking a different
version is refused at HELLO time (the compatibility rule: the version byte
must match exactly — there is no in-band negotiation, a mismatch closes
the connection with a :class:`ProtocolError`).  The second byte is the
message type (:class:`MsgType`).

The JSON header carries only **metadata** — request ids, model names,
priority/deadline, error kinds, array *specs*.  Numerical array data never
rides in JSON (floats would round-trip through decimal); every
:class:`numpy.ndarray` travels as a dtype/shape-tagged raw buffer appended
after the header, so positions, forces, energies and box lengths are
**bitwise identical** on both ends of the socket.  Scalars that feed
numerics (energy) are shipped as 0-d float64 arrays for the same reason.

Message types
-------------

=============  ====  =======================================================
HELLO          c->s  ``{client}`` — open a session
WELCOME        s->c  ``{models: {name: {rcut, n_types}}, limits}`` — accept
SUBMIT         c->s  ``{req, model, priority, deadline, nloc, pbc}`` +
                     arrays positions/types/box/masses[/pair_i/pair_j]
RESULT         s->c  ``{req, seq, cached}`` + arrays energy/forces/virial
                     [/atom_energies] (seq = queue admission stamp, -1 when
                     the result cache answered without queueing)
ERROR          s->c  ``{req, kind, message}`` — per-request failure
                     (kind in QUEUE_FULL/QUOTA/CLOSED/UNKNOWN_MODEL/EVAL/
                     CRASH/TRANSIENT — the last two are safe to resubmit)
CANCEL         c->s  ``{req}`` — abandon a queued request (deadline blown)
STATS          c->s  ``{}`` — ask for a ServerStats snapshot
STATS_RESULT   s->c  ``{stats: {...}}``
CONTROL        c->s  ``{op, model?}`` — ``invalidate_cache`` today
CONTROL_ACK    s->c  ``{op}``
GOODBYE        both  ``{}`` — orderly half-close before disconnecting
PING           c->s  ``{req}`` — heartbeat (refreshes the daemon's
                     idle-timeout clock for this connection)
PONG           s->c  ``{req}`` — heartbeat echo
=============  ====  =======================================================

This module is pure encode/decode — no sockets, no threads — so the framing
is unit-testable without a server (``tests/test_serving_net.py``).
"""

from __future__ import annotations

import json
import struct
from enum import IntEnum
from typing import Optional

import numpy as np

#: The protocol version byte.  Compatibility rule: both peers must send the
#: same value; there is no negotiation (bump it on ANY wire change).
#: v2: PING/PONG heartbeats + CRASH/TRANSIENT error kinds (fault tolerance).
PROTOCOL_VERSION = 2

#: Frames larger than this are refused before allocation — a corrupt length
#: prefix must not trigger a multi-GB read.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LEN = struct.Struct("!I")


class MsgType(IntEnum):
    HELLO = 1
    WELCOME = 2
    SUBMIT = 3
    RESULT = 4
    ERROR = 5
    CANCEL = 6
    STATS = 7
    STATS_RESULT = 8
    CONTROL = 9
    CONTROL_ACK = 10
    GOODBYE = 11
    PING = 12
    PONG = 13


#: ``ERROR.kind`` values, mapped back to exceptions client-side
#: (:meth:`repro.serving.net.SocketClient`).
ERR_QUEUE_FULL = "QUEUE_FULL"
ERR_QUOTA = "QUOTA"
ERR_CLOSED = "CLOSED"
ERR_UNKNOWN_MODEL = "UNKNOWN_MODEL"
ERR_EVAL = "EVAL"
ERR_CANCELLED = "CANCELLED"
ERR_PROTOCOL = "PROTOCOL"
ERR_CRASH = "CRASH"          # WorkerCrashed: safe to resubmit
ERR_TRANSIENT = "TRANSIENT"  # TransientEvalError: safe to resubmit


class ProtocolError(RuntimeError):
    """Malformed frame, version mismatch, or out-of-protocol message."""


# ---------------------------------------------------------------------------
# array tagging
# ---------------------------------------------------------------------------


def pack_arrays(arrays: dict[str, np.ndarray]) -> tuple[list, bytes]:
    """Tag ``arrays`` for the header and concatenate their raw bytes.

    Returns ``(specs, blob)`` where ``specs`` is the JSON-ready list of
    ``[name, dtype_str, shape]`` triples in blob order.  Arrays are
    serialized C-contiguous; ``frombuffer`` on the far side reproduces them
    bitwise (dtype-preserving, no text round trip).
    """
    specs: list = []
    parts: list[bytes] = []
    for name, arr in arrays.items():
        arr = np.asarray(arr)
        if not arr.flags["C_CONTIGUOUS"]:
            # NB: ascontiguousarray promotes 0-d to 1-d, so only call it
            # when needed (0-d arrays are always contiguous).
            arr = np.ascontiguousarray(arr)
        specs.append([name, arr.dtype.str, list(arr.shape)])
        parts.append(arr.tobytes())
    return specs, b"".join(parts)


def unpack_arrays(specs: list, blob: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`pack_arrays` (arrays are writable copies)."""
    out: dict[str, np.ndarray] = {}
    offset = 0
    for name, dtype_str, shape in specs:
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(blob):
            raise ProtocolError(
                f"array {name!r} overruns the frame "
                f"({offset + nbytes} > {len(blob)} bytes)"
            )
        arr = np.frombuffer(
            blob, dtype=dtype, count=count, offset=offset
        ).reshape(shape).copy()
        out[name] = arr
        offset += nbytes
    if offset != len(blob):
        raise ProtocolError(
            f"{len(blob) - offset} trailing bytes after the last array"
        )
    return out


# ---------------------------------------------------------------------------
# frame encode / decode
# ---------------------------------------------------------------------------


def encode_frame(
    msg_type: MsgType,
    header: dict,
    arrays: Optional[dict[str, np.ndarray]] = None,
) -> bytes:
    """One complete wire frame (length prefix included)."""
    specs, blob = pack_arrays(arrays or {})
    head = dict(header)
    head["arrays"] = specs
    head_bytes = json.dumps(head, separators=(",", ":")).encode("utf-8")
    payload = (
        bytes((PROTOCOL_VERSION, int(msg_type)))
        + _LEN.pack(len(head_bytes))
        + head_bytes
        + blob
    )
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LEN.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> tuple[MsgType, dict, dict]:
    """``(msg_type, header, arrays)`` from one frame's payload bytes."""
    if len(payload) < 6:
        raise ProtocolError(f"truncated frame ({len(payload)} bytes)")
    version, mtype = payload[0], payload[1]
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version} != {PROTOCOL_VERSION} "
            f"(both peers must run the same wire version)"
        )
    try:
        mtype = MsgType(mtype)
    except ValueError:
        raise ProtocolError(f"unknown message type {mtype}") from None
    (head_len,) = _LEN.unpack_from(payload, 2)
    head_end = 6 + head_len
    if head_end > len(payload):
        raise ProtocolError("header overruns the frame")
    try:
        header = json.loads(payload[6:head_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad header: {exc}") from None
    arrays = unpack_arrays(header.pop("arrays", []), payload[head_end:])
    return mtype, header, arrays


# ---------------------------------------------------------------------------
# blocking socket I/O
# ---------------------------------------------------------------------------


def read_exactly(sock, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"peer closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock) -> tuple[MsgType, dict, dict]:
    """Read one frame off a blocking socket; ``(type, header, arrays)``.

    Raises ``ConnectionError`` on EOF (clean close between frames included:
    an EOF on the length prefix raises with 0 bytes read) and
    :class:`ProtocolError` on malformed contents.
    """
    (length,) = _LEN.unpack(read_exactly(sock, 4))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME_BYTES "
            f"(corrupt prefix or hostile peer)"
        )
    return decode_payload(read_exactly(sock, length))


def write_frame(
    sock,
    msg_type: MsgType,
    header: dict,
    arrays: Optional[dict[str, np.ndarray]] = None,
) -> None:
    sock.sendall(encode_frame(msg_type, header, arrays))


# ---------------------------------------------------------------------------
# domain encode / decode (System / PotentialResult)
# ---------------------------------------------------------------------------


def system_arrays(system) -> dict[str, np.ndarray]:
    """The arrays a server needs to evaluate a frame.

    Velocities and molecule ids never cross the wire — the potential reads
    positions/types/box/masses only, and smaller frames coalesce faster.
    """
    return {
        "positions": system.positions,
        "types": system.types,
        "box": system.box.lengths,
        "masses": system.masses,
    }


def build_system(arrays: dict[str, np.ndarray], type_names=()):
    """Rebuild a :class:`~repro.md.system.System` from wire arrays."""
    from repro.md.box import Box
    from repro.md.system import System

    return System(
        box=Box(arrays["box"]),
        positions=arrays["positions"],
        types=arrays["types"],
        masses=arrays["masses"],
        type_names=list(type_names),
    )


def result_arrays(result) -> dict[str, np.ndarray]:
    """Wire arrays for a :class:`~repro.md.potential.PotentialResult`.

    The energy ships as a 0-d float64 array — bitwise, never through JSON.
    """
    out = {
        "energy": np.float64(result.energy),
        "forces": result.forces,
        "virial": result.virial,
    }
    if result.atom_energies is not None:
        out["atom_energies"] = result.atom_energies
    return out


def build_result(arrays: dict[str, np.ndarray]):
    from repro.md.potential import PotentialResult

    return PotentialResult(
        energy=float(arrays["energy"]),
        forces=arrays["forces"],
        virial=arrays["virial"],
        atom_energies=arrays.get("atom_energies"),
    )
