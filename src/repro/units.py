"""Physical constants and the "metal" unit system used throughout repro.

The paper's systems (water, copper) are simulated in LAMMPS ``metal`` units:

* length      : Angstrom (Å)
* energy      : electron-volt (eV)
* time        : picosecond (ps)
* mass        : atomic mass unit (amu, g/mol)
* temperature : Kelvin (K)
* pressure    : bar
* force       : eV/Å
* velocity    : Å/ps

All modules in :mod:`repro` assume metal units unless stated otherwise.
"""

from __future__ import annotations

import math

# Boltzmann constant in eV/K.
KB = 8.617333262e-5

# Conversion factor: (amu * (Å/ps)^2) -> eV.
# 1 amu = 1.66053906660e-27 kg; 1 Å/ps = 100 m/s;
# 1 eV = 1.602176634e-19 J.
MVV_TO_EV = 1.66053906660e-27 * 100.0**2 / 1.602176634e-19  # ≈ 1.0364e-4

# Conversion factor: eV/Å^3 -> bar.
# 1 eV/Å^3 = 1.602176634e-19 J / 1e-30 m^3 = 1.602176634e11 Pa = 1.602176634e6 bar.
EVA3_TO_BAR = 1.602176634e6

# Atomic masses in amu for the elements used in the paper's benchmarks.
MASSES = {
    "H": 1.00794,
    "O": 15.9994,
    "Cu": 63.546,
}

# Femtoseconds per picosecond — timesteps in the paper are quoted in fs.
FS = 1.0e-3  # 1 fs in ps


def kinetic_temperature(kinetic_energy_ev: float, n_dof: int) -> float:
    """Instantaneous temperature from kinetic energy.

    Parameters
    ----------
    kinetic_energy_ev:
        Total kinetic energy in eV.
    n_dof:
        Number of unconstrained degrees of freedom (typically ``3N - 3``
        after center-of-mass removal).
    """
    if n_dof <= 0:
        return 0.0
    return 2.0 * kinetic_energy_ev / (n_dof * KB)


def thermal_velocity_scale(mass_amu: float, temperature_k: float) -> float:
    """Standard deviation of one velocity component (Å/ps) at ``temperature_k``."""
    if mass_amu <= 0:
        raise ValueError(f"mass must be positive, got {mass_amu}")
    return math.sqrt(KB * temperature_k / (mass_amu * MVV_TO_EV))
