"""Fig 7 at laptop scale: tensile deformation of nanocrystalline copper.

The paper's flagship application pulls a 10,401,218-atom nanocrystal (64
grains, 50 nm cell) to 10% strain and identifies stacking faults via common
neighbor analysis.  This example runs the identical pipeline, scaled down:

1. Voronoi-construction nanocrystal with randomly oriented fcc grains;
2. thermal annealing at 300 K (the paper: 10,000 steps at 300 K);
3. constant-strain-rate uniaxial deformation along z (``fix deform``);
4. CNA classification before/after: atoms in grains are fcc, grain-boundary
   atoms are "other", and hcp-classified atoms mark stacking faults;
5. the strain-stress curve.

By default the Deep Potential copper model drives the dynamics (as in the
paper); ``--potential eam`` uses the oracle directly (faster).

Run:  python examples/nanocrystal_tensile.py [--box 28] [--grains 4]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.cna import cna_fractions, common_neighbor_analysis, fcc_cna_cutoff
from repro.analysis.stress import StressStrainRecorder
from repro.analysis.structures import CU_LATTICE, nanocrystal_fcc
from repro.dp.pair import DeepPotPair
from repro.md import Berendsen, Deform, Simulation, boltzmann_velocities
from repro.md.neighbor import fitted_neighbor_list


def report_cna(system, tag: str) -> dict:
    labels = common_neighbor_analysis(system, fcc_cna_cutoff(CU_LATTICE))
    frac = cna_fractions(labels)
    print(
        f"CNA [{tag}]: fcc {frac['fcc']:.1%}  hcp(stacking-fault) "
        f"{frac['hcp']:.1%}  other(grain-boundary) {frac['other']:.1%}"
    )
    return frac


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--box", type=float, default=28.0, help="cell edge (Å)")
    parser.add_argument("--grains", type=int, default=4)
    parser.add_argument("--anneal-steps", type=int, default=120)
    parser.add_argument("--deform-steps", type=int, default=300)
    parser.add_argument("--strain", type=float, default=0.08, help="total strain")
    parser.add_argument("--potential", choices=("dp", "eam"), default="dp")
    args = parser.parse_args()

    system = nanocrystal_fcc(
        box_length=args.box, n_grains=args.grains, seed=3, min_separation=2.1
    )
    print(
        f"Nanocrystal: {system.n_atoms} atoms, {args.grains} grains, "
        f"{args.box} Å cell (paper: 10.4M atoms, 64 grains, 500 Å)"
    )
    frac0 = report_cna(system, "as built")

    if args.potential == "dp":
        from repro.zoo import get_copper_model

        print("Loading the zoo copper DP model (trains once, then cached)...")
        potential = DeepPotPair(get_copper_model())
    else:
        from repro.zoo import copper_oracle

        potential = copper_oracle()

    dt = 0.002  # ps
    boltzmann_velocities(system, 300.0, seed=5)

    # --- anneal at 300 K ----------------------------------------------------
    sim = Simulation(
        system,
        potential,
        dt=dt,
        integrator=Berendsen(temperature=300.0, tau=0.05),
        neighbor=fitted_neighbor_list(system, potential.cutoff),
        thermo_every=40,
    )
    print(f"\nAnnealing {args.anneal_steps} steps at 300 K...")
    sim.run(args.anneal_steps)
    frac_annealed = report_cna(system, "annealed")

    # --- tensile deformation -------------------------------------------------
    strain_rate = args.strain / (args.deform_steps * dt)
    deform = Deform(axis=2, strain_rate=strain_rate, start_step=sim.step_count)
    sim.deform = deform
    recorder = StressStrainRecorder(axis=2)

    def record(s):
        if s.step_count % 20 == 0:
            strain = deform.strain_at(s.step_count, dt)
            recorder.record(s.system, s.last_result().virial, strain)

    print(
        f"Deforming to {args.strain:.0%} strain over {args.deform_steps} steps "
        f"(rate {strain_rate * 1e12:.2e} s^-1; paper: 5e8 s^-1)..."
    )
    sim.run(args.deform_steps, callback=record)
    frac_final = report_cna(system, f"after {args.strain:.0%} strain")

    print("\nStrain-stress curve (z axis):")
    print(f"{'strain':>8} {'stress/GPa':>12}")
    for strain, stress in zip(*recorder.arrays()):
        print(f"{strain:>8.3f} {stress:>12.3f}")
    print(f"\nPeak tensile stress: {recorder.peak_stress():.2f} GPa")
    print(
        f"Defect evolution: fcc {frac_annealed['fcc']:.1%} -> "
        f"{frac_final['fcc']:.1%}, hcp (stacking faults) "
        f"{frac_annealed['hcp']:.1%} -> {frac_final['hcp']:.1%}, "
        f"other (boundaries/disorder) {frac_annealed['other']:.1%} -> "
        f"{frac_final['other']:.1%}"
    )
    print(
        "\nNote on scale: with ~1.5 nm grains, plasticity is grain-boundary-"
        "mediated (the inverse Hall-Petch regime of the paper's ref [49]), so "
        "deformation grows the disordered fraction; the clean hcp stacking-"
        "fault planes of Fig 7 emerge at the paper's 15 nm grain size, which "
        "needs the full 10M-atom cell.  Increase --box/--grains to approach it."
    )


if __name__ == "__main__":
    main()
