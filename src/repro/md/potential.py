"""The pair-style interface: what LAMMPS calls a ``pair_style``.

A :class:`Potential` consumes the system state plus the current (half)
neighbor pair list and returns energy, per-atom forces, and the virial
tensor.  The DP model (:mod:`repro.dp.pair`), the empirical force fields, and
the ab-initio oracle potentials all implement this interface, so the MD
driver is agnostic to where forces come from — exactly the LAMMPS/DeePMD-kit
division of labour the paper describes (Sec 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.md.system import System


@dataclass
class PotentialResult:
    """Energy (eV), forces (eV/Å, shape (N,3)), virial tensor (eV, 3x3)."""

    energy: float
    forces: np.ndarray
    virial: np.ndarray
    atom_energies: Optional[np.ndarray] = None

    def __post_init__(self):
        self.forces = np.asarray(self.forces, dtype=np.float64)
        self.virial = np.asarray(self.virial, dtype=np.float64).reshape(3, 3)


class Potential:
    """Base class for all interaction models."""

    #: Interaction cutoff in Å; the driver sizes neighbor lists from this.
    cutoff: float = 0.0

    def compute(
        self, system: System, pair_i: np.ndarray, pair_j: np.ndarray
    ) -> PotentialResult:
        raise NotImplementedError

    def compute_dense(self, system: System) -> PotentialResult:
        """Convenience: build a fresh neighbor list and evaluate."""
        from repro.md.neighbor import neighbor_pairs

        pi, pj = neighbor_pairs(system, self.cutoff)
        return self.compute(system, pi, pj)


def pair_virial(disp_ij: np.ndarray, force_ij: np.ndarray) -> np.ndarray:
    """Virial tensor from pairwise decomposable forces.

    ``disp_ij`` are minimum-image vectors r_j - r_i and ``force_ij`` the force
    on atom i from atom j; W = -Σ r_ij ⊗ f_ij (eV).
    """
    return -np.einsum("ni,nj->ij", disp_ij, force_ij)
