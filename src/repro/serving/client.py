"""Client-side API: submit frames, get futures (or block for results).

A client is a thin, thread-safe handle binding an
:class:`~repro.serving.worker.InferenceServer` to one registered model.
Thread safety comes for free: submission only touches the locked request
queue, so any number of threads may share one client or hold their own.

Two calling styles::

    client = server.client("water")

    # sync — submit().result() in one call
    result = client.evaluate(system)

    # async-style — overlap local work with server-side batching
    futs = [client.submit(s) for s in frames]
    results = [f.result() for f in futs]

Pipelined submission is what feeds the micro-batcher: R outstanding futures
from one client (or one each from R clients) coalesce into a single batched
graph execution instead of R serial ones.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from typing import TYPE_CHECKING, Callable, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.md.potential import PotentialResult
    from repro.md.system import System
    from repro.serving.worker import InferenceServer


class InferenceClient:
    """Submits frames for one model hosted by an :class:`InferenceServer`.

    ``priority`` (bigger = dispatched sooner) and ``client_id`` (the quota
    accounting identity; ``None`` = exempt) stamp every submission from
    this client — the per-request ``deadline`` stays a per-call argument.
    """

    def __init__(
        self,
        server: "InferenceServer",
        model: str,
        priority: int = 0,
        client_id: Optional[str] = None,
    ):
        if model not in server.model_names():
            raise KeyError(
                f"model {model!r} not registered (have {server.model_names()})"
            )
        self.server = server
        self.model = model
        self.priority = int(priority)
        self.client_id = client_id

    @property
    def cutoff(self) -> float:
        """The model's neighbor cutoff (for building pair lists locally)."""
        return self.server.model(self.model).config.rcut

    def submit(
        self,
        system: "System",
        pair_i: Optional[np.ndarray] = None,
        pair_j: Optional[np.ndarray] = None,
        block: bool = True,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        nloc: Optional[int] = None,
        pbc: bool = True,
    ) -> Future:
        """Queue one frame; the future resolves to its ``PotentialResult``.

        ``block``/``timeout`` control backpressure behaviour when the
        server's bounded queue is full (see ``InferenceServer.submit``);
        ``deadline`` (seconds) requests EDF ordering within this client's
        priority class; ``nloc``/``pbc`` carry the domain-decomposition
        frame mode.
        """
        return self.server.submit(
            self.model, system, pair_i, pair_j, block=block, timeout=timeout,
            priority=self.priority, deadline=deadline,
            client_id=self.client_id, nloc=nloc, pbc=pbc,
        )

    def evaluate(
        self,
        system: "System",
        pair_i: Optional[np.ndarray] = None,
        pair_j: Optional[np.ndarray] = None,
        timeout: Optional[float] = None,
    ) -> "PotentialResult":
        """Synchronous round trip under ONE deadline.

        ``timeout`` is a total budget: time spent waiting for admission to a
        full queue (a stalled server raises :class:`~repro.serving.queue.
        QueueFull` once it expires) is subtracted from the wait on the
        result, so the call returns or raises within ~``timeout`` seconds.

        A request abandoned at its deadline is **cancelled**, not leaked:
        if the result times out while the request is still queued, the
        future is cancelled so the worker drops it at dispatch (counted in
        ``ServerStats.requests_cancelled``, exactly once) instead of
        burning a batch slot on a result nobody will read.  A request
        already running when the deadline hits cannot be cancelled and
        completes normally; only this caller's wait is abandoned.
        """
        if timeout is None:
            return self.submit(system, pair_i, pair_j).result(None)
        deadline = time.perf_counter() + timeout
        future = self.submit(system, pair_i, pair_j, timeout=timeout)
        try:
            return future.result(max(0.0, deadline - time.perf_counter()))
        except FutureTimeout:
            future.cancel()
            raise

    def evaluate_many(
        self,
        systems: Sequence["System"],
        pair_lists: Optional[Sequence[tuple[np.ndarray, np.ndarray]]] = None,
        timeout: Optional[float] = None,
    ) -> list["PotentialResult"]:
        """Submit a frame stack, then gather — the pipelined pattern that
        lets the scheduler coalesce the whole stack into few batches.

        ``timeout`` is one total budget for all submissions and all results
        (a shared deadline, like :meth:`evaluate`).  On any abandonment of
        the stack — a blown deadline, mid-stack backpressure
        (:class:`~repro.serving.queue.QueueFull`), or shutdown — every
        already-submitted, still-pending future is cancelled before the
        exception propagates, so abandoned frames free their queue slots
        instead of holding the queue full for results nobody will read.
        """
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )

        def left() -> Optional[float]:
            if deadline is None:
                return None
            return max(0.0, deadline - time.perf_counter())

        if pair_lists is not None and len(pair_lists) != len(systems):
            raise ValueError(
                f"{len(systems)} systems but {len(pair_lists)} pair lists"
            )
        futures: list[Future] = []
        try:
            if pair_lists is None:
                for s in systems:
                    futures.append(self.submit(s, timeout=left()))
            else:
                for s, (pi, pj) in zip(systems, pair_lists):
                    futures.append(self.submit(s, pi, pj, timeout=left()))
            return [f.result(left()) for f in futures]
        except BaseException:
            for f in futures:
                f.cancel()
            raise


def run_closed_loop_clients(
    server: Optional["InferenceServer"],
    model: Optional[str],
    frame_sets: dict[int, Sequence["System"]],
    timeout: float = 300.0,
    join_timeout: Optional[float] = None,
    client_factory: Optional[Callable[[int], object]] = None,
) -> dict[int, list]:
    """Drive a serving stack with one closed-loop client thread per frame
    set.

    Each client submits its frames synchronously — submit, wait, submit the
    next — so cross-client coalescing is the only batching available (the
    scheduler's ``max_wait_us`` window at work).  Returns, per client id,
    the list of ``(frame, result)`` pairs.  A failure in any client thread
    (poisoned batch, backpressure timeout, shutdown) is re-raised here after
    all threads have joined — a broken serving stack can never masquerade as
    an empty-but-successful run.

    ``client_factory(tid)`` builds each thread's client — anything with an
    ``evaluate(frame, timeout=...)`` method (and optionally ``close()``,
    called when the thread finishes).  The default binds an in-process
    :class:`InferenceClient` to ``server``/``model``; socket runs pass
    ``client_factory=lambda tid: SocketClient(address, model)`` and may
    leave ``server=None`` — the in-process and out-of-process paths share
    this load generator and the bitwise helpers unchanged.

    The join itself is **bounded**: client threads (daemonic) are joined
    against a deadline — ``join_timeout`` seconds, defaulting to the
    worst-case per-client budget ``timeout * max(len(frames)) + 30`` — and
    a blown deadline raises with each hung client's progress instead of
    hanging ``repro validate`` (and CI) forever on a stuck server.  Shared
    by ``repro validate``, ``repro serve-bench``, and
    ``examples/inference_service.py``.
    """
    import threading

    if client_factory is None:
        if server is None:
            raise ValueError("need a server (or a client_factory)")

        def client_factory(tid: int):
            return server.client(model)

    served: dict[int, list] = {tid: [] for tid in frame_sets}
    progress: dict[int, int] = {tid: 0 for tid in frame_sets}
    errors: dict[int, BaseException] = {}

    def run_client(tid: int) -> None:
        client = None
        try:
            client = client_factory(tid)
            for frame in frame_sets[tid]:
                served[tid].append(
                    (frame, client.evaluate(frame, timeout=timeout))
                )
                progress[tid] += 1
        except BaseException as exc:  # re-raised on the caller's thread
            errors[tid] = exc
        finally:
            close = getattr(client, "close", None)
            if close is not None:
                close()

    threads = {
        tid: threading.Thread(target=run_client, args=(tid,), daemon=True)
        for tid in frame_sets
    }
    for t in threads.values():
        t.start()
    if join_timeout is None:
        longest = max((len(v) for v in frame_sets.values()), default=0)
        join_timeout = timeout * longest + 30.0
    deadline = time.perf_counter() + join_timeout
    for t in threads.values():
        t.join(max(0.0, deadline - time.perf_counter()))
    hung = {
        tid: f"{progress[tid]}/{len(frame_sets[tid])} frames done"
        for tid, t in threads.items()
        if t.is_alive()
    }
    if hung:
        # Chain the first fast-failing client's exception (if any): it is
        # usually the root cause of the others hanging.
        cause = errors[min(errors)] if errors else None
        failed = (
            f"; clients {sorted(errors)} failed first" if errors else ""
        )
        raise RuntimeError(
            f"serving clients still running after the {join_timeout:.1f} s "
            f"join deadline: {hung}{failed}"
        ) from cause
    if errors:
        tid = min(errors)
        raise RuntimeError(f"serving client {tid} failed") from errors[tid]
    return served


def perturbed_frames(base: "System", n: int, seed0: int = 0, scale: float = 0.02):
    """``n`` decorrelated copies of ``base`` with jittered positions — the
    standard workload generator for serving demos and smoke checks."""
    import numpy as _np

    frames = []
    for k in range(n):
        frame = base.copy()
        rng = _np.random.default_rng(seed0 + k)
        frame.positions = frame.positions + rng.normal(
            scale=scale, size=frame.positions.shape
        )
        frames.append(frame)
    return frames


def served_matches_direct(model, frame, result) -> bool:
    """The serving contract, checkable per request: a served result must be
    bitwise identical to a direct ``DeepPot.evaluate`` of the same frame."""
    import numpy as _np

    from repro.md.neighbor import neighbor_pairs

    direct = model.evaluate(frame, *neighbor_pairs(frame, model.config.rcut))
    return (
        result.energy == direct.energy
        and _np.array_equal(result.forces, direct.forces)
        and _np.array_equal(result.virial, direct.virial)
    )
