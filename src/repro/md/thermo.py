"""Thermodynamic observables and the every-N-steps thermo log (Sec 6.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.md.system import System
from repro.units import EVA3_TO_BAR, kinetic_temperature


@dataclass
class ThermoState:
    """One row of the thermodynamic log."""

    step: int
    time_ps: float
    kinetic_energy: float  # eV
    potential_energy: float  # eV
    total_energy: float  # eV
    temperature: float  # K
    pressure: float  # bar

    def as_tuple(self):
        return (
            self.step,
            self.time_ps,
            self.kinetic_energy,
            self.potential_energy,
            self.total_energy,
            self.temperature,
            self.pressure,
        )


def compute_pressure(system: System, virial: np.ndarray) -> float:
    """Pressure in bar: P = (2 KE + tr W) / (3 V)."""
    ke = system.kinetic_energy()
    w_trace = float(np.trace(np.asarray(virial).reshape(3, 3)))
    p_ev_a3 = (2.0 * ke + w_trace) / (3.0 * system.box.volume)
    return p_ev_a3 * EVA3_TO_BAR


def compute_thermo(
    system: System, potential_energy: float, virial: np.ndarray, step: int, dt: float
) -> ThermoState:
    ke = system.kinetic_energy()
    n_dof = max(3 * system.n_atoms - 3, 1)
    return ThermoState(
        step=step,
        time_ps=step * dt,
        kinetic_energy=ke,
        potential_energy=float(potential_energy),
        total_energy=ke + float(potential_energy),
        temperature=kinetic_temperature(ke, n_dof),
        pressure=compute_pressure(system, virial),
    )


@dataclass
class ThermoLog:
    """Collects ThermoState rows at a fixed cadence (paper: every 20 steps)."""

    every: int = 20
    rows: list[ThermoState] = field(default_factory=list)

    def maybe_record(
        self,
        system: System,
        potential_energy: float,
        virial: np.ndarray,
        step: int,
        dt: float,
    ) -> Optional[ThermoState]:
        if step % self.every != 0:
            return None
        if self.rows and self.rows[-1].step == step:
            # Idempotence at run() boundaries: every run() re-records its
            # starting step (LAMMPS logs step 0), so back-to-back runs —
            # and checkpoint/resume, which must be bitwise identical to an
            # uninterrupted run — would otherwise duplicate that row.
            return None
        row = compute_thermo(system, potential_energy, virial, step, dt)
        self.rows.append(row)
        return row

    def column(self, name: str) -> np.ndarray:
        return np.array([getattr(r, name) for r in self.rows])
