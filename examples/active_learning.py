"""Concurrent learning (DP-GEN) demo — how the paper's models were made.

The water/copper models the paper benchmarks come from the concurrent
learning scheme of its ref [68]: an ensemble of DP models explores
configuration space with MD, and configurations where the ensemble
*disagrees* (force deviation between trust bounds) are sent to the ab initio
oracle for labeling.  The loop shrinks the model deviation with a minimal
number of expensive labels.

Run:  python examples/active_learning.py [--iterations N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.structures import water_box
from repro.dp import ActiveLearner, Dataset, ModelEnsemble, TrainConfig, label_frames, sample_md_frames
from repro.dp.model import DPConfig
from repro.oracles import FlexibleWater


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--models", type=int, default=3)
    parser.add_argument("--train-steps", type=int, default=200)
    args = parser.parse_args()

    oracle = FlexibleWater(cutoff=4.0)
    base = water_box((3, 3, 3), seed=0)
    config = DPConfig.tiny(rcut=4.0)

    # seed dataset: a handful of oracle-MD frames
    print("Building the seed dataset (oracle MD)...")
    seed_frames = sample_md_frames(
        base, oracle, n_frames=6, stride=10, equilibration=40, seed=0
    )
    dataset = label_frames(seed_frames, oracle)

    print(f"Training an ensemble of {args.models} models on {len(dataset)} frames...")
    ensemble = ModelEnsemble(config, n_models=args.models)
    train_cfg = TrainConfig(
        n_steps=args.train_steps, lr_start=3e-3,
        decay_steps=max(args.train_steps // 5, 1),
        log_every=args.train_steps,
    )
    ensemble.train_all(dataset, train_cfg)

    learner = ActiveLearner(
        ensemble=ensemble,
        oracle=oracle,
        trust_lo=0.08,
        trust_hi=1.5,
        md_steps=60,
        md_stride=12,
        temperature=330.0,
    )

    dev0 = ensemble.force_deviation(base)
    print(f"Initial ensemble force deviation on the seed structure: "
          f"{dev0:.3f} eV/Å")

    for it in range(args.iterations):
        stats = learner.iteration(dataset, base, train_cfg)
        dev = ensemble.force_deviation(base)
        print(
            f"iteration {it + 1}: accurate={stats['accurate']} "
            f"candidate={stats['candidate']} failed={stats['failed']} "
            f"added={stats['n_added']} dataset={stats['dataset_size']} "
            f"deviation={dev:.3f} eV/Å"
        )

    print("\nDP-GEN converges when all explored frames fall below trust_lo "
          "(the 'accurate' bucket) — at that point the model is uniformly "
          "accurate over the explored ensemble, the paper's ref [68] criterion.")


if __name__ == "__main__":
    main()
