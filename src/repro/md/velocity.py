"""Boltzmann velocity initialisation (paper Sec 6.1: 330 K, random seeds)."""

from __future__ import annotations

import numpy as np

from repro.md.system import System
from repro.units import MVV_TO_EV, KB


def boltzmann_velocities(
    system: System,
    temperature: float,
    seed: int | None = None,
    remove_drift: bool = True,
    rescale_exact: bool = True,
) -> None:
    """Draw velocities from the Maxwell–Boltzmann distribution, in place.

    Parameters
    ----------
    temperature:
        Target temperature in K.
    remove_drift:
        Zero the center-of-mass momentum (as LAMMPS ``velocity ... mom yes``).
    rescale_exact:
        Rescale so the instantaneous temperature equals ``temperature``
        exactly, which makes short benchmark runs reproducible.
    """
    rng = np.random.default_rng(seed)
    masses = system.atom_masses()
    sigma = np.sqrt(KB * temperature / (masses * MVV_TO_EV))
    vel = rng.normal(size=(system.n_atoms, 3)) * sigma[:, None]

    if remove_drift and system.n_atoms > 0:
        total_mass = masses.sum()
        com_v = (masses[:, None] * vel).sum(axis=0) / total_mass
        vel -= com_v

    system.velocities = vel
    if rescale_exact and temperature > 0 and system.n_atoms > 1:
        current = system.temperature()
        if current > 0:
            system.velocities *= np.sqrt(temperature / current)
