"""Replica x rank domain-decomposed MD through one batched force backend.

The paper's Fig 1 (a) picture — spatial domain decomposition feeding a
batched evaluator — applied at both parallelism levels at once: R replicas
(different velocity seeds) are each decomposed across P simulated MPI
ranks, and every step ALL R x P sub-domain frames are submitted to the
shared ForceBackend, which groups them into shape buckets and issues one
batched graph evaluation per bucket.

What to look for in the output:

* evaluations per step == bucket count, strictly fewer than R x P;
* the bucket partition is computed once per reneighboring, not per step;
* replica 0's trajectory is bitwise identical to an independent
  DistributedSimulation run with the same seed — batching never changes
  physics.

Run:  python examples/distributed_ensemble.py [--replicas 4] [--grid 2 1 1]
      [--steps 20]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.structures import water_box
from repro.md import boltzmann_velocities
from repro.parallel import DistributedEnsembleSimulation, DistributedSimulation
from repro.zoo import get_water_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument("--grid", type=int, nargs=3, default=(2, 1, 1))
    parser.add_argument("--steps", type=int, default=20)
    args = parser.parse_args()

    model = get_water_model()
    base = water_box((4, 4, 4), seed=0)
    grid = tuple(args.grid)
    R, P = args.replicas, int(np.prod(grid))
    print(
        f"{R} replicas x {P} ranks ({grid}) over {base.n_atoms}-atom water "
        f"cells -> {R * P} sub-domain frames per step"
    )

    ens = DistributedEnsembleSimulation.from_system(
        base, model, n_replicas=R, temperature=330.0, seed=12,
        grid=grid, dt=0.0005, skin=1.0, rebuild_every=10, thermo_every=10,
    )
    backend = ens.force_backend
    print("\nRank frames of replica 0:")
    for dom in ens.replicas[0].decomp.domains:
        print(
            f"  rank {dom.rank}: {dom.n_own:>4} local + {dom.n_ghost:>4} "
            f"ghost atoms"
        )

    before = backend.evaluations
    ens.run(args.steps)
    evals = backend.evaluations - before
    print(
        f"\n{args.steps} steps: {evals} batched evaluations "
        f"({evals / args.steps:.1f}/step for {R * P} frames/step; "
        f"bucket count {backend.bucket_count}, "
        f"{backend.rebuckets} rebucketings)"
    )
    engine = backend.engine
    print(
        f"engine: {engine.stacked_batches} stacked "
        f"({engine.ghost_stacked_batches} ghost-mode), "
        f"{engine.general_batches} general; "
        f"{engine.frames_evaluated} frames total"
    )
    print(
        f"time-to-solution {ens.time_to_solution():.2e} s/step/atom "
        f"over {ens.total_atoms()} atoms"
    )

    print("\nBitwise check: replica 0 vs an independent distributed run...")
    solo_sys = base.copy()
    boltzmann_velocities(solo_sys, 330.0, seed=12)
    solo = DistributedSimulation(
        solo_sys, model, grid=grid, dt=0.0005, skin=1.0,
        rebuild_every=10, thermo_every=10,
    )
    solo.run(args.steps)
    g_ens = ens.replicas[0].current_system()
    g_solo = solo.current_system()
    exact = np.array_equal(g_ens.positions, g_solo.positions) and np.array_equal(
        ens.replicas[0].forces_now(), solo.forces_now()
    )
    print("  positions+forces:", "BITWISE IDENTICAL" if exact else "MISMATCH")

    print("\nThermo (replica 0 tail):")
    for row in ens.replicas[0].thermo[-3:]:
        print(
            f"  step {row.step:>4}  T={row.temperature:7.1f} K  "
            f"E={row.total_energy:12.6f} eV"
        )


if __name__ == "__main__":
    main()
