"""Batched multi-replica DP evaluation — one graph run for R frames.

The paper's throughput lesson (and the follow-up line of work it spawned:
86-PFLOPS DPMD on Summit, 149 ns/day water) is that fixed per-evaluation
costs — graph dispatch, operator launch, Python bookkeeping — must be
amortized over as many atoms as possible.  This module applies that lesson
*across frames*: R replica systems (different seeds/temperatures, same model)
are stacked row-wise into one formatted-neighbor layout, pushed through a
single set of GEMMs, and un-stacked into per-replica results.

Design notes
------------
* Row stacking.  Every tensor in the DP hot path is "per local atom" along
  axis 0 (environment rows, embedding inputs, fitting outputs), so replicas
  concatenate trivially; neighbor indices are shifted by per-replica atom
  offsets so ProdForce's scatter-add lands each replica in its own span of
  one global force array.
* Bitwise reproducibility.  For R=1 the stacked feeds are byte-identical to
  the serial path's, so energies/forces/virials match the serial engine
  bit-for-bit (asserted in ``tests/test_ensemble.py``).  For R>1 each
  replica's rows keep their serial-relative order under the stable type sort,
  so scatter-add orderings per force accumulator are unchanged as well; with
  tfmini's row-count-independent matrix-vector kernel (the fitting net's
  N=1 output layer — see ``_fwd_matmul_2d`` in :mod:`repro.tfmini.ops`),
  *every* per-replica quantity, energies and atomic energies included, is
  bitwise independent of batch composition.  This is the guarantee the
  serving layer (:mod:`repro.serving`) exposes to clients: a frame's result
  never depends on which other requests it was coalesced with.
* Persistent scratch.  The batch-scale staging buffers (normalized
  environment matrix, its derivative, displacements, shifted neighbor lists)
  live in a :class:`ScratchPool` keyed by name and are reused while shapes
  are steady — the steady-state MD loop performs no new large allocations
  (asserted via ``ScratchPool.alloc_count`` in the tests).
* Compiled graph execution.  The DP graph itself runs through a compiled
  execution plan (:mod:`repro.tfmini.plan`): the forward+backward DAG is
  topo-sorted once per engine, and every evaluation is a flat slot-indexed
  tape walk into a persistent, liveness-recycled buffer arena — no per-run
  graph traversal, dict dispatch, or per-op output allocation.  Results stay
  bitwise identical to ``Session.run`` (the retained oracle; pass
  ``use_plan=False`` to execute through it for differential testing).
* One engine, one thread.  The scratch pool, cached neighbor layouts, and
  the plan's buffer arenas are all mutable run state, so an engine must
  never be *executing* on two threads at once — one engine per driver
  thread (the serving pool gives every worker its own; see
  :mod:`repro.serving.worker`).  ``evaluate_batch`` guards the invariant:
  concurrent entry from a second thread raises instead of silently
  corrupting buffers.  Sequential use from different threads (warm on the
  main thread, then hand the engine to a worker) is fine.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.dp.nlist_fmt import (
    _MAX_INDEX,
    PAD,
    FormattedNeighbors,
    format_neighbors,
)
from repro.dp.ops_baseline import environment_baseline
from repro.dp.ops_optimized import environment_op
from repro.md.potential import PotentialResult
from repro.md.system import System

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.dp.model import DeepPot


class _StackedFrame:
    """Duck-typed stand-in for :class:`System` covering R stacked replicas.

    Exposes exactly the attributes the neighbor formatter and the Environment
    operator read (positions/types/box/n_atoms/n_types), backed by the
    engine's pooled buffers — no dataclass validation or re-copy per step.
    """

    __slots__ = ("positions", "types", "box", "n_atoms", "n_types")

    def __init__(self, positions, types, box, n_types):
        self.positions = positions
        self.types = types
        self.box = box
        self.n_atoms = positions.shape[0]
        self.n_types = n_types


class ScratchPool:
    """Named, shape-keyed persistent buffers for the batched hot path.

    ``get(name, shape, dtype)`` returns the cached array for that
    (name, shape, dtype) key, allocating only on first sight — so a driver
    alternating between batch shapes (e.g. R=1 MD steps interleaved with
    R=4 sampling batches) warms one buffer set per shape and then stops
    allocating, instead of thrashing a single slot.  ``alloc_count`` and
    ``alloc_bytes`` expose deterministic counters the buffer-reuse tests
    (and the batched benchmark) assert on — no wall-clock involved.
    """

    def __init__(self) -> None:
        self._arrays: dict[tuple, np.ndarray] = {}
        self.alloc_count = 0
        self.alloc_bytes = 0

    def get(self, name: str, shape: tuple, dtype=np.float64) -> np.ndarray:
        key = (name, tuple(shape), np.dtype(dtype))
        arr = self._arrays.get(key)
        if arr is None:
            arr = np.empty(shape, dtype=dtype)
            self._arrays[key] = arr
            self.alloc_count += 1
            self.alloc_bytes += arr.nbytes
        return arr

    def nbytes(self) -> int:
        """Bytes currently held by the pool."""
        return sum(a.nbytes for a in self._arrays.values())

    def clear(self) -> None:
        self._arrays.clear()


class BatchedEvaluator:
    """Evaluates a stack of R frames through one DP graph execution.

    One instance per driver (a :class:`~repro.md.ensemble.EnsembleSimulation`
    or a single-replica :class:`~repro.md.simulation.Simulation`) keeps the
    scratch shapes steady; the model itself stays stateless across engines.
    """

    def __init__(self, model: "DeepPot", use_plan: bool = True):
        self.model = model
        self.scratch = ScratchPool()
        self.use_plan = use_plan
        self._plan = None  # compiled lazily: one topo_sort per engine
        # Reusable neighbor layouts (nlist storage recycling), keyed by
        # ("stacked", rows) or (replica, rows) so alternating batch shapes
        # keep their own layouts instead of thrashing one slot.
        self._fmts: dict[tuple, FormattedNeighbors] = {}
        self.batch_evaluations = 0
        self.frames_evaluated = 0
        # One-engine-one-thread guard: the thread currently inside
        # evaluate_batch (None when idle), compare-and-set under a lock so
        # simultaneous entry cannot slip past the check.  Scratch buffers
        # and plan arenas are per-engine run state, so concurrent entry is
        # always a caller bug (share the model, not the engine).
        self._active_thread: Optional[int] = None
        self._guard_lock = threading.Lock()
        # Staging-path counters: frames that arrive as separate requests
        # (the serving layer) only take the single-lexsort fast path when
        # their boxes match; these counters let callers see which path a
        # workload actually exercised.
        self.stacked_batches = 0
        self.general_batches = 0

    @property
    def plan(self):
        """The engine's compiled execution plan (lazily compiled).

        Feed order is the engine's staging order; fetches are the batched
        path's graph outputs.  The plan is per-engine — like the scratch
        pool, each driver keeps its own arena so shapes stay steady.
        """
        if self._plan is None:
            from repro.tfmini.plan import compile_plan

            m = self.model
            self._plan = compile_plan(
                [m._f_forces, m._f_net_deriv] + list(m._f_e_atoms),
                list(m.ph_env)
                + [m.ph_em_deriv, m.ph_rij, m.ph_nlist, m.ph_atom_idx, m.ph_natoms],
                copy_fetches=False,  # results are unpacked before the next run
            )
        return self._plan

    def release_buffers(self) -> None:
        """Drop all persistent storage: scratch pool, cached neighbor
        layouts, and the compiled plan's buffer arenas (the compiled tape
        survives).  The next evaluation re-warms; results are unaffected.
        Useful before allocation-sensitive measurements or when a shape
        regime is finished."""
        self.scratch.clear()
        self._fmts.clear()
        if self._plan is not None:
            self._plan.release_arenas()

    # ------------------------------------------------------------------ core

    def evaluate_batch(
        self,
        systems: Sequence[System],
        pair_lists: Sequence[tuple[np.ndarray, np.ndarray]],
        backend: str = "optimized",
        nlocs: Optional[Sequence[int]] = None,
        pbc: bool = True,
    ) -> list[PotentialResult]:
        """Energies/forces/virials for R frames in one batched graph run.

        Parameters
        ----------
        systems:
            R snapshots sharing the model's type vocabulary.  Replicas may
            differ in atom count (they are stacked by rows, not reshaped).
        pair_lists:
            Per-replica half neighbor-pair lists ``(pair_i, pair_j)``.
        nlocs:
            Optional per-replica local-atom counts for the ghost/domain-
            decomposition mode (defaults to all atoms local).
        pbc:
            Minimum-image displacements (True) or raw displacements for
            decomposed sub-domains whose images are explicit ghosts (False).

        Returns
        -------
        One :class:`PotentialResult` per replica, bitwise identical to what
        the serial path would produce for that replica alone.

        Raises
        ------
        RuntimeError
            On concurrent entry from a second thread — the engine's scratch
            pool and plan arenas are single-threaded run state (the
            one-engine-one-thread invariant; give each thread its own
            engine).
        """
        me = threading.get_ident()
        with self._guard_lock:
            owner = self._active_thread
            if owner is not None and owner != me:
                raise RuntimeError(
                    "BatchedEvaluator entered concurrently from two threads "
                    f"(owner thread {owner}, caller {me}); engines hold "
                    "single-threaded scratch/arena state — use one engine "
                    "per thread (see repro.serving's worker pool)"
                )
            self._active_thread = me
        try:
            return self._evaluate_batch(
                systems, pair_lists, backend=backend, nlocs=nlocs, pbc=pbc
            )
        finally:
            with self._guard_lock:
                if self._active_thread == me:
                    self._active_thread = None

    def _evaluate_batch(
        self,
        systems: Sequence[System],
        pair_lists: Sequence[tuple[np.ndarray, np.ndarray]],
        backend: str = "optimized",
        nlocs: Optional[Sequence[int]] = None,
        pbc: bool = True,
    ) -> list[PotentialResult]:
        model = self.model
        cfg = model.config
        R = len(systems)
        if R == 0:
            return []
        if len(pair_lists) != R:
            raise ValueError(f"{R} systems but {len(pair_lists)} pair lists")
        nlocs = (
            [s.n_atoms for s in systems]
            if nlocs is None
            else [int(n) for n in nlocs]
        )
        if len(nlocs) != R:
            raise ValueError(f"{R} systems but {len(nlocs)} nloc entries")

        nnei = cfg.nnei
        n_atoms = [s.n_atoms for s in systems]
        atom_off = np.concatenate([[0], np.cumsum(n_atoms)])
        total_atoms = int(atom_off[-1])
        total_loc = int(sum(nlocs))

        scratch = self.scratch
        em_n = scratch.get("em_n", (total_loc, nnei, 4))
        ed_n = scratch.get("ed_n", (total_loc, nnei, 4, 3))
        rij = scratch.get("rij", (total_loc, nnei, 3))
        types_cat = scratch.get("types", (total_loc,), np.int64)
        gidx = scratch.get("gidx", (total_loc,), np.int64)
        rep_of_row = scratch.get("rep", (total_loc,), np.int64)

        # --- stage the replicas into one formatted-neighbor layout ---------
        # Fast path: replicas sharing one box with no ghost split are stacked
        # into a single virtual frame, so the whole batch is formatted by ONE
        # lexsort and one Environment-operator call (neighbor indices never
        # cross replica spans because the stacked pair list is per-replica
        # offset).  Per-frame Python staging cost — the fixed cost the engine
        # exists to amortize — is paid once per batch instead of once per
        # frame.  The general path stages replica-by-replica and also covers
        # ghost mode (per-replica nloc), mixed boxes, and the baseline
        # backend.
        stackable = (
            backend == "optimized"
            and all(nlocs[r] == n_atoms[r] for r in range(R))
            and all(
                np.array_equal(s.box.lengths, systems[0].box.lengths)
                for s in systems[1:]
            )
            and (not cfg.use_compression or total_atoms < _MAX_INDEX)
        )
        if stackable:
            self.stacked_batches += 1
            pos_cat = scratch.get("pos", (total_atoms, 3))
            npairs = [len(pair_lists[r][0]) for r in range(R)]
            pair_off = np.concatenate([[0], np.cumsum(npairs)])
            n_pairs = int(pair_off[-1])
            # Pair counts drift a little on every neighbor-list rebuild, so
            # the staging slabs are sized to the next power of two and
            # sliced — bounded distinct shapes (and allocations) over a long
            # run, instead of one dead buffer pair per rebuild.
            cap = 1 << max(n_pairs - 1, 1).bit_length()
            pi_cat = scratch.get("pair_i", (cap,), np.int64)[:n_pairs]
            pj_cat = scratch.get("pair_j", (cap,), np.int64)[:n_pairs]
            for r in range(R):
                lo, hi = int(atom_off[r]), int(atom_off[r + 1])
                pos_cat[lo:hi] = systems[r].positions
                types_cat[lo:hi] = systems[r].types
                gidx[lo:hi] = np.arange(lo, hi)
                rep_of_row[lo:hi] = r
                plo, phi = int(pair_off[r]), int(pair_off[r + 1])
                np.add(pair_lists[r][0], atom_off[r], out=pi_cat[plo:phi])
                np.add(pair_lists[r][1], atom_off[r], out=pj_cat[plo:phi])
            stacked = _StackedFrame(
                pos_cat, types_cat, systems[0].box, systems[0].n_types
            )
            fmt_key = ("stacked", total_atoms)
            fmt = format_neighbors(
                stacked, pi_cat, pj_cat, cfg.rcut, cfg.sel,
                use_compression=cfg.use_compression, pbc=pbc,
                out=self._fmts.get(fmt_key),
            )
            self._fmts[fmt_key] = fmt
            environment_op(
                stacked, fmt, cfg.rcut_smth, cfg.rcut, pbc=pbc,
                out=(em_n, ed_n, rij),
            )
            slot_t = fmt.slot_types()
            davg = model.davg[slot_t]  # (nnei, 4)
            dstd = model.dstd[slot_t]
            np.subtract(em_n, davg, out=em_n)
            np.divide(em_n, dstd, out=em_n)
            np.divide(ed_n, dstd[..., None], out=ed_n)
            nlist_g = fmt.nlist  # already in the global numbering
        else:
            self.general_batches += 1
            nlist_g = scratch.get("nlist", (total_loc, nnei), np.int64)
            row = 0
            for r in range(R):
                system, (pi, pj) = systems[r], pair_lists[r]
                nloc = nlocs[r]
                fmt_key = (r, nloc)
                fmt = format_neighbors(
                    system, pi, pj, cfg.rcut, cfg.sel,
                    use_compression=cfg.use_compression, nloc=nloc, pbc=pbc,
                    out=self._fmts.get(fmt_key),
                )
                self._fmts[fmt_key] = fmt
                sl = slice(row, row + nloc)
                if backend == "optimized":
                    environment_op(
                        system, fmt, cfg.rcut_smth, cfg.rcut, pbc=pbc,
                        out=(em_n[sl], ed_n[sl], rij[sl]),
                    )
                elif backend == "baseline":
                    em_b, ed_b, rij_b = environment_baseline(
                        system, fmt, cfg.rcut_smth, cfg.rcut, pbc=pbc
                    )
                    em_n[sl], ed_n[sl], rij[sl] = em_b, ed_b, rij_b
                else:
                    raise ValueError(f"unknown backend {backend!r}")

                # Normalize in place (same elementwise ops as the serial path).
                slot_t = fmt.slot_types()
                davg = model.davg[slot_t]  # (nnei, 4)
                dstd = model.dstd[slot_t]
                np.subtract(em_n[sl], davg, out=em_n[sl])
                np.divide(em_n[sl], dstd, out=em_n[sl])
                np.divide(ed_n[sl], dstd[..., None], out=ed_n[sl])

                # Shift neighbor indices into the global atom numbering.
                np.add(fmt.nlist, atom_off[r], out=nlist_g[sl])
                nlist_g[sl][fmt.nlist == PAD] = PAD

                types_cat[sl] = system.types[:nloc]
                gidx[sl] = np.arange(atom_off[r], atom_off[r] + nloc)
                rep_of_row[sl] = r
                row += nloc

        # --- one type-sorted feed set for the whole stack ------------------
        # The row gathers land in pooled buffers (np.take with out=), so the
        # steady-state loop reuses this storage instead of reallocating the
        # batch-scale arrays every evaluation.
        order = np.argsort(types_cat, kind="stable")
        sorted_types = types_cat[order]
        sorted_rep = rep_of_row[order]
        gidx_sorted = gidx[order]
        ed_sorted = scratch.get("ed_sorted", ed_n.shape)
        np.take(ed_n, order, axis=0, out=ed_sorted)
        rij_sorted = scratch.get("rij_sorted", rij.shape)
        np.take(rij, order, axis=0, out=rij_sorted)
        nlist_sorted = scratch.get("nlist_sorted", nlist_g.shape, np.int64)
        np.take(nlist_g, order, axis=0, out=nlist_sorted)

        # Feed values in the plan's positional order: per-type environment
        # rows, then the shared geometry tensors.
        feed_vals = []
        for t in range(cfg.n_types):
            idx_t = order[sorted_types == t]
            em_t = scratch.get(f"em_t{t}", (idx_t.size, nnei, 4))
            np.take(em_n, idx_t, axis=0, out=em_t)
            feed_vals.append(em_t)
        feed_vals += [
            ed_sorted,
            rij_sorted,
            nlist_sorted,
            gidx_sorted,
            np.array([total_atoms], dtype=np.int64),
        ]

        if self.use_plan:
            out = self.plan.run_list(feed_vals, session=model.session)
        else:
            # Reference oracle path: identical fetches/feeds via Session.run.
            feed_nodes = list(model.ph_env) + [
                model.ph_em_deriv,
                model.ph_rij,
                model.ph_nlist,
                model.ph_atom_idx,
                model.ph_natoms,
            ]
            fetches = [model._f_forces, model._f_net_deriv] + list(model._f_e_atoms)
            out = model.session.run(fetches, dict(zip(feed_nodes, feed_vals)))
        forces_all, net_deriv = out[0], out[1]
        e_atoms_t = [np.atleast_1d(e) for e in out[2:]]
        self.batch_evaluations += 1
        self.frames_evaluated += R

        # --- un-stack into per-replica results -----------------------------
        # dE/dd per slot (shared by all per-replica virials; identical to the
        # contraction ProdVirial performs on the serial path).
        slot = scratch.get("slot", (total_loc, nnei, 3))
        np.einsum("ijc,ijck->ijk", net_deriv, ed_sorted, out=slot)

        e_sorted = np.concatenate(e_atoms_t) if e_atoms_t else np.zeros(0)
        rep_per_type = [sorted_rep[sorted_types == t] for t in range(cfg.n_types)]

        results: list[PotentialResult] = []
        for r in range(R):
            system, nloc = systems[r], nlocs[r]
            local_types = system.types[:nloc]

            # Energy: per-type partial sums added in type order — the exact
            # reduction order of the serial graph (reduce_sum per type, then
            # a left-to-right add chain), so R=1 stays bitwise identical.
            energy = 0.0
            first = True
            for t in range(cfg.n_types):
                e_t = e_atoms_t[t]
                if R > 1:
                    e_t = e_t[rep_per_type[t] == r]
                part = np.sum(e_t)
                energy = part if first else energy + part
                first = False

            atom_e = np.empty(nloc)
            if R == 1:
                atom_e[gidx_sorted] = e_sorted
                virial = -np.einsum("ija,ijb->ab", rij_sorted, slot)
                # The graph output is a plan-arena buffer (overwritten by the
                # next evaluation); results hand the caller an owned copy.
                forces = forces_all.copy()
            else:
                rows_r = sorted_rep == r
                atom_e[gidx_sorted[rows_r] - atom_off[r]] = e_sorted[rows_r]
                virial = -np.einsum(
                    "ija,ijb->ab", rij_sorted[rows_r], slot[rows_r]
                )
                lo, hi = int(atom_off[r]), int(atom_off[r]) + n_atoms[r]
                forces = forces_all[lo:hi].copy()
            atom_e += model.e0[local_types]
            total = float(energy + model.e0[local_types].sum())
            results.append(
                PotentialResult(total, forces, virial, atom_energies=atom_e)
            )
        return results
