"""The unified force backend: shape bucketing, locals-first ghost stacking,
identity staging, and plan feed-slot staging.

The layer's one contract, asserted bitwise throughout: a frame's result
never depends on which other frames it was bucketed/stacked with — the
per-frame ``DeepPot.evaluate`` path is the retained oracle.
"""

import numpy as np
import pytest

from repro.analysis.structures import fcc_lattice, water_box
from repro.dp import (
    DeepPot,
    DPConfig,
    DeepPotPair,
    ForceBackend,
    ForceFrame,
    frame_bucket_key,
    plan_frame_buckets,
)
from repro.dp.batch import BatchedEvaluator
from repro.md.neighbor import neighbor_pairs
from repro.md.velocity import boltzmann_velocities
from repro.parallel import DistributedSimulation, SimComm, DomainDecomposition


@pytest.fixture(scope="module")
def model():
    return DeepPot(DPConfig.tiny())


@pytest.fixture(scope="module")
def copper_model():
    return DeepPot(DPConfig.tiny(type_names=("Cu",), sel=(24,), rcut=3.5))


@pytest.fixture()
def water_sys():
    return water_box((4, 4, 4), seed=0)


def full_local_frame(system, rcut):
    pi, pj = neighbor_pairs(system, rcut)
    return ForceFrame(system, pi, pj)


def rank_frames(system, model, grid, skin=1.0):
    """Decompose ``system`` and return the per-rank ghost frames."""
    comm = SimComm(int(np.prod(grid)))
    decomp = DomainDecomposition(grid, comm)
    decomp.assign_atoms(system)
    decomp.build_ghost_lists(system.box, model.config.rcut + skin)
    frames = []
    for dom in decomp.domains:
        if dom.n_own == 0:
            continue
        local = dom.local_system(system.box, system.masses, system.type_names)
        pi, pj = neighbor_pairs(local, model.config.rcut, pbc=False)
        frames.append(ForceFrame(local, pi, pj, nloc=dom.n_own, pbc=False))
    return frames


def assert_result_bitwise(a, b):
    assert a.energy == b.energy
    assert np.array_equal(a.forces, b.forces)
    assert np.array_equal(a.virial, b.virial)
    assert np.array_equal(a.atom_energies, b.atom_energies)


class TestBucketPartition:
    def test_equal_keys_share_a_bucket(self, model, water_sys):
        f = full_local_frame(water_sys, model.config.rcut)
        keys = [frame_bucket_key(f.system, f.nloc, f.pbc)] * 3
        assert plan_frame_buckets(keys) == [[0, 1, 2]]

    def test_singletons_coalesce_per_pbc(self):
        keys = [
            (True, 10, 10, b"a", b"t1"),
            (False, 12, 8, b"", b"t2"),
            (True, 20, 20, b"b", b"t3"),
            (False, 14, 9, b"", b"t4"),
        ]
        buckets = plan_frame_buckets(keys)
        # two residual buckets: one per pbc value, deterministic order
        assert sorted(map(sorted, buckets)) == [[0, 2], [1, 3]]

    def test_multi_buckets_come_first_in_appearance_order(self):
        k1 = (True, 10, 10, b"a", b"t")
        k2 = (False, 5, 3, b"", b"u")
        keys = [k2, k1, k2, (True, 7, 7, b"c", b"v"), k1]
        buckets = plan_frame_buckets(keys)
        assert buckets[0] == [0, 2] and buckets[1] == [1, 4]
        assert buckets[2] == [3]

    def test_box_only_keys_pbc_frames(self, water_sys):
        small = water_box((3, 3, 3), seed=1)
        k_open_a = frame_bucket_key(water_sys, None, pbc=False)
        k_open_b = frame_bucket_key(small, None, pbc=False)
        assert k_open_a[3] == b"" and k_open_b[3] == b""
        assert frame_bucket_key(water_sys, None, pbc=True)[3] != b""


class TestGhostStacking:
    """Locals-first stacking: unequal-nloc ghost frames share one lexsort."""

    @pytest.mark.parametrize("grid", [(2, 1, 1), (2, 2, 1), (1, 2, 2)])
    def test_stacked_rank_frames_bitwise_vs_per_rank_oracle(
        self, model, water_sys, grid
    ):
        frames = rank_frames(water_sys.copy(), model, grid)
        nlocs = [f.nloc for f in frames]
        assert len(set((f.system.n_atoms, f.nloc) for f in frames)) > 1 or len(frames) > 1
        engine = BatchedEvaluator(model)
        stacked = engine.evaluate_batch(
            [f.system for f in frames],
            [(f.pair_i, f.pair_j) for f in frames],
            nlocs=nlocs,
            pbc=False,
        )
        assert engine.stacked_batches == 1
        assert engine.ghost_stacked_batches == 1
        for frame, got in zip(frames, stacked):
            oracle = model.evaluate(
                frame.system, frame.pair_i, frame.pair_j,
                nloc=frame.nloc, pbc=False,
            )
            assert_result_bitwise(got, oracle)

    def test_single_ghost_frame_unchanged_vs_pbc_reference(self, model, water_sys):
        """R=1 ghost stacking is the identity relabeling — same physics as
        the PBC evaluation of the global system (existing ghost contract)."""
        frames = rank_frames(water_sys.copy(), model, (2, 1, 1))
        f = frames[0]
        res = model.evaluate(f.system, f.pair_i, f.pair_j, nloc=f.nloc, pbc=False)
        assert res.forces.shape == (f.system.n_atoms, 3)
        assert res.atom_energies.shape == (f.nloc,)

    def test_mixed_nloc_stack_results_independent_of_batch_composition(
        self, model, water_sys
    ):
        """A frame's result must not change when stacked with frames of a
        *different* grid's shapes."""
        frames_a = rank_frames(water_sys.copy(), model, (2, 1, 1))
        frames_b = rank_frames(water_sys.copy(), model, (2, 2, 1))
        engine = BatchedEvaluator(model)
        mixed = frames_a + frames_b
        out = engine.evaluate_frames(mixed)
        solo = [
            model.evaluate(f.system, f.pair_i, f.pair_j, nloc=f.nloc, pbc=False)
            for f in mixed
        ]
        for got, ref in zip(out, solo):
            assert_result_bitwise(got, ref)

    def test_nloc_bounds_validated(self, model, water_sys):
        pi, pj = neighbor_pairs(water_sys, model.config.rcut)
        engine = BatchedEvaluator(model)
        with pytest.raises(ValueError, match="nloc"):
            engine.evaluate_batch(
                [water_sys], [(pi, pj)], nlocs=[water_sys.n_atoms + 1], pbc=False
            )


class TestEvaluateFrames:
    def test_results_in_frame_order(self, model, water_sys):
        frames = rank_frames(water_sys.copy(), model, (2, 1, 1))
        frames.append(full_local_frame(water_box((3, 3, 3), seed=2), model.config.rcut))
        engine = BatchedEvaluator(model)
        out = engine.evaluate_frames(frames)
        assert len(out) == len(frames)
        for f, got in zip(frames, out):
            ref = model.evaluate(f.system, f.pair_i, f.pair_j, nloc=f.nloc, pbc=f.pbc)
            assert_result_bitwise(got, ref)

    def test_one_evaluation_per_bucket(self, model, water_sys):
        sys_b = water_sys.copy()
        frames = [
            full_local_frame(water_sys, model.config.rcut),
            full_local_frame(sys_b, model.config.rcut),
        ] + rank_frames(water_sys.copy(), model, (2, 1, 1))
        engine = BatchedEvaluator(model)
        keys = [frame_bucket_key(f.system, f.nloc, f.pbc) for f in frames]
        buckets = plan_frame_buckets(keys)
        engine.evaluate_frames(frames, buckets=buckets)
        assert engine.batch_evaluations == len(buckets)
        assert engine.bucket_evaluations == len(buckets)
        assert len(buckets) < len(frames)

    def test_mixed_pbc_bucket_rejected(self, model, water_sys):
        f_pbc = full_local_frame(water_sys, model.config.rcut)
        f_open = rank_frames(water_sys.copy(), model, (2, 1, 1))[0]
        engine = BatchedEvaluator(model)
        with pytest.raises(ValueError, match="pbc"):
            engine.evaluate_frames([f_pbc, f_open], buckets=[[0, 1]])

    def test_incomplete_partition_rejected(self, model, water_sys):
        frames = [full_local_frame(water_sys, model.config.rcut)] * 2
        engine = BatchedEvaluator(model)
        with pytest.raises(ValueError, match="cover"):
            engine.evaluate_frames(frames, buckets=[[0]])
        with pytest.raises(ValueError, match="two buckets"):
            engine.evaluate_frames(frames, buckets=[[0, 1], [1]])


class TestForceBackendCaching:
    def test_buckets_cached_across_steady_calls(self, model, water_sys):
        backend = ForceBackend(model)
        frames = rank_frames(water_sys.copy(), model, (2, 1, 1))
        for _ in range(4):
            backend.evaluate(frames)
        assert backend.rebuckets == 1
        assert backend.bucket_count >= 1

    def test_invalidate_forces_rebucket(self, model, water_sys):
        backend = ForceBackend(model)
        frames = rank_frames(water_sys.copy(), model, (2, 1, 1))
        backend.evaluate(frames)
        backend.invalidate_buckets()
        backend.evaluate(frames)
        assert backend.rebuckets == 2

    def test_shape_drift_auto_rebuckets(self, model, water_sys):
        """A frame population whose counts change must not reuse a stale
        partition even if the driver forgot to invalidate."""
        backend = ForceBackend(model)
        backend.evaluate(rank_frames(water_sys.copy(), model, (2, 1, 1)))
        backend.evaluate(rank_frames(water_sys.copy(), model, (2, 2, 1)))
        assert backend.rebuckets == 2

    def test_box_change_auto_rebuckets(self, model, water_sys):
        backend = ForceBackend(model)
        frame = full_local_frame(water_sys.copy(), model.config.rcut)
        backend.evaluate([frame])
        squeezed = frame.system.copy()
        squeezed.box.lengths[:] = squeezed.box.lengths * 0.999
        squeezed.positions *= 0.999
        pi, pj = neighbor_pairs(squeezed, model.config.rcut)
        backend.evaluate([ForceFrame(squeezed, pi, pj)])
        assert backend.rebuckets == 2

    def test_evaluations_counts_backend_buckets_only(self, model, water_sys):
        """One increment per bucket per evaluate — and immune to unrelated
        traffic on a *shared* engine (the DeepPotPair case)."""
        backend = ForceBackend(model, engine=model.batched)
        frames = rank_frames(water_sys.copy(), model, (2, 1, 1))
        before = backend.evaluations
        backend.evaluate(frames)
        assert backend.evaluations - before == backend.bucket_count
        # Direct model traffic through the same engine must not count.
        pi, pj = neighbor_pairs(water_sys, model.config.rcut)
        model.evaluate(water_sys, pi, pj)
        assert backend.evaluations - before == backend.bucket_count


class TestIdentityStagingAndFeedSlots:
    """Satellite: feed staging lands in the plan's persistent feed slots;
    type-sorted stacks skip the gather copies entirely (counter-asserted)."""

    def test_single_type_takes_identity_path(self, copper_model):
        system = fcc_lattice((3, 3, 3))
        pi, pj = neighbor_pairs(system, copper_model.config.rcut)
        engine = BatchedEvaluator(copper_model)
        for _ in range(3):
            engine.evaluate_batch([system], [(pi, pj)])
        assert engine.stage_identity == 3
        assert engine.stage_gathers == 0
        # No gather destinations were ever needed: the plan's feed store
        # holds only the tiny natoms slot — the per-step gather copy of
        # em/ed/rij/nlist is gone.
        assert engine.plan.stats.feed_allocs == 1

    def test_identity_path_bitwise_vs_session_oracle(self, copper_model):
        system = fcc_lattice((3, 3, 3))
        pi, pj = neighbor_pairs(system, copper_model.config.rcut)
        fast = copper_model.evaluate(system, pi, pj)
        oracle = copper_model.evaluate_serial(system, pi, pj)
        assert_result_bitwise(fast, oracle)

    def test_water_feeds_staged_in_plan_slots(self, model, water_sys):
        engine = BatchedEvaluator(model)
        pi, pj = neighbor_pairs(water_sys, model.config.rcut)
        engine.evaluate_batch([water_sys], [(pi, pj)])
        plan = engine.plan
        runs0, inplace0 = plan.stats.runs, plan.stats.in_place_feeds
        allocs0 = plan.stats.feed_allocs
        for _ in range(3):
            engine.evaluate_batch([water_sys], [(pi, pj)])
        # Steady state: every gathered feed (n_types em blocks + em_deriv +
        # nlist + atom_idx + natoms; rij only feeds the out-of-graph
        # virial) is staged in place, and no new feed buffers appear.
        n_counted = model.config.n_types + 4
        assert plan.stats.runs - runs0 == 3
        assert plan.stats.in_place_feeds - inplace0 == 3 * n_counted
        assert plan.stats.feed_allocs == allocs0
        assert engine.stage_gathers == 4

    def test_oracle_path_uses_scratch_not_plan(self, model, water_sys):
        engine = BatchedEvaluator(model, use_plan=False)
        pi, pj = neighbor_pairs(water_sys, model.config.rcut)
        res = engine.evaluate_batch([water_sys], [(pi, pj)])[0]
        assert engine._plan is None  # never compiled
        ref = model.evaluate_serial(water_sys, pi, pj)
        assert_result_bitwise(res, ref)

    def test_feed_store_bounded_under_shape_churn(self, model, water_sys):
        """Free-form feed-shape churn evicts FIFO instead of growing the
        plan's resident feed memory without bound (same policy as the
        arena cap)."""
        engine = BatchedEvaluator(model)
        pi, pj = neighbor_pairs(water_sys, model.config.rcut)
        engine.evaluate_batch([water_sys], [(pi, pj)])
        plan = engine.plan
        cap = 8 * plan.max_arenas
        for n in range(cap + 5):
            plan.feed_buffer(("churn", n), (4,))
        assert len(plan._feed_store) <= cap
        assert plan.stats.feed_evictions > 0
        assert plan.feed_nbytes == sum(
            b.nbytes for b in plan._feed_store.values()
        )
        # Evaluation still works (evicted buffers re-warm transparently).
        res = engine.evaluate_batch([water_sys], [(pi, pj)])[0]
        assert_result_bitwise(res, model.evaluate_serial(water_sys, pi, pj))

    def test_scratch_and_fmt_caches_bounded_under_rebuild_churn(self, model):
        """Migration-heavy runs re-key the stacked staging buffers on every
        reneighboring; both engine-side caches must stay bounded (FIFO),
        mirroring the plan's arena/feed caps."""
        engine = BatchedEvaluator(model)
        engine.scratch.max_entries = 24
        engine.max_fmt_layouts = 4
        base = water_box((3, 3, 3), seed=0)
        rng = np.random.default_rng(0)
        for k in range(8):
            # Vary the atom count so every shape key is fresh (the ghost
            # split drifts like this on real migrations).
            sys_k = base.copy()
            keep = rng.permutation(base.n_atoms)[: base.n_atoms - 2 * k]
            sys_k.positions = sys_k.positions[np.sort(keep)]
            sys_k.types = sys_k.types[np.sort(keep)]
            pi, pj = neighbor_pairs(sys_k, model.config.rcut)
            res = engine.evaluate_batch([sys_k], [(pi, pj)])[0]
            ref = model.evaluate_serial(sys_k, pi, pj)
            assert_result_bitwise(res, ref)
        assert len(engine.scratch._arrays) <= engine.scratch.max_entries
        assert len(engine._fmts) <= engine.max_fmt_layouts
        assert engine.scratch.evictions > 0
        assert engine.fmt_evictions > 0

    def test_release_buffers_clears_feed_store(self, model, water_sys):
        engine = BatchedEvaluator(model)
        pi, pj = neighbor_pairs(water_sys, model.config.rcut)
        engine.evaluate_batch([water_sys], [(pi, pj)])
        assert engine.plan.feed_nbytes > 0
        engine.release_buffers()
        assert engine.plan.feed_nbytes == 0
        res = engine.evaluate_batch([water_sys], [(pi, pj)])[0]
        assert_result_bitwise(res, model.evaluate_serial(water_sys, pi, pj))


class TestDriversShareTheSeam:
    def test_pair_style_routes_through_backend(self, model, water_sys):
        pair = DeepPotPair(model)
        pi, pj = neighbor_pairs(water_sys, model.config.rcut)
        before = pair.force_backend.engine.bucket_evaluations
        res = pair.compute(water_sys, pi, pj)
        assert pair.force_backend.engine.bucket_evaluations == before + 1
        assert_result_bitwise(res, model.evaluate_serial(water_sys, pi, pj))

    def test_pair_compute_batch_buckets_mixed_boxes(self, model, water_sys):
        pair = DeepPotPair(model)
        small = water_box((3, 3, 3), seed=3)
        frames = [water_sys, small]
        pls = [neighbor_pairs(s, model.config.rcut) for s in frames]
        out = pair.compute_batch(frames, pls)
        for s, (pi, pj), got in zip(frames, pls, out):
            assert_result_bitwise(got, model.evaluate_serial(s, pi, pj))

    def test_distributed_bucketed_matches_per_rank_oracle(self, model, water_sys):
        boltzmann_velocities(water_sys, 250.0, seed=2)
        kw = dict(grid=(2, 2, 1), dt=0.0005, skin=1.0, rebuild_every=4)
        a = DistributedSimulation(water_sys.copy(), model, **kw)
        b = DistributedSimulation(
            water_sys.copy(), model, force_path="per-rank", **kw
        )
        a.run(8)
        b.run(8)
        ga, gb = a.current_system(), b.current_system()
        assert np.array_equal(ga.positions, gb.positions)
        assert np.array_equal(ga.velocities, gb.velocities)
        assert np.array_equal(a.forces_now(), b.forces_now())
        assert [t for t in a.thermo] == [t for t in b.thermo]

    def test_bad_force_path_rejected(self, model, water_sys):
        with pytest.raises(ValueError, match="force_path"):
            DistributedSimulation(water_sys.copy(), model, force_path="magic")
