"""Compiled execution plans — tfmini's steady-shape fast path.

``Session.run`` pays a set of fixed costs on every call: a full
:func:`~repro.tfmini.graph.topo_sort` of the fetched DAG, an id-keyed dict
lookup per node input, and a fresh output allocation for every operator.
Those are exactly the per-step fixed costs the paper removes from the TF
execution graph (Sec 5.3 fusions, Table 3 custom ops), and in an MD loop
they are pure waste: the graph never changes and — because MD shapes are
steady — neither do the tensor shapes.

:func:`compile_plan` pays the graph traversal ONCE, flattening the DAG into
a dense tape of records ``(forward, input_slots, attrs, out_slot)`` indexed
by integer *slots* (positions in the topological order).  Executing the plan
is a single flat loop over the tape — no sorting, no dict-by-id, no
isinstance dispatch per node.

Because shapes are steady, the plan also owns a :class:`BufferArena` per
feed-shape signature: persistent per-record output buffers handed to the
destination-passing (``out=``) kernel variants registered in
:mod:`repro.tfmini.ops`.  A liveness pass recycles the buffer of a value
whose last consumer has run for later records with the same shape and dtype,
so the arena is smaller than the live set of the naive executor.  Ops
without an ``out=`` kernel fall back to allocate-and-copy-into-slot (the
slot buffer stays stable; only the op's own temporary churns), and a small
set of *aliasing* ops (``reshape``, ``item``, ...) whose outputs share their
input's storage are executed as-is with their storage lifetimes unioned so
recycling can never clobber a live view.

When a feed arrives with a new shape signature the plan re-plans
automatically: one extra "warm" run executes through the plain kernels,
records every output's shape/dtype, and builds a fresh arena for that
signature.  Previously-seen signatures keep their warm arenas, so drivers
alternating between batch shapes (R=1 MD steps interleaved with R=8 serving
batches) stop allocating once each shape has been seen — the same policy as
:class:`repro.dp.batch.ScratchPool`, now applied inside the executor.

Numerical contract: a plan run is **bitwise identical** to ``Session.run``
on the same fetches and feeds — every ``out=`` kernel reproduces its
allocating twin bit-for-bit, and the tape preserves ``Session.run``'s
execution order.  ``Session.run`` remains the reference oracle
(``tests/test_tfmini_plan.py`` asserts the correspondence across the model
zoo, fused and unfused graphs, batched evaluation, and a training step).

Profiling: pass the owning :class:`~repro.tfmini.executor.Session` to
:meth:`ExecutionPlan.run`; when ``session.profile`` is set the plan records
per-operator wall time, FLOPs and bytes into ``session.stats`` exactly like
``Session.run`` — the Fig-3 operator breakdown works unchanged on planned
execution.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Optional, Sequence

import numpy as np

from repro.tfmini.executor import _result_nbytes
from repro.tfmini.graph import Node, Variable, topo_sort
from repro.tfmini.ops import get_op, op_flops

_INF = 1 << 62

# Execution modes for tape records.
_MODE_OUT = 0  # destination-passing kernel into an arena buffer
_MODE_COPY = 1  # allocating kernel, result copied into a stable arena buffer
_MODE_ALIAS = 2  # output shares the input's storage; run as-is, union lifetimes

# Ops whose forward may return a view of (or exactly) one of its inputs.
# They keep their zero-copy behavior under plans; the liveness pass unions
# their storage with their inputs' so a live view is never recycled over.
# Third-party view-producing ops can be added via :func:`mark_alias_op`;
# unknown ops default to the copy fallback, which is alias-safe by
# construction (values are copied out of whatever the op returned).
ALIAS_OPS = {"reshape", "reshape_like", "item", "reduce_to_shape"}


def mark_alias_op(name: str) -> None:
    """Declare that op ``name`` may return a view of an input.

    Affects plans compiled afterwards; already-compiled plans keep their
    tape.
    """
    ALIAS_OPS.add(name)


@dataclass
class PlanStats:
    """Deterministic counters the plan tests and benchmarks assert on."""

    topo_sorts: int = 0  # graph traversals performed (1 per compile)
    arena_builds: int = 0  # warm runs: first sight of a feed-shape signature
    arena_evictions: int = 0  # warm arenas dropped by the max_arenas cap
    runs: int = 0  # total executions, warm and steady
    feed_allocs: int = 0  # plan-owned feed staging buffers allocated
    feed_evictions: int = 0  # feed buffers dropped by the store cap
    in_place_feeds: int = 0  # run feeds already staged in plan feed buffers


class _Record:
    """One operator application on the flattened tape."""

    __slots__ = (
        "node",
        "op",
        "forward",
        "forward_out",
        "input_slots",
        "attrs",
        "out_slot",
        "mode",
    )

    def __init__(self, node, forward, forward_out, input_slots, attrs, out_slot, mode):
        self.node = node
        self.op = node.op
        self.forward = forward
        self.forward_out = forward_out
        self.input_slots = input_slots
        self.attrs = attrs
        self.out_slot = out_slot
        self.mode = mode


class BufferArena:
    """Persistent per-record output buffers for one feed-shape signature.

    ``buffers[i]`` is the destination for tape record ``i``: an ndarray, a
    tuple of ndarrays (multi-output kernels like ``tanh_fused``), or ``None``
    for alias records and exotic outputs.  ``alloc_count``/``alloc_bytes``
    only ever grow at build time — a warmed plan performs zero arena
    allocations, which the benchmarks assert deterministically.
    """

    __slots__ = ("signature", "buffers", "alloc_count", "alloc_bytes")

    def __init__(self, signature):
        self.signature = signature
        self.buffers: list = []
        self.alloc_count = 0
        self.alloc_bytes = 0

    def _new(self, shape, dtype):
        buf = np.empty(shape, dtype)
        self.alloc_count += 1
        self.alloc_bytes += buf.nbytes
        return buf


class ExecutionPlan:
    """A compiled, slot-indexed execution tape for fixed (fetches, feeds).

    Parameters
    ----------
    fetches:
        Node or sequence of nodes to evaluate (same convention as
        ``Session.run``; a single node yields a single result).
    feed_nodes:
        The nodes whose values are supplied per run, in the positional order
        :meth:`run_list` expects.  Every reachable placeholder must be
        listed; extra entries that the fetches never touch are ignored.
    copy_fetches:
        When True (default) fetched arrays are copied out of the arena, so
        results stay valid forever.  Hot-path consumers that consume results
        before the next run pass False and skip the copies — fetched arrays
        are then views of arena buffers, valid until the next ``run``.
    max_arenas:
        Cap on warm arenas held at once (default 32).  A workload cycling
        through more shape signatures than this evicts the oldest arena
        (FIFO) and re-warms it on revisit — bounding resident memory for
        servers whose micro-batch occupancy varies freely.  Steady
        workloads never hit the cap.
    verify:
        Run the static plan verifier (:mod:`repro.analysis.plancheck`)
        structural checks at compile time and raise
        ``PlanVerificationError`` on any finding.  ``None`` (default)
        defers to the ``REPRO_VERIFY_PLANS`` environment variable, so a
        whole test run or CI job can be hardened without touching call
        sites.

    A plan owns mutable run state (the slot value table and the arenas), so
    a single plan must not be run from two threads at once — one plan per
    driver, like the batched engine's scratch pool.  The serving pool
    satisfies this by construction: every worker thread owns its engines
    (and therefore their plans) exclusively, and ``BatchedEvaluator``
    raises on concurrent entry.  *Different* plans may run on different
    threads concurrently — the tape's kernels spend most of their time in
    GIL-releasing BLAS/ufunc calls, which is exactly what the multi-worker
    serving pool overlaps.  The counter accessors below (``alloc_count``,
    ``arena_nbytes``) stay safe to call from a monitoring thread.
    """

    def __init__(
        self,
        fetches: Sequence[Node] | Node,
        feed_nodes: Sequence[Node],
        copy_fetches: bool = True,
        max_arenas: int = 32,
        verify: Optional[bool] = None,
    ):
        self._single = isinstance(fetches, Node)
        fetch_list: list[Node] = [fetches] if self._single else list(fetches)
        self._copy_fetches = copy_fetches
        self.max_arenas = max(int(max_arenas), 1)
        self.stats = PlanStats()

        order = topo_sort(fetch_list)
        self.stats.topo_sorts += 1
        n_slots = len(order)
        slot_of = {id(n): i for i, n in enumerate(order)}
        self._n_slots = n_slots
        self._values: list = [None] * n_slots
        self._fetch_slots = [slot_of[id(f)] for f in fetch_list]

        feed_ids = {id(n) for n in feed_nodes}
        self._feed_nodes = list(feed_nodes)
        self._feed_slots = [slot_of.get(id(n), -1) for n in feed_nodes]

        self._var_slots: list[tuple[int, Variable]] = []
        self._const_slots: list[tuple[int, np.ndarray]] = []
        records: list[_Record] = []
        for i, node in enumerate(order):
            if id(node) in feed_ids:
                continue
            if isinstance(node, Variable):
                self._var_slots.append((i, node))
                continue
            if node.op == "constant":
                self._values[i] = node.attrs["value"]
                self._const_slots.append((i, node.attrs["value"]))
                continue
            if node.op == "placeholder":
                raise KeyError(
                    f"placeholder '{node.name}' is reachable from the fetches "
                    f"but not listed in feed_nodes"
                )
            opdef = get_op(node.op)
            if node.op in ALIAS_OPS:
                mode = _MODE_ALIAS
            elif opdef.forward_out is not None:
                mode = _MODE_OUT
            else:
                mode = _MODE_COPY
            records.append(
                _Record(
                    node,
                    opdef.forward,
                    opdef.forward_out,
                    tuple(slot_of[id(inp)] for inp in node.inputs),
                    node.attrs,
                    i,
                    mode,
                )
            )
        self._records = records

        # --- liveness: last tape position reading each slot ---------------
        last_use = [-1] * n_slots
        for r_idx, rec in enumerate(records):
            for s in rec.input_slots:
                last_use[s] = r_idx  # records iterate in ascending order
        for s in self._fetch_slots:
            last_use[s] = _INF

        # Storage groups: alias outputs share their inputs' storage, so a
        # group dies only when its *last* member does.
        parent = list(range(n_slots))

        def find(s: int) -> int:
            while parent[s] != s:
                parent[s] = parent[parent[s]]
                s = parent[s]
            return s

        for rec in records:
            if rec.mode == _MODE_ALIAS:
                root = find(rec.out_slot)
                for s in rec.input_slots:
                    parent[find(s)] = root
        death: dict[int, int] = {}
        for s in range(n_slots):
            r = find(s)
            d = last_use[s]
            if d > death.get(r, -1):
                death[r] = d
        self._find = find
        self._death = death

        self._arenas: dict[tuple, BufferArena] = {}
        # Plan-owned feed staging buffers (the "arena-aware batched engine"
        # seam): callers stage feed values directly into these persistent
        # slots instead of a second scratch pool, so one pool serves both
        # the staging side and the execution side.  Keyed by an arbitrary
        # caller key + shape + dtype, like ScratchPool; id-indexed so
        # ``run_list`` can count in-place feeds without hashing arrays.
        self._feed_store: dict[tuple, np.ndarray] = {}
        self._feed_ids: set[int] = set()
        self.feed_nbytes = 0

        if verify is None:
            verify = os.environ.get("REPRO_VERIFY_PLANS", "") not in ("", "0")
        if verify:
            self.verify(raise_on_findings=True)

    # ------------------------------------------------------------------ info

    def verify(self, spec=None, check_values: bool = False,
               raise_on_findings: bool = False):
        """Statically verify this plan; returns a ``PlanReport``.

        Structural soundness (liveness, alias groups, arena reuse, fetch
        pinning — rules P101–P105) is always checked.  Pass a feed ``spec``
        (``{feed node or name: FeedSpec}``, see
        :func:`repro.analysis.plancheck.dp_feed_spec`) to also run symbolic
        shape/dtype inference over the tape (P106–P108);
        ``check_values=True`` additionally compares inferred shapes/dtypes
        against the concrete arrays of the most recent run.
        """
        from repro.analysis.plancheck import PlanVerificationError, verify_plan

        report = verify_plan(self, spec=spec, check_values=check_values)
        if raise_on_findings and not report.ok:
            raise PlanVerificationError(report)
        return report

    def storage_root(self, slot: int) -> int:
        """Representative slot of ``slot``'s storage group (alias union)."""
        return self._find(slot)

    def death_index(self, slot: int) -> int:
        """Last tape index reading ``slot``'s storage group (``1 << 62`` =
        pinned forever, ``-1`` = never read)."""
        return self._death.get(self._find(slot), -1)

    @property
    def n_records(self) -> int:
        return len(self._records)

    @property
    def arenas(self) -> dict[tuple, BufferArena]:
        return self._arenas

    def alloc_count(self) -> int:
        """Total arena buffer allocations across all shape signatures.

        Safe to call from a monitoring thread while the owning thread runs
        the plan: the arena table is snapshotted (atomic under the GIL)
        before summing.
        """
        return sum(a.alloc_count for a in list(self._arenas.values()))

    def arena_nbytes(self) -> int:
        return sum(a.alloc_bytes for a in list(self._arenas.values()))

    def feed_buffer(self, key, shape: tuple, dtype=np.float64) -> np.ndarray:
        """Persistent plan-owned staging destination for a feed value.

        The batched engine stages its sorted feed tensors directly into
        these slots (``np.take(..., out=plan.feed_buffer(...))``) instead of
        into a separate scratch pool, unifying feed staging with the plan's
        storage — the first slice of the ROADMAP "arena-aware batched
        engine" item.  Buffers are keyed ``(key, shape, dtype)`` and
        allocated once per distinct shape (``stats.feed_allocs``); a value
        passed to :meth:`run_list` that *is* one of these buffers (or a view
        of one) counts toward ``stats.in_place_feeds``.

        The store is bounded like the arenas: beyond ``8 * max_arenas``
        buffers the oldest is dropped (FIFO, ``stats.feed_evictions``) and
        re-allocated on revisit, so free-form shape churn — a server whose
        batch occupancy varies, a migration-heavy distributed run — cannot
        grow resident memory without bound.  Steady workloads (a handful of
        feed shapes) never hit the cap.

        Like the arenas, feed buffers are single-threaded run state —
        callers stage and run from the one thread that owns the plan.
        """
        store_key = (key, tuple(shape), np.dtype(dtype))
        buf = self._feed_store.get(store_key)
        if buf is None:
            buf = np.empty(shape, dtype)
            while len(self._feed_store) >= 8 * self.max_arenas:
                # FIFO eviction, same policy as the arena cap.
                old = self._feed_store.pop(next(iter(self._feed_store)))
                self._feed_ids.discard(id(old))
                self.feed_nbytes -= old.nbytes
                self.stats.feed_evictions += 1
            self._feed_store[store_key] = buf
            self._feed_ids.add(id(buf))
            self.stats.feed_allocs += 1
            self.feed_nbytes += buf.nbytes
        return buf

    def release_arenas(self) -> None:
        """Drop every buffer arena and feed staging buffer (the compiled
        tape is kept).

        The arena holds roughly the graph's peak live set *persistently*;
        long-lived processes that are done with a shape regime (or want to
        hand the memory back before measuring something allocation-
        sensitive) release here and re-warm on the next run.  ``stats``
        counters are cumulative and unaffected; ``alloc_count()`` restarts
        from zero.
        """
        self._arenas.clear()
        self._feed_store.clear()
        self._feed_ids.clear()
        self.feed_nbytes = 0
        self._values = [None] * self._n_slots
        for slot, value in self._const_slots:
            self._values[slot] = value

    # ------------------------------------------------------------------ run

    def run(self, feeds: Optional[dict] = None, session=None):
        """Evaluate the fetches; mirrors ``Session.run(fetches, feeds)``.

        ``session`` (optional) supplies profiling: when ``session.profile``
        is set, per-operator stats are recorded into ``session.stats``.
        """
        feeds = feeds or {}
        vals = []
        for node, slot in zip(self._feed_nodes, self._feed_slots):
            if slot < 0:
                vals.append(None)
                continue
            try:
                vals.append(feeds[node])
            except KeyError:
                raise KeyError(
                    f"plan feed '{node.name}' missing from feeds"
                ) from None
        return self.run_list(vals, session=session)

    def run_list(self, feed_values: Sequence, session=None):
        """Evaluate with feed values positionally matching ``feed_nodes``."""
        if len(feed_values) != len(self._feed_slots):
            # Without this, zip truncation would silently reuse the previous
            # run's array for the missing feed — wrong results, no exception.
            raise ValueError(
                f"plan expects {len(self._feed_slots)} feed values "
                f"(got {len(feed_values)})"
            )
        values = self._values
        feed_ids = self._feed_ids
        in_place = 0
        sig = []
        for slot, v in zip(self._feed_slots, feed_values):
            if slot < 0:
                continue
            if type(v) is not np.ndarray:
                v = np.asarray(v)
            elif id(v) in feed_ids or id(v.base) in feed_ids:
                # Already staged into a plan-owned feed slot (or a view of
                # one) — the caller paid no extra staging copy for it.
                in_place += 1
            values[slot] = v
            # Tiny integer feeds are shape *parameters* (e.g. the DP graph's
            # ``natoms``: ProdForce's output row count), so they join the
            # signature by value — same-shaped feeds with a different count
            # must not share an arena.
            if v.dtype.kind in "iu" and v.size <= 4:
                sig.append((v.shape, v.dtype, v.tobytes()))
            else:
                sig.append((v.shape, v.dtype))
        for slot, var in self._var_slots:
            values[slot] = var.value
        signature = tuple(sig)
        self.stats.in_place_feeds += in_place

        profile = session is not None and session.profile
        arena = self._arenas.get(signature)
        if arena is None:
            self._warm_run(profile, session)
            while len(self._arenas) >= self.max_arenas:
                # FIFO eviction: drop the oldest warm arena (re-warms on
                # revisit) so free-form signature churn can't grow memory
                # without bound.
                self._arenas.pop(next(iter(self._arenas)))
                self.stats.arena_evictions += 1
            self._arenas[signature] = self._build_arena(signature)
            self.stats.arena_builds += 1
        elif profile:
            self._steady_run_profiled(arena, session)
        else:
            self._steady_run(arena)
        self.stats.runs += 1

        outs = [values[s] for s in self._fetch_slots]
        if self._copy_fetches:
            outs = [
                tuple(e.copy() for e in o)
                if isinstance(o, tuple)
                else (o.copy() if isinstance(o, np.ndarray) else o)
                for o in outs
            ]
        return outs[0] if self._single else outs

    # ----------------------------------------------------------- execution

    def _warm_run(self, profile: bool, session) -> None:
        """First run for a signature: plain kernels, shapes recorded."""
        values = self._values
        for rec in self._records:
            ins = [values[s] for s in rec.input_slots]
            if profile:
                t0 = time.perf_counter()
                out = rec.forward(ins, rec.attrs)
                dt = time.perf_counter() - t0
                session.stats.record(
                    rec.op, dt, op_flops(rec.node, ins, out), _result_nbytes(out)
                )
            else:
                out = rec.forward(ins, rec.attrs)
            values[rec.out_slot] = out

    def _build_arena(self, signature) -> BufferArena:
        """Assign (and recycle) persistent buffers from the warm run's shapes."""
        values = self._values
        arena = BufferArena(signature)
        buffers = arena.buffers
        pool: dict[tuple, list] = {}
        heap: list = []  # (death, r_idx, key, buffer)
        find, death = self._find, self._death
        for r_idx, rec in enumerate(self._records):
            while heap and heap[0][0] < r_idx:
                _, _, key, buf = heappop(heap)
                pool.setdefault(key, []).append(buf)
            if rec.mode == _MODE_ALIAS:
                buffers.append(None)
                continue
            val = values[rec.out_slot]
            if isinstance(val, np.ndarray):
                key = (val.shape, val.dtype)
            elif isinstance(val, tuple) and all(
                isinstance(e, np.ndarray) for e in val
            ):
                key = ("tuple",) + tuple((e.shape, e.dtype) for e in val)
            else:  # exotic output — leave unmanaged
                buffers.append(None)
                continue
            free = pool.get(key)
            if free:
                buf = free.pop()
            elif key[0] == "tuple":
                buf = tuple(arena._new(s, d) for s, d in key[1:])
            else:
                buf = arena._new(*key)
            buffers.append(buf)
            d = death[find(rec.out_slot)]
            if d < _INF:
                heappush(heap, (d, r_idx, key, buf))
        return arena

    def _steady_run(self, arena: BufferArena) -> None:
        """The hot loop: flat tape, slot indexing, arena destinations."""
        values = self._values
        for rec, buf in zip(self._records, arena.buffers):
            ins = [values[s] for s in rec.input_slots]
            if buf is None:
                values[rec.out_slot] = rec.forward(ins, rec.attrs)
            elif rec.mode == _MODE_OUT:
                rec.forward_out(ins, rec.attrs, buf)
                values[rec.out_slot] = buf
            else:  # _MODE_COPY
                out = rec.forward(ins, rec.attrs)
                if type(buf) is tuple:
                    for b, o in zip(buf, out):
                        np.copyto(b, o)
                else:
                    np.copyto(buf, out)
                values[rec.out_slot] = buf

    def _steady_run_profiled(self, arena: BufferArena, session) -> None:
        values = self._values
        stats = session.stats
        for rec, buf in zip(self._records, arena.buffers):
            ins = [values[s] for s in rec.input_slots]
            t0 = time.perf_counter()
            if buf is None:
                out = rec.forward(ins, rec.attrs)
            elif rec.mode == _MODE_OUT:
                rec.forward_out(ins, rec.attrs, buf)
                out = buf
            else:
                res = rec.forward(ins, rec.attrs)
                if type(buf) is tuple:
                    for b, o in zip(buf, res):
                        np.copyto(b, o)
                else:
                    np.copyto(buf, res)
                out = buf
            dt = time.perf_counter() - t0
            stats.record(rec.op, dt, op_flops(rec.node, ins, out), _result_nbytes(out))
            values[rec.out_slot] = out


def compile_plan(
    fetches: Sequence[Node] | Node,
    feed_nodes: Sequence[Node],
    copy_fetches: bool = True,
    max_arenas: int = 32,
    verify: Optional[bool] = None,
) -> ExecutionPlan:
    """Compile ``fetches`` into an :class:`ExecutionPlan`.

    Topo-sorts the DAG exactly once; every subsequent :meth:`ExecutionPlan.
    run` is a flat tape walk with persistent, liveness-recycled output
    buffers.  Results are bitwise identical to ``Session.run`` on the same
    fetches and feeds.  ``verify=True`` (or ``REPRO_VERIFY_PLANS=1``) runs
    the static plan verifier's structural checks before the plan is
    returned.
    """
    return ExecutionPlan(
        fetches,
        feed_nodes,
        copy_fetches=copy_fetches,
        max_arenas=max_arenas,
        verify=verify,
    )
