"""The serial MD driver: the loop the paper times as "MD loop time".

Reproduces the protocol of Sec 6.1: velocity-Verlet integration, neighbor
list with a 2 Å skin rebuilt every 50 steps, thermodynamic data recorded
every 20 steps, and wall-clock accounting split into setup time and loop
time (the paper's time-to-solution definition in Sec 6.3).

When the potential is a DP model (:class:`repro.dp.pair.DeepPotPair`), each
``compute`` call submits a one-frame workload to the shared
:class:`repro.dp.backend.ForceBackend` seam (an R=1 shape bucket on the
batched engine), so this single-replica driver, the multi-replica
:class:`repro.md.ensemble.EnsembleSimulation`, and the distributed drivers
in :mod:`repro.parallel` all execute the same evaluation layer with
bitwise-identical results; :meth:`Simulation.step_once` is the per-step
sequence the lockstep drivers replay per replica.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.md.deform import Deform
from repro.md.integrators import Integrator, VelocityVerlet
from repro.md.neighbor import NeighborList
from repro.md.potential import Potential, PotentialResult
from repro.md.system import System
from repro.md.thermo import ThermoLog, ThermoState


@dataclass
class Simulation:
    """Couples a system, a potential, an integrator and optional fixes.

    Usage::

        sim = Simulation(system, potential, dt=0.0005)  # 0.5 fs
        sim.run(500)
        print(sim.loop_seconds, sim.time_to_solution())
    """

    system: System
    potential: Potential
    dt: float = 0.001  # ps (paper: 0.5 fs water, 1 fs copper)
    integrator: Integrator = field(default_factory=VelocityVerlet)
    neighbor: Optional[NeighborList] = None
    thermo_every: int = 20
    deform: Optional[Deform] = None
    trajectory_every: int = 0  # 0 = do not store frames

    def __post_init__(self):
        if self.neighbor is None:
            self.neighbor = NeighborList(cutoff=self.potential.cutoff, skin=2.0)
        self.thermo = ThermoLog(every=self.thermo_every)
        self.trajectory: list[np.ndarray] = []
        self.step_count = 0
        self.loop_seconds = 0.0
        self.setup_seconds = 0.0
        self.force_evaluations = 0
        self._result: Optional[PotentialResult] = None

    # -- force bookkeeping ---------------------------------------------------

    def _evaluate(self) -> PotentialResult:
        res = self.potential.compute(self.system, self.neighbor.pair_i, self.neighbor.pair_j)
        self.force_evaluations += 1
        self._result = res
        return res

    def initialize(self) -> PotentialResult:
        """Build the neighbor list and evaluate initial forces ("setup time")."""
        t0 = time.perf_counter()
        self.neighbor.build(self.system, step=0)
        res = self._evaluate()
        self.setup_seconds += time.perf_counter() - t0
        return res

    # -- the MD loop -----------------------------------------------------------

    def step_once(self, callback: Optional[Callable] = None) -> PotentialResult:
        """One MD step: half-kick, fixes, rebuild check, forces, half-kick.

        The canonical per-step sequence — ``run`` loops over it, and
        :class:`repro.md.ensemble.EnsembleSimulation` replays it per replica
        around a fused force evaluation.
        """
        if self._result is None:
            self.initialize()
        forces = self._result.forces
        self.integrator.first_half(self.system, forces, self.dt)
        self.step_count += 1
        if self.deform is not None:
            self.deform.apply(self.system, self.step_count, self.dt)
        self.neighbor.maybe_rebuild(self.system, self.step_count)
        res = self._evaluate()
        self.integrator.second_half(self.system, res.forces, self.dt)
        self.thermo.maybe_record(
            self.system, res.energy, res.virial, self.step_count, self.dt
        )
        if self.trajectory_every and self.step_count % self.trajectory_every == 0:
            self.trajectory.append(self.system.positions.copy())
        if callback is not None:
            callback(self)
        return res

    def run(self, n_steps: int, callback: Optional[Callable] = None) -> ThermoLog:
        """Advance ``n_steps``; energies/forces are evaluated n_steps+1 times
        in total (matching the paper's "501 evaluations for 500 steps")."""
        if self._result is None:
            self.initialize()

        t0 = time.perf_counter()
        # Record the state at the starting step (LAMMPS logs step 0).
        self.thermo.maybe_record(
            self.system, self._result.energy, self._result.virial, self.step_count, self.dt
        )
        for _ in range(n_steps):
            self.step_once(callback)
        self.loop_seconds += time.perf_counter() - t0
        return self.thermo

    # -- the paper's metrics ---------------------------------------------------

    def time_to_solution(self) -> float:
        """Seconds per MD step per atom — the Table 1 metric."""
        if self.step_count == 0:
            return float("nan")
        return self.loop_seconds / self.step_count / self.system.n_atoms

    def last_result(self) -> PotentialResult:
        if self._result is None:
            raise RuntimeError("simulation not initialised")
        return self._result
