"""Exact-restart checkpointing for the MD drivers.

A checkpoint captures *everything* the step loop reads — positions,
velocities, box lengths, thermostat internals (Langevin RNG state,
Nosé-Hoover ``xi``), neighbor-list bookkeeping (pair lists, reference
positions, rebuild step), the last force evaluation, thermo rows, and the
step/evaluation counters — so a resumed trajectory is **bitwise identical**
to the uninterrupted run (``tests/test_checkpoint.py`` pins this for
:class:`~repro.md.simulation.Simulation`, :class:`~repro.md.ensemble.
EnsembleSimulation` and :class:`~repro.parallel.driver.
DistributedSimulation`).

File format (own minimal framing — ``np.savez`` embeds zip timestamps, so
its bytes are not reproducible, and the serving wire protocol lives above
this layer)::

    REPROCKPT1\\n
    <blake2b-128 hex of payload>\\n
    payload = u32 meta_len | meta JSON (utf-8) | raw array blob

The JSON meta carries structure (kind, counters, integrator state — RNG
states are exact integers, which JSON round-trips losslessly); every float
array travels as dtype/shape-tagged raw bytes, so restored numerics are
bitwise equal to what was saved.  Writes are atomic (temp file + fsync +
``os.replace``): a crash mid-write leaves the previous checkpoint intact,
and the checksum rejects torn or corrupted files at load time.

Restore protocol: the caller reconstructs the driver with the *same*
constructor arguments (model, dt, grid, integrator types/params — the code
is the schema), then :func:`restore_checkpoint` overwrites the mutable
state.  A checkpoint for a different system (atom types), timestep, or
driver kind is refused with :class:`CheckpointError`.

:class:`CheckpointWriter` is the trigger layer: a ``run(callback=...)``
callback that saves every N steps and, when armed via
:meth:`~CheckpointWriter.install_sigterm`, turns SIGTERM into
save-then-:class:`CheckpointInterrupt` — the graceful-kill path ``repro md
--checkpoint-dir`` uses.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from pathlib import Path
from typing import Optional

import numpy as np

from repro.md.potential import PotentialResult
from repro.md.thermo import ThermoState

MAGIC = b"REPROCKPT1\n"
FORMAT = 1

_U32 = struct.Struct("!I")


class CheckpointError(RuntimeError):
    """Unreadable, corrupt, or mismatched checkpoint."""


class CheckpointInterrupt(BaseException):
    """Raised out of the MD loop after a SIGTERM-triggered checkpoint.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so library
    code catching ``Exception`` cannot swallow the shutdown request.
    """


# ---------------------------------------------------------------------------
# payload pack / unpack
# ---------------------------------------------------------------------------


def _pack(meta: dict, arrays: dict[str, np.ndarray]) -> bytes:
    """u32 meta_len | meta JSON | concatenated raw array bytes."""
    specs: list = []
    parts: list[bytes] = []
    for name, value in arrays.items():
        arr = np.asarray(value)
        if not arr.flags["C_CONTIGUOUS"]:
            arr = np.ascontiguousarray(arr)
        specs.append([name, arr.dtype.str, list(arr.shape)])
        parts.append(arr.tobytes())
    head = dict(meta)
    head["arrays"] = specs
    head_bytes = json.dumps(head, separators=(",", ":")).encode("utf-8")
    return _U32.pack(len(head_bytes)) + head_bytes + b"".join(parts)


def _unpack(payload: bytes) -> tuple[dict, dict[str, np.ndarray]]:
    if len(payload) < 4:
        raise CheckpointError(f"truncated payload ({len(payload)} bytes)")
    (head_len,) = _U32.unpack_from(payload, 0)
    head_end = 4 + head_len
    if head_end > len(payload):
        raise CheckpointError("meta header overruns the payload")
    try:
        meta = json.loads(payload[4:head_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"bad meta header: {exc}") from None
    arrays: dict[str, np.ndarray] = {}
    offset = head_end
    for name, dtype_str, shape in meta.pop("arrays", []):
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dtype.itemsize
        if offset + nbytes > len(payload):
            raise CheckpointError(f"array {name!r} overruns the payload")
        arrays[name] = (
            np.frombuffer(payload, dtype=dtype, count=count, offset=offset)
            .reshape(shape)
            .copy()
        )
        offset += nbytes
    if offset != len(payload):
        raise CheckpointError(
            f"{len(payload) - offset} trailing bytes after the last array"
        )
    return meta, arrays


# ---------------------------------------------------------------------------
# file I/O (atomic write, checksummed read)
# ---------------------------------------------------------------------------


def _atomic_write(path: Path, data: bytes) -> None:
    """Write-to-temp + fsync + rename: readers never see a torn file."""
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_checkpoint(sim, path) -> Path:
    """Serialize ``sim`` (Simulation / EnsembleSimulation /
    DistributedSimulation) to ``path`` atomically; returns the path."""
    meta, arrays = checkpoint_state(sim)
    payload = _pack(meta, arrays)
    digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(path, MAGIC + digest.encode("ascii") + b"\n" + payload)
    return path


def load_checkpoint(path) -> tuple[dict, dict[str, np.ndarray]]:
    """Read + verify a checkpoint file; returns ``(meta, arrays)``."""
    data = Path(path).read_bytes()
    if not data.startswith(MAGIC):
        raise CheckpointError(f"{path}: not a repro checkpoint (bad magic)")
    rest = data[len(MAGIC):]
    nl = rest.find(b"\n")
    if nl < 0:
        raise CheckpointError(f"{path}: truncated checksum header")
    expected = rest[:nl].decode("ascii", errors="replace")
    payload = rest[nl + 1:]
    actual = hashlib.blake2b(payload, digest_size=16).hexdigest()
    if actual != expected:
        raise CheckpointError(
            f"{path}: checksum mismatch ({actual} != {expected}) — "
            f"the file is corrupt or was torn mid-write"
        )
    meta, arrays = _unpack(payload)
    if meta.get("format") != FORMAT:
        raise CheckpointError(
            f"{path}: format {meta.get('format')} != {FORMAT}"
        )
    return meta, arrays


def restore_checkpoint(sim, path):
    """Load ``path`` and restore its state into ``sim`` (constructed with
    the same arguments as the checkpointed driver); returns ``sim``."""
    meta, arrays = load_checkpoint(path)
    restore_state(sim, meta, arrays)
    return sim


# ---------------------------------------------------------------------------
# per-component helpers
# ---------------------------------------------------------------------------


def _integrator_state(integ) -> dict:
    from repro.md.integrators import Langevin, NoseHoover

    if isinstance(integ, Langevin):
        # bit_generator.state is a JSON-safe dict of exact integers.
        return {"kind": "Langevin", "rng": integ._rng.bit_generator.state}
    if isinstance(integ, NoseHoover):
        return {"kind": "NoseHoover", "xi": integ.xi}
    return {"kind": type(integ).__name__}


def _restore_integrator(integ, state: dict) -> None:
    from repro.md.integrators import Langevin, NoseHoover

    kind = state.get("kind")
    if kind != type(integ).__name__:
        raise CheckpointError(
            f"integrator mismatch: checkpoint has {kind}, "
            f"driver has {type(integ).__name__}"
        )
    if isinstance(integ, Langevin):
        integ._rng.bit_generator.state = state["rng"]
    elif isinstance(integ, NoseHoover):
        integ.xi = float(state["xi"])


def _neighbor_state(nl, prefix: str, arrays: dict) -> dict:
    meta = {
        "n_builds": nl.n_builds,
        "last_build_step": nl._last_build_step,
        "has_pairs": nl.pair_i is not None,
        "has_ref": nl._ref_positions is not None,
    }
    if nl.pair_i is not None:
        arrays[prefix + "pair_i"] = nl.pair_i
        arrays[prefix + "pair_j"] = nl.pair_j
    if nl._ref_positions is not None:
        arrays[prefix + "ref_positions"] = nl._ref_positions
        arrays[prefix + "ref_box"] = nl._ref_box
    return meta


def _restore_neighbor(nl, prefix: str, arrays: dict, meta: dict) -> None:
    nl.n_builds = int(meta["n_builds"])
    nl._last_build_step = int(meta["last_build_step"])
    if meta["has_pairs"]:
        nl.pair_i = arrays[prefix + "pair_i"]
        nl.pair_j = arrays[prefix + "pair_j"]
    if meta["has_ref"]:
        nl._ref_positions = arrays[prefix + "ref_positions"]
        nl._ref_box = arrays[prefix + "ref_box"]


def _result_arrays(res, prefix: str, arrays: dict) -> None:
    arrays[prefix + "energy"] = np.float64(res.energy)
    arrays[prefix + "forces"] = res.forces
    arrays[prefix + "virial"] = np.asarray(res.virial, dtype=np.float64)
    if res.atom_energies is not None:
        arrays[prefix + "atom_energies"] = res.atom_energies


def _build_result(prefix: str, arrays: dict) -> PotentialResult:
    return PotentialResult(
        energy=float(arrays[prefix + "energy"]),
        forces=arrays[prefix + "forces"],
        virial=arrays[prefix + "virial"],
        atom_energies=arrays.get(prefix + "atom_energies"),
    )


def _thermo_rows_array(rows) -> np.ndarray:
    if not rows:
        return np.zeros((0, 7))
    return np.array([r.as_tuple() for r in rows], dtype=np.float64)


def _build_thermo_rows(arr: np.ndarray) -> list[ThermoState]:
    return [
        ThermoState(int(r[0]), *(float(v) for v in r[1:])) for r in arr
    ]


def _check_system(sim_types: np.ndarray, ck_types: np.ndarray) -> None:
    if not np.array_equal(sim_types, ck_types):
        raise CheckpointError(
            "checkpoint is for a different system (atom types differ)"
        )


# ---------------------------------------------------------------------------
# per-driver state capture / restore
# ---------------------------------------------------------------------------


def checkpoint_state(sim) -> tuple[dict, dict[str, np.ndarray]]:
    """``(meta, arrays)`` for any supported driver.

    Dispatch is by type *name* so this module never imports
    :mod:`repro.parallel` at module scope (parallel imports md, not the
    other way around).
    """
    kind = type(sim).__name__
    if kind == "Simulation":
        return _simulation_state(sim)
    if kind == "EnsembleSimulation":
        return _ensemble_state(sim)
    if kind == "DistributedSimulation":
        return _distributed_state(sim)
    raise CheckpointError(f"cannot checkpoint a {kind}")


def restore_state(sim, meta: dict, arrays: dict) -> None:
    """Overwrite ``sim``'s mutable state from ``(meta, arrays)``."""
    kind = type(sim).__name__
    if meta.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint holds a {meta.get('kind')}, driver is a {kind}"
        )
    if kind == "Simulation":
        _restore_simulation(sim, meta, arrays)
    elif kind == "EnsembleSimulation":
        _restore_ensemble(sim, meta, arrays)
    elif kind == "DistributedSimulation":
        _restore_distributed(sim, meta, arrays)
    else:
        raise CheckpointError(f"cannot restore a {kind}")


# -- serial Simulation ------------------------------------------------------


def _simulation_state(sim):
    arrays: dict[str, np.ndarray] = {
        "positions": sim.system.positions,
        "velocities": sim.system.velocities,
        "box": sim.system.box.lengths,
        "types": sim.system.types,
        "thermo_rows": _thermo_rows_array(sim.thermo.rows),
    }
    meta = {
        "format": FORMAT,
        "kind": "Simulation",
        "dt": sim.dt,
        "step_count": sim.step_count,
        "force_evaluations": sim.force_evaluations,
        "loop_seconds": sim.loop_seconds,
        "setup_seconds": sim.setup_seconds,
        "has_result": sim._result is not None,
        "trajectory_frames": len(sim.trajectory),
        "neighbor": _neighbor_state(sim.neighbor, "nl_", arrays),
        "integrator": _integrator_state(sim.integrator),
        "deform_has_initial": (
            sim.deform is not None
            and sim.deform._initial_length is not None
        ),
    }
    if sim._result is not None:
        _result_arrays(sim._result, "res_", arrays)
    if sim.trajectory:
        arrays["trajectory"] = np.stack(sim.trajectory)
    if meta["deform_has_initial"]:
        arrays["deform_initial_length"] = np.float64(
            sim.deform._initial_length
        )
    return meta, arrays


def _restore_simulation(sim, meta, arrays):
    _check_system(sim.system.types, arrays["types"])
    if float(meta["dt"]) != sim.dt:
        raise CheckpointError(
            f"dt mismatch: checkpoint {meta['dt']}, driver {sim.dt}"
        )
    sim.system.box.lengths[:] = arrays["box"]
    sim.system.positions = arrays["positions"]
    sim.system.velocities = arrays["velocities"]
    sim.step_count = int(meta["step_count"])
    sim.force_evaluations = int(meta["force_evaluations"])
    sim.loop_seconds = float(meta["loop_seconds"])
    sim.setup_seconds = float(meta["setup_seconds"])
    sim.thermo.rows = _build_thermo_rows(arrays["thermo_rows"])
    sim.trajectory = (
        [f.copy() for f in arrays["trajectory"]]
        if meta["trajectory_frames"]
        else []
    )
    _restore_neighbor(sim.neighbor, "nl_", arrays, meta["neighbor"])
    _restore_integrator(sim.integrator, meta["integrator"])
    sim._result = _build_result("res_", arrays) if meta["has_result"] else None
    if meta["deform_has_initial"]:
        sim.deform._initial_length = float(arrays["deform_initial_length"])


# -- replica ensemble -------------------------------------------------------


def _ensemble_state(sim):
    arrays: dict[str, np.ndarray] = {}
    neighbors = []
    for k, (system, nl) in enumerate(zip(sim.systems, sim.neighbors)):
        p = f"r{k}_"
        arrays[p + "positions"] = system.positions
        arrays[p + "velocities"] = system.velocities
        arrays[p + "box"] = system.box.lengths
        arrays[p + "types"] = system.types
        arrays[p + "thermo_rows"] = _thermo_rows_array(sim.thermo[k].rows)
        neighbors.append(_neighbor_state(nl, p + "nl_", arrays))
        if sim._results is not None:
            _result_arrays(sim._results[k], p + "res_", arrays)
    meta = {
        "format": FORMAT,
        "kind": "EnsembleSimulation",
        "dt": sim.dt,
        "n_replicas": sim.n_replicas,
        "step_count": sim.step_count,
        "force_evaluations": sim.force_evaluations,
        "loop_seconds": sim.loop_seconds,
        "setup_seconds": sim.setup_seconds,
        "has_results": sim._results is not None,
        "neighbors": neighbors,
        "integrators": [_integrator_state(i) for i in sim.integrators],
    }
    return meta, arrays


def _restore_ensemble(sim, meta, arrays):
    if int(meta["n_replicas"]) != sim.n_replicas:
        raise CheckpointError(
            f"replica count mismatch: checkpoint {meta['n_replicas']}, "
            f"driver {sim.n_replicas}"
        )
    if float(meta["dt"]) != sim.dt:
        raise CheckpointError(
            f"dt mismatch: checkpoint {meta['dt']}, driver {sim.dt}"
        )
    results: Optional[list] = [] if meta["has_results"] else None
    for k, (system, nl) in enumerate(zip(sim.systems, sim.neighbors)):
        p = f"r{k}_"
        _check_system(system.types, arrays[p + "types"])
        system.box.lengths[:] = arrays[p + "box"]
        system.positions = arrays[p + "positions"]
        system.velocities = arrays[p + "velocities"]
        sim.thermo[k].rows = _build_thermo_rows(arrays[p + "thermo_rows"])
        _restore_neighbor(nl, p + "nl_", arrays, meta["neighbors"][k])
        _restore_integrator(sim.integrators[k], meta["integrators"][k])
        if results is not None:
            results.append(_build_result(p + "res_", arrays))
    sim._results = results
    sim.step_count = int(meta["step_count"])
    sim.force_evaluations = int(meta["force_evaluations"])
    sim.loop_seconds = float(meta["loop_seconds"])
    sim.setup_seconds = float(meta["setup_seconds"])


# -- domain-decomposed driver ----------------------------------------------


def _distributed_state(sim):
    # Pending iallreduce handles hold values already computed at call time;
    # resolving them now appends the same rows FIFO order would, so the
    # flush is bitwise-neutral (and between run() calls it is a no-op).
    sim._flush_pending_thermo()
    arrays: dict[str, np.ndarray] = {
        "positions": sim.system.positions,
        "velocities": sim.system.velocities,
        "box": sim.system.box.lengths,
        "types": sim.system.types,
        "thermo_rows": _thermo_rows_array(sim.thermo),
        "rank_energy": sim._rank_energy,
        "rank_virial": sim._rank_virial,
    }
    for dom in sim.decomp.domains:
        p = f"d{dom.rank}_"
        arrays[p + "global_idx"] = dom.global_idx
        arrays[p + "positions"] = dom.positions
        arrays[p + "velocities"] = dom.velocities
        arrays[p + "types"] = dom.types
        arrays[p + "forces"] = dom.forces
        arrays[p + "ghost_positions"] = dom.ghost_positions
        arrays[p + "ghost_types"] = dom.ghost_types
        arrays[p + "ref_positions"] = sim._ref_positions[dom.rank]
    batches = []
    for i, b in enumerate(sim.decomp._batches):
        batches.append([int(b.src), int(b.dst)])
        arrays[f"b{i}_src_indices"] = b.src_indices
        arrays[f"b{i}_shift"] = b.shift
    meta = {
        "format": FORMAT,
        "kind": "DistributedSimulation",
        "dt": sim.dt,
        "grid": list(sim.grid),
        "step_count": sim.step_count,
        "last_rebuild": sim._last_rebuild,
        "batches": batches,
    }
    return meta, arrays


def _restore_distributed(sim, meta, arrays):
    from repro.parallel.decomp import GhostBatch

    if tuple(meta["grid"]) != tuple(sim.grid):
        raise CheckpointError(
            f"grid mismatch: checkpoint {meta['grid']}, driver {sim.grid}"
        )
    if float(meta["dt"]) != sim.dt:
        raise CheckpointError(
            f"dt mismatch: checkpoint {meta['dt']}, driver {sim.dt}"
        )
    _check_system(sim.system.types, arrays["types"])
    sim.system.box.lengths[:] = arrays["box"]
    sim.system.positions = arrays["positions"]
    sim.system.velocities = arrays["velocities"]
    sim.decomp._make_domains(sim.system.box)
    ref_positions: dict[int, np.ndarray] = {}
    for dom in sim.decomp.domains:
        p = f"d{dom.rank}_"
        dom.global_idx = arrays[p + "global_idx"]
        dom.positions = arrays[p + "positions"]
        dom.velocities = arrays[p + "velocities"]
        dom.types = arrays[p + "types"]
        dom.forces = arrays[p + "forces"]
        dom.ghost_positions = arrays[p + "ghost_positions"]
        dom.ghost_types = arrays[p + "ghost_types"]
        ref_positions[dom.rank] = arrays[p + "ref_positions"]
    sim.decomp._batches = [
        GhostBatch(
            src=int(src),
            dst=int(dst),
            src_indices=arrays[f"b{i}_src_indices"],
            shift=arrays[f"b{i}_shift"],
        )
        for i, (src, dst) in enumerate(meta["batches"])
    ]
    sim._ref_positions = ref_positions
    sim._last_rebuild = int(meta["last_rebuild"])
    sim.step_count = int(meta["step_count"])
    sim._rank_energy = arrays["rank_energy"]
    sim._rank_virial = arrays["rank_virial"]
    sim._pending_thermo = []
    sim.thermo = _build_thermo_rows(arrays["thermo_rows"])
    if sim.force_backend is not None:
        # Constructed-then-restored frames have new identities; drop any
        # bucket partition the construction-time evaluation cached.
        sim.force_backend.invalidate_buckets()


# ---------------------------------------------------------------------------
# triggers: periodic interval + SIGTERM
# ---------------------------------------------------------------------------


class CheckpointWriter:
    """Periodic + on-SIGTERM checkpoint trigger.

    Use as a ``run(callback=...)`` callback (serial and ensemble drivers)
    or call it between ``run()`` chunks (the distributed driver has no
    callback hook)::

        writer = CheckpointWriter(sim, "ckpts", every=50).install_sigterm()
        try:
            sim.run(10_000, callback=writer)
        except CheckpointInterrupt:
            ...                      # checkpoint written; exit cleanly
        finally:
            writer.uninstall_sigterm()

    ``every=N`` saves whenever ``step_count`` is a multiple of N (0
    disables periodic saves).  :meth:`install_sigterm` registers a handler
    that only sets a flag (async-signal-safe); the *next step's* callback
    writes the checkpoint and raises :class:`CheckpointInterrupt`, so the
    file always captures a consistent between-steps state.
    """

    def __init__(self, sim, directory, every: int = 0,
                 filename: str = "ckpt.repro"):
        if every < 0:
            raise ValueError(f"every must be >= 0, got {every}")
        self.sim = sim
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / filename
        self.every = int(every)
        self.saves = 0
        self._signaled = False
        self._old_handler = None
        self._installed = False

    # -- signal plumbing --------------------------------------------------

    def install_sigterm(self) -> "CheckpointWriter":
        """Arm SIGTERM -> flag -> save + CheckpointInterrupt; returns self.

        Only valid from the main thread (a CPython ``signal`` constraint).
        """
        import signal

        self._old_handler = signal.signal(signal.SIGTERM, self._on_signal)
        self._installed = True
        return self

    def uninstall_sigterm(self) -> None:
        if self._installed:
            import signal

            signal.signal(signal.SIGTERM, self._old_handler)
            self._installed = False

    def _on_signal(self, signum, frame) -> None:
        self._signaled = True

    # -- the trigger -------------------------------------------------------

    @property
    def signaled(self) -> bool:
        return self._signaled

    def __call__(self, sim=None) -> None:
        """Per-step hook: periodic save, or SIGTERM save-and-interrupt."""
        if self._signaled:
            self.save()
            raise CheckpointInterrupt(
                f"SIGTERM: checkpoint written to {self.path} at step "
                f"{self.sim.step_count}"
            )
        if self.every and self.sim.step_count % self.every == 0:
            self.save()

    def save(self) -> Path:
        path = save_checkpoint(self.sim, self.path)
        self.saves += 1
        return path
