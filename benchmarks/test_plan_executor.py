"""Compiled execution plans — fixed per-run executor cost vs ``Session.run``.

The plan layer's thesis (the paper's Sec 5.3 lesson applied to our own
executor): in a steady-shape loop, graph traversal, per-node dict dispatch
and per-op output allocation are fixed costs that should be paid once, not
once per step.  Two kinds of assertions:

* deterministic (always on): a compiled plan performs exactly ONE
  ``topo_sort`` over its lifetime no matter how many times it runs, the
  buffer arena stops allocating after one warm run per feed-shape
  signature, and the planned result is bitwise identical to the
  ``Session.run`` oracle;
* wall-clock (paired interleaved trials, median-based, gated on
  REPRO_BENCH_STRICT per the noisy-host policy): the planned run of the
  same fetches/feeds is measurably faster than ``Session.run``.

The workload is the real DP graph at laptop scale (tiny water model, small
cell) — the regime where fixed executor cost is a large fraction of a step,
i.e. exactly the regime MD steps and micro-batched serving live in.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    bench_median,
    bench_paired_trials,
    bench_strict,
    print_header,
)
import repro.tfmini as tf
from repro.analysis.structures import water_box
from repro.dp.batch import BatchedEvaluator
from repro.dp.model import DeepPot, DPConfig
from repro.md.neighbor import neighbor_pairs
from repro.tfmini import graph

RESULTS = {}


@pytest.fixture(scope="module")
def model():
    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))


@pytest.fixture(scope="module")
def workload(model):
    """Fixed fetches + feeds: the serial path's full fetch set on one frame."""
    system = water_box((2, 2, 2), seed=0)
    pi, pj = neighbor_pairs(system, model.config.rcut)
    feeds, _order = model.prepare_feeds(system, pi, pj)
    fetches = [model._f_energy, model._f_forces, model._f_virial] + list(
        model._f_e_atoms
    )
    feed_nodes = list(feeds)
    plan = tf.compile_plan(fetches, feed_nodes, copy_fetches=False)
    plan.run(feeds)  # warm the arena
    return fetches, feeds, plan, system, (pi, pj)


def test_one_topo_sort_across_n_runs(workload):
    """Deterministic: N planned runs perform ZERO graph traversals; the one
    traversal happened at compile time."""
    _fetches, feeds, plan, _system, _pl = workload
    before = graph.TOPO_SORT_CALLS
    for _ in range(25):
        plan.run(feeds)
    assert graph.TOPO_SORT_CALLS == before
    assert plan.stats.topo_sorts == 1


def test_zero_steady_state_arena_allocations(workload):
    """Deterministic: the warm arena never allocates again."""
    _fetches, feeds, plan, _system, _pl = workload
    allocs = plan.alloc_count()
    assert allocs > 0  # the arena exists and is in use
    for _ in range(25):
        plan.run(feeds)
    assert plan.alloc_count() == allocs
    assert plan.stats.arena_builds == 1


def test_session_pays_topo_sort_per_run(workload):
    """The oracle's fixed cost is real: one traversal per Session.run."""
    fetches, feeds, _plan, _system, _pl = workload
    sess = tf.Session()
    before = graph.TOPO_SORT_CALLS
    for _ in range(5):
        sess.run(fetches, feeds)
    assert graph.TOPO_SORT_CALLS == before + 5


def test_planned_engine_steady_counters(model):
    """Deterministic, engine level: an MD-style loop (same frame shape every
    step) compiles once, warms once, then runs allocation-free — plan arena
    AND staging scratch."""
    system = water_box((2, 2, 2), seed=1)
    pi, pj = neighbor_pairs(system, model.config.rcut)
    engine = BatchedEvaluator(model)
    engine.evaluate_batch([system], [(pi, pj)])  # compile + warm
    topo_before = graph.TOPO_SORT_CALLS
    arena_before = engine.plan.alloc_count()
    scratch_before = engine.scratch.alloc_count
    for _ in range(10):
        engine.evaluate_batch([system], [(pi, pj)])
    assert graph.TOPO_SORT_CALLS == topo_before
    assert engine.plan.alloc_count() == arena_before
    assert engine.scratch.alloc_count == scratch_before
    assert engine.plan.stats.runs == 11


def test_span_and_coloring_counters(workload):
    """Deterministic: the staged compiler partitioned the tape into spans
    that tile it exactly, and the interference-coloring allocator beats the
    FIFO shape-pool baseline it replaced (both measured on the warm arena)."""
    _fetches, _feeds, plan, _system, _pl = workload
    widths = plan.span_widths()
    assert plan.stats.spans == len(widths) >= 1
    assert sum(widths) == plan.n_records
    assert plan.stats.max_span_width == max(widths) >= 2
    assert plan.arena_nbytes() < plan.fifo_arena_nbytes()
    assert plan.stats.span_batches == 0  # span_workers defaults to 1
    RESULTS["arena_colored_B"] = plan.arena_nbytes()
    RESULTS["arena_fifo_B"] = plan.fifo_arena_nbytes()
    RESULTS["max_span_width"] = plan.stats.max_span_width


def test_parallel_span_batches_deterministic(workload):
    """Deterministic: with ``span_workers=2`` every steady run dispatches
    exactly one batch per multi-record span, and results stay bitwise
    identical to the sequential plan."""
    fetches, feeds, plan, _system, _pl = workload
    par = tf.compile_plan(
        list(fetches), list(feeds), copy_fetches=False,
        schedule="grouped", span_workers=2,
    )
    ref = plan.run(feeds)
    out = par.run(feeds)  # warm
    batches_warm = par.stats.span_batches
    out = par.run(feeds)  # steady
    multi = sum(1 for w in par.span_widths() if w > 1)
    assert multi >= 1
    assert par.stats.span_batches == batches_warm + multi
    for r, o in zip(ref, out):
        assert np.array_equal(np.asarray(r), np.asarray(o))
    par.release_arenas()


def test_fig3_scale_copper_arena_reduction():
    """Fig 3 scale: the 256-atom copper cell with the paper's Cu
    hyper-parameters (r_c=7 Å, sel=220).  PR 3's FIFO recycler needed
    ~581 MB of arena for this plan; interference coloring must come in
    strictly below the simulated FIFO footprint of the SAME tape."""
    from repro.analysis.structures import fcc_lattice

    model = DeepPot(
        DPConfig(type_names=("Cu",), rcut=7.0, rcut_smth=2.0, sel=(220,))
    )
    system = fcc_lattice((4, 4, 4))
    pi, pj = neighbor_pairs(system, model.config.rcut)
    engine = BatchedEvaluator(model)
    engine.evaluate_batch([system], [(pi, pj)])  # compile + warm
    colored = engine.plan.arena_nbytes()
    fifo = engine.plan.fifo_arena_nbytes()
    assert colored < fifo
    # The FIFO baseline reproduces PR 3's measured figure; coloring's win
    # at this scale must be substantial, not marginal.
    assert fifo > 500e6
    assert colored < 0.9 * fifo
    RESULTS["fig3_colored_MB"] = colored / 1e6
    RESULTS["fig3_fifo_MB"] = fifo / 1e6
    engine.plan.release_arenas()


def test_bitwise_oracle_correspondence(workload):
    fetches, feeds, plan, _system, _pl = workload
    sess = tf.Session()
    ref = sess.run(fetches, feeds)
    out = plan.run(feeds)
    for r, o in zip(ref, out):
        assert np.array_equal(np.asarray(r), np.asarray(o))


def test_plan_vs_session_timing(benchmark, workload):
    """Wall clock: planned execution beats the per-run-rederiving oracle."""
    fetches, feeds, plan, _system, _pl = workload
    sess = tf.Session()

    t_plan = bench_median(benchmark, lambda: plan.run(feeds), rounds=5)
    RESULTS["t_plan_ms"] = t_plan * 1e3

    # Paired interleaved trials (noisy-host policy): plan and Session run
    # back-to-back inside each trial; the median per-trial ratio is asserted
    # only under REPRO_BENCH_STRICT.
    reps = 10

    def run_plan():
        for _ in range(reps):
            plan.run(feeds)

    def run_sess():
        for _ in range(reps):
            sess.run(fetches, feeds)

    ratios = bench_paired_trials(run_plan, run_sess, trials=7)
    RESULTS["ratio_median"] = float(np.median(ratios))
    RESULTS["ratio_best"] = float(np.min(ratios))
    if bench_strict():
        assert RESULTS["ratio_median"] < 0.95
        assert RESULTS["ratio_best"] < 0.9


def test_zz_report(benchmark, workload, model):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _fetches, _feeds, plan, _system, _pl = workload
    print_header("Compiled execution plans — fixed cost per run vs Session.run")
    print(f"tape records:            {plan.n_records}")
    print(f"arena buffers allocated: {plan.alloc_count()} "
          f"({plan.arena_nbytes() / 1e6:.1f} MB, interference-colored)")
    print(f"topo_sorts (lifetime):   {plan.stats.topo_sorts} over "
          f"{plan.stats.runs} runs")
    print(f"spans:                   {plan.stats.spans} "
          f"(max width {plan.stats.max_span_width})")
    if "arena_fifo_B" in RESULTS:
        saved = RESULTS["arena_fifo_B"] - RESULTS["arena_colored_B"]
        print(f"coloring vs FIFO:        {RESULTS['arena_colored_B'] / 1e3:.1f} kB "
              f"vs {RESULTS['arena_fifo_B'] / 1e3:.1f} kB "
              f"(-{100 * saved / RESULTS['arena_fifo_B']:.1f}%)")
    if "fig3_colored_MB" in RESULTS:
        red = 1 - RESULTS["fig3_colored_MB"] / RESULTS["fig3_fifo_MB"]
        print(f"fig3-scale copper arena: {RESULTS['fig3_colored_MB']:.1f} MB "
              f"colored vs {RESULTS['fig3_fifo_MB']:.1f} MB FIFO "
              f"(-{100 * red:.1f}%)")
    if "ratio_median" in RESULTS:
        print(f"planned run:             {RESULTS['t_plan_ms']:.2f} ms")
        print(f"plan/Session ratio:      {RESULTS['ratio_median']:.2f}x median / "
              f"{RESULTS['ratio_best']:.2f}x best "
              f"({1 / RESULTS['ratio_median']:.2f}x speedup)")
    print("(one graph traversal per plan lifetime; steady-state runs are a")
    print(" flat slot-indexed tape walk into persistent recycled buffers)")
