"""Elementwise fusion — fused tape records and the blocked interpreter.

The SC20 paper's biggest single-node win is fusing the elementwise family
around the GEMMs (Sec 5.3): one kernel launch and one memory pass where the
stock graph paid one per operator.  Our equivalent at the numpy level is
**loop blocking**: a maximal chain/tree of purely elementwise tape records
is collapsed into a single :class:`FusedRecord` whose kernel walks the
output in cache-sized row tiles, evaluating the whole member chain per tile
into small per-member scratch buffers.  Intermediates then live in L1/L2
for the duration of the tile instead of round-tripping DRAM once per
member — the unfused executor streams every intermediate through main
memory twice (write, then read back).

Bitwise contract
----------------
Every fusable op is *pointwise*: output element ``i`` depends only on
element ``i`` (after broadcasting) of each input, so partitioning the rows
into tiles cannot change any element's value — numpy's ufunc inner loops
(including the SIMD transcendentals) are per-element deterministic under
any partition.  The blocked interpreter therefore produces **bitwise
identical** results to the unfused tape:

- each member executes through the *same* registered ``forward_out``
  kernel as the unfused plan, on row slices instead of full arrays;
- member outputs keep their warm-run dtype, so NEP-50 promotion is decided
  once (by the allocating warm kernels) exactly as in the unfused plan;
- inputs that broadcast along the tile axis (leading extent 1, lower rank,
  scalars) are passed whole, preserving the oracle's broadcast semantics;
- reductions are never fused — they terminate chains by construction.

Grouping rules (verified statically by plancheck rule P110):

- members are elementwise ops from :data:`FUSABLE_OPS` executing in
  destination-passing mode;
- exactly one member output — the *escape* — is visible outside the group;
- every internal member output is read only by members of the same group
  (fetch-pinned intermediates escape instead of fusing);
- shared subexpressions and diamonds fuse only while all consumers sit in
  one group; a value read by two groups escapes.

The fused record is an ordinary ``_MODE_OUT`` tape record (its ``forward``
is the allocating warm-path interpreter, its ``forward_out`` the blocked
steady-path interpreter), so scheduling, liveness, coloring, spans and the
run loops in :mod:`repro.tfmini.plan` need no special cases — and the
internal member slots vanish from the liveness problem entirely, which is
why fused plans color into *smaller* arenas than unfused ones.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

import numpy as np

from repro.tfmini.graph import Node
from repro.tfmini.ops import TANH_FLOPS_PER_ELEM
from repro.tfmini.plan import _MODE_OUT, _Record

# Fusable elementwise ops -> per-element FLOP weight (mirrors the registry's
# ``flops`` lambdas; used for the fused record's profiled-FLOP attribution).
# Every entry is pointwise with a registered destination-passing kernel;
# reductions, GEMMs, slices and tuple-output ops (``tanh_fused``) never
# appear here, so they terminate chains.
FUSABLE_OPS: dict[str, int] = {
    "add": 1,
    "sub": 1,
    "mul": 1,
    "neg": 1,
    "square": 1,
    "scale": 1,
    "div": 1,
    "one_minus": 1,
    "relu": 1,
    "step_mask": 1,
    "tanh": TANH_FLOPS_PER_ELEM,
    "exp": TANH_FLOPS_PER_ELEM,
    "log": TANH_FLOPS_PER_ELEM,
    "sigmoid": TANH_FLOPS_PER_ELEM,
    "tanh_grad": 3,
    "sqrt": 4,
    "pow_scalar": 4,
    "cast": 0,
    "cast_like": 0,
}

# Default tile size for the blocked interpreter: comfortably inside L2 on
# anything current, large enough that per-tile python overhead stays noise
# at fig3 scale.  Overridable per process (REPRO_FUSED_TILE_BYTES) and per
# backend instance.
DEFAULT_TILE_BYTES = 1 << 20


def default_tile_bytes() -> int:
    """Tile size in bytes: ``REPRO_FUSED_TILE_BYTES`` or 1 MiB."""
    raw = os.environ.get("REPRO_FUSED_TILE_BYTES", "")
    try:
        v = int(raw)
    except ValueError:
        v = 0
    return v if v > 0 else DEFAULT_TILE_BYTES


def _sig(a) -> tuple:
    """(shape, dtype) of an array-ish value (np scalars included)."""
    if isinstance(a, np.ndarray):
        return (a.shape, a.dtype)
    a = np.asarray(a)
    return (a.shape, a.dtype)


# Input-source kinds for the interpreter's resolution tables.
_EXT = 0  # external value: ins[idx]
_MEM = 1  # another member's output: scratch of member idx


class _GroupPlan:
    """Shapes-resolved execution recipe for one feed-shape signature.

    Built once per signature from the warm run's recorded member metadata;
    executing is then a flat loop with zero per-run allocation.  Members
    whose output spans the full tile axis (rank == escape rank, leading
    extent == escape leading extent) are *tiled*; the rest (broadcast
    sources: leading extent 1, lower rank, scalars) are *whole* — their
    inputs are provably also whole, so they are computed once before the
    tile loop and passed to tiled consumers for broadcasting, exactly as
    the unfused kernels would see them.
    """

    __slots__ = ("n_tiles", "tile_rows", "rows", "n_members", "whole_steps",
                 "tiled_steps", "scratch_nbytes")

    def __init__(self, group: "FusedGroup", ins: Sequence, out: np.ndarray,
                 meta: list[tuple]):
        members = group.members
        esc_shape, esc_dtype = meta[-1]
        if tuple(out.shape) != tuple(esc_shape) or out.dtype != esc_dtype:
            raise RuntimeError(
                f"fused group destination {out.shape}/{out.dtype} does not "
                f"match warm metadata {esc_shape}/{esc_dtype}"
            )
        rank = len(esc_shape)
        rows = esc_shape[0] if rank else 0
        self.rows = rows
        self.n_members = len(members)

        def tileable(shape) -> bool:
            return rank >= 1 and rows >= 1 and len(shape) == rank \
                and shape[0] == rows

        esc_tiled = tileable(esc_shape) and out.nbytes > 0
        if esc_tiled:
            self.n_tiles = min(rows, -(-out.nbytes // group.tile_bytes))
        else:
            self.n_tiles = 1
        self.tile_rows = -(-rows // self.n_tiles) if rows else 0

        slot_member = {m.out_slot: k for k, m in enumerate(members)}
        esc_idx = len(members) - 1
        # Steps: (member, member_index, dest, inputs); dest is None for the
        # escape (the caller's arena buffer, or row slices of it) and a
        # scratch array otherwise; inputs is a tuple of (kind, idx, sliced).
        self.whole_steps: list[tuple] = []
        self.tiled_steps: list[tuple] = []
        scratch_bytes = 0
        for k, m in enumerate(members):
            shape, dtype = meta[k]
            is_tiled = esc_tiled and tileable(shape)
            inputs = []
            for s in m.input_slots:
                if s in slot_member:
                    src = slot_member[s]
                    inputs.append(
                        (_MEM, src, is_tiled and tileable(meta[src][0]))
                    )
                else:
                    idx = group.ext_index[s]
                    inputs.append(
                        (_EXT, idx, is_tiled and tileable(_sig(ins[idx])[0]))
                    )
            if k == esc_idx:
                dest = None
            elif is_tiled:
                dest = np.empty((self.tile_rows,) + tuple(shape[1:]), dtype)
                scratch_bytes += dest.nbytes
            else:
                dest = np.empty(shape, dtype)
                scratch_bytes += dest.nbytes
            step = (m, k, dest, tuple(inputs))
            (self.tiled_steps if is_tiled else self.whole_steps).append(step)
        self.scratch_nbytes = scratch_bytes

    def execute(self, ins: Sequence, out: np.ndarray) -> None:
        # vals[k] is member k's current value: a full scratch array for
        # whole members (computed once, broadcast by tiled consumers exactly
        # as the unfused kernels would) and the current tile's rows for
        # tiled members (rewritten every tile).
        vals: list = [None] * self.n_members
        for m, k, dest, inputs in self.whole_steps:
            src = [ins[idx] if kind == _EXT else vals[idx]
                   for kind, idx, _sl in inputs]
            if dest is None:  # degenerate group: the escape itself is whole
                m.forward_out(src, m.attrs, out)
                vals[k] = out
            else:
                m.forward_out(src, m.attrs, dest)
                vals[k] = dest
        if not self.tiled_steps:
            return
        n_tiles, rows = self.n_tiles, self.rows
        for t in range(n_tiles):
            lo = rows * t // n_tiles
            hi = rows * (t + 1) // n_tiles
            nrows = hi - lo
            for m, k, dest, inputs in self.tiled_steps:
                src = []
                for kind, idx, sliced in inputs:
                    if kind == _EXT:
                        v = ins[idx]
                        src.append(v[lo:hi] if sliced else v)
                    else:
                        src.append(vals[idx])
                d = out[lo:hi] if dest is None else dest[:nrows]
                m.forward_out(src, m.attrs, d)
                vals[k] = d


class FusedGroup:
    """One fused chain/tree of elementwise tape records.

    Owns the member records, the warm-path interpreter
    (:meth:`run_unfused` — allocating kernels, records per-member
    shape/dtype metadata) and the steady-path blocked interpreter
    (:meth:`run_blocked` — tiled ``forward_out`` kernels into per-member
    scratch).  Per-signature recipes and metadata are FIFO-bounded like the
    plan's arenas, so signature churn cannot grow scratch without bound.
    """

    __slots__ = ("members", "out_slot", "ext_slots", "ext_index",
                 "tile_bytes", "tiles_run", "blocked_runs", "unfused_runs",
                 "last_meta", "_plans", "_meta", "max_cached")

    def __init__(self, members: list, tile_bytes: Optional[int] = None):
        self.members = members
        self.out_slot = members[-1].out_slot
        produced = {m.out_slot for m in members}
        ext: list[int] = []
        for m in members:
            for s in m.input_slots:
                if s not in produced and s not in ext:
                    ext.append(s)
        self.ext_slots = tuple(ext)
        self.ext_index = {s: i for i, s in enumerate(ext)}
        self.tile_bytes = tile_bytes or default_tile_bytes()
        self.tiles_run = 0       # blocked-interpreter tiles executed
        self.blocked_runs = 0    # steady runs through the tile loop
        self.unfused_runs = 0    # warm/fallback runs through plain kernels
        self.last_meta: Optional[list] = None
        self._plans: dict = {}
        self._meta: dict = {}
        self.max_cached = 32

    # ----------------------------------------------------------- interpreters

    def run_unfused(self, ins: Sequence, attrs=None):
        """Warm path: allocating member kernels, metadata recorded.

        Bitwise identical to the pre-fusion tape by construction — the same
        ``forward`` callables run on the same values in the same order.
        """
        local: dict[int, object] = dict(zip(self.ext_slots, ins))
        meta: list[tuple] = []
        out = None
        for m in self.members:
            out = m.forward([local[s] for s in m.input_slots], m.attrs)
            local[m.out_slot] = out
            meta.append(_sig(out))
        key = tuple(_sig(a) for a in ins)
        self._remember(self._meta, key, meta)
        self.last_meta = meta
        self.unfused_runs += 1
        return out

    def run_blocked(self, ins: Sequence, attrs, out: np.ndarray) -> None:
        """Steady path: the blocked (tiled) interpreter, ``out=`` semantics."""
        key = tuple(_sig(a) for a in ins)
        plan = self._plans.get(key)
        if plan is None:
            meta = self._meta.get(key)
            if meta is None:
                # Metadata evicted (signature churn beyond the cache cap):
                # fall back to the allocating interpreter for this run —
                # still bitwise — and re-record so the next run tiles.
                np.copyto(out, self.run_unfused(ins))
                return
            plan = _GroupPlan(self, ins, out, meta)
            self._remember(self._plans, key, plan)
        plan.execute(ins, out)
        self.tiles_run += plan.n_tiles
        self.blocked_runs += 1

    # ----------------------------------------------------------------- admin

    def _remember(self, cache: dict, key, val) -> None:
        cache[key] = val
        while len(cache) > self.max_cached:
            cache.pop(next(iter(cache)))

    def scratch_nbytes(self) -> int:
        """Bytes held by per-signature member scratch buffers."""
        return sum(p.scratch_nbytes for p in list(self._plans.values()))

    def release(self) -> None:
        """Drop cached recipes/metadata and their scratch (counters kept)."""
        self._plans.clear()
        self._meta.clear()
        self.last_meta = None

    @property
    def ops(self) -> tuple:
        return tuple(m.op for m in self.members)


class FusedRecord(_Record):
    """A fused group as an ordinary destination-passing tape record."""

    __slots__ = ("group",)

    def __init__(self, group: FusedGroup):
        node = Node(
            "fused_elementwise",
            (),
            {
                "ops": group.ops,
                "n_members": len(group.members),
                "flops_per_elem": sum(
                    FUSABLE_OPS.get(op, 1) for op in group.ops
                ),
            },
            name="fused[" + "+".join(group.ops) + "]",
        )
        super().__init__(
            node,
            group.run_unfused,
            group.run_blocked,
            group.ext_slots,
            node.attrs,
            group.out_slot,
            _MODE_OUT,
        )
        self.group = group


def fuse_tape(
    records: list,
    fetch_slots: Sequence[int],
    tile_bytes: Optional[int] = None,
    group_cls=FusedGroup,
) -> tuple[list, list]:
    """Collapse maximal elementwise chains/trees into fused records.

    Runs one reverse pass over the scheduled tape.  A fusable record joins
    its consumers' group when *all* of its consumers are members of one
    group and its output is not fetched; otherwise it seeds a new group as
    that group's escape.  Single-member groups are discarded (nothing to
    fuse).  Each surviving group is replaced by one :class:`FusedRecord`
    at the escape's tape position — every member is a dataflow ancestor of
    its escape, so the position is schedule-valid, and no record outside
    the group reads an internal slot (rule P110 re-proves this statically).

    Returns ``(new_records, groups)``.
    """
    n = len(records)
    fetch_set = set(fetch_slots)
    consumers: dict[int, list[int]] = {}
    for i, rec in enumerate(records):
        for s in rec.input_slots:
            consumers.setdefault(s, []).append(i)

    group_of = [-1] * n
    member_lists: list[list[int]] = []
    for i in range(n - 1, -1, -1):
        rec = records[i]
        if rec.op not in FUSABLE_OPS or rec.mode != _MODE_OUT:
            continue
        gid = -1
        cons = consumers.get(rec.out_slot, ())
        if cons and rec.out_slot not in fetch_set:
            gids = {group_of[j] for j in cons}
            if len(gids) == 1:
                g = gids.pop()
                if g >= 0:
                    gid = g  # every consumer sits in one group: fuse into it
        if gid < 0:
            gid = len(member_lists)
            member_lists.append([])
        group_of[i] = gid
        member_lists[gid].append(i)

    fused_at: dict[int, FusedGroup] = {}
    dropped: set[int] = set()
    groups: list[FusedGroup] = []
    for members in member_lists:
        if len(members) < 2:
            continue
        members.sort()
        group = group_cls([records[k] for k in members], tile_bytes=tile_bytes)
        groups.append(group)
        fused_at[members[-1]] = group
        dropped.update(members[:-1])

    if not groups:
        return records, []
    new_records: list = []
    for i, rec in enumerate(records):
        if i in dropped:
            continue
        g = fused_at.get(i)
        new_records.append(FusedRecord(g) if g is not None else rec)
    return new_records, groups
