"""Semantics of the micro-batching inference service (:mod:`repro.serving`).

Five contracts, all asserted deterministically (no wall-clock thresholds —
see the bench-timing policy):

1. **correspondence** — every future resolves to *its own* frame's result,
   bitwise identical to a direct ``DeepPot.evaluate``, under concurrent
   submitters and regardless of batch composition;
2. **FIFO fairness** — batches take requests in submission order; requests
   for other models keep their queue positions (no reordering, no mixing);
3. **backpressure** — a bounded queue rejects (or blocks) submissions at
   the configured depth and counts the rejections;
4. **shutdown** — drain completes every pending request, no-drain cancels
   them; either way the worker exits and later submissions are refused;
5. **stats** — the ``ServerStats`` counter block is an exact, reproducible
   function of the request schedule.

Determinism device: ``server.paused()`` parks the worker between batches,
so a submission schedule can be staged in full before coalescing begins —
N pre-queued same-model requests then execute in exactly
``ceil(N / max_batch)`` batches.
"""

import threading
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp.model import DeepPot, DPConfig
from repro.md.neighbor import neighbor_pairs
from repro.serving import (
    InferenceClient,
    InferenceRequest,
    InferenceServer,
    MicroBatchScheduler,
    QueueFull,
    RequestQueue,
    ServerClosed,
    ServerStats,
)

WAIT = 60.0  # generous future timeouts; the suite never sleeps this long


@pytest.fixture(scope="module")
def model():
    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))


@pytest.fixture(scope="module")
def model_b(model):
    """A second, independently seeded model over the same type vocabulary —
    lets multi-model tests share one pool of water frames."""
    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0, seed=7))


@pytest.fixture(scope="module")
def base():
    return water_box((2, 2, 2), seed=0)


def perturbed(base, n, seed0=0, scale=0.02):
    out = []
    for k in range(n):
        s = base.copy()
        rng = np.random.default_rng(seed0 + k)
        s.positions = s.positions + rng.normal(scale=scale, size=s.positions.shape)
        out.append(s)
    return out


def direct(model, system):
    return model.evaluate(system, *neighbor_pairs(system, model.config.rcut))


def assert_bitwise(result, reference):
    assert result.energy == reference.energy
    assert np.array_equal(result.forces, reference.forces)
    assert np.array_equal(result.virial, reference.virial)
    assert np.array_equal(result.atom_energies, reference.atom_energies)


class TestCorrespondence:
    def test_concurrent_submitters_bitwise(self, model, base):
        """4 closed-loop clients; every result corresponds to its own frame
        and is bitwise identical to a direct evaluation."""
        server = InferenceServer(
            {"water": model}, max_batch=4, max_wait_us=2000
        )
        served: dict[int, list] = {}

        def run_client(tid):
            client = server.client("water")
            frames = perturbed(base, 5, seed0=100 * tid)
            served[tid] = [(f, client.evaluate(f, timeout=WAIT)) for f in frames]

        threads = [
            threading.Thread(target=run_client, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.stop()
        assert server.stats.snapshot()["requests_completed"] == 20
        for results in served.values():
            for frame, result in results:
                assert_bitwise(result, direct(model, frame))

    def test_pipelined_futures_resolve_in_submission_order(self, model, base):
        frames = perturbed(base, 10)
        server = InferenceServer({"water": model}, max_batch=4, autostart=False)
        client = server.client()
        futures = [client.submit(f) for f in frames]
        server.start()
        results = [f.result(WAIT) for f in futures]
        server.stop()
        for frame, result in zip(frames, results):
            assert_bitwise(result, direct(model, frame))

    def test_mixed_boxes_take_general_path_bitwise(self, model, base):
        """Frames with different boxes cannot share the single-lexsort fast
        path; the coalesced batch falls back to per-frame staging and stays
        bitwise."""
        small = perturbed(base, 1)[0]
        big = water_box((3, 3, 3), seed=3)
        server = InferenceServer({"water": model}, max_batch=4, autostart=False)
        futures = [server.submit("water", s) for s in (small, big)]
        server.start()
        results = [f.result(WAIT) for f in futures]
        server.stop()
        engine = server._engines["water"]
        assert engine.general_batches == 1
        assert engine.stacked_batches == 0
        assert server.stats.snapshot()["batches"] == 1
        assert_bitwise(results[0], direct(model, small))
        assert_bitwise(results[1], direct(model, big))

    def test_evaluate_many_round_trip(self, model, base):
        frames = perturbed(base, 6, seed0=50)
        with InferenceServer({"water": model}, max_batch=8) as server:
            results = server.client("water").evaluate_many(frames, timeout=WAIT)
        for frame, result in zip(frames, results):
            assert_bitwise(result, direct(model, frame))


class TestFifoFairness:
    def test_single_model_batches_are_fifo_runs(self, model, base):
        frames = perturbed(base, 10)
        server = InferenceServer({"water": model}, max_batch=4, autostart=False)
        futures = [server.submit("water", f) for f in frames]
        server.start()
        for f in futures:
            f.result(WAIT)
        server.stop()
        assert server.stats.batch_log == [
            ("water", (0, 1, 2, 3)),
            ("water", (4, 5, 6, 7)),
            ("water", (8, 9)),
        ]

    def test_interleaved_models_never_mix_and_keep_order(
        self, model, model_b, base
    ):
        """Batches gather same-model requests FIFO, skipping (not
        reordering) the other model's requests."""
        frames = perturbed(base, 8)
        server = InferenceServer(
            {"a": model, "b": model_b}, max_batch=4, autostart=False
        )
        futures = []
        for k, frame in enumerate(frames):
            futures.append(server.submit("a" if k % 2 == 0 else "b", frame))
        server.start()
        results = [f.result(WAIT) for f in futures]
        server.stop()
        assert server.stats.batch_log == [
            ("a", (0, 2, 4, 6)),
            ("b", (1, 3, 5, 7)),
        ]
        for k, (frame, result) in enumerate(zip(frames, results)):
            assert_bitwise(result, direct(model if k % 2 == 0 else model_b, frame))

    def test_max_batch_one_serializes(self, model, base):
        frames = perturbed(base, 3)
        server = InferenceServer({"water": model}, max_batch=1, autostart=False)
        futures = [server.submit("water", f) for f in frames]
        server.start()
        for f in futures:
            f.result(WAIT)
        server.stop()
        snap = server.stats.snapshot()
        assert snap["batches"] == 3
        assert snap["max_batch_frames"] == 1


class TestBackpressure:
    def test_bounded_queue_rejects_when_full(self, model, base):
        frames = perturbed(base, 5)
        server = InferenceServer(
            {"water": model}, max_batch=8, max_queue=3, autostart=False
        )
        held = [server.submit("water", f, block=False) for f in frames[:3]]
        with pytest.raises(QueueFull):
            server.submit("water", frames[3], block=False)
        with pytest.raises(QueueFull):
            server.submit("water", frames[4], block=True, timeout=0.05)
        snap = server.stats.snapshot()
        assert snap["requests_rejected"] == 2
        assert snap["requests_submitted"] == 3
        server.start()
        for f in held:
            f.result(WAIT)
        server.stop()
        assert server.stats.snapshot()["requests_completed"] == 3

    def test_client_evaluate_timeout_bounds_the_enqueue_wait(self, model, base):
        """A stalled server with a full queue must not hang a synchronous
        client past its timeout — admission is bounded too."""
        server = InferenceServer(
            {"water": model}, max_batch=8, max_queue=1, autostart=False
        )
        server.submit("water", base)  # fills the queue; worker never runs
        client = server.client("water")
        with pytest.raises(QueueFull):
            client.evaluate(perturbed(base, 1)[0], timeout=0.05)
        with pytest.raises(QueueFull):
            client.evaluate_many(perturbed(base, 1, seed0=9), timeout=0.05)
        server.stop(drain=False)

    def test_blocked_submitter_proceeds_when_space_frees(self, model, base):
        frames = perturbed(base, 4)
        server = InferenceServer(
            {"water": model}, max_batch=2, max_queue=3, autostart=False
        )
        first = [server.submit("water", f) for f in frames[:3]]
        fourth = {}

        def blocked_submit():
            fourth["future"] = server.submit("water", frames[3], block=True)

        t = threading.Thread(target=blocked_submit)
        t.start()
        server.start()  # worker drains the queue, freeing space
        t.join(WAIT)
        assert not t.is_alive()
        for f in first + [fourth["future"]]:
            assert f.result(WAIT) is not None
        server.stop()
        assert server.stats.snapshot()["requests_completed"] == 4


class TestShutdown:
    def test_drain_completes_pending_requests(self, model, base):
        frames = perturbed(base, 5)
        server = InferenceServer({"water": model}, max_batch=2, autostart=False)
        futures = [server.submit("water", f) for f in frames]
        server.start()
        server.stop(drain=True, timeout=WAIT)
        assert not server.running
        for frame, f in zip(frames, futures):
            assert_bitwise(f.result(timeout=0), direct(model, frame))
        snap = server.stats.snapshot()
        assert snap["requests_completed"] == 5
        assert snap["requests_cancelled"] == 0

    def test_no_drain_cancels_pending_futures(self, model, base):
        frames = perturbed(base, 5)
        server = InferenceServer({"water": model}, max_batch=2, autostart=False)
        futures = [server.submit("water", f) for f in frames]
        # worker never started: everything is still pending
        server.stop(drain=False, timeout=WAIT)
        for f in futures:
            assert f.cancelled()
            with pytest.raises(CancelledError):
                f.result(timeout=0)
        snap = server.stats.snapshot()
        assert snap["requests_cancelled"] == 5
        assert snap["requests_completed"] == 0

    def test_submit_after_stop_is_refused(self, model, base):
        server = InferenceServer({"water": model}, max_batch=2)
        server.stop()
        with pytest.raises(ServerClosed):
            server.submit("water", base)
        with pytest.raises(ServerClosed):
            server.start()

    def test_stop_while_paused_still_drains(self, model, base):
        frames = perturbed(base, 3)
        server = InferenceServer({"water": model}, max_batch=4)
        server.pause()
        futures = [server.submit("water", f) for f in frames]
        server.stop(drain=True, timeout=WAIT)
        for f in futures:
            assert f.result(timeout=0) is not None
        # maximal coalescing: everything was pending when the worker woke
        assert server.stats.snapshot()["batches"] == 1

    def test_closed_loop_helper_reraises_client_failures(self, model, base):
        """A broken serving stack must surface as an error from the load
        helper, never as a silently empty result set (which would let
        `repro validate` pass vacuously)."""
        from repro.serving import perturbed_frames, run_closed_loop_clients

        class BoomEngine:
            def evaluate_batch(self, systems, pair_lists, backend="optimized"):
                raise RuntimeError("boom")

        server = InferenceServer({"water": model}, max_batch=4)
        server._engines["water"] = BoomEngine()
        with pytest.raises(RuntimeError, match="serving client 0 failed"):
            run_closed_loop_clients(
                server, "water", {0: perturbed_frames(base, 1)}, timeout=WAIT
            )
        server.stop(drain=False)

    def test_failed_batch_poisons_only_its_futures(self, model, base):
        class BoomEngine:
            def evaluate_batch(self, systems, pair_lists, backend="optimized"):
                raise RuntimeError("boom")

        frames = perturbed(base, 2)
        server = InferenceServer(
            {"water": model, "boom": model}, max_batch=4, autostart=False
        )
        server._engines["boom"] = BoomEngine()
        bad = server.submit("boom", frames[0])
        good = server.submit("water", frames[1])
        server.start()
        with pytest.raises(RuntimeError, match="boom"):
            bad.result(WAIT)
        assert_bitwise(good.result(WAIT), direct(model, frames[1]))
        server.stop()
        snap = server.stats.snapshot()
        assert snap["requests_failed"] == 1
        assert snap["requests_completed"] == 1


class TestStatsAndRegistry:
    def test_counters_are_exact(self, model, base):
        frames = perturbed(base, 5)
        server = InferenceServer({"water": model}, max_batch=4, autostart=False)
        futures = [server.submit("water", f) for f in frames]
        server.start()
        for f in futures:
            f.result(WAIT)
        server.stop()
        snap = server.stats.snapshot()
        assert snap["requests_submitted"] == 5
        assert snap["requests_completed"] == 5
        assert snap["requests_failed"] == 0
        assert snap["batches"] == 2  # ceil(5 / 4)
        assert snap["frames"] == 5
        assert snap["occupancy"] == pytest.approx(2.5)
        assert snap["max_batch_frames"] == 4
        assert snap["frames_per_model"] == {"water": 5}
        assert server.stats.pending() == 0
        report = server.stats.report()
        assert "occupancy 2.50" in report
        assert "water: 5" in report

    def test_batch_log_is_bounded_but_counters_are_complete(self):
        stats = ServerStats(batch_log_limit=2)
        for k in range(5):
            stats.record_batch("m", (k,), (0.0,))
        assert stats.batch_log == [("m", (3,)), ("m", (4,))]
        assert stats.batches == 5
        assert stats.frames == 5

    def test_registry_rejects_duplicates_and_unknown_names(self, model, base):
        server = InferenceServer({"water": model}, autostart=False)
        with pytest.raises(ValueError):
            server.register("water", model)
        with pytest.raises(KeyError):
            server.submit("copper", base)
        with pytest.raises(KeyError):
            InferenceClient(server, "copper")
        assert server.model_names() == ["water"]
        assert server.model("water") is model

    def test_default_client_needs_unambiguous_model(self, model, model_b):
        server = InferenceServer({"a": model, "b": model_b}, autostart=False)
        with pytest.raises(ValueError):
            server.client()
        assert server.client("a").model == "a"

    def test_client_pair_list_validation(self, model, base):
        server = InferenceServer({"water": model}, autostart=False)
        client = server.client()
        with pytest.raises(ValueError):
            client.evaluate_many([base, base], pair_lists=[(None, None)])

    def test_future_carries_request_metadata(self, model, base):
        server = InferenceServer({"water": model}, autostart=False)
        fut = server.submit("water", base)
        assert isinstance(fut.request, InferenceRequest)
        assert fut.request.seq == 0
        assert fut.request.model == "water"
        server.stop(drain=False)


class TestQueueAndScheduler:
    def test_seq_stamping_is_admission_order(self):
        q = RequestQueue(maxsize=4)
        reqs = [
            InferenceRequest("m", None, None, None) for _ in range(3)
        ]
        for r in reqs:
            q.put(r)
        assert [r.seq for r in reqs] == [0, 1, 2]
        assert len(q) == 3

    def test_pop_batch_gathers_same_key_fifo(self):
        q = RequestQueue(maxsize=0)
        for name in ["a", "b", "a", "a", "b"]:
            q.put(InferenceRequest(name, None, None, None))
        batch = q.pop_batch(max_batch=2, max_wait=0.0, key=lambda r: r.model)
        assert [r.seq for r in batch] == [0, 2]
        batch = q.pop_batch(max_batch=8, max_wait=0.0, key=lambda r: r.model)
        assert [r.seq for r in batch] == [1, 4]  # b-requests kept their order
        batch = q.pop_batch(max_batch=8, max_wait=0.0, key=lambda r: r.model)
        assert [r.seq for r in batch] == [3]

    def test_closed_queue_refuses_puts_and_drains(self):
        q = RequestQueue(maxsize=4)
        q.put(InferenceRequest("m", None, None, None))
        q.close()
        with pytest.raises(ServerClosed):
            q.put(InferenceRequest("m", None, None, None))
        batch = q.pop_batch(max_batch=4, max_wait=1.0, key=lambda r: r.model)
        assert len(batch) == 1  # close cuts the wait budget short
        assert q.pop_batch(4, 0.0, key=lambda r: r.model) is None

    def test_close_and_drain_returns_pending(self):
        q = RequestQueue(maxsize=4)
        reqs = [InferenceRequest("m", None, None, None) for _ in range(3)]
        for r in reqs:
            q.put(r)
        assert q.close_and_drain() == reqs
        assert len(q) == 0

    def test_scheduler_validates_policy(self):
        q = RequestQueue()
        with pytest.raises(ValueError):
            MicroBatchScheduler(q, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatchScheduler(q, max_wait_us=-1.0)
