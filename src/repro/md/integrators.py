"""Time integrators: velocity-Verlet (NVE) and NVT thermostats.

The paper integrates with velocity-Verlet (Sec 6.1); Langevin and Berendsen
thermostats are provided for the annealing stage of the Fig 7 nanocrystal run
and for equilibrating training data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.md.system import System
from repro.units import KB, MVV_TO_EV


class Integrator:
    """Split-step interface used by the MD driver.

    ``first_half`` advances velocities by dt/2 and positions by dt;
    ``second_half`` finishes the velocity update once new forces are known.
    """

    def first_half(self, system: System, forces: np.ndarray, dt: float) -> None:
        raise NotImplementedError

    def second_half(self, system: System, forces: np.ndarray, dt: float) -> None:
        raise NotImplementedError


@dataclass
class VelocityVerlet(Integrator):
    """Symplectic velocity-Verlet; conserves energy in NVE."""

    def first_half(self, system: System, forces: np.ndarray, dt: float) -> None:
        inv_m = 1.0 / (system.atom_masses() * MVV_TO_EV)
        system.velocities += 0.5 * dt * forces * inv_m[:, None]
        system.positions += dt * system.velocities

    def second_half(self, system: System, forces: np.ndarray, dt: float) -> None:
        inv_m = 1.0 / (system.atom_masses() * MVV_TO_EV)
        system.velocities += 0.5 * dt * forces * inv_m[:, None]


@dataclass
class Langevin(Integrator):
    """Velocity-Verlet with a Langevin thermostat (BAOAB-like splitting).

    The friction+noise (O) step is applied between the two velocity half
    kicks, using damping time ``damp`` (ps).
    """

    temperature: float
    damp: float = 0.1
    seed: Optional[int] = None
    _vv: VelocityVerlet = field(default_factory=VelocityVerlet)

    def __post_init__(self):
        self._rng = np.random.default_rng(self.seed)

    def first_half(self, system: System, forces: np.ndarray, dt: float) -> None:
        self._vv.first_half(system, forces, dt)

    def second_half(self, system: System, forces: np.ndarray, dt: float) -> None:
        self._vv.second_half(system, forces, dt)
        # O-step: exact Ornstein-Uhlenbeck update of velocities.
        c1 = np.exp(-dt / self.damp)
        masses = system.atom_masses() * MVV_TO_EV
        sigma = np.sqrt(KB * self.temperature * (1.0 - c1 * c1) / masses)
        system.velocities = c1 * system.velocities + sigma[:, None] * self._rng.normal(
            size=system.velocities.shape
        )


@dataclass
class NoseHoover(Integrator):
    """Velocity-Verlet with a single Nosé-Hoover thermostat chain link.

    LAMMPS's default NVT.  The thermostat degree of freedom xi evolves as
    d(xi)/dt = (T/T0 - 1)/tau^2 and scales velocities each half step; unlike
    Berendsen it samples the true canonical ensemble (for ergodic systems).
    """

    temperature: float
    tau: float = 0.1  # ps, thermostat period
    _vv: VelocityVerlet = field(default_factory=VelocityVerlet)
    xi: float = field(default=0.0, init=False)

    def _thermostat_half(self, system: System, dt: float) -> None:
        current = system.temperature()
        if current <= 0:
            return
        self.xi += 0.5 * dt * (current / self.temperature - 1.0) / self.tau**2
        system.velocities *= np.exp(-0.5 * dt * self.xi)

    def first_half(self, system: System, forces: np.ndarray, dt: float) -> None:
        self._thermostat_half(system, dt)
        self._vv.first_half(system, forces, dt)

    def second_half(self, system: System, forces: np.ndarray, dt: float) -> None:
        self._vv.second_half(system, forces, dt)
        self._thermostat_half(system, dt)


@dataclass
class Berendsen(Integrator):
    """Velocity-Verlet with Berendsen velocity rescaling toward ``temperature``."""

    temperature: float
    tau: float = 0.1
    _vv: VelocityVerlet = field(default_factory=VelocityVerlet)

    def first_half(self, system: System, forces: np.ndarray, dt: float) -> None:
        self._vv.first_half(system, forces, dt)

    def second_half(self, system: System, forces: np.ndarray, dt: float) -> None:
        self._vv.second_half(system, forces, dt)
        current = system.temperature()
        if current > 0:
            lam = np.sqrt(1.0 + (dt / self.tau) * (self.temperature / current - 1.0))
            # Clamp to avoid violent rescaling far from equilibrium.
            lam = min(max(lam, 0.8), 1.25)
            system.velocities *= lam
