"""Compiled execution plans — tfmini's steady-shape fast path.

``Session.run`` pays a set of fixed costs on every call: a full
:func:`~repro.tfmini.graph.topo_sort` of the fetched DAG, an id-keyed dict
lookup per node input, and a fresh output allocation for every operator.
Those are exactly the per-step fixed costs the paper removes from the TF
execution graph (Sec 5.3 fusions, Table 3 custom ops), and in an MD loop
they are pure waste: the graph never changes and — because MD shapes are
steady — neither do the tensor shapes.

:func:`compile_plan` runs a staged, compiler-style pipeline ONCE per graph
(ngraph's classic memory-planning playbook, applied to our tape):

1. **Tape build** — the DAG is topo-sorted and flattened into a dense tape
   of records ``(forward, input_slots, attrs, out_slot)`` indexed by
   integer *slots*.  Executing the plan is a flat loop over the tape — no
   sorting, no dict-by-id, no isinstance dispatch per node.
2. **Tape scheduling** (``schedule=``) — records are reordered, data
   dependencies respected, to shrink value liveness ranges before
   allocation (``"liveness"``, the default: a greedy last-consumer-first
   list scheduler) or to additionally group same-kernel records into
   adjacent runs (``"grouped"``).  ``"none"`` keeps the topological order.
   Every schedule is deterministic, and because tape records are pure
   (variables are updated *outside* the graph), every schedule produces
   bitwise identical results.
2b. **Elementwise fusion** (``backend=``) — the kernel backend
   (:mod:`repro.tfmini.backends`) prepares the scheduled tape.  The
   ``"fused"`` backend collapses maximal chains/trees of purely
   elementwise records into single :class:`~repro.tfmini.fusion.
   FusedRecord`\\ s executed by a blocked (cache-tiled) interpreter —
   bitwise identical to the per-record kernels, with the fused
   intermediates gone from the liveness problem (smaller arenas) and
   from DRAM traffic (fewer full-array passes).  ``"numpy"`` (default)
   keeps one kernel per record.  Verifier rule P110 proves fused-record
   soundness.
3. **Liveness analysis** — last-use indices per storage group on the
   *scheduled* order.  Aliasing ops (``reshape``, ``item``, ...) whose
   outputs share their input's storage have their lifetimes unioned so
   recycling can never clobber a live view.
4. **Interference coloring** — at arena-build time (shapes are known after
   one warm run per feed-shape signature) the plan builds the interference
   graph over buffer-producing records (two interfere when their liveness
   ranges overlap) and colors it greedily; each color becomes ONE byte slab
   sized to its largest member, and every record's output buffer is a view
   into its color's slab.  Unlike the PR 3 FIFO recycler — which reused a
   buffer only for a later record with the *exact same shape and dtype* —
   coloring shares storage across shapes, so the arena footprint drops to
   roughly the peak live set.  The FIFO allocator's footprint is still
   simulated per arena (``BufferArena.fifo_nbytes``) as the regression
   baseline; the colored result is re-verified by the static plan checker
   (P101–P109) whenever ``REPRO_VERIFY_PLANS=1``/``verify=True`` is set.
5. **Span partition** — the scheduled tape is cut into fork/join *spans*
   of consecutive records that are pairwise independent (no member reads
   another member's output, no two members share a storage group).  With
   ``span_workers > 1`` each multi-record span is executed across a small
   thread pool (numpy kernels release the GIL); ``span_workers=1`` (the
   default) keeps the flat sequential loop.  Coloring soundness guarantees
   span members write disjoint buffers, and verifier rule P109 proves it
   independently — so results are bitwise identical for every
   ``span_workers`` value.

Because shapes are steady, the plan owns a :class:`BufferArena` per
feed-shape signature: persistent per-record output buffers handed to the
destination-passing (``out=``) kernel variants registered in
:mod:`repro.tfmini.ops`.  Ops without an ``out=`` kernel fall back to
allocate-and-copy-into-slot (the slot buffer stays stable; only the op's
own temporary churns).

When a feed arrives with a new shape signature the plan re-plans
automatically: one extra "warm" run executes through the plain kernels,
records every output's shape/dtype, and builds a fresh colored arena for
that signature.  Previously-seen signatures keep their warm arenas, so
drivers alternating between batch shapes (R=1 MD steps interleaved with
R=8 serving batches) stop allocating once each shape has been seen — the
same policy as :class:`repro.dp.batch.ScratchPool`, now applied inside the
executor.

Numerical contract: a plan run is **bitwise identical** to ``Session.run``
on the same fetches and feeds — every ``out=`` kernel reproduces its
allocating twin bit-for-bit, and because records are pure, the result is
independent of the schedule and of ``span_workers``.  ``Session.run``
remains the reference oracle (``tests/test_tfmini_plan.py`` and
``tests/test_plan_pipeline.py`` assert the correspondence across the model
zoo, fused and unfused graphs, batched evaluation, a training step, and
every schedule × span_workers combination).

Profiling: pass the owning :class:`~repro.tfmini.executor.Session` to
:meth:`ExecutionPlan.run`; when ``session.profile`` is set the plan records
per-operator wall time, FLOPs and bytes into ``session.stats`` exactly like
``Session.run`` — the Fig-3 operator breakdown works unchanged on planned
execution.  Profiled runs always execute sequentially (``session.stats`` is
not a concurrent structure); the per-op totals are order-independent.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Optional, Sequence

import numpy as np

from repro.tfmini.executor import _result_nbytes
from repro.tfmini.graph import Node, Variable, topo_sort
from repro.tfmini.ops import get_op, op_flops

_INF = 1 << 62

# Execution modes for tape records.
_MODE_OUT = 0  # destination-passing kernel into an arena buffer
_MODE_COPY = 1  # allocating kernel, result copied into a stable arena buffer
_MODE_ALIAS = 2  # output shares the input's storage; run as-is, union lifetimes

# Valid tape-scheduling knob values (stage 2 of the pipeline).
SCHEDULES = ("none", "liveness", "grouped")

# Byte alignment for views carved out of a color's slab (covers every numpy
# dtype and keeps tuple parts cache-line separated).
_ALIGN = 64

# Ops whose forward may return a view of (or exactly) one of its inputs.
# They keep their zero-copy behavior under plans; the liveness pass unions
# their storage with their inputs' so a live view is never recycled over.
# Third-party view-producing ops can be added via :func:`mark_alias_op`;
# unknown ops default to the copy fallback, which is alias-safe by
# construction (values are copied out of whatever the op returned).
ALIAS_OPS = {"reshape", "reshape_like", "item", "reduce_to_shape"}


def mark_alias_op(name: str) -> None:
    """Declare that op ``name`` may return a view of an input.

    Affects plans compiled afterwards; already-compiled plans keep their
    tape.
    """
    ALIAS_OPS.add(name)


@dataclass
class PlanStats:
    """Deterministic counters the plan tests and benchmarks assert on."""

    topo_sorts: int = 0  # graph traversals performed (1 per compile)
    arena_builds: int = 0  # warm runs: first sight of a feed-shape signature
    arena_evictions: int = 0  # warm arenas dropped by the max_arenas cap
    runs: int = 0  # total executions, warm and steady
    feed_allocs: int = 0  # plan-owned feed staging buffers allocated
    feed_evictions: int = 0  # feed buffers dropped by the store cap
    in_place_feeds: int = 0  # run feeds already staged in plan feed buffers
    spans: int = 0  # fork/join spans in the scheduled tape (set at compile)
    max_span_width: int = 0  # widest span in the scheduled tape
    span_batches: int = 0  # multi-record spans dispatched to the thread pool
    spans_inlined: int = 0  # multi-record spans run inline (< span_min_bytes)


class _Record:
    """One operator application on the flattened tape."""

    __slots__ = (
        "node",
        "op",
        "forward",
        "forward_out",
        "input_slots",
        "attrs",
        "out_slot",
        "mode",
    )

    def __init__(self, node, forward, forward_out, input_slots, attrs, out_slot, mode):
        self.node = node
        self.op = node.op
        self.forward = forward
        self.forward_out = forward_out
        self.input_slots = input_slots
        self.attrs = attrs
        self.out_slot = out_slot
        self.mode = mode


class BufferArena:
    """Colored per-record output buffers for one feed-shape signature.

    ``buffers[i]`` is the destination for tape record ``i``: an ndarray
    view into one of the arena's color slabs, a tuple of views
    (multi-output kernels like ``tanh_fused``), or ``None`` for alias
    records and exotic outputs.  ``alloc_count`` counts color slabs and
    ``alloc_bytes`` their total footprint; both only ever grow at build
    time — a warmed plan performs zero arena allocations, which the
    benchmarks assert deterministically.  ``fifo_nbytes`` is the footprint
    the PR 3 FIFO shape-keyed recycler would have needed for the same tape
    and shapes — the baseline the coloring allocator is regression-tested
    against.  ``prefusion_nbytes`` is the colored footprint the *pre-fusion*
    tape would have needed (simulated, never allocated) — the fusion pass's
    own regression baseline; it equals ``alloc_bytes`` on the numpy
    backend.  ``color_candidates`` records the byte total of every coloring
    candidate order tried (first-fit by size, first-fit in tape order,
    best-fit by size); ``alloc_bytes`` is their minimum.  ``span_bytes[i]``
    estimates span ``i``'s work (sum of member output bytes) for the
    ``span_min_bytes`` fork threshold.
    """

    __slots__ = ("signature", "buffers", "alloc_count", "alloc_bytes",
                 "fifo_nbytes", "prefusion_nbytes", "span_bytes",
                 "color_candidates")

    def __init__(self, signature):
        self.signature = signature
        self.buffers: list = []
        self.alloc_count = 0
        self.alloc_bytes = 0
        self.fifo_nbytes = 0
        self.prefusion_nbytes = 0
        self.span_bytes: list[int] = []
        self.color_candidates: dict[str, int] = {}

    def _new(self, shape, dtype):
        buf = np.empty(shape, dtype)
        self.alloc_count += 1
        self.alloc_bytes += buf.nbytes
        return buf


def _schedule_tape(records: list, fetch_slots: Sequence[int], mode: str) -> list:
    """Stage 2: reorder tape records (data deps respected) before liveness.

    ``"liveness"`` runs a greedy list scheduler that, among ready records,
    picks the one retiring the most inputs (last-consumer-first), shrinking
    liveness ranges so the coloring allocator can overlap more buffers.
    ``"grouped"`` additionally prefers records whose kernel matches the
    previously scheduled one, producing adjacent same-kernel runs that the
    span partitioner can fork across threads.  Ties break on the original
    tape index, so both schedules are deterministic.
    """
    n = len(records)
    if mode == "none" or n <= 1:
        return records
    producer: dict[int, int] = {}
    for i, rec in enumerate(records):
        producer[rec.out_slot] = i
    deps: list[list[int]] = []
    users: list[list[int]] = [[] for _ in range(n)]
    for i, rec in enumerate(records):
        ds = sorted({producer[s] for s in rec.input_slots if s in producer})
        deps.append(ds)
        for d in ds:
            users[d].append(i)
    indeg = [len(ds) for ds in deps]
    pending_users = [len(users[i]) for i in range(n)]
    fetch_set = set(fetch_slots)
    ready = [i for i in range(n) if indeg[i] == 0]
    order: list[int] = []
    last_op: Optional[str] = None
    grouped = mode == "grouped"
    while ready:
        best = ready[0]
        best_key = None
        for i in ready:
            kills = 0
            for d in deps[i]:
                if pending_users[d] == 1 and records[d].out_slot not in fetch_set:
                    kills += 1
            if grouped:
                key = (records[i].op == last_op, kills, -i)
            else:
                key = (kills, -i)
            if best_key is None or key > best_key:
                best_key = key
                best = i
        ready.remove(best)
        order.append(best)
        last_op = records[best].op
        for d in deps[best]:
            pending_users[d] -= 1
        for u in users[best]:
            indeg[u] -= 1
            if indeg[u] == 0:
                ready.append(u)
    if len(order) != n:  # cycles cannot happen on a topo-sorted tape
        raise RuntimeError("tape scheduler failed to order all records")
    return [records[i] for i in order]


def _partition_spans(records: list, find) -> list[tuple[int, int]]:
    """Stage 5: cut the scheduled tape into fork/join spans.

    A span is a maximal run of consecutive records that are pairwise
    independent: no member reads a slot another member writes, and no two
    members share a storage group (the alias-union structure).  Buffer
    disjointness inside a span follows from coloring soundness (two groups
    live at the same tape point always get different colors) and is proved
    independently by verifier rule P109.
    """
    spans: list[tuple[int, int]] = []
    n = len(records)
    start = 0
    produced: set[int] = set()
    roots: set[int] = set()
    for i, rec in enumerate(records):
        root = find(rec.out_slot)
        conflict = root in roots or any(s in produced for s in rec.input_slots)
        if i > start and conflict:
            spans.append((start, i))
            start = i
            produced = set()
            roots = set()
        produced.add(rec.out_slot)
        roots.add(root)
    if n:
        spans.append((start, n))
    return spans


def _analyze(records: list, fetch_slots: Sequence[int], n_slots: int):
    """Stages 3+5 for an arbitrary tape: liveness, alias groups, spans.

    Returns ``(find, death, spans, span_start, span_end)``.  Factored out
    of ``ExecutionPlan.__init__`` so the arena builder can run the same
    analysis on the *pre-fusion* tape when simulating the fusion pass's
    memory baseline.
    """
    last_use = [-1] * n_slots
    for r_idx, rec in enumerate(records):
        for s in rec.input_slots:
            last_use[s] = r_idx  # records iterate in ascending order
    for s in fetch_slots:
        last_use[s] = _INF

    # Storage groups: alias outputs share their inputs' storage, so a
    # group dies only when its *last* member does.
    parent = list(range(n_slots))

    def find(s: int) -> int:
        while parent[s] != s:
            parent[s] = parent[parent[s]]
            s = parent[s]
        return s

    for rec in records:
        if rec.mode == _MODE_ALIAS:
            root = find(rec.out_slot)
            for s in rec.input_slots:
                parent[find(s)] = root
    death: dict[int, int] = {}
    for s in range(n_slots):
        r = find(s)
        d = last_use[s]
        if d > death.get(r, -1):
            death[r] = d

    spans = _partition_spans(records, find)
    n_recs = len(records)
    span_start = [0] * n_recs
    span_end = [0] * n_recs
    for start, stop in spans:
        for i in range(start, stop):
            span_start[i] = start
            span_end[i] = stop - 1
    return find, death, spans, span_start, span_end


def _color_units(units: list):
    """Greedy interference coloring, best of three candidate orders.

    ``units`` rows are ``[birth, death, padded, ...]`` (span-aware ranges).
    Candidates: first-fit over decreasing size, first-fit in tape order,
    and best-fit (tightest compatible color) over decreasing size — the
    size-aware order that closes the PR 9 ROADMAP thread.  Returns
    ``(total_bytes, colors, assign, candidates)`` for the byte-minimal
    candidate; ``candidates`` maps candidate name -> total bytes, so the
    arena can prove the winner never regresses any single strategy.
    """

    def color_in(order, best_fit: bool):
        colors: list[list] = []  # [capacity, [unit indices]]
        assign = [0] * len(units)
        for ui in order:
            birth, dth, padded = units[ui][0], units[ui][1], units[ui][2]
            chosen = -1
            chosen_key = None
            for ci, (cap, members) in enumerate(colors):
                ok = True
                for mi in members:
                    mb, md = units[mi][0], units[mi][1]
                    if birth <= md and mb <= dth:
                        ok = False
                        break
                if not ok:
                    continue
                if not best_fit:
                    chosen = ci
                    break
                # Best fit: tightest color that already holds the unit,
                # else the one needing the least growth; ties on index.
                key = (0, cap - padded) if cap >= padded else (1, padded - cap)
                if chosen_key is None or key < chosen_key:
                    chosen_key = key
                    chosen = ci
            if chosen < 0:
                colors.append([padded, [ui]])
                assign[ui] = len(colors) - 1
            else:
                colors[chosen][0] = max(colors[chosen][0], padded)
                colors[chosen][1].append(ui)
                assign[ui] = chosen
        return sum(c[0] for c in colors), colors, assign

    by_size = sorted(range(len(units)),
                     key=lambda u: (-units[u][2], units[u][0]))
    results = {
        "first_fit_size": color_in(by_size, best_fit=False),
        "first_fit_tape": color_in(range(len(units)), best_fit=False),
        "best_fit_size": color_in(by_size, best_fit=True),
    }
    candidates = {name: r[0] for name, r in results.items()}
    best_name = min(results, key=lambda nm: (results[nm][0],))
    total, colors, assign = results[best_name]
    return total, colors, assign, candidates


def _make_units(records: list, shape_of, find, death, span_start, span_end):
    """Allocation units for coloring: one per buffer-producing record.

    ``shape_of(r_idx, rec)`` returns the record's output description —
    an ndarray-like ``(shape, dtype)`` tuple, a list of such tuples for
    tuple outputs, or ``None`` for unmanaged/alias outputs.  Unit rows are
    ``[birth, death_eff, padded, raw, parts, key, r_idx, dth]`` (span-aware
    interference ranges; raw/dth feed the FIFO baseline simulation).
    """
    units: list[list] = []
    for r_idx, rec in enumerate(records):
        if rec.mode == _MODE_ALIAS:
            continue
        desc = shape_of(r_idx, rec)
        if desc is None:
            continue
        if isinstance(desc, list):  # tuple output: padded multi-part layout
            off = 0
            parts = []
            raw = 0
            for shape, dtype in desc:
                nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                parts.append((shape, dtype, off))
                off = (off + nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
                raw += nbytes
            last_shape, last_dtype = desc[-1]
            last_nbytes = (
                int(np.prod(last_shape, dtype=np.int64)) * last_dtype.itemsize
            )
            padded = parts[-1][2] + last_nbytes if desc else 0
            key = ("tuple",) + tuple((shape, dtype) for shape, dtype in desc)
        else:
            shape, dtype = desc
            parts = None
            padded = raw = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            key = (shape, dtype)
        dth = death[find(rec.out_slot)]
        dth_eff = span_end[dth] if 0 <= dth < _INF else dth
        units.append([span_start[r_idx], dth_eff, padded, raw,
                      parts, key, r_idx, dth])
    return units


def _simulate_colored_nbytes(records: list, fetch_slots: Sequence[int],
                             n_slots: int, shape_of) -> int:
    """Colored arena footprint of ``records`` — simulated, never allocated.

    Used by the arena builder to price the *pre-fusion* tape with the same
    span-aware analysis and candidate coloring as the real arena, giving
    the fusion pass its before/after memory figures on identical terms.
    """
    find, death, _spans, span_start, span_end = _analyze(
        records, fetch_slots, n_slots
    )
    units = _make_units(records, shape_of, find, death, span_start, span_end)
    total, _colors, _assign, _candidates = _color_units(units)
    return total


class ExecutionPlan:
    """A compiled, slot-indexed execution tape for fixed (fetches, feeds).

    Parameters
    ----------
    fetches:
        Node or sequence of nodes to evaluate (same convention as
        ``Session.run``; a single node yields a single result).
    feed_nodes:
        The nodes whose values are supplied per run, in the positional order
        :meth:`run_list` expects.  Every reachable placeholder must be
        listed; extra entries that the fetches never touch are ignored.
    copy_fetches:
        When True (default) fetched arrays are copied out of the arena, so
        results stay valid forever.  Hot-path consumers that consume results
        before the next run pass False and skip the copies — fetched arrays
        are then views of arena buffers, valid until the next ``run``.
    max_arenas:
        Cap on warm arenas held at once (default 32).  A workload cycling
        through more shape signatures than this evicts the oldest arena
        (FIFO) and re-warms it on revisit — bounding resident memory for
        servers whose micro-batch occupancy varies freely.  Steady
        workloads never hit the cap.
    schedule:
        Tape-scheduling pass: ``"liveness"`` (default — shrink liveness
        ranges before coloring), ``"grouped"`` (liveness + adjacent
        same-kernel runs), or ``"none"`` (keep the topological order).
        Deterministic; results are bitwise identical for every value.
    span_workers:
        Thread count for parallel span execution (default 1 = sequential).
        Multi-record spans are forked across ``span_workers`` threads and
        joined before the next span; numpy kernels release the GIL, so
        independent records of ONE batch overlap on real cores.  Results
        are bitwise identical for every value (span members write disjoint
        buffers — rule P109).
    backend:
        Kernel backend (:mod:`repro.tfmini.backends`): ``"numpy"`` (one
        registered kernel per record), ``"fused"`` (elementwise fusion +
        blocked interpreter — bitwise, smaller arenas, fewer memory
        passes), or ``"numexpr"`` when that optional package is installed
        (tolerance-tiered).  ``None`` (default) defers to the
        ``REPRO_PLAN_BACKEND`` environment variable, falling back to
        ``"numpy"``.
    span_min_bytes:
        Fork threshold for parallel span execution: a multi-record span
        whose estimated work (member output bytes) is below this runs
        inline even when ``span_workers > 1`` (counted in
        ``stats.spans_inlined``) — thread handoff costs more than tiny
        kernels recover.  0 (default) forks every multi-record span.
    verify:
        Run the static plan verifier (:mod:`repro.analysis.plancheck`)
        structural checks (P101–P105, P109) at compile time — and again on
        every freshly colored arena — raising ``PlanVerificationError`` on
        any finding.  ``None`` (default) defers to the
        ``REPRO_VERIFY_PLANS`` environment variable, so a whole test run or
        CI job can be hardened without touching call sites.

    A plan owns mutable run state (the slot value table and the arenas), so
    a single plan must not be run from two threads at once — one plan per
    driver, like the batched engine's scratch pool.  (The plan's own span
    pool is run state too: it is only ever driven from inside ``run``.)
    The serving pool satisfies this by construction: every worker thread
    owns its engines (and therefore their plans) exclusively, and
    ``BatchedEvaluator`` raises on concurrent entry.  *Different* plans may
    run on different threads concurrently — the tape's kernels spend most
    of their time in GIL-releasing BLAS/ufunc calls, which is exactly what
    the multi-worker serving pool overlaps.  The counter accessors below
    (``alloc_count``, ``arena_nbytes``) stay safe to call from a
    monitoring thread.
    """

    def __init__(
        self,
        fetches: Sequence[Node] | Node,
        feed_nodes: Sequence[Node],
        copy_fetches: bool = True,
        max_arenas: int = 32,
        schedule: str = "liveness",
        span_workers: int = 1,
        backend: Optional[str] = None,
        span_min_bytes: int = 0,
        verify: Optional[bool] = None,
    ):
        if schedule not in SCHEDULES:
            raise ValueError(
                f"schedule must be one of {SCHEDULES}, got {schedule!r}"
            )
        from repro.tfmini.backends import get_backend  # lazy: avoids a cycle

        self._single = isinstance(fetches, Node)
        fetch_list: list[Node] = [fetches] if self._single else list(fetches)
        self._copy_fetches = copy_fetches
        self.max_arenas = max(int(max_arenas), 1)
        self.schedule = schedule
        self.span_workers = max(int(span_workers), 1)
        self.span_min_bytes = max(int(span_min_bytes), 0)
        self._backend = get_backend(backend)
        self.stats = PlanStats()

        # --- stage 1: tape build -----------------------------------------
        order = topo_sort(fetch_list)
        self.stats.topo_sorts += 1
        n_slots = len(order)
        slot_of = {id(n): i for i, n in enumerate(order)}
        self._n_slots = n_slots
        self._values: list = [None] * n_slots
        self._fetch_slots = [slot_of[id(f)] for f in fetch_list]

        feed_ids = {id(n) for n in feed_nodes}
        self._feed_nodes = list(feed_nodes)
        self._feed_slots = [slot_of.get(id(n), -1) for n in feed_nodes]

        self._var_slots: list[tuple[int, Variable]] = []
        self._const_slots: list[tuple[int, np.ndarray]] = []
        records: list[_Record] = []
        for i, node in enumerate(order):
            if id(node) in feed_ids:
                continue
            if isinstance(node, Variable):
                self._var_slots.append((i, node))
                continue
            if node.op == "constant":
                self._values[i] = node.attrs["value"]
                self._const_slots.append((i, node.attrs["value"]))
                continue
            if node.op == "placeholder":
                raise KeyError(
                    f"placeholder '{node.name}' is reachable from the fetches "
                    f"but not listed in feed_nodes"
                )
            opdef = get_op(node.op)
            if node.op in ALIAS_OPS:
                mode = _MODE_ALIAS
            elif opdef.forward_out is not None:
                mode = _MODE_OUT
            else:
                mode = _MODE_COPY
            records.append(
                _Record(
                    node,
                    opdef.forward,
                    opdef.forward_out,
                    tuple(slot_of[id(inp)] for inp in node.inputs),
                    node.attrs,
                    i,
                    mode,
                )
            )

        # --- stage 2: tape scheduling ------------------------------------
        records = _schedule_tape(records, self._fetch_slots, schedule)
        # The scheduled pre-fusion tape is retained so the arena builder
        # can simulate its colored footprint — the fusion pass's memory
        # baseline (``prefusion_arena_nbytes``).
        self._records_prefusion = records

        # --- stage 2b: backend preparation (elementwise fusion) ----------
        # Fusing backends collapse maximal elementwise chains into single
        # blocked-interpreter records; internal member slots vanish from
        # the tape, and therefore from the liveness problem and the arena.
        records, groups = self._backend.prepare(records, self._fetch_slots)
        self._fused_groups = groups
        self._records = records

        # --- stages 3+5: liveness, alias groups, span partition on the
        # scheduled (post-fusion) order; stage 4, coloring, happens per
        # arena once shapes are known.  Span-aware liveness: inside a span
        # every member's reads and writes happen CONCURRENTLY under
        # ``span_workers > 1``, so a record's output is born at its span's
        # *start* and a value read at tape index d stays live to the *end*
        # of d's span — without this, a value whose last read is early in a
        # span could share a color with a later span member's output (safe
        # sequentially, a write-after-read race in parallel).
        find, death, spans, span_start, span_end = _analyze(
            records, self._fetch_slots, n_slots
        )
        self._find = find
        self._death = death
        self._spans = spans
        self._span_start = span_start
        self._span_end = span_end
        widths = [stop - start for start, stop in self._spans]
        self.stats.spans = len(self._spans)
        self.stats.max_span_width = max(widths, default=0)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_size = 0

        self._arenas: dict[tuple, BufferArena] = {}
        # Plan-owned feed staging buffers (the "arena-aware batched engine"
        # seam): callers stage feed values directly into these persistent
        # slots instead of a second scratch pool, so one pool serves both
        # the staging side and the execution side.  Keyed by an arbitrary
        # caller key + shape + dtype, like ScratchPool; id-indexed so
        # ``run_list`` can count in-place feeds without hashing arrays.
        self._feed_store: dict[tuple, np.ndarray] = {}
        self._feed_ids: set[int] = set()
        self.feed_nbytes = 0

        if verify is None:
            verify = os.environ.get("REPRO_VERIFY_PLANS", "") not in ("", "0")
        self._verify_arenas = bool(verify)
        if verify:
            self.verify(raise_on_findings=True)

    # ------------------------------------------------------------------ info

    def verify(self, spec=None, check_values: bool = False,
               raise_on_findings: bool = False):
        """Statically verify this plan; returns a ``PlanReport``.

        Structural soundness (liveness, alias groups, arena buffer
        disjointness, fetch pinning, span independence — rules P101–P105
        and P109) is always checked.  Pass a feed ``spec`` (``{feed node or
        name: FeedSpec}``, see
        :func:`repro.analysis.plancheck.dp_feed_spec`) to also run symbolic
        shape/dtype inference over the tape (P106–P108);
        ``check_values=True`` additionally compares inferred shapes/dtypes
        against the concrete arrays of the most recent run.
        """
        from repro.analysis.plancheck import PlanVerificationError, verify_plan

        report = verify_plan(self, spec=spec, check_values=check_values)
        if raise_on_findings and not report.ok:
            raise PlanVerificationError(report)
        return report

    def storage_root(self, slot: int) -> int:
        """Representative slot of ``slot``'s storage group (alias union)."""
        return self._find(slot)

    def death_index(self, slot: int) -> int:
        """Last tape index reading ``slot``'s storage group (``1 << 62`` =
        pinned forever, ``-1`` = never read)."""
        return self._death.get(self._find(slot), -1)

    @property
    def n_records(self) -> int:
        return len(self._records)

    @property
    def arenas(self) -> dict[tuple, BufferArena]:
        return self._arenas

    @property
    def spans(self) -> list[tuple[int, int]]:
        """The fork/join span partition of the scheduled tape."""
        return list(self._spans)

    def span_widths(self) -> list[int]:
        """Width (record count) of each span, in tape order."""
        return [stop - start for start, stop in self._spans]

    def alloc_count(self) -> int:
        """Total arena slab allocations across all shape signatures.

        Safe to call from a monitoring thread while the owning thread runs
        the plan: the arena table is snapshotted (atomic under the GIL)
        before summing.
        """
        return sum(a.alloc_count for a in list(self._arenas.values()))

    def arena_nbytes(self) -> int:
        """Bytes held by the colored arenas (all shape signatures)."""
        return sum(a.alloc_bytes for a in list(self._arenas.values()))

    def fifo_arena_nbytes(self) -> int:
        """Bytes the PR 3 FIFO shape-keyed recycler would have needed for
        the same tapes and shapes — the coloring allocator's regression
        baseline (simulated at arena-build time, never allocated)."""
        return sum(a.fifo_nbytes for a in list(self._arenas.values()))

    def prefusion_arena_nbytes(self) -> int:
        """Colored bytes the *pre-fusion* tape would have needed (all
        signatures) — the fusion pass's memory baseline, simulated with the
        same span-aware analysis and candidate coloring as the real arena.
        Equals :meth:`arena_nbytes` on the numpy backend."""
        return sum(a.prefusion_nbytes for a in list(self._arenas.values()))

    @property
    def backend(self) -> str:
        """Name of the kernel backend this plan compiled against."""
        return self._backend.name

    @property
    def backend_bitwise(self) -> bool:
        """Whether the backend holds the bitwise verification contract."""
        return self._backend.bitwise

    @property
    def fused_groups(self) -> list:
        """The backend's fused elementwise groups (empty on ``numpy``)."""
        return list(self._fused_groups)

    def records_fused(self) -> int:
        """Pre-fusion records folded into fused records."""
        return sum(len(g.members) for g in self._fused_groups)

    def fused_chains(self) -> int:
        """Number of fused elementwise chains/trees on the tape."""
        return len(self._fused_groups)

    def fused_passes_saved(self) -> int:
        """Full-array memory passes eliminated by fusion: every member but
        each group's escape no longer round-trips DRAM per run."""
        return sum(len(g.members) - 1 for g in self._fused_groups)

    def fused_tiles_run(self) -> int:
        """Blocked-interpreter tiles executed across all fused groups."""
        return sum(g.tiles_run for g in self._fused_groups)

    def fused_scratch_nbytes(self) -> int:
        """Bytes of blocked-interpreter tile/broadcast scratch currently
        held by the fused groups (all cached signatures)."""
        return sum(g.scratch_nbytes() for g in self._fused_groups)

    def feed_buffer(self, key, shape: tuple, dtype=np.float64) -> np.ndarray:
        """Persistent plan-owned staging destination for a feed value.

        The batched engine stages its sorted feed tensors directly into
        these slots (``np.take(..., out=plan.feed_buffer(...))``) instead of
        into a separate scratch pool, unifying feed staging with the plan's
        storage — the first slice of the ROADMAP "arena-aware batched
        engine" item.  Buffers are keyed ``(key, shape, dtype)`` and
        allocated once per distinct shape (``stats.feed_allocs``); a value
        passed to :meth:`run_list` that *is* one of these buffers (or a view
        of one) counts toward ``stats.in_place_feeds``.

        The store is bounded like the arenas: beyond ``8 * max_arenas``
        buffers the oldest is dropped (FIFO, ``stats.feed_evictions``) and
        re-allocated on revisit, so free-form shape churn — a server whose
        batch occupancy varies, a migration-heavy distributed run — cannot
        grow resident memory without bound.  Steady workloads (a handful of
        feed shapes) never hit the cap.

        Like the arenas, feed buffers are single-threaded run state —
        callers stage and run from the one thread that owns the plan.
        """
        store_key = (key, tuple(shape), np.dtype(dtype))
        buf = self._feed_store.get(store_key)
        if buf is None:
            buf = np.empty(shape, dtype)
            while len(self._feed_store) >= 8 * self.max_arenas:
                # FIFO eviction, same policy as the arena cap.
                old = self._feed_store.pop(next(iter(self._feed_store)))
                self._feed_ids.discard(id(old))
                self.feed_nbytes -= old.nbytes
                self.stats.feed_evictions += 1
            self._feed_store[store_key] = buf
            self._feed_ids.add(id(buf))
            self.stats.feed_allocs += 1
            self.feed_nbytes += buf.nbytes
        return buf

    def release_arenas(self) -> None:
        """Drop every buffer arena, feed staging buffer, and the span
        thread pool (the compiled tape is kept).

        The arena holds roughly the graph's peak live set *persistently*;
        long-lived processes that are done with a shape regime (or want to
        hand the memory back before measuring something allocation-
        sensitive) release here and re-warm on the next run.  ``stats``
        counters are cumulative and unaffected; ``alloc_count()`` restarts
        from zero.
        """
        self._arenas.clear()
        self._feed_store.clear()
        self._feed_ids.clear()
        self.feed_nbytes = 0
        for g in self._fused_groups:
            g.release()
        self._values = [None] * self._n_slots
        for slot, value in self._const_slots:
            self._values[slot] = value
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_size = 0

    # ------------------------------------------------------------------ run

    def run(self, feeds: Optional[dict] = None, session=None):
        """Evaluate the fetches; mirrors ``Session.run(fetches, feeds)``.

        ``session`` (optional) supplies profiling: when ``session.profile``
        is set, per-operator stats are recorded into ``session.stats``.
        """
        feeds = feeds or {}
        vals = []
        for node, slot in zip(self._feed_nodes, self._feed_slots):
            if slot < 0:
                vals.append(None)
                continue
            try:
                vals.append(feeds[node])
            except KeyError:
                raise KeyError(
                    f"plan feed '{node.name}' missing from feeds"
                ) from None
        return self.run_list(vals, session=session)

    def run_list(self, feed_values: Sequence, session=None):
        """Evaluate with feed values positionally matching ``feed_nodes``."""
        if len(feed_values) != len(self._feed_slots):
            # Without this, zip truncation would silently reuse the previous
            # run's array for the missing feed — wrong results, no exception.
            raise ValueError(
                f"plan expects {len(self._feed_slots)} feed values "
                f"(got {len(feed_values)})"
            )
        values = self._values
        feed_ids = self._feed_ids
        in_place = 0
        sig = []
        for slot, v in zip(self._feed_slots, feed_values):
            if slot < 0:
                continue
            if type(v) is not np.ndarray:
                v = np.asarray(v)
            elif id(v) in feed_ids or id(v.base) in feed_ids:
                # Already staged into a plan-owned feed slot (or a view of
                # one) — the caller paid no extra staging copy for it.
                in_place += 1
            values[slot] = v
            # Tiny integer feeds are shape *parameters* (e.g. the DP graph's
            # ``natoms``: ProdForce's output row count), so they join the
            # signature by value — same-shaped feeds with a different count
            # must not share an arena.
            if v.dtype.kind in "iu" and v.size <= 4:
                sig.append((v.shape, v.dtype, v.tobytes()))
            else:
                sig.append((v.shape, v.dtype))
        for slot, var in self._var_slots:
            values[slot] = var.value
        signature = tuple(sig)
        self.stats.in_place_feeds += in_place

        profile = session is not None and session.profile
        arena = self._arenas.get(signature)
        if arena is None:
            self._warm_run(profile, session)
            while len(self._arenas) >= self.max_arenas:
                # FIFO eviction: drop the oldest warm arena (re-warms on
                # revisit) so free-form signature churn can't grow memory
                # without bound.
                self._arenas.pop(next(iter(self._arenas)))
                self.stats.arena_evictions += 1
            self._arenas[signature] = self._build_arena(signature)
            self.stats.arena_builds += 1
            if self._verify_arenas:
                # The soundness gate on the colored result: P103 re-checks
                # buffer-address disjointness of live storage groups, P109
                # re-checks span independence, on the arena just built.
                self.verify(raise_on_findings=True)
        elif profile:
            self._steady_run_profiled(arena, session)
        elif self.span_workers > 1:
            self._steady_run_spans(arena)
        else:
            self._steady_run(arena)
        self.stats.runs += 1

        outs = [values[s] for s in self._fetch_slots]
        if self._copy_fetches:
            outs = [
                tuple(e.copy() for e in o)
                if isinstance(o, tuple)
                else (o.copy() if isinstance(o, np.ndarray) else o)
                for o in outs
            ]
        return outs[0] if self._single else outs

    # ----------------------------------------------------------- execution

    def _warm_run(self, profile: bool, session) -> None:
        """First run for a signature: plain kernels, shapes recorded."""
        values = self._values
        for rec in self._records:
            ins = [values[s] for s in rec.input_slots]
            if profile:
                t0 = time.perf_counter()
                out = rec.forward(ins, rec.attrs)
                dt = time.perf_counter() - t0
                session.stats.record(
                    rec.op, dt, op_flops(rec.node, ins, out), _result_nbytes(out)
                )
            else:
                out = rec.forward(ins, rec.attrs)
            values[rec.out_slot] = out

    def _build_arena(self, signature) -> BufferArena:
        """Stage 4: interference-color the warm run's shapes into slabs.

        Each buffer-producing record is an allocation unit with liveness
        range ``[tape index, storage-group death]``.  Units whose ranges
        overlap *interfere* and must not share storage; non-interfering
        units may.  Greedy coloring (three candidate orders — first-fit by
        decreasing size, first-fit in tape order, best-fit by decreasing
        size — keeping whichever yields fewest bytes) assigns each unit a
        color; the arena allocates ONE byte slab per color, sized to the
        color's largest member, and every unit's buffer is a shape/dtype
        view into its slab.  Fused-internal member slots never appear as
        units (the fused record owns one escape buffer; intermediates live
        in the blocked interpreter's tile scratch), so fused arenas color
        strictly tighter than the pre-fusion tape, whose colored footprint
        is simulated alongside as ``prefusion_nbytes``.  The FIFO
        recycler's footprint is simulated as ``fifo_nbytes`` (never
        allocated).
        """
        values = self._values
        records = self._records
        find, death = self._find, self._death
        span_start, span_end = self._span_start, self._span_end
        arena = BufferArena(signature)
        buffers = arena.buffers
        buffers.extend([None] * len(records))

        # --- allocation units --------------------------------------------
        # Interference uses span-aware ranges (born at span start, dead at
        # the end of the last reader's span) so coloring soundness covers
        # concurrent span execution, not just the sequential order.
        def shape_of(r_idx, rec):
            val = values[rec.out_slot]
            if isinstance(val, np.ndarray):
                return (val.shape, val.dtype)
            if isinstance(val, tuple) and all(
                isinstance(e, np.ndarray) for e in val
            ):
                return [(e.shape, e.dtype) for e in val]
            return None  # exotic output — leave unmanaged

        units = _make_units(records, shape_of, find, death,
                            span_start, span_end)

        # --- interference coloring (best of three candidate orders) ------
        _total, colors, assign, candidates = _color_units(units)
        arena.color_candidates = candidates

        slabs = [arena._new((cap,), np.uint8) for cap, _members in colors]
        for ui, unit in enumerate(units):
            r_idx, parts, key = unit[6], unit[4], unit[5]
            slab = slabs[assign[ui]]
            if parts is None:
                shape, dtype = key
                buffers[r_idx] = np.ndarray(shape, dtype=dtype, buffer=slab)
            else:
                buffers[r_idx] = tuple(
                    np.ndarray(shape, dtype=dtype, buffer=slab, offset=off)
                    for shape, dtype, off in parts
                )

        # --- FIFO baseline simulation (what PR 3's recycler would use) ---
        # Uses the RAW sequential ranges (tape index, unextended death):
        # the baseline allocator predates spans and recycled a dead buffer
        # only for a later record with the exact same shape and dtype.
        unit_at = {u[6]: u for u in units}
        pool: dict[tuple, int] = {}
        heap: list = []
        fifo = 0
        for r_idx in range(len(records)):
            while heap and heap[0][0] < r_idx:
                _, _, key = heappop(heap)
                pool[key] = pool.get(key, 0) + 1
            u = unit_at.get(r_idx)
            if u is None:
                continue
            key = u[5]
            if pool.get(key, 0) > 0:
                pool[key] -= 1
            else:
                fifo += u[3]
            if u[7] < _INF:
                heappush(heap, (u[7], r_idx, key))
        arena.fifo_nbytes = fifo

        # --- per-span work estimate (for the span_min_bytes threshold) ---
        span_index = {start: si for si, (start, _stop) in
                      enumerate(self._spans)}
        span_bytes = [0] * len(self._spans)
        for u in units:
            span_bytes[span_index[span_start[u[6]]]] += u[3]
        arena.span_bytes = span_bytes

        # --- pre-fusion colored footprint (simulated, never allocated) ---
        # Shapes for surviving records come from the warm values; shapes
        # for fused-internal members from the group's warm-run metadata
        # (recorded by run_unfused immediately before this build).
        if self._fused_groups:
            internal_meta: dict[int, tuple] = {}
            for g in self._fused_groups:
                meta = g.last_meta or []
                for m, desc in zip(g.members, meta):
                    internal_meta[m.out_slot] = desc

            def pre_shape_of(r_idx, rec):
                desc = internal_meta.get(rec.out_slot)
                if desc is not None:
                    return desc
                return shape_of(r_idx, rec)

            arena.prefusion_nbytes = _simulate_colored_nbytes(
                self._records_prefusion, self._fetch_slots, self._n_slots,
                pre_shape_of,
            )
        else:
            arena.prefusion_nbytes = arena.alloc_bytes
        return arena

    def _steady_run(self, arena: BufferArena) -> None:
        """The hot loop: flat tape, slot indexing, arena destinations."""
        values = self._values
        for rec, buf in zip(self._records, arena.buffers):
            ins = [values[s] for s in rec.input_slots]
            if buf is None:
                values[rec.out_slot] = rec.forward(ins, rec.attrs)
            elif rec.mode == _MODE_OUT:
                rec.forward_out(ins, rec.attrs, buf)
                values[rec.out_slot] = buf
            else:  # _MODE_COPY
                out = rec.forward(ins, rec.attrs)
                if type(buf) is tuple:
                    for b, o in zip(buf, out):
                        np.copyto(b, o)
                else:
                    np.copyto(buf, out)
                values[rec.out_slot] = buf

    def _exec_range(self, records, buffers, lo: int, hi: int) -> None:
        """Execute tape records [lo, hi) — the span worker body.

        Span members write disjoint slot entries and disjoint (colored)
        buffers, so concurrent ``_exec_range`` calls over disjoint ranges
        of one span never race (rule P109 proves the partition).
        """
        values = self._values
        for i in range(lo, hi):
            rec = records[i]
            buf = buffers[i]
            ins = [values[s] for s in rec.input_slots]
            if buf is None:
                values[rec.out_slot] = rec.forward(ins, rec.attrs)
            elif rec.mode == _MODE_OUT:
                rec.forward_out(ins, rec.attrs, buf)
                values[rec.out_slot] = buf
            else:  # _MODE_COPY
                out = rec.forward(ins, rec.attrs)
                if type(buf) is tuple:
                    for b, o in zip(buf, out):
                        np.copyto(b, o)
                else:
                    np.copyto(buf, out)
                values[rec.out_slot] = buf

    def _ensure_pool(self) -> ThreadPoolExecutor:
        want = self.span_workers - 1
        if self._pool is None or self._pool_size != want:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._pool = ThreadPoolExecutor(
                max_workers=want, thread_name_prefix="plan-span"
            )
            self._pool_size = want
        return self._pool

    def _steady_run_spans(self, arena: BufferArena) -> None:
        """Fork/join steady-state execution (``span_workers > 1``).

        Single-record spans run inline; a multi-record span is chunked
        across the pool plus the calling thread and joined before the next
        span starts.  Record order *within* a chunk is tape order, and
        every record writes its own slot and buffer, so results are bitwise
        identical to the sequential loop.

        Spans whose estimated work (member output bytes, measured per
        arena at build time) falls under ``span_min_bytes`` also run
        inline (``stats.spans_inlined``): forking a handful of microsecond
        kernels costs more in thread handoff than it recovers in overlap.
        Inlining only changes *where* a record executes, never its buffer
        or order class, so the bitwise contract is unaffected.
        """
        records = self._records
        buffers = arena.buffers
        pool = self._ensure_pool()
        w_max = self.span_workers
        span_bytes = arena.span_bytes
        min_bytes = self.span_min_bytes
        for si, (start, stop) in enumerate(self._spans):
            width = stop - start
            if width == 1:
                self._exec_range(records, buffers, start, stop)
                continue
            if min_bytes and span_bytes[si] < min_bytes:
                self._exec_range(records, buffers, start, stop)
                self.stats.spans_inlined += 1
                continue
            w = min(w_max, width)
            bounds = [start + (width * k) // w for k in range(w + 1)]
            futures = [
                pool.submit(self._exec_range, records, buffers,
                            bounds[k], bounds[k + 1])
                for k in range(1, w)
            ]
            self._exec_range(records, buffers, bounds[0], bounds[1])
            for f in futures:
                f.result()
            self.stats.span_batches += 1

    def _steady_run_profiled(self, arena: BufferArena, session) -> None:
        values = self._values
        stats = session.stats
        for rec, buf in zip(self._records, arena.buffers):
            ins = [values[s] for s in rec.input_slots]
            t0 = time.perf_counter()
            if buf is None:
                out = rec.forward(ins, rec.attrs)
            elif rec.mode == _MODE_OUT:
                rec.forward_out(ins, rec.attrs, buf)
                out = buf
            else:
                res = rec.forward(ins, rec.attrs)
                if type(buf) is tuple:
                    for b, o in zip(buf, res):
                        np.copyto(b, o)
                else:
                    np.copyto(buf, res)
                out = buf
            dt = time.perf_counter() - t0
            stats.record(rec.op, dt, op_flops(rec.node, ins, out), _result_nbytes(out))
            values[rec.out_slot] = out


def compile_plan(
    fetches: Sequence[Node] | Node,
    feed_nodes: Sequence[Node],
    copy_fetches: bool = True,
    max_arenas: int = 32,
    schedule: str = "liveness",
    span_workers: int = 1,
    backend: Optional[str] = None,
    span_min_bytes: int = 0,
    verify: Optional[bool] = None,
) -> ExecutionPlan:
    """Compile ``fetches`` into an :class:`ExecutionPlan`.

    Runs the staged pipeline (tape build → ``schedule`` → ``backend``
    fusion → liveness → span partition; interference coloring happens per
    feed-shape signature at warm time) exactly once; every subsequent
    :meth:`ExecutionPlan.run` is a flat tape walk into colored, persistent
    output buffers — forked across ``span_workers`` threads when > 1.
    Results on the bitwise backends (``"numpy"``, ``"fused"``) are bitwise
    identical to ``Session.run`` on the same fetches and feeds for every
    backend/schedule/span_workers combination.  ``verify=True`` (or
    ``REPRO_VERIFY_PLANS=1``) runs the static plan verifier's structural
    checks (including fused-record soundness, rule P110) at compile time
    and on every freshly colored arena.
    """
    return ExecutionPlan(
        fetches,
        feed_nodes,
        copy_fetches=copy_fetches,
        max_arenas=max_arenas,
        schedule=schedule,
        span_workers=span_workers,
        backend=backend,
        span_min_bytes=span_min_bytes,
        verify=verify,
    )
