"""Compiled execution plans — fixed per-run executor cost vs ``Session.run``.

The plan layer's thesis (the paper's Sec 5.3 lesson applied to our own
executor): in a steady-shape loop, graph traversal, per-node dict dispatch
and per-op output allocation are fixed costs that should be paid once, not
once per step.  Two kinds of assertions:

* deterministic (always on): a compiled plan performs exactly ONE
  ``topo_sort`` over its lifetime no matter how many times it runs, the
  buffer arena stops allocating after one warm run per feed-shape
  signature, and the planned result is bitwise identical to the
  ``Session.run`` oracle;
* wall-clock (paired interleaved trials, median-based, gated on
  REPRO_BENCH_STRICT per the noisy-host policy): the planned run of the
  same fetches/feeds is measurably faster than ``Session.run``.

The workload is the real DP graph at laptop scale (tiny water model, small
cell) — the regime where fixed executor cost is a large fraction of a step,
i.e. exactly the regime MD steps and micro-batched serving live in.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    bench_median,
    bench_paired_trials,
    bench_strict,
    print_header,
)
import repro.tfmini as tf
from repro.analysis.structures import water_box
from repro.dp.batch import BatchedEvaluator
from repro.dp.model import DeepPot, DPConfig
from repro.md.neighbor import neighbor_pairs
from repro.tfmini import graph

RESULTS = {}


@pytest.fixture(scope="module")
def model():
    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))


@pytest.fixture(scope="module")
def workload(model):
    """Fixed fetches + feeds: the serial path's full fetch set on one frame."""
    system = water_box((2, 2, 2), seed=0)
    pi, pj = neighbor_pairs(system, model.config.rcut)
    feeds, _order = model.prepare_feeds(system, pi, pj)
    fetches = [model._f_energy, model._f_forces, model._f_virial] + list(
        model._f_e_atoms
    )
    feed_nodes = list(feeds)
    plan = tf.compile_plan(fetches, feed_nodes, copy_fetches=False)
    plan.run(feeds)  # warm the arena
    return fetches, feeds, plan, system, (pi, pj)


def test_one_topo_sort_across_n_runs(workload):
    """Deterministic: N planned runs perform ZERO graph traversals; the one
    traversal happened at compile time."""
    _fetches, feeds, plan, _system, _pl = workload
    before = graph.TOPO_SORT_CALLS
    for _ in range(25):
        plan.run(feeds)
    assert graph.TOPO_SORT_CALLS == before
    assert plan.stats.topo_sorts == 1


def test_zero_steady_state_arena_allocations(workload):
    """Deterministic: the warm arena never allocates again."""
    _fetches, feeds, plan, _system, _pl = workload
    allocs = plan.alloc_count()
    assert allocs > 0  # the arena exists and is in use
    for _ in range(25):
        plan.run(feeds)
    assert plan.alloc_count() == allocs
    assert plan.stats.arena_builds == 1


def test_session_pays_topo_sort_per_run(workload):
    """The oracle's fixed cost is real: one traversal per Session.run."""
    fetches, feeds, _plan, _system, _pl = workload
    sess = tf.Session()
    before = graph.TOPO_SORT_CALLS
    for _ in range(5):
        sess.run(fetches, feeds)
    assert graph.TOPO_SORT_CALLS == before + 5


def test_planned_engine_steady_counters(model):
    """Deterministic, engine level: an MD-style loop (same frame shape every
    step) compiles once, warms once, then runs allocation-free — plan arena
    AND staging scratch."""
    system = water_box((2, 2, 2), seed=1)
    pi, pj = neighbor_pairs(system, model.config.rcut)
    engine = BatchedEvaluator(model)
    engine.evaluate_batch([system], [(pi, pj)])  # compile + warm
    topo_before = graph.TOPO_SORT_CALLS
    arena_before = engine.plan.alloc_count()
    scratch_before = engine.scratch.alloc_count
    for _ in range(10):
        engine.evaluate_batch([system], [(pi, pj)])
    assert graph.TOPO_SORT_CALLS == topo_before
    assert engine.plan.alloc_count() == arena_before
    assert engine.scratch.alloc_count == scratch_before
    assert engine.plan.stats.runs == 11


def test_span_and_coloring_counters(workload):
    """Deterministic: the staged compiler partitioned the tape into spans
    that tile it exactly, and the interference-coloring allocator beats the
    FIFO shape-pool baseline it replaced (both measured on the warm arena)."""
    _fetches, _feeds, plan, _system, _pl = workload
    widths = plan.span_widths()
    assert plan.stats.spans == len(widths) >= 1
    assert sum(widths) == plan.n_records
    assert plan.stats.max_span_width == max(widths) >= 2
    assert plan.arena_nbytes() < plan.fifo_arena_nbytes()
    assert plan.stats.span_batches == 0  # span_workers defaults to 1
    RESULTS["arena_colored_B"] = plan.arena_nbytes()
    RESULTS["arena_fifo_B"] = plan.fifo_arena_nbytes()
    RESULTS["max_span_width"] = plan.stats.max_span_width


def test_parallel_span_batches_deterministic(workload):
    """Deterministic: with ``span_workers=2`` every steady run dispatches
    exactly one batch per multi-record span, and results stay bitwise
    identical to the sequential plan."""
    fetches, feeds, plan, _system, _pl = workload
    par = tf.compile_plan(
        list(fetches), list(feeds), copy_fetches=False,
        schedule="grouped", span_workers=2,
    )
    ref = plan.run(feeds)
    out = par.run(feeds)  # warm
    batches_warm = par.stats.span_batches
    out = par.run(feeds)  # steady
    multi = sum(1 for w in par.span_widths() if w > 1)
    assert multi >= 1
    assert par.stats.span_batches == batches_warm + multi
    for r, o in zip(ref, out):
        assert np.array_equal(np.asarray(r), np.asarray(o))
    par.release_arenas()


def test_fig3_scale_copper_arena_reduction():
    """Fig 3 scale: the 256-atom copper cell with the paper's Cu
    hyper-parameters (r_c=7 Å, sel=220).  PR 3's FIFO recycler needed
    ~581 MB of arena for this plan; interference coloring must come in
    strictly below the simulated FIFO footprint of the SAME tape."""
    from repro.analysis.structures import fcc_lattice

    model = DeepPot(
        DPConfig(type_names=("Cu",), rcut=7.0, rcut_smth=2.0, sel=(220,))
    )
    system = fcc_lattice((4, 4, 4))
    pi, pj = neighbor_pairs(system, model.config.rcut)
    # numpy backend pinned: the FIFO figure is a property of the unfused
    # tape (fusion removes the intermediates the FIFO recycler was paying
    # for — that win is measured separately below).
    engine = BatchedEvaluator(model, plan_backend="numpy")
    engine.evaluate_batch([system], [(pi, pj)])  # compile + warm
    colored = engine.plan.arena_nbytes()
    fifo = engine.plan.fifo_arena_nbytes()
    assert colored < fifo
    # The FIFO baseline reproduces PR 3's measured figure; coloring's win
    # at this scale must be substantial, not marginal.
    assert fifo > 500e6
    assert colored < 0.9 * fifo
    RESULTS["fig3_colored_MB"] = colored / 1e6
    RESULTS["fig3_fifo_MB"] = fifo / 1e6
    engine.plan.release_arenas()


def test_fig3_scale_copper_fused_arena_shrinks_further():
    """Deterministic: at fig3 scale, fused intermediates contribute ZERO
    bytes to the colored arena.  The *training* plan's backward section is
    pure elementwise (tanh_grad/mul/add chains at per-pair width), so its
    fused colored arena lands strictly below the unfused colored footprint
    of the same tape (PR 9's allocator on PR 9's records, simulated from
    the warm run's shapes).  The *evaluate* plan's peak live set is
    matmul/gemm/tanh_fused tuples — the graph-level passes already fused
    its tanh chains — so there fusion must simply never regress."""
    from repro.analysis.structures import fcc_lattice
    from repro.dp.data import label_frames
    from repro.dp.train import TrainConfig, Trainer
    from repro.oracles import SuttonChenEAM

    cfg = DPConfig(type_names=("Cu",), rcut=7.0, rcut_smth=2.0, sel=(220,))
    system = fcc_lattice((4, 4, 4))

    # Training plan: the strict win.
    model = DeepPot(cfg, rng=np.random.default_rng(1))
    dataset = label_frames([system], SuttonChenEAM(r_on=4.0, cutoff=5.0))
    dataset.apply_stats(model)
    trainer = Trainer(
        model, dataset, TrainConfig(n_steps=2, log_every=10),
        plan_backend="fused",
    )
    trainer.step()  # warm the arena
    trainer.step()  # steady: blocked interpreter builds its tile plans
    plan = trainer.plan
    assert plan.records_fused() > 0
    colored = plan.arena_nbytes()
    prefusion = plan.prefusion_arena_nbytes()
    assert colored < prefusion  # intermediates really left the arena
    # PR 9's colored figure for this tape is ~986 MB; fusion lands ~895 MB.
    assert prefusion > 950e6
    assert colored < 950e6
    # The intermediates now live in per-group tile scratch — megabytes,
    # not the hundreds of MB the arena used to carry them in.
    assert 0 < plan.fused_scratch_nbytes() < 64e6
    RESULTS["fig3_train_fused_colored_MB"] = colored / 1e6
    RESULTS["fig3_train_prefusion_MB"] = prefusion / 1e6
    RESULTS["fig3_train_records_fused"] = plan.records_fused()
    plan.release_arenas()

    # Evaluate plan: matmul-bound peak, no-regress bar.
    engine = BatchedEvaluator(DeepPot(cfg), plan_backend="fused")
    pi, pj = neighbor_pairs(system, cfg.rcut)
    engine.evaluate_batch([system], [(pi, pj)])  # compile + warm
    eplan = engine.plan
    assert eplan.records_fused() > 0
    assert eplan.arena_nbytes() <= eplan.prefusion_arena_nbytes()
    RESULTS["fig3_eval_fused_colored_MB"] = eplan.arena_nbytes() / 1e6
    engine.plan.release_arenas()


@pytest.fixture(scope="module")
def fitting_chain():
    """A fitting-net-style tanh chain at fig3 scale: the pure elementwise
    regime where fusion's cache-tiled interpreter earns its keep.  Rows =
    256 atoms x 220 neighbors (the copper fig3 cell), 240-wide fitting
    layer, fp64 — each unfused intermediate is a ~108 MB DRAM round-trip."""
    rng = np.random.default_rng(12)
    x = tf.placeholder("x", dtype=np.float64)
    h = tf.tanh(x)
    h = tf.add(h, tf.square(h))
    h = tf.tanh(h)
    h = tf.mul(h, tf.neg(h))
    y = tf.sub(h, tf.square(h))
    feeds = {x: rng.standard_normal((256 * 220, 240))}
    plans = {}
    for backend in ("numpy", "fused"):
        plan = tf.compile_plan([y], [x], copy_fetches=False, backend=backend)
        plan.run(feeds)  # warm
        plans[backend] = plan
    return plans, feeds


def test_fitting_chain_fused_bitwise_and_counters(fitting_chain):
    """Deterministic: fused == numpy bitwise on the fig3-scale chain, the
    whole chain collapsed to one record, and the blocked interpreter's
    tile count is exactly min(rows, ceil(out_nbytes / tile_bytes))."""
    plans, feeds = fitting_chain
    a = plans["numpy"].run(feeds)
    b = plans["fused"].run(feeds)
    assert np.array_equal(np.asarray(a), np.asarray(b))
    fused = plans["fused"]
    assert fused.records_fused() > 0
    (group,) = fused.fused_groups
    rows, out_nbytes = 256 * 220, 256 * 220 * 240 * 8
    expect = min(rows, -(-out_nbytes // group.tile_bytes))
    tiles_before = group.tiles_run
    fused.run(feeds)
    assert group.tiles_run == tiles_before + expect


def test_fitting_chain_fused_vs_numpy_timing(benchmark, fitting_chain):
    """Wall clock: the cache-tiled fused chain beats one-kernel-per-record
    numpy on the fig3-scale elementwise chain (paired interleaved trials,
    REPRO_BENCH_STRICT-gated per the bench policy)."""
    plans, feeds = fitting_chain
    t_fused = bench_median(
        benchmark, lambda: plans["fused"].run(feeds), rounds=5)
    RESULTS["t_fitting_fused_ms"] = t_fused * 1e3
    reps = 3

    def run_fused():
        for _ in range(reps):
            plans["fused"].run(feeds)

    def run_numpy():
        for _ in range(reps):
            plans["numpy"].run(feeds)

    ratios = bench_paired_trials(run_fused, run_numpy, trials=7)
    RESULTS["fitting_ratio_median"] = float(np.median(ratios))
    RESULTS["fitting_ratio_best"] = float(np.min(ratios))
    if bench_strict():
        assert RESULTS["fitting_ratio_median"] < 0.90


def test_bitwise_oracle_correspondence(workload):
    fetches, feeds, plan, _system, _pl = workload
    sess = tf.Session()
    ref = sess.run(fetches, feeds)
    out = plan.run(feeds)
    for r, o in zip(ref, out):
        assert np.array_equal(np.asarray(r), np.asarray(o))


def test_plan_vs_session_timing(benchmark, workload):
    """Wall clock: planned execution beats the per-run-rederiving oracle."""
    fetches, feeds, plan, _system, _pl = workload
    sess = tf.Session()

    t_plan = bench_median(benchmark, lambda: plan.run(feeds), rounds=5)
    RESULTS["t_plan_ms"] = t_plan * 1e3

    # Paired interleaved trials (noisy-host policy): plan and Session run
    # back-to-back inside each trial; the median per-trial ratio is asserted
    # only under REPRO_BENCH_STRICT.
    reps = 10

    def run_plan():
        for _ in range(reps):
            plan.run(feeds)

    def run_sess():
        for _ in range(reps):
            sess.run(fetches, feeds)

    ratios = bench_paired_trials(run_plan, run_sess, trials=7)
    RESULTS["ratio_median"] = float(np.median(ratios))
    RESULTS["ratio_best"] = float(np.min(ratios))
    if bench_strict():
        assert RESULTS["ratio_median"] < 0.95
        assert RESULTS["ratio_best"] < 0.9


def test_zz_report(benchmark, workload, model):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _fetches, _feeds, plan, _system, _pl = workload
    print_header("Compiled execution plans — fixed cost per run vs Session.run")
    print(f"tape records:            {plan.n_records}")
    print(f"arena buffers allocated: {plan.alloc_count()} "
          f"({plan.arena_nbytes() / 1e6:.1f} MB, interference-colored)")
    print(f"topo_sorts (lifetime):   {plan.stats.topo_sorts} over "
          f"{plan.stats.runs} runs")
    print(f"spans:                   {plan.stats.spans} "
          f"(max width {plan.stats.max_span_width})")
    if "arena_fifo_B" in RESULTS:
        saved = RESULTS["arena_fifo_B"] - RESULTS["arena_colored_B"]
        print(f"coloring vs FIFO:        {RESULTS['arena_colored_B'] / 1e3:.1f} kB "
              f"vs {RESULTS['arena_fifo_B'] / 1e3:.1f} kB "
              f"(-{100 * saved / RESULTS['arena_fifo_B']:.1f}%)")
    if "fig3_colored_MB" in RESULTS:
        red = 1 - RESULTS["fig3_colored_MB"] / RESULTS["fig3_fifo_MB"]
        print(f"fig3-scale copper arena: {RESULTS['fig3_colored_MB']:.1f} MB "
              f"colored vs {RESULTS['fig3_fifo_MB']:.1f} MB FIFO "
              f"(-{100 * red:.1f}%)")
    if "ratio_median" in RESULTS:
        print(f"planned run:             {RESULTS['t_plan_ms']:.2f} ms")
        print(f"plan/Session ratio:      {RESULTS['ratio_median']:.2f}x median / "
              f"{RESULTS['ratio_best']:.2f}x best "
              f"({1 / RESULTS['ratio_median']:.2f}x speedup)")
    if "fig3_train_fused_colored_MB" in RESULTS:
        print(f"fig3 train fused arena:  "
              f"{RESULTS['fig3_train_fused_colored_MB']:.1f} MB colored vs "
              f"{RESULTS['fig3_train_prefusion_MB']:.1f} MB unfused-colored "
              f"({RESULTS['fig3_train_records_fused']} records fused)")
    if "fitting_ratio_median" in RESULTS:
        print(f"fitting-chain fused/numpy ratio: "
              f"{RESULTS['fitting_ratio_median']:.2f}x median / "
              f"{RESULTS['fitting_ratio_best']:.2f}x best "
              f"({1 / RESULTS['fitting_ratio_median']:.2f}x speedup)")
    print("(one graph traversal per plan lifetime; steady-state runs are a")
    print(" flat slot-indexed tape walk into persistent recycled buffers)")

    # The perf-trajectory data point for this PR: paired fused-vs-unfused
    # medians plus the fig3-scale arena figures (repo-root BENCH_10.json).
    import json
    from pathlib import Path

    bench_keys = (
        "fitting_ratio_median", "fitting_ratio_best", "t_fitting_fused_ms",
        "fig3_train_fused_colored_MB", "fig3_train_prefusion_MB",
        "fig3_train_records_fused", "fig3_eval_fused_colored_MB",
        "fig3_colored_MB", "fig3_fifo_MB", "ratio_median",
    )
    payload = {k: RESULTS[k] for k in bench_keys if k in RESULTS}
    if payload:
        out = Path(__file__).resolve().parent.parent / "BENCH_10.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"fusion bench figures written to {out.name}")
