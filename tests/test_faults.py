"""Fault injection and the recovery machinery it exists to exercise.

Three layers:

1. **FaultPlan mechanics** — hook decisions are pure functions of the
   spec list and the plan's own monotonic counters: same plan, same
   schedule => same injections; one-shot faults never fire twice; the
   log records exactly what fired.
2. **worker supervision** (:mod:`repro.serving.worker`) — an injected
   worker crash fails the in-flight futures with ``WorkerCrashed``
   exactly once (conservation holds through the crash), drops the dead
   engine's cache entries, and respawns a fresh worker that serves
   subsequent requests bitwise correctly.
3. **client resilience** (:mod:`repro.serving.net`) — a severed
   connection is re-dialed with capped backoff and every unresolved
   request is resubmitted under its original id, so the trajectory of
   results is bitwise identical to an undisturbed run; tampered frames
   (delay / duplicate / corrupt) never corrupt results silently.

Everything asserts deterministically — counters, logs and bitwise
equality, never wall-clock thresholds.
"""

import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.analysis.structures import water_box
from repro.dp.backend import ForceFrame, ServingForceBackend
from repro.dp.model import DeepPot, DPConfig
from repro.md.neighbor import neighbor_pairs
from repro.serving import (
    CrashWorker,
    DelayAdmission,
    FailEval,
    FaultPlan,
    InferenceServer,
    InjectedWorkerCrash,
    ServingDaemon,
    SeverConnection,
    SocketClient,
    TamperFrame,
    TransientEvalError,
    WorkerCrashed,
    perturbed_frames,
)
from repro.serving import protocol as proto
from repro.serving.faults import corrupt_frame

WAIT = 60.0


@pytest.fixture(scope="module")
def model():
    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))


@pytest.fixture(scope="module")
def base():
    return water_box((2, 2, 2), seed=0)


def direct(model, system):
    return model.evaluate(system, *neighbor_pairs(system, model.config.rcut))


def assert_bitwise(result, reference):
    assert result.energy == reference.energy
    assert np.array_equal(result.forces, reference.forces)
    assert np.array_equal(result.virial, reference.virial)


def conserved(stats):
    s = stats.snapshot()
    return s["requests_submitted"] == (
        s["requests_completed"]
        + s["requests_failed"]
        + s["requests_cancelled"]
    )


# ---------------------------------------------------------------------------
# 1. FaultPlan mechanics
# ---------------------------------------------------------------------------


class TestFaultPlanMechanics:
    def test_crash_fires_once_at_exact_batch(self):
        plan = FaultPlan([CrashWorker(worker="w0", at_batch=3)])
        plan.on_worker_batch("w0", "m")  # batch 1
        plan.on_worker_batch("w0", "m")  # batch 2
        with pytest.raises(InjectedWorkerCrash):
            plan.on_worker_batch("w0", "m")  # batch 3: fires
        # One-shot: the respawned worker keeps its id but never crashes
        # again, and other workers were never targets.
        for _ in range(5):
            plan.on_worker_batch("w0", "m")
        plan.on_worker_batch("w1", "m")
        assert plan.fired(CrashWorker) == 1
        assert plan.fired("CrashWorker") == 1  # string form, same count

    def test_transient_fires_times_consecutive_batches(self):
        plan = FaultPlan([FailEval(model="m", at_batch=2, times=2)])
        plan.on_worker_batch("w0", "m")  # model batch 1: clean
        for _ in range(2):  # model batches 2 and 3 fail
            with pytest.raises(TransientEvalError):
                plan.on_worker_batch("w0", "m")
        plan.on_worker_batch("w0", "m")  # batch 4: spent, clean again
        assert plan.fired(FailEval) == 2  # every injection is logged

    def test_sever_matches_hello_name_prefix(self):
        plan = FaultPlan([SeverConnection(client="md", after_frames=2)])
        # Daemon labels are "<hello-name>-<cid>"; "mdx-0" must NOT match.
        assert plan.on_conn_frame_in("mdx-0") is False
        assert plan.on_conn_frame_in("md-4") is False  # frame 1
        assert plan.on_conn_frame_in("md-4") is True   # frame 2: sever
        assert plan.on_conn_frame_in("md-4") is False  # one-shot
        assert plan.fired(SeverConnection) == 1

    def test_tamper_action_and_jitter_determinism(self):
        def run():
            plan = FaultPlan(
                [TamperFrame(client="c", at_frame=2, action="delay",
                             delay_s=0.5)],
                seed=11,
            )
            first = plan.on_conn_frame_out("c-0")
            second = plan.on_conn_frame_out("c-0")
            return first, second

        (a1, d1), (a2, d2) = run()
        assert (a1, d1) == (None, 0.0)
        assert a2 == "delay" and 0.25 <= d2 < 0.75  # [0.5, 1.5) * delay_s
        # Same seed, same schedule => bitwise-identical jitter.
        assert run() == ((a1, d1), (a2, d2))

    def test_unknown_tamper_action_rejected(self):
        with pytest.raises(ValueError, match="unknown tamper action"):
            FaultPlan([TamperFrame(client="c", at_frame=1, action="explode")])

    def test_admission_delay_targets_one_submission(self):
        class Req:
            model = "m"

        plan = FaultPlan([DelayAdmission(model="m", at_submit=2,
                                         delay_s=0.0)])
        plan.on_queue_put(Req())
        plan.on_queue_put(Req())
        plan.on_queue_put(Req())
        assert plan.fired(DelayAdmission) == 1
        assert "submit 2" in plan.log[0][1]

    def test_corrupt_frame_is_detectable_not_silent(self):
        frame = proto.encode_frame(
            proto.MsgType.RESULT, {"req": 1}, {"x": np.arange(3.0)}
        )
        bad = corrupt_frame(frame)
        assert bad[:4] == frame[:4]  # framing survives (length intact)
        assert bad[5:] == frame[5:]  # ONLY the version byte changes
        with pytest.raises(proto.ProtocolError):
            proto.decode_payload(bad[4:])


# ---------------------------------------------------------------------------
# 2. worker supervision
# ---------------------------------------------------------------------------


class TestWorkerSupervision:
    def test_crash_fails_inflight_conserves_and_respawns(self, model, base):
        """The tentpole invariant: a mid-batch worker death fails exactly
        the in-flight requests, conservation holds, and the respawned
        worker serves later frames bitwise correctly."""
        plan = FaultPlan([CrashWorker(worker="water", at_batch=1)])
        server = InferenceServer(
            {"water": model}, max_batch=4, max_wait_us=1000, faults=plan
        )
        frames = perturbed_frames(base, 6, seed0=50)
        with server.paused():
            doomed = [server.submit("water", f, block=False)
                      for f in frames[:3]]
        for f in doomed:
            with pytest.raises(WorkerCrashed):
                f.result(WAIT)
        # The respawned worker (same id, fresh engine) serves new work.
        survivors = [server.submit("water", f, block=False)
                     for f in frames[3:]]
        for f, frame in zip(survivors, frames[3:]):
            assert_bitwise(f.result(WAIT), direct(model, frame))
        server.stop()
        s = server.stats.snapshot()
        assert s["worker_crashes"] == 1
        assert s["worker_respawns"] == 1
        assert s["requests_failed"] == 3
        assert s["requests_completed"] == 3
        assert conserved(server.stats)
        assert plan.fired(CrashWorker) == 1

    def test_crashed_batch_counted_exactly_once(self, model, base):
        """The crash path must not double-count: the dead batch reaches
        ``record_worker_crash``, never ``record_batch``."""
        plan = FaultPlan([CrashWorker(worker="water", at_batch=1)])
        server = InferenceServer(
            {"water": model}, max_batch=8, max_wait_us=1000, faults=plan
        )
        with server.paused():
            futures = [server.submit("water", f, block=False)
                       for f in perturbed_frames(base, 4, seed0=60)]
        for f in futures:
            with pytest.raises(WorkerCrashed):
                f.result(WAIT)
        server.stop()
        s = server.stats.snapshot()
        assert s["requests_failed"] == 4
        assert s["batches"] == 0  # the crashed batch never executed
        assert s["frames"] == 0
        assert conserved(server.stats)

    def test_transient_error_is_retryable_through_backend(self, model, base):
        """A ``FailEval`` batch fails through the normal poisoned-batch
        path (worker survives, no respawn) and a retrying
        ``ServingForceBackend`` absorbs it bitwise."""
        plan = FaultPlan([FailEval(model="water", at_batch=1)])
        server = InferenceServer(
            {"water": model}, max_batch=4, max_wait_us=1000, faults=plan
        )
        frames = perturbed_frames(base, 3, seed0=70)
        backend = ServingForceBackend(server.client("water"), timeout=WAIT,
                                      retries=2)
        results = backend.evaluate(
            [ForceFrame(f, *neighbor_pairs(f, model.config.rcut))
             for f in frames]
        )
        server.stop()
        for r, f in zip(results, frames):
            assert_bitwise(r, direct(model, f))
        assert backend.retried_frames >= 1
        s = server.stats.snapshot()
        assert s["worker_crashes"] == 0  # transient != crash
        assert s["worker_respawns"] == 0
        assert conserved(server.stats)

    def test_backend_retry_budget_exhausts(self, model, base):
        """Enough consecutive transient failures exhaust the budget and the
        error propagates — retries are bounded, never a spin."""
        plan = FaultPlan([FailEval(model="water", at_batch=1, times=5)])
        server = InferenceServer(
            {"water": model}, max_batch=4, max_wait_us=1000, faults=plan
        )
        backend = ServingForceBackend(server.client("water"), timeout=WAIT,
                                      retries=2)
        frame = perturbed_frames(base, 1, seed0=80)[0]
        with pytest.raises(TransientEvalError):
            backend.evaluate(
                [ForceFrame(frame, *neighbor_pairs(frame, model.config.rcut))]
            )
        server.stop()
        assert backend.retried_frames == 2
        assert conserved(server.stats)

    def test_respawn_budget_stops_crash_loops(self, model, base):
        """``max_respawns`` bounds supervision: a worker that keeps dying is
        not respawned forever."""
        plan = FaultPlan([
            CrashWorker(worker="water", at_batch=1),
            CrashWorker(worker="water", at_batch=2),
        ])
        server = InferenceServer(
            {"water": model}, max_batch=4, max_wait_us=1000, faults=plan,
            max_respawns=1,
        )
        frames = perturbed_frames(base, 2, seed0=90)
        with pytest.raises(WorkerCrashed):
            server.submit("water", frames[0], block=False).result(WAIT)
        with pytest.raises(WorkerCrashed):
            server.submit("water", frames[1], block=False).result(WAIT)
        server.stop()
        s = server.stats.snapshot()
        assert s["worker_crashes"] == 2
        assert s["worker_respawns"] == 1  # budget spent, no third spawn
        assert conserved(server.stats)


# ---------------------------------------------------------------------------
# 3. client resilience over the wire
# ---------------------------------------------------------------------------


class TestClientResilience:
    def _serve(self, model, plan=None, **kw):
        server = InferenceServer(
            {"water": model}, max_batch=4, max_wait_us=1000, faults=plan, **kw
        )
        daemon = ServingDaemon(server, faults=plan).start()
        return server, daemon

    def test_sever_reconnect_resubmit_bitwise(self, model, base):
        """A connection severed mid-conversation is re-dialed and every
        unresolved request resent under its original id — results arrive
        bitwise identical to an undisturbed run."""
        plan = FaultPlan([SeverConnection(client="res", after_frames=2)])
        server, daemon = self._serve(model, plan)
        frames = perturbed_frames(base, 6, seed0=400)
        try:
            with SocketClient(daemon.address, "water", client="res",
                              retries=3) as client:
                results = [
                    client.submit(
                        f, *neighbor_pairs(f, model.config.rcut),
                        timeout=WAIT,
                    ).result(WAIT)
                    for f in frames
                ]
                assert client.reconnects >= 1
        finally:
            daemon.stop(drain=True)
        for r, f in zip(results, frames):
            assert_bitwise(r, direct(model, f))
        assert plan.fired(SeverConnection) == 1
        assert conserved(server.stats)

    def test_no_retries_means_sever_is_fatal(self, model, base):
        """resilience off (the default): the severed connection fails the
        pending future instead of silently reconnecting."""
        plan = FaultPlan([SeverConnection(client="frail", after_frames=2)])
        server, daemon = self._serve(model, plan)
        frames = perturbed_frames(base, 3, seed0=410)
        try:
            with SocketClient(daemon.address, "water",
                              client="frail") as client:
                fut = client.submit(
                    frames[0], *neighbor_pairs(frames[0], model.config.rcut),
                    timeout=WAIT,
                )
                assert_bitwise(fut.result(WAIT), direct(model, frames[0]))
                with pytest.raises((ConnectionError, OSError)):
                    # frame 2 in (this SUBMIT) trips the sever; the reader
                    # dies and fails the pending future with the raw error.
                    client.submit(
                        frames[1],
                        *neighbor_pairs(frames[1], model.config.rcut),
                        timeout=WAIT,
                    ).result(WAIT)
                assert client.reconnects == 0
        finally:
            daemon.stop(drain=True)

    def test_duplicate_result_frame_is_idempotent(self, model, base):
        """An injected duplicate RESULT finds no pending future the second
        time and is dropped — receivers are idempotent by construction."""
        plan = FaultPlan(
            [TamperFrame(client="dup", at_frame=2, action="duplicate")]
        )
        server, daemon = self._serve(model, plan)
        frames = perturbed_frames(base, 4, seed0=420)
        try:
            with SocketClient(daemon.address, "water",
                              client="dup") as client:
                for f in frames:
                    fut = client.submit(
                        f, *neighbor_pairs(f, model.config.rcut), timeout=WAIT
                    )
                    assert_bitwise(fut.result(WAIT), direct(model, f))
        finally:
            daemon.stop(drain=True)
        assert plan.fired(TamperFrame) == 1
        assert conserved(server.stats)

    def test_corrupt_frame_recovers_bitwise_not_silently(self, model, base):
        """A corrupted RESULT is *detected* (version-byte flip =>
        ProtocolError), the resilient client reconnects and the replayed
        request returns the bitwise-correct answer — corruption can cost a
        round trip but never numbers."""
        plan = FaultPlan(
            [TamperFrame(client="cor", at_frame=2, action="corrupt")]
        )
        server, daemon = self._serve(model, plan, cache_size=16)
        frames = perturbed_frames(base, 4, seed0=430)
        try:
            with SocketClient(daemon.address, "water", client="cor",
                              retries=3) as client:
                for f in frames:
                    fut = client.submit(
                        f, *neighbor_pairs(f, model.config.rcut), timeout=WAIT
                    )
                    assert_bitwise(fut.result(WAIT), direct(model, f))
                assert client.reconnects >= 1
                assert client.resubmits >= 1
        finally:
            daemon.stop(drain=True)
        assert plan.fired(TamperFrame) == 1

    def test_delay_tamper_only_slows_never_reorders_resolution(
        self, model, base
    ):
        """A delayed frame still resolves its own future correctly (delay
        jitter comes from the plan's seeded generator)."""
        plan = FaultPlan(
            [TamperFrame(client="slow", at_frame=2, action="delay",
                         delay_s=0.01)]
        )
        server, daemon = self._serve(model, plan)
        frames = perturbed_frames(base, 3, seed0=440)
        try:
            with SocketClient(daemon.address, "water",
                              client="slow") as client:
                for f in frames:
                    fut = client.submit(
                        f, *neighbor_pairs(f, model.config.rcut), timeout=WAIT
                    )
                    assert_bitwise(fut.result(WAIT), direct(model, f))
        finally:
            daemon.stop(drain=True)
        assert plan.fired(TamperFrame) == 1

    def test_worker_crash_error_crosses_the_wire_typed(self, model, base):
        """A server-side ``WorkerCrashed`` surfaces client-side as the same
        exception type (ERR_CRASH on the wire) — remote callers can build
        the same retry policy as in-process ones."""
        plan = FaultPlan([CrashWorker(worker="water", at_batch=1)])
        server, daemon = self._serve(model, plan)
        frames = perturbed_frames(base, 2, seed0=450)
        try:
            with SocketClient(daemon.address, "water",
                              client="wc") as client:
                with pytest.raises(WorkerCrashed):
                    client.submit(
                        frames[0],
                        *neighbor_pairs(frames[0], model.config.rcut),
                        timeout=WAIT,
                    ).result(WAIT)
                # The respawned worker serves the next frame over the SAME
                # connection — the wire session survives a worker death.
                fut = client.submit(
                    frames[1], *neighbor_pairs(frames[1], model.config.rcut),
                    timeout=WAIT,
                )
                assert_bitwise(fut.result(WAIT), direct(model, frames[1]))
        finally:
            daemon.stop(drain=True)
        assert server.stats.snapshot()["worker_respawns"] == 1
        assert conserved(server.stats)

    def test_remote_backend_retries_through_crash(self, model, base):
        """The chaos-smoke core as a unit test: SocketClient reconnects on
        severs, ServingForceBackend resubmits on crashes — every frame of
        an 8-frame evaluation lands bitwise under a 3-fault plan."""
        plan = FaultPlan([
            CrashWorker(worker="water", at_batch=1),
            SeverConnection(client="chaos", after_frames=3),
            TamperFrame(client="chaos", at_frame=5, action="duplicate"),
        ])
        server, daemon = self._serve(model, plan)
        frames = perturbed_frames(base, 8, seed0=460)
        try:
            with SocketClient(daemon.address, "water", client="chaos",
                              retries=4) as client:
                backend = ServingForceBackend(client, timeout=WAIT, retries=4)
                results = backend.evaluate(
                    [ForceFrame(f, *neighbor_pairs(f, model.config.rcut))
                     for f in frames]
                )
        finally:
            daemon.stop(drain=True)
        for r, f in zip(results, frames):
            assert_bitwise(r, direct(model, f))
        s = server.stats.snapshot()
        assert s["worker_crashes"] == 1 and s["worker_respawns"] == 1
        assert conserved(server.stats)
        assert {type(f).__name__ for f, _ in plan.log} == {
            "CrashWorker", "SeverConnection", "TamperFrame"
        }

    def test_heartbeat_keeps_idle_client_alive(self, model, base):
        """The daemon's idle sweeper reaps a silent connection but spares
        one that heartbeats; the swept client's next submit fails, the
        heartbeating client still round-trips bitwise."""
        server = InferenceServer({"water": model}, max_batch=4,
                                 max_wait_us=1000)
        daemon = ServingDaemon(server, idle_timeout=0.3).start()
        frame = perturbed_frames(base, 1, seed0=470)[0]
        try:
            quiet = SocketClient(daemon.address, "water", client="quiet")
            with SocketClient(daemon.address, "water", client="beat",
                              heartbeat=0.05) as beat:
                # Wait until the sweeper has provably fired (bounded poll on
                # a deterministic counter, not a blind sleep).
                deadline = threading.Event()
                for _ in range(200):
                    if daemon.idle_swept >= 1:
                        break
                    deadline.wait(0.05)
                assert daemon.idle_swept >= 1
                fut = beat.submit(
                    frame, *neighbor_pairs(frame, model.config.rcut),
                    timeout=WAIT,
                )
                assert_bitwise(fut.result(WAIT), direct(model, frame))
            quiet.close()
        finally:
            daemon.stop(drain=True)
