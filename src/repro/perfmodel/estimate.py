"""Project a real (laptop) distributed run onto Summit — the cross-check
between the measured communication pattern and the analytic cost model.

Given a :class:`repro.parallel.driver.DistributedSimulation` that actually
ran, this estimates what the same decomposition would cost per step on
Summit: per-rank DP FLOPs through the roofline, the *measured* ghost counts
through the per-ghost cost, and the *accounted* message counts/bytes through
the latency/bandwidth terms.  Unlike :mod:`repro.perfmodel.costmodel`, no
geometric idealization is involved — the inputs come from the run itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.flops import dp_flops_per_atom
from repro.perfmodel.machine import SUMMIT, SummitMachine


@dataclass
class SummitEstimate:
    atoms_per_rank_max: float
    ghosts_per_rank_max: float
    t_compute: float
    t_ghost: float
    t_comm: float
    t_fixed: float

    @property
    def t_step(self) -> float:
        return self.t_compute + self.t_ghost + self.t_comm + self.t_fixed


def estimate_summit_step(
    dist_sim,
    gemm_efficiency: float = 0.42,
    precision: str = "double",
    machine: SummitMachine = SUMMIT,
) -> SummitEstimate:
    """Estimate Summit seconds/step for a DistributedSimulation's layout.

    The slowest rank (most atoms) sets the pace, as in any bulk-synchronous
    step.  Message counts per step are averaged from the run's accounted
    totals.
    """
    domains = dist_sim.decomp.domains
    atoms_max = max((d.n_own for d in domains), default=0)
    ghosts_max = max((d.n_ghost for d in domains), default=0)

    flops_atom = dp_flops_per_atom(dist_sim.model.config).per_step()
    peak = machine.gpu_peak(precision)
    t_compute = flops_atom * atoms_max / (peak * gemm_efficiency)
    t_ghost = machine.ghost_env_seconds * ghosts_max

    stats = dist_sim.comm.stats
    steps = max(dist_sim.step_count, 1)
    ranks = dist_sim.comm.size
    msgs_per_rank_step = stats.p2p_messages / steps / ranks
    bytes_per_rank_step = stats.p2p_bytes / steps / ranks
    nic_per_gpu = machine.nic_bandwidth / machine.gpus_per_node
    t_comm = (
        msgs_per_rank_step * machine.mpi_latency
        + bytes_per_rank_step / nic_per_gpu
    )
    return SummitEstimate(
        atoms_per_rank_max=atoms_max,
        ghosts_per_rank_max=ghosts_max,
        t_compute=t_compute,
        t_ghost=t_ghost,
        t_comm=t_comm,
        t_fixed=machine.fixed_step_seconds,
    )
