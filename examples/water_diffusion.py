"""Self-diffusion of DP water — the validation observable of the DP papers.

The water models behind the paper (its refs [33, 66]) are validated on
dynamical properties like the self-diffusion coefficient.  This example runs
NVT MD with the zoo DP water model, unwraps the trajectory, and extracts D
from the Einstein relation (MSD slope / 6), for oxygen atoms.

Experimental water at 300 K: D ≈ 0.23 Å²/ps.  A briefly trained tiny model
won't hit that number, but the pipeline — and the liquid-vs-solid contrast —
is the point.

Run:  python examples/water_diffusion.py [--steps N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.dynamics import (
    UnwrappedTrajectory,
    diffusion_coefficient,
    mean_squared_displacement,
)
from repro.analysis.structures import water_box
from repro.dp.pair import DeepPotPair
from repro.md import Langevin, Simulation, boltzmann_velocities, fitted_neighbor_list
from repro.zoo import get_water_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=400)
    parser.add_argument("--temperature", type=float, default=330.0)
    parser.add_argument("--stride", type=int, default=10)
    args = parser.parse_args()

    model = get_water_model()
    system = water_box((3, 3, 3), seed=2)
    boltzmann_velocities(system, args.temperature, seed=3)
    pair = DeepPotPair(model)
    sim = Simulation(
        system,
        pair,
        dt=0.0005,
        integrator=Langevin(temperature=args.temperature, damp=0.1, seed=5),
        neighbor=fitted_neighbor_list(system, pair.cutoff),
    )

    traj = UnwrappedTrajectory(system.box)
    traj.add(system.positions)

    def grab(s):
        if s.step_count % args.stride == 0:
            traj.add(s.system.positions)

    print(f"Running {args.steps} NVT steps at {args.temperature} K "
          f"({system.n_atoms} atoms)...")
    sim.run(args.steps, callback=grab)

    frames = traj.as_array()
    oxygen = system.types == 0
    msd = mean_squared_displacement(frames, atom_mask=oxygen)
    dt_frames = args.stride * 0.0005
    d_coef = diffusion_coefficient(msd, dt_frames)

    print(f"\n{'t/ps':>8} {'MSD_O/Å²':>10}")
    for k in range(0, len(msd), max(len(msd) // 12, 1)):
        print(f"{k * dt_frames:>8.3f} {msd[k]:>10.4f}")
    print(f"\nD(oxygen) = {d_coef:.4f} Å²/ps "
          f"(experimental water @300K: ~0.23; a tiny briefly-trained model "
          f"will differ)")
    temps = sim.thermo.column("temperature")
    print(f"mean T over run: {temps.mean():.0f} K")


if __name__ == "__main__":
    main()
