"""Bounded, thread-safe FIFO request queue for the inference service.

The queue is the only structure clients and the worker share.  Clients
``put`` :class:`InferenceRequest` objects (backpressure: a full queue blocks
or raises :class:`QueueFull`); the worker-side scheduler removes coalescable
runs of requests with :meth:`RequestQueue.pop_batch`.

Sequence numbers are stamped *inside* ``put`` under the queue lock, so
submission order, queue order, and sequence order are one and the same —
that is the invariant the FIFO-fairness tests assert through
``ServerStats.batch_log``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.md.system import System


class QueueFull(RuntimeError):
    """The bounded request queue refused a submission (backpressure)."""


class ServerClosed(RuntimeError):
    """The server is shut down and no longer accepts submissions."""


@dataclass
class InferenceRequest:
    """One client frame awaiting evaluation.

    ``seq`` is assigned by the queue at admission (-1 until then);
    ``future`` resolves to the frame's :class:`~repro.md.potential.
    PotentialResult`, bitwise identical to a direct ``DeepPot.evaluate``
    of the same frame regardless of which other requests it was batched
    with (see :mod:`repro.dp.batch`).
    """

    model: str
    system: System
    pair_i: np.ndarray
    pair_j: np.ndarray
    future: Future = field(default_factory=Future)
    seq: int = -1
    enqueued_at: float = 0.0


class RequestQueue:
    """Bounded FIFO of pending requests with batch-oriented removal.

    ``maxsize <= 0`` means unbounded.  The queue itself knows nothing about
    models beyond the ``key`` callable ``pop_batch`` is given — the
    coalescing *policy* (batch bound, wait budget, grouping) belongs to the
    scheduler.
    """

    def __init__(self, maxsize: int = 64):
        self.maxsize = int(maxsize)
        self._items: deque[InferenceRequest] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._seq = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------- producer

    def put(
        self,
        request: InferenceRequest,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> InferenceRequest:
        """Admit a request, stamping its sequence number and enqueue time.

        A full queue raises :class:`QueueFull` immediately (``block=False``)
        or after ``timeout`` seconds; a closed queue raises
        :class:`ServerClosed`.
        """
        with self._not_full:
            if self._closed:
                raise ServerClosed("request queue is closed")
            if self.maxsize > 0 and len(self._items) >= self.maxsize:
                if not block:
                    raise QueueFull(f"queue depth {self.maxsize} reached")
                deadline = (
                    None if timeout is None else time.perf_counter() + timeout
                )
                while len(self._items) >= self.maxsize and not self._closed:
                    remaining = (
                        None
                        if deadline is None
                        else deadline - time.perf_counter()
                    )
                    if remaining is not None and remaining <= 0:
                        raise QueueFull(
                            f"queue depth {self.maxsize} held for {timeout} s"
                        )
                    self._not_full.wait(remaining)
                if self._closed:
                    raise ServerClosed("request queue closed while waiting")
            request.seq = self._seq
            self._seq += 1
            request.enqueued_at = time.perf_counter()
            self._items.append(request)
            self._not_empty.notify_all()
            return request

    # ------------------------------------------------------------- consumer

    def pop_batch(
        self,
        max_batch: int,
        max_wait: float,
        key: Callable[[InferenceRequest], object],
        gate: Optional[threading.Event] = None,
    ) -> Optional[list[InferenceRequest]]:
        """Remove the next coalescable batch, FIFO with same-key gathering.

        Blocks until at least one request is pending (and ``gate``, if given,
        is set — the server's pause switch), then gives later arrivals up to
        ``max_wait`` seconds to fill the batch to ``max_batch`` requests
        sharing the head request's key.  Non-matching requests keep their
        queue positions.  Returns ``None`` once the queue is closed and
        drained; a close cuts every wait short so shutdown never sleeps out
        a wait budget.
        """
        with self._not_empty:
            while True:
                # -- wait for work (or closure) --------------------------
                while not self._items or (gate is not None and not gate.is_set()):
                    if self._closed:
                        if not self._items:
                            return None
                        break  # closed with leftovers: drain even if gated
                    self._not_empty.wait()
                if not self._items:
                    if self._closed:
                        return None
                    continue

                # -- give the batch max_wait to fill ---------------------
                # A pause (gate cleared) cuts the fill window short, so
                # requests staged under pause() join the post-resume
                # coalescing instead of riding a batch already gathering.
                head_key = key(self._items[0])
                if max_wait > 0 and not self._closed:
                    deadline = time.perf_counter() + max_wait
                    while gate is None or gate.is_set():
                        n_same = sum(
                            1 for r in self._items if key(r) == head_key
                        )
                        if n_same >= max_batch or self._closed:
                            break
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0:
                            break
                        self._not_empty.wait(remaining)
                if not self._items:
                    continue  # drained behind our back (shutdown cancel)

                # -- extract matching requests, preserving FIFO ----------
                head_key = key(self._items[0])
                batch: list[InferenceRequest] = []
                rest: deque[InferenceRequest] = deque()
                for r in self._items:
                    if len(batch) < max_batch and key(r) == head_key:
                        batch.append(r)
                    else:
                        rest.append(r)
                self._items = rest
                self._not_full.notify_all()
                if batch:
                    return batch

    # ------------------------------------------------------------- shutdown

    def kick(self) -> None:
        """Wake a consumer blocked in ``pop_batch`` (used by resume)."""
        with self._not_empty:
            self._not_empty.notify_all()

    def close(self) -> None:
        """Refuse further submissions; pending requests stay drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def close_and_drain(self) -> list[InferenceRequest]:
        """Close and atomically remove every pending request (no-drain
        shutdown path; the caller cancels the returned requests' futures)."""
        with self._lock:
            self._closed = True
            pending = list(self._items)
            self._items.clear()
            self._not_empty.notify_all()
            self._not_full.notify_all()
            return pending
