"""Shared fixtures for the benchmark harness.

One benchmark module per paper table/figure (see DESIGN.md's experiment
index).  Absolute numbers are laptop numbers; every module prints its
measured values next to the paper's so the *shape* comparison is explicit
(EXPERIMENTS.md records a full run).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis.structures import fcc_lattice, water_box
from repro.dp.model import DeepPot, DPConfig
from repro.md.neighbor import neighbor_pairs


def bench_strict() -> bool:
    """Whether wall-clock threshold asserts are enforced.

    Deterministic *shape* asserts (byte counters, op counts, call counts)
    always run; asserts that compare measured wall-clock ratios are gated on
    this flag so noisy CI hosts can disable them with ``REPRO_BENCH_STRICT=0``.
    The default is strict: a clean local run must still demonstrate the
    paper's speedups.
    """
    return os.environ.get("REPRO_BENCH_STRICT", "1") != "0"


def bench_paired_trials(fn_a, fn_b, trials=5, warmup=1):
    """Per-trial wall-clock ratios t(fn_a)/t(fn_b), back-to-back per trial.

    The two sides run adjacently inside every trial, so host-load drift hits
    both equally — unlike comparing two separately-timed benchmarks, which
    flakes whenever the load changes between them.  Returns the raw ratio
    list (callers take median/min as fits their assert).
    """
    for _ in range(warmup):
        fn_a()
        fn_b()
    ratios = []
    for _ in range(trials):
        t0 = time.perf_counter()
        fn_a()
        t_a = time.perf_counter() - t0
        t0 = time.perf_counter()
        fn_b()
        t_b = time.perf_counter() - t0
        ratios.append(t_a / t_b)
    return ratios


def bench_paired_ratio(fn_a, fn_b, trials=5, warmup=1):
    """Median of :func:`bench_paired_trials` ratios."""
    return float(np.median(bench_paired_trials(fn_a, fn_b, trials, warmup)))


def bench_median(benchmark, fn, rounds=3, warmup_rounds=1):
    """Median-of-rounds runtime of ``fn`` via the pytest-benchmark fixture.

    Medians are robust to the single-round scheduler hiccups that made the
    old mean-based thresholds flake.  Falls back to a manual timing loop when
    the suite runs under ``--benchmark-disable`` (the CI smoke layer), where
    ``benchmark.stats`` is not populated.
    """
    benchmark.pedantic(fn, rounds=rounds, iterations=1, warmup_rounds=warmup_rounds)
    stats = getattr(benchmark, "stats", None)
    inner = getattr(stats, "stats", None) if stats is not None else None
    if inner is not None:
        return inner.median
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


@pytest.fixture(scope="session")
def water_192():
    """192-atom water cell — big enough for the paper's 6 Å water cutoff."""
    return water_box((4, 4, 4), seed=0)


@pytest.fixture(scope="session")
def water_81():
    return water_box((3, 3, 3), seed=0)


@pytest.fixture(scope="session")
def copper_256():
    return fcc_lattice((4, 4, 4))


@pytest.fixture(scope="session")
def paper_water_config():
    """The paper's water hyper-parameters (r_c=6 Å, sel=[46,92], 25/50/100,
    240^3) — used where fidelity to the paper's op shapes matters."""
    return DPConfig.paper_water()


@pytest.fixture(scope="session")
def zoo_water_model():
    from repro.zoo import get_water_model

    return get_water_model()


@pytest.fixture(scope="session")
def zoo_copper_model():
    from repro.zoo import get_copper_model

    return get_copper_model()


def pairs_for(system, cutoff):
    return neighbor_pairs(system, cutoff)


def print_header(title: str) -> None:
    print("\n" + "=" * 74)
    print(title)
    print("=" * 74)
