"""Trajectory and structure I/O: extended-XYZ and LAMMPS data formats.

The paper's runs write LAMMPS dumps; downstream analysis (OVITO-style CNA
coloring of Fig 7) consumes them.  This module provides the equivalents:

* :func:`write_xyz` / :func:`read_xyz` — extended XYZ with a lattice header,
  round-trip safe;
* :func:`write_lammps_data` — a minimal ``atomic``-style LAMMPS data file
  so structures built here can be fed to a real LAMMPS+DeePMD-kit install.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.md.box import Box
from repro.md.system import System


def write_xyz(system: System, path: str, comment: str = "", append: bool = False) -> None:
    """Write one extended-XYZ frame (Lattice + species + positions)."""
    lx, ly, lz = system.box.lengths
    lattice = f'Lattice="{lx} 0 0 0 {ly} 0 0 0 {lz}"'
    props = "Properties=species:S:1:pos:R:3"
    names = list(system.type_names)
    mode = "a" if append else "w"
    with open(path, mode) as fh:
        fh.write(f"{system.n_atoms}\n")
        fh.write(f"{lattice} {props} {comment}".strip() + "\n")
        for t, (x, y, z) in zip(system.types, system.positions):
            fh.write(f"{names[t]} {x:.10f} {y:.10f} {z:.10f}\n")


def read_xyz(path: str, masses: Optional[dict] = None) -> list[System]:
    """Read all frames of an (extended) XYZ file written by :func:`write_xyz`."""
    from repro.units import MASSES

    masses = masses or MASSES
    frames: list[System] = []
    lines = Path(path).read_text().splitlines()
    i = 0
    while i < len(lines):
        if not lines[i].strip():
            i += 1
            continue
        n = int(lines[i].strip())
        header = lines[i + 1]
        lengths = None
        if 'Lattice="' in header:
            cell = header.split('Lattice="')[1].split('"')[0].split()
            mat = np.array([float(v) for v in cell]).reshape(3, 3)
            lengths = np.diag(mat)
        species: list[str] = []
        pos = np.empty((n, 3))
        for k in range(n):
            parts = lines[i + 2 + k].split()
            species.append(parts[0])
            pos[k] = [float(v) for v in parts[1:4]]
        names = sorted(set(species), key=species.index)
        type_of = {s: j for j, s in enumerate(names)}
        types = np.array([type_of[s] for s in species], dtype=np.int64)
        if lengths is None:
            span = pos.max(axis=0) - pos.min(axis=0) + 10.0
            lengths = span
        frames.append(
            System(
                box=Box(lengths),
                positions=pos,
                types=types,
                masses=np.array([masses.get(s, 1.0) for s in names]),
                type_names=names,
            )
        )
        i += 2 + n
    return frames


def write_lammps_data(system: System, path: str, comment: str = "repro export") -> None:
    """Write a minimal LAMMPS ``atomic`` data file (types are 1-based)."""
    with open(path, "w") as fh:
        fh.write(f"# {comment}\n\n")
        fh.write(f"{system.n_atoms} atoms\n")
        fh.write(f"{system.n_types} atom types\n\n")
        lx, ly, lz = system.box.lengths
        fh.write(f"0.0 {lx:.10f} xlo xhi\n")
        fh.write(f"0.0 {ly:.10f} ylo yhi\n")
        fh.write(f"0.0 {lz:.10f} zlo zhi\n\n")
        fh.write("Masses\n\n")
        for t, m in enumerate(system.masses, start=1):
            fh.write(f"{t} {m:.6f}\n")
        fh.write("\nAtoms # atomic\n\n")
        for idx, (t, (x, y, z)) in enumerate(
            zip(system.types, system.positions), start=1
        ):
            fh.write(f"{idx} {t + 1} {x:.10f} {y:.10f} {z:.10f}\n")
        if np.any(system.velocities):
            fh.write("\nVelocities\n\n")
            for idx, (vx, vy, vz) in enumerate(system.velocities, start=1):
                fh.write(f"{idx} {vx:.10f} {vy:.10f} {vz:.10f}\n")
