"""Bounded, thread-safe FIFO request queue for the inference service.

The queue is the only structure clients and the workers share.  Clients
``put`` :class:`InferenceRequest` objects (backpressure: a full queue blocks
or raises :class:`QueueFull`); worker-side schedulers remove coalescable
runs of requests with :meth:`RequestQueue.pop_batch`.

Sequence numbers are stamped *inside* ``put`` under the queue lock, so
submission order, queue order, and sequence order are one and the same —
that is the invariant the FIFO-fairness tests assert through
``ServerStats.batch_log``.

Internally the queue is **segregated by key** (one deque per model): the
request's key is computed exactly once, at admission (``key_calls`` counts
the invocations — a deterministic assert that no code path rescans the
queue re-deriving keys), and every per-key count the batching fill loop
needs is an O(1) ``len`` of that key's deque, never an O(queue) scan.
Global FIFO order across keys survives as the ``seq`` ordering of the
per-key heads, so the head-of-queue key is found in O(#keys).

Wakeups are **key-aware**: each key has its own condition variable (all
sharing the queue lock), and ``put`` notifies only the admitted key's
condition plus the any-key condition — a worker parked on
``pop_batch(only=model)`` never wakes for another model's traffic (no
thundering herd in the per-model-worker pool).

Requests whose futures are **cancelled while queued** (a client gave up on
its deadline — see ``InferenceClient.evaluate``) never burn a batch slot:
a done-callback registered at admission removes a cancelled request from
its deque immediately (freeing the bounded-queue slot for blocked
submitters even when no worker is consuming), and ``pop_batch`` discards
any that slip through the callback/extraction race.  Whichever side
removes the request reports it through the ``on_drop`` callback, which the
server wires to ``ServerStats.record_cancelled`` — every abandoned request
is counted exactly once.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.md.system import System


class QueueFull(RuntimeError):
    """The bounded request queue refused a submission (backpressure)."""


class ServerClosed(RuntimeError):
    """The server is shut down and no longer accepts submissions."""


@dataclass
class InferenceRequest:
    """One client frame awaiting evaluation.

    ``seq`` is assigned by the queue at admission (-1 until then);
    ``future`` resolves to the frame's :class:`~repro.md.potential.
    PotentialResult`, bitwise identical to a direct ``DeepPot.evaluate``
    of the same frame regardless of which other requests it was batched
    with (see :mod:`repro.dp.batch`).
    """

    model: str
    system: System
    pair_i: np.ndarray
    pair_j: np.ndarray
    future: Future = field(default_factory=Future)
    seq: int = -1
    enqueued_at: float = 0.0


class RequestQueue:
    """Bounded FIFO of pending requests with batch-oriented removal.

    ``maxsize <= 0`` means unbounded.  ``key`` maps a request to its
    coalescing key (default: the request's model name) and is evaluated
    once per admission; the coalescing *policy* (batch bound, wait budget)
    belongs to the scheduler.  ``on_drop(n)`` is invoked (under the queue
    lock) whenever ``pop_batch`` discards ``n`` already-cancelled requests.
    """

    def __init__(
        self,
        maxsize: int = 64,
        key: Optional[Callable[[InferenceRequest], object]] = None,
        on_drop: Optional[Callable[[int], None]] = None,
    ):
        self.maxsize = int(maxsize)
        self._key = key if key is not None else (lambda r: r.model)
        self._on_drop = on_drop
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)  # any-key consumers
        self._not_full = threading.Condition(self._lock)
        self._key_conds: dict[object, threading.Condition] = {}
        self._by_key: dict[object, deque[InferenceRequest]] = {}
        self._size = 0
        self._closed = False
        self._seq = 0
        self.key_calls = 0  # deterministic: == admissions, never re-derived

    def __len__(self) -> int:
        with self._lock:
            return self._size

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def pending_by_key(self) -> dict:
        """Snapshot of per-key pending counts (the O(1) fill-loop counts)."""
        with self._lock:
            return {k: len(dq) for k, dq in self._by_key.items() if dq}

    # ------------------------------------------------------------- internals

    def _cond(self, key: object) -> threading.Condition:
        """The key's wakeup condition (lazily created, shares the lock)."""
        cond = self._key_conds.get(key)
        if cond is None:
            # Safe despite lazy creation: every caller already holds
            # self._lock (the condition wraps that same lock), so two threads
            # can never race the dict insert.
            cond = self._key_conds[key] = threading.Condition(self._lock)  # repro-lint: disable=L103
        return cond

    def _pending(self, only: Optional[object]) -> int:
        if only is None:
            return self._size
        dq = self._by_key.get(only)
        return len(dq) if dq is not None else 0

    def _head_key(self) -> object:
        """Key of the globally oldest pending request (min head seq)."""
        return min(
            (dq[0].seq, k) for k, dq in self._by_key.items() if dq
        )[1]

    def _notify_all_conds(self) -> None:
        self._not_empty.notify_all()
        self._not_full.notify_all()
        for cond in self._key_conds.values():
            cond.notify_all()

    # ------------------------------------------------------------- producer

    def put(
        self,
        request: InferenceRequest,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> InferenceRequest:
        """Admit a request, stamping its sequence number and enqueue time.

        A full queue raises :class:`QueueFull` immediately (``block=False``)
        or after ``timeout`` seconds; a closed queue raises
        :class:`ServerClosed`.  Only the request's key (and the any-key
        condition) is notified.
        """
        with self._not_full:
            if self._closed:
                raise ServerClosed("request queue is closed")
            if self.maxsize > 0 and self._size >= self.maxsize:
                if not block:
                    raise QueueFull(f"queue depth {self.maxsize} reached")
                deadline = (
                    None if timeout is None else time.perf_counter() + timeout
                )
                while self._size >= self.maxsize and not self._closed:
                    remaining = (
                        None
                        if deadline is None
                        else deadline - time.perf_counter()
                    )
                    if remaining is not None and remaining <= 0:
                        raise QueueFull(
                            f"queue depth {self.maxsize} held for {timeout} s"
                        )
                    self._not_full.wait(remaining)
                if self._closed:
                    raise ServerClosed("request queue closed while waiting")
            k = self._key(request)
            self.key_calls += 1
            request.seq = self._seq
            self._seq += 1
            request.enqueued_at = time.perf_counter()
            dq = self._by_key.get(k)
            if dq is None:
                dq = self._by_key[k] = deque()
            dq.append(request)
            self._size += 1
            self._cond(k).notify_all()
            self._not_empty.notify_all()
        # A cancelled-while-queued request frees its (bounded) slot
        # immediately — blocked submitters must not starve behind dead
        # requests nobody will read.  Registered OUTSIDE the critical
        # section: add_done_callback runs inline when the future is already
        # done, and the callback takes the (non-reentrant) queue lock.
        # Future.cancel() runs it on the cancelling thread, which never
        # holds the queue lock.
        request.future.add_done_callback(
            lambda fut, req=request, key=k: self._discard_cancelled(req, key)
        )
        return request

    def _discard_cancelled(self, request: InferenceRequest, key: object) -> None:
        """Remove a cancelled request from its deque, if still queued.

        Done-callback target: fires on completion too (cheap no-op) and on
        cancellation, where it races the consumer's extraction — the queue
        lock serializes them, and whichever side removes the request is the
        one that reports it to ``on_drop`` (exactly-once accounting).
        """
        if not request.future.cancelled():
            return  # normal completion: the request already left the queue
        with self._lock:
            dq = self._by_key.get(key)
            if dq is None:
                return
            try:
                dq.remove(request)
            except ValueError:
                return  # already extracted (or drained) by a consumer
            self._size -= 1
            self._not_full.notify_all()
            if self._on_drop is not None:
                self._on_drop(1)

    # ------------------------------------------------------------- consumer

    def pop_batch(
        self,
        max_batch: int,
        max_wait: float,
        only: Optional[object] = None,
        gate: Optional[threading.Event] = None,
    ) -> Optional[list[InferenceRequest]]:
        """Remove the next coalescable batch, FIFO with same-key gathering.

        Blocks until at least one request is pending (and ``gate``, if given,
        is set — the server's pause switch), then gives later arrivals up to
        ``max_wait`` seconds to fill the batch to ``max_batch`` requests
        sharing the batch key.  ``only=None`` takes the head-of-queue key
        (shared-pool workers); ``only=key`` restricts the consumer to that
        key's requests and parks it on that key's condition, so it never
        wakes for other traffic (per-model workers).  Requests with other
        keys keep their queue positions.  Requests whose futures are already
        cancelled are discarded instead of returned (reported via
        ``on_drop``).  Returns ``None`` once the queue is closed and this
        consumer's view is drained; a close cuts every wait short so
        shutdown never sleeps out a wait budget.
        """
        if only is None:
            cond = self._not_empty
        else:
            with self._lock:  # _key_conds is only ever touched under lock
                cond = self._cond(only)
        with cond:
            while True:
                # -- wait for work (or closure) --------------------------
                while (
                    self._pending(only) == 0
                    or (gate is not None and not gate.is_set())
                ):
                    if self._closed:
                        if self._pending(only) == 0:
                            return None
                        break  # closed with leftovers: drain even if gated
                    cond.wait()
                if self._pending(only) == 0:
                    if self._closed:
                        return None
                    continue

                # -- give the batch max_wait to fill ---------------------
                # Per-key pending counts are O(1) deque lengths — no rescan
                # of the queue per wakeup.  A pause (gate cleared) cuts the
                # fill window short, so requests staged under pause() join
                # the post-resume coalescing instead of riding a batch
                # already gathering.
                head_key = only if only is not None else self._head_key()
                fill_cond = self._cond(head_key)
                if max_wait > 0 and not self._closed:
                    deadline = time.perf_counter() + max_wait
                    while gate is None or gate.is_set():
                        pending = self._pending(head_key)
                        if pending >= max_batch or pending == 0 or self._closed:
                            # full batch, key drained by a racing shared-pool
                            # worker (nothing left to fill — re-pick a head
                            # instead of sleeping out the budget), or closing
                            break
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0:
                            break
                        fill_cond.wait(remaining)

                # -- extract matching requests, preserving FIFO ----------
                dq = self._by_key.get(head_key)
                if not dq:
                    continue  # drained behind our back (shutdown/racing pop)
                batch: list[InferenceRequest] = []
                dropped = 0
                while dq and len(batch) < max_batch:
                    r = dq[0]
                    if r.future.cancelled():
                        dq.popleft()  # abandoned deadline: free the slot
                        dropped += 1
                    else:
                        batch.append(dq.popleft())
                self._size -= len(batch) + dropped
                if batch or dropped:
                    self._not_full.notify_all()
                if dropped and self._on_drop is not None:
                    self._on_drop(dropped)
                if batch:
                    return batch

    # ------------------------------------------------------------- shutdown

    def kick(self) -> None:
        """Wake every parked consumer (used by resume)."""
        with self._lock:
            self._notify_all_conds()

    def close(self) -> None:
        """Refuse further submissions; pending requests stay drainable."""
        with self._lock:
            self._closed = True
            self._notify_all_conds()

    def close_and_drain(self) -> list[InferenceRequest]:
        """Close and atomically remove every pending request (no-drain
        shutdown path; the caller cancels the returned requests' futures).
        Returned in global admission (seq) order."""
        with self._lock:
            self._closed = True
            pending = sorted(
                (r for dq in self._by_key.values() for r in dq),
                key=lambda r: r.seq,
            )
            self._by_key.clear()
            self._size = 0
            self._notify_all_conds()
            return pending
