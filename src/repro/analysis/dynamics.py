"""Dynamical observables: mean-squared displacement, diffusion, VACF.

The DP water literature the paper builds on (refs [33, 66]) validates models
against the self-diffusion coefficient of water; these are the standard
estimators, operating on trajectories captured by
``Simulation(trajectory_every=...)``.

MSD requires *unwrapped* coordinates; :class:`UnwrappedTrajectory` removes
periodic jumps on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.md.box import Box
from repro.md.system import System


@dataclass
class UnwrappedTrajectory:
    """Accumulates frames, undoing periodic wrapping between snapshots.

    Assumes no atom moves more than half a box edge between recorded frames
    (guaranteed for reasonable recording strides).
    """

    box: Box
    frames: list[np.ndarray] = field(default_factory=list)
    _last_wrapped: Optional[np.ndarray] = None

    def add(self, positions: np.ndarray) -> None:
        wrapped = self.box.wrap(positions)
        if self._last_wrapped is None:
            self.frames.append(wrapped.copy())
        else:
            jump = self.box.minimum_image(wrapped - self._last_wrapped)
            self.frames.append(self.frames[-1] + jump)
        self._last_wrapped = wrapped

    def as_array(self) -> np.ndarray:
        """(n_frames, N, 3) unwrapped coordinates."""
        return np.asarray(self.frames)


def mean_squared_displacement(
    unwrapped: np.ndarray, atom_mask: Optional[np.ndarray] = None
) -> np.ndarray:
    """MSD(t) relative to the first frame, averaged over (selected) atoms.

    ``unwrapped`` is (n_frames, N, 3); returns (n_frames,) in Å².
    """
    traj = np.asarray(unwrapped)
    if atom_mask is not None:
        traj = traj[:, atom_mask, :]
    disp = traj - traj[0]
    return np.einsum("fni,fni->f", disp, disp) / traj.shape[1]


def diffusion_coefficient(
    msd: np.ndarray, dt_between_frames: float, fit_from: float = 0.5
) -> float:
    """Einstein relation: D = slope(MSD)/6, fit on the tail of the curve.

    ``dt_between_frames`` in ps; returns D in Å²/ps.  ``fit_from`` is the
    fraction of the trajectory to discard as ballistic/transient.
    """
    n = len(msd)
    start = int(fit_from * n)
    if n - start < 2:
        raise ValueError("too few frames to fit a diffusion slope")
    t = np.arange(n) * dt_between_frames
    slope, _intercept = np.polyfit(t[start:], msd[start:], 1)
    return float(slope / 6.0)


def velocity_autocorrelation(velocities: Sequence[np.ndarray]) -> np.ndarray:
    """Normalized VACF C(t) = <v(0)·v(t)> / <v(0)·v(0)> from velocity frames."""
    v = np.asarray(velocities)  # (n_frames, N, 3)
    v0 = v[0]
    denom = np.einsum("ni,ni->", v0, v0)
    if denom == 0:
        raise ValueError("zero initial velocities")
    return np.einsum("fni,ni->f", v, v0) / denom
