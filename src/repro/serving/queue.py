"""Bounded, thread-safe FIFO request queue for the inference service.

The queue is the only structure clients and the workers share.  Clients
``put`` :class:`InferenceRequest` objects (backpressure: a full queue blocks
or raises :class:`QueueFull`); worker-side schedulers remove coalescable
runs of requests with :meth:`RequestQueue.pop_batch`.

Sequence numbers are stamped *inside* ``put`` under the queue lock, so
submission order, queue order, and sequence order are one and the same —
that is the invariant the FIFO-fairness tests assert through
``ServerStats.batch_log``.

Internally the queue is **segregated by key** (one deque per model): the
request's key is computed exactly once, at admission (``key_calls`` counts
the invocations — a deterministic assert that no code path rescans the
queue re-deriving keys), and every per-key count the batching fill loop
needs is an O(1) ``len`` of that key's deque, never an O(queue) scan.
Global FIFO order across keys survives as the ``seq`` ordering of the
per-key heads, so the head-of-queue key is found in O(#keys).

Wakeups are **key-aware**: each key has its own condition variable (all
sharing the queue lock), and ``put`` notifies only the admitted key's
condition plus the any-key condition — a worker parked on
``pop_batch(only=model)`` never wakes for another model's traffic (no
thundering herd in the per-model-worker pool).

Requests whose futures are **cancelled while queued** (a client gave up on
its deadline — see ``InferenceClient.evaluate``) never burn a batch slot:
a done-callback registered at admission removes a cancelled request from
its deque immediately (freeing the bounded-queue slot for blocked
submitters even when no worker is consuming), and ``pop_batch`` discards
any that slip through the callback/extraction race.  Whichever side
removes the request reports it through the ``on_drop`` callback, which the
server wires to ``ServerStats.record_cancelled`` — every abandoned request
is counted exactly once.

Production traffic semantics (the socket front-end's contract):

* **priority + deadline ordering** — within each key's pending set,
  requests are ordered by ``(-priority, deadline, seq)``: higher
  ``priority`` values dispatch first, ties run earliest-deadline-first
  (EDF), and the default class (priority 0, no deadline) degenerates to
  the original per-key FIFO, so plain traffic keeps the exact batch
  compositions the FIFO-fairness tests pin.  Ordering is decided at
  admission time by sorted insertion (:class:`_PendingDeque`); the per-key
  O(1) pending counts and key-aware wakeups are untouched.
* **per-client admission quotas** — ``max_per_client`` bounds how many
  requests one ``client_id`` may have queued at once; excess submissions
  raise :class:`QuotaExceeded` immediately (reject, never starve the other
  clients behind one runaway submitter).  Requests without a client id
  (in-process legacy traffic) are exempt.
* **result cache** — :class:`ResultCache`, a bounded FIFO map from frame
  content hash to the frame's result.  MD steps from idle clients and
  active-learning screens resubmit bitwise-identical frames; a hit is
  served straight from the cache (bitwise identical to a fresh
  evaluation — entries are private copies, handed out as copies) without
  touching the queue.
"""

from __future__ import annotations

import hashlib
import threading
import time
from bisect import bisect_right
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.md.system import System


class QueueFull(RuntimeError):
    """The bounded request queue refused a submission (backpressure)."""


class ServerClosed(RuntimeError):
    """The server is shut down and no longer accepts submissions."""


class QuotaExceeded(RuntimeError):
    """One client exceeded its per-client admission quota (rejected, so the
    bounded queue can never fill up with a single runaway client's
    requests while everyone else starves)."""


class WorkerCrashed(RuntimeError):
    """The worker thread executing this request's batch died mid-batch.

    The supervisor failed the in-flight futures (each counted exactly
    once) and respawned the worker with a fresh engine.  Resubmitting the
    same frame is always safe: evaluation is deterministic, so a replay is
    bitwise identical to what the crashed batch would have produced."""


class TransientEvalError(RuntimeError):
    """A transient, retryable evaluation failure — the frame itself is
    fine; resubmit it (``ServingForceBackend`` does so automatically when
    given a retry budget)."""


@dataclass
class InferenceRequest:
    """One client frame awaiting evaluation.

    ``seq`` is assigned by the queue at admission (-1 until then);
    ``future`` resolves to the frame's :class:`~repro.md.potential.
    PotentialResult`, bitwise identical to a direct ``DeepPot.evaluate``
    of the same frame regardless of which other requests it was batched
    with (see :mod:`repro.dp.batch`).

    ``priority`` (bigger = dispatched sooner) and ``deadline`` (absolute
    ``time.perf_counter()`` value; EDF within a priority class) order the
    request among its key's pending set.  ``client_id`` attributes the
    request to one submitter for quota accounting (``None`` = exempt).
    ``nloc``/``pbc`` carry the domain-decomposition frame mode (all-local
    minimum-image frames by default), so the request duck-types
    :class:`repro.dp.backend.ForceFrame` and distributed sub-domain frames
    can be served through the same queue.  ``cache_key`` is the frame's
    content hash when result caching is on (stamped by the server at
    submission, used to insert the result after the batch runs).
    """

    model: str
    system: System
    pair_i: np.ndarray
    pair_j: np.ndarray
    future: Future = field(default_factory=Future)
    seq: int = -1
    enqueued_at: float = 0.0
    priority: int = 0
    deadline: Optional[float] = None
    client_id: Optional[str] = None
    nloc: Optional[int] = None
    pbc: bool = True
    cache_key: Optional[bytes] = None

    def order_key(self) -> tuple:
        """Dispatch order within a key: priority class, then EDF, then
        admission order (the pure-FIFO degenerate case)."""
        deadline = float("inf") if self.deadline is None else self.deadline
        return (-self.priority, deadline, self.seq)


class _PendingDeque:
    """One key's pending requests, kept in dispatch order.

    A deque with sorted insertion: ``append`` places the request by its
    :meth:`InferenceRequest.order_key` (stable — equal keys keep admission
    order because ``seq`` is the tiebreaker), so the extraction loop's
    ``[0]``/``popleft`` views the most urgent request first.  Insertion is
    O(log n) search + O(n) shift on a bounded queue (default depth 64) —
    the O(1) *count* operations the fill loop leans on are plain ``len``.
    """

    __slots__ = ("_keys", "_reqs")

    def __init__(self) -> None:
        self._keys: list[tuple] = []
        self._reqs: list[InferenceRequest] = []

    def append(self, request: InferenceRequest) -> None:
        k = request.order_key()
        i = bisect_right(self._keys, k)
        self._keys.insert(i, k)
        self._reqs.insert(i, request)

    def popleft(self) -> InferenceRequest:
        self._keys.pop(0)
        return self._reqs.pop(0)

    def remove(self, request: InferenceRequest) -> None:
        i = self._reqs.index(request)  # raises ValueError like deque.remove
        del self._keys[i]
        del self._reqs[i]

    def __getitem__(self, i: int) -> InferenceRequest:
        return self._reqs[i]

    def __len__(self) -> int:
        return len(self._reqs)

    def __iter__(self):
        return iter(self._reqs)

    def __bool__(self) -> bool:
        return bool(self._reqs)


class RequestQueue:
    """Bounded FIFO of pending requests with batch-oriented removal.

    ``maxsize <= 0`` means unbounded.  ``key`` maps a request to its
    coalescing key (default: the request's model name) and is evaluated
    once per admission; the coalescing *policy* (batch bound, wait budget)
    belongs to the scheduler.  ``on_drop(n)`` is invoked (under the queue
    lock) whenever ``pop_batch`` discards ``n`` already-cancelled requests.
    ``max_per_client`` (0 = unlimited) bounds any one ``client_id``'s
    simultaneously queued requests — the per-client admission quota.
    """

    def __init__(
        self,
        maxsize: int = 64,
        key: Optional[Callable[[InferenceRequest], object]] = None,
        on_drop: Optional[Callable[[int], None]] = None,
        max_per_client: int = 0,
        faults=None,
    ):
        self.maxsize = int(maxsize)
        self.max_per_client = int(max_per_client)
        self._key = key if key is not None else (lambda r: r.model)
        self._on_drop = on_drop
        #: optional :class:`~repro.serving.faults.FaultPlan` whose
        #: ``on_queue_put`` hook runs before each admission (outside the
        #: queue lock, so an injected delay never blocks consumers).
        self.faults = faults
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)  # any-key consumers
        self._not_full = threading.Condition(self._lock)
        self._key_conds: dict[object, threading.Condition] = {}
        self._by_key: dict[object, _PendingDeque] = {}
        self._per_client: dict[str, int] = {}  # client_id -> queued requests
        self._size = 0
        self._closed = False
        self._seq = 0
        self.key_calls = 0  # deterministic: == admissions, never re-derived

    def __len__(self) -> int:
        with self._lock:
            return self._size

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def pending_by_key(self) -> dict:
        """Snapshot of per-key pending counts (the O(1) fill-loop counts)."""
        with self._lock:
            return {k: len(dq) for k, dq in self._by_key.items() if dq}

    # ------------------------------------------------------------- internals

    def _cond(self, key: object) -> threading.Condition:
        """The key's wakeup condition (lazily created, shares the lock)."""
        cond = self._key_conds.get(key)
        if cond is None:
            # Safe despite lazy creation: every caller already holds
            # self._lock (the condition wraps that same lock), so two threads
            # can never race the dict insert.
            cond = self._key_conds[key] = threading.Condition(self._lock)  # repro-lint: disable=L103
        return cond

    def _pending(self, only: Optional[object]) -> int:
        if only is None:
            return self._size
        dq = self._by_key.get(only)
        return len(dq) if dq is not None else 0

    def _head_key(self) -> object:
        """Key of the globally most-urgent pending request.

        Heads compete on the same ``(priority class, deadline, seq)`` order
        requests sort by inside a key — for all-default traffic that is
        min head seq, the original global-FIFO rule.
        """
        return min(
            (dq[0].order_key(), k) for k, dq in self._by_key.items() if dq
        )[1]

    def _note_admitted(self, request: InferenceRequest) -> None:
        if request.client_id is not None:
            self._per_client[request.client_id] = (
                self._per_client.get(request.client_id, 0) + 1
            )

    def _note_removed(self, request: InferenceRequest) -> None:
        cid = request.client_id
        if cid is None:
            return
        left = self._per_client.get(cid, 0) - 1
        if left > 0:
            self._per_client[cid] = left
        else:
            self._per_client.pop(cid, None)

    def pending_for_client(self, client_id: str) -> int:
        """Queued (not yet dispatched/cancelled) requests for one client."""
        with self._lock:
            return self._per_client.get(client_id, 0)

    def _notify_all_conds(self) -> None:
        self._not_empty.notify_all()
        self._not_full.notify_all()
        for cond in self._key_conds.values():
            cond.notify_all()

    # ------------------------------------------------------------- producer

    def put(
        self,
        request: InferenceRequest,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> InferenceRequest:
        """Admit a request, stamping its sequence number and enqueue time.

        A full queue raises :class:`QueueFull` immediately (``block=False``)
        or after ``timeout`` seconds; a closed queue raises
        :class:`ServerClosed`; a request from a client already holding
        ``max_per_client`` queue slots raises :class:`QuotaExceeded` without
        waiting (quota rejections are immediate even when ``block=True`` —
        backpressure waits are for *shared* capacity, not for one client's
        own backlog to clear).  Only the request's key (and the any-key
        condition) is notified.
        """
        if self.faults is not None:
            self.faults.on_queue_put(request)
        with self._not_full:
            if self._closed:
                raise ServerClosed("request queue is closed")
            if (
                self.max_per_client > 0
                and request.client_id is not None
                and self._per_client.get(request.client_id, 0)
                >= self.max_per_client
            ):
                raise QuotaExceeded(
                    f"client {request.client_id!r} already has "
                    f"{self.max_per_client} requests queued"
                )
            if self.maxsize > 0 and self._size >= self.maxsize:
                if not block:
                    raise QueueFull(f"queue depth {self.maxsize} reached")
                deadline = (
                    None if timeout is None else time.perf_counter() + timeout
                )
                while self._size >= self.maxsize and not self._closed:
                    remaining = (
                        None
                        if deadline is None
                        else deadline - time.perf_counter()
                    )
                    if remaining is not None and remaining <= 0:
                        raise QueueFull(
                            f"queue depth {self.maxsize} held for {timeout} s"
                        )
                    self._not_full.wait(remaining)
                if self._closed:
                    raise ServerClosed("request queue closed while waiting")
                if (
                    self.max_per_client > 0
                    and request.client_id is not None
                    and self._per_client.get(request.client_id, 0)
                    >= self.max_per_client
                ):
                    # The client's own backlog filled up while this thread
                    # waited for shared capacity; the quota invariant holds
                    # at admission, not merely at entry.
                    raise QuotaExceeded(
                        f"client {request.client_id!r} already has "
                        f"{self.max_per_client} requests queued"
                    )
            k = self._key(request)
            self.key_calls += 1
            request.seq = self._seq
            self._seq += 1
            request.enqueued_at = time.perf_counter()
            dq = self._by_key.get(k)
            if dq is None:
                dq = self._by_key[k] = _PendingDeque()
            dq.append(request)
            self._note_admitted(request)
            self._size += 1
            self._cond(k).notify_all()
            self._not_empty.notify_all()
        # A cancelled-while-queued request frees its (bounded) slot
        # immediately — blocked submitters must not starve behind dead
        # requests nobody will read.  Registered OUTSIDE the critical
        # section: add_done_callback runs inline when the future is already
        # done, and the callback takes the (non-reentrant) queue lock.
        # Future.cancel() runs it on the cancelling thread, which never
        # holds the queue lock.
        request.future.add_done_callback(
            lambda fut, req=request, key=k: self._discard_cancelled(req, key)
        )
        return request

    def _discard_cancelled(self, request: InferenceRequest, key: object) -> None:
        """Remove a cancelled request from its deque, if still queued.

        Done-callback target: fires on completion too (cheap no-op) and on
        cancellation, where it races the consumer's extraction — the queue
        lock serializes them, and whichever side removes the request is the
        one that reports it to ``on_drop`` (exactly-once accounting).
        """
        if not request.future.cancelled():
            return  # normal completion: the request already left the queue
        with self._lock:
            dq = self._by_key.get(key)
            if dq is None:
                return
            try:
                dq.remove(request)
            except ValueError:
                return  # already extracted (or drained) by a consumer
            self._note_removed(request)
            self._size -= 1
            self._not_full.notify_all()
            if self._on_drop is not None:
                self._on_drop(1)

    # ------------------------------------------------------------- consumer

    def pop_batch(
        self,
        max_batch: int,
        max_wait: float,
        only: Optional[object] = None,
        gate: Optional[threading.Event] = None,
    ) -> Optional[list[InferenceRequest]]:
        """Remove the next coalescable batch, FIFO with same-key gathering.

        Blocks until at least one request is pending (and ``gate``, if given,
        is set — the server's pause switch), then gives later arrivals up to
        ``max_wait`` seconds to fill the batch to ``max_batch`` requests
        sharing the batch key.  ``only=None`` takes the head-of-queue key
        (shared-pool workers); ``only=key`` restricts the consumer to that
        key's requests and parks it on that key's condition, so it never
        wakes for other traffic (per-model workers).  Requests with other
        keys keep their queue positions.  Requests whose futures are already
        cancelled are discarded instead of returned (reported via
        ``on_drop``).  Returns ``None`` once the queue is closed and this
        consumer's view is drained; a close cuts every wait short so
        shutdown never sleeps out a wait budget.
        """
        if only is None:
            cond = self._not_empty
        else:
            with self._lock:  # _key_conds is only ever touched under lock
                cond = self._cond(only)
        with cond:
            while True:
                # -- wait for work (or closure) --------------------------
                while (
                    self._pending(only) == 0
                    or (gate is not None and not gate.is_set())
                ):
                    if self._closed:
                        if self._pending(only) == 0:
                            return None
                        break  # closed with leftovers: drain even if gated
                    cond.wait()
                if self._pending(only) == 0:
                    if self._closed:
                        return None
                    continue

                # -- give the batch max_wait to fill ---------------------
                # Per-key pending counts are O(1) deque lengths — no rescan
                # of the queue per wakeup.  A pause (gate cleared) cuts the
                # fill window short, so requests staged under pause() join
                # the post-resume coalescing instead of riding a batch
                # already gathering.
                head_key = only if only is not None else self._head_key()
                fill_cond = self._cond(head_key)
                if max_wait > 0 and not self._closed:
                    deadline = time.perf_counter() + max_wait
                    while gate is None or gate.is_set():
                        pending = self._pending(head_key)
                        if pending >= max_batch or pending == 0 or self._closed:
                            # full batch, key drained by a racing shared-pool
                            # worker (nothing left to fill — re-pick a head
                            # instead of sleeping out the budget), or closing
                            break
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0:
                            break
                        fill_cond.wait(remaining)

                # -- extract matching requests, preserving FIFO ----------
                dq = self._by_key.get(head_key)
                if not dq:
                    continue  # drained behind our back (shutdown/racing pop)
                batch: list[InferenceRequest] = []
                dropped = 0
                while dq and len(batch) < max_batch:
                    r = dq[0]
                    if r.future.cancelled():
                        dq.popleft()  # abandoned deadline: free the slot
                        dropped += 1
                    else:
                        batch.append(dq.popleft())
                    self._note_removed(r)
                self._size -= len(batch) + dropped
                if batch or dropped:
                    self._not_full.notify_all()
                if dropped and self._on_drop is not None:
                    self._on_drop(dropped)
                if batch:
                    return batch

    # ------------------------------------------------------------- shutdown

    def kick(self) -> None:
        """Wake every parked consumer (used by resume)."""
        with self._lock:
            self._notify_all_conds()

    def close(self) -> None:
        """Refuse further submissions; pending requests stay drainable."""
        with self._lock:
            self._closed = True
            self._notify_all_conds()

    def close_and_drain(self) -> list[InferenceRequest]:
        """Close and atomically remove every pending request (no-drain
        shutdown path; the caller cancels the returned requests' futures).
        Returned in global admission (seq) order."""
        with self._lock:
            self._closed = True
            pending = sorted(
                (r for dq in self._by_key.values() for r in dq),
                key=lambda r: r.seq,
            )
            self._by_key.clear()
            self._per_client.clear()
            self._size = 0
            self._notify_all_conds()
            return pending


# ---------------------------------------------------------------------------
# result cache
# ---------------------------------------------------------------------------


def frame_content_key(
    model: str,
    system: System,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    nloc: Optional[int] = None,
    pbc: bool = True,
) -> bytes:
    """Content hash of one evaluation frame — the result-cache key.

    Two frames share a key iff every input the evaluation reads is
    bitwise identical: model name, positions, types, box lengths, the
    half pair list, and the ghost/pbc mode.  MD steps from an idle client
    and repeated active-learning screens therefore hash equal, while a
    single bit of positional drift (or a different neighbor list over the
    same positions) misses.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(model.encode("utf-8"))
    h.update(b"\x00")
    h.update(np.ascontiguousarray(system.positions).tobytes())
    h.update(np.ascontiguousarray(system.types).tobytes())
    h.update(np.ascontiguousarray(system.box.lengths).tobytes())
    h.update(np.ascontiguousarray(pair_i).tobytes())
    h.update(np.ascontiguousarray(pair_j).tobytes())
    n = system.n_atoms if nloc is None else int(nloc)
    h.update(f"{n}|{int(bool(pbc))}".encode("ascii"))
    return h.digest()


class ResultCache:
    """Bounded FIFO cache of frame results, keyed by content hash.

    ``max_entries <= 0`` disables the cache entirely (every lookup misses
    without being *counted* as a miss — a disabled cache is invisible in
    the stats).  Insertion order is eviction order (FIFO, matching every
    other engine-side cache in this repo); a re-insert of an existing key
    refreshes the entry without consuming capacity.

    Stored results are **private copies** and lookups hand back fresh
    copies, so no client can mutate another client's arrays (or the cache)
    through a shared result — the bitwise-identity contract survives
    aliasing.  ``stats`` (a :class:`~repro.serving.metrics.ServerStats`)
    receives hit/miss/eviction counts when provided.
    """

    def __init__(self, max_entries: int = 256, stats=None):
        self.max_entries = int(max_entries)
        self.stats = stats
        self._lock = threading.Lock()
        self._entries: OrderedDict[bytes, tuple[str, object]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def _copy_result(result):
        from repro.md.potential import PotentialResult

        return PotentialResult(
            energy=result.energy,
            forces=result.forces.copy(),
            virial=result.virial.copy(),
            atom_energies=(
                None
                if result.atom_energies is None
                else result.atom_energies.copy()
            ),
        )

    def get(self, key: bytes):
        """The cached result for ``key`` (a fresh copy), or ``None``."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                if self.stats is not None:
                    self.stats.record_cache_miss()
                return None
            self.hits += 1
            if self.stats is not None:
                self.stats.record_cache_hit()
            return self._copy_result(entry[1])

    def put(self, key: bytes, model: str, result) -> None:
        if not self.enabled:
            return
        copy = self._copy_result(result)
        with self._lock:
            if key in self._entries:
                self._entries[key] = (model, copy)  # refresh, keep FIFO slot
                return
            self._entries[key] = (model, copy)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                if self.stats is not None:
                    self.stats.record_cache_eviction()

    def invalidate(self, model: Optional[str] = None) -> int:
        """Drop every entry (or just one model's — the hot-swap hook);
        returns how many entries were dropped.  Invalidated entries are
        not counted as evictions (eviction = capacity pressure)."""
        with self._lock:
            if model is None:
                n = len(self._entries)
                self._entries.clear()
                return n
            doomed = [
                k for k, (m, _) in self._entries.items() if m == model
            ]
            for k in doomed:
                del self._entries[k]
            return len(doomed)
