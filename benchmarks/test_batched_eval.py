"""Batched multi-replica evaluation — per-frame cost vs batch size R.

The engine's thesis (the paper's amortization lesson applied across frames):
fixed per-evaluation costs — graph dispatch, operator launch, Python
bookkeeping — are paid once per *batch*, so per-frame cost falls as R grows.
Two kinds of assertions:

* deterministic (always on): an R-frame batch executes exactly as many graph
  operators as an R=1 evaluation (the amortization is structural, not
  incidental), the scratch pool stops allocating after warm-up, and the R=1
  batched result is bitwise identical to the serial path;
* wall-clock (median-based, gated on REPRO_BENCH_STRICT): per-frame cost at
  R=16 is measurably below R=1.

The workload is many *small* replicas (a 24-atom water cell) — the ensemble
sampling regime the engine targets, where fixed per-evaluation cost is a
large fraction of a frame.  (At frame sizes whose batched tensors spill the
cache, the CPU/NumPy backend's memory-bound ops claw the win back; the paper
hits the same trade-off at the opposite end of the hardware spectrum when
choosing how many atoms to give each GPU.)
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    bench_median,
    bench_paired_trials,
    bench_strict,
    print_header,
)
from repro.analysis.structures import water_box
from repro.dp.batch import BatchedEvaluator
from repro.dp.model import DeepPot, DPConfig
from repro.md.neighbor import neighbor_pairs

BATCH_SIZES = (1, 4, 16)
PER_FRAME = {}


@pytest.fixture(scope="module")
def model():
    # rcut shrunk so the 24-atom cell satisfies minimum image
    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))


@pytest.fixture(scope="module")
def batches(model):
    """Per batch size: (replica systems, pair lists, warmed engine)."""
    base = water_box((2, 2, 2), seed=0)
    out = {}
    for R in BATCH_SIZES:
        systems = []
        for k in range(R):
            s = base.copy()
            rng = np.random.default_rng(1000 + k)
            s.positions = s.positions + rng.normal(scale=0.02, size=s.positions.shape)
            systems.append(s)
        pls = [neighbor_pairs(s, model.config.rcut) for s in systems]
        engine = BatchedEvaluator(model)
        engine.evaluate_batch(systems, pls)  # warm-up: allocate scratch
        out[R] = (systems, pls, engine)
    return out


@pytest.mark.parametrize("R", BATCH_SIZES)
def test_batched_eval(benchmark, batches, R):
    systems, pls, engine = batches[R]
    evals_before = engine.batch_evaluations
    alloc_before = engine.scratch.alloc_count
    t = bench_median(
        benchmark, lambda: engine.evaluate_batch(systems, pls), rounds=5
    )
    PER_FRAME[R] = t / R
    # Deterministic: every benchmark round was ONE batched evaluation and the
    # warm scratch pool stayed allocation-free.
    assert engine.batch_evaluations > evals_before
    assert engine.scratch.alloc_count == alloc_before


def test_op_count_amortization(model, batches):
    """An R=16 batch runs exactly the graph of an R=1 evaluation — same
    operator sequence, bigger tensors.  Deterministic, no wall clock."""
    session = model.session
    counts = {}
    try:
        session.profile = True
        for R in (1, 16):
            systems, pls, engine = batches[R]
            session.stats.reset()
            engine.evaluate_batch(systems, pls)
            counts[R] = dict(session.stats.calls)
    finally:
        session.profile = False
        session.stats.reset()
    assert counts[16] == counts[1]
    assert sum(counts[16].values()) > 0


def test_r1_bitwise_vs_serial(model, batches):
    systems, pls, engine = batches[1]
    bat = engine.evaluate_batch(systems, pls)[0]
    ser = model.evaluate_serial(systems[0], *pls[0])
    assert bat.energy == ser.energy
    assert np.array_equal(bat.forces, ser.forces)
    assert np.array_equal(bat.virial, ser.virial)


def test_zz_report(benchmark, batches):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(BATCH_SIZES) <= PER_FRAME.keys()
    print_header("Batched multi-replica evaluation — per-frame cost vs R")
    base = PER_FRAME[1]
    print(f"{'R':>4} {'ms/frame':>10} {'vs R=1':>8}")
    for R in BATCH_SIZES:
        print(f"{R:>4} {PER_FRAME[R]*1e3:>9.2f} {base / PER_FRAME[R]:>7.2f}x")
    print("(fixed per-evaluation cost amortized over R frames; the paper's")
    print(" Sec 7 lesson applied across replicas instead of atoms)")

    # Paired interleaved A/B trials: one R=16 batch vs sixteen R=1
    # evaluations of the same frames, alternated within each trial so load
    # drift hits both sides equally; the median per-trial ratio is compared.
    # Skipped entirely under REPRO_BENCH_STRICT=0 (CI smoke) — the trials
    # only exist to feed the asserts.
    if bench_strict():
        systems16, pls16, engine16 = batches[16]
        _, _, engine1 = batches[1]

        def run_batch():
            engine16.evaluate_batch(systems16, pls16)

        def run_ones():
            for s, pl in zip(systems16, pls16):
                engine1.evaluate_batch([s], [pl])

        ratios = bench_paired_trials(run_batch, run_ones, trials=7)
        ratio = float(np.median(ratios))
        best = float(np.min(ratios))
        print(f"paired trials: one R=16 batch runs at {ratio:.2f}x (median) / "
              f"{best:.2f}x (best) the cost of")
        print(f"sixteen R=1 evaluations ({1 / ratio:.2f}x per-frame speedup)")
        assert ratio < 0.95  # typically ~0.8 on a quiet host
        assert best < 0.9
