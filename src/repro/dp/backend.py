"""Unified force backend — the one evaluation seam behind every MD driver.

The paper's scaling story (Sec 5.4, Fig 1a) is domain decomposition feeding
a batched evaluator: MD parallelism produces many sub-domain frames per
step, and the fixed per-evaluation cost (graph dispatch, staging, Python
bookkeeping) must be amortized across them.  Before this layer existed each
driver owned its own evaluate path — the serial :class:`~repro.md.
simulation.Simulation` through ``DeepPotPair``, the replica ensemble through
a private engine, and the distributed driver called ``DeepPot.evaluate``
once per rank per step, so the R x P frames that replica x rank parallelism
naturally produces never reached the batching machinery at all.

:class:`ForceBackend` is that shared layer.  Drivers describe work as
:class:`ForceFrame` s (a system snapshot + half pair list + ghost split) and
call :meth:`ForceBackend.evaluate`; the backend groups the frames into
shape buckets (:func:`repro.dp.batch.frame_bucket_key`), issues ONE batched
graph evaluation per bucket through a :class:`~repro.dp.batch.
BatchedEvaluator`, and returns per-frame results in order — each bitwise
identical to evaluating its frame alone (the retained per-rank oracle
path).  The bucket partition is cached between calls and recomputed only
when the frame population changes shape — drivers call
:meth:`invalidate_buckets` on reneighbor/migration, and a cheap per-call
validation (atom counts, ghost splits, box lengths) catches anything the
driver missed, so a stale partition can never produce wrong physics, only
a suboptimal grouping.

Swappable seam
--------------
The backend's contract is deliberately tiny — ``evaluate(frames) ->
[PotentialResult]`` plus ``invalidate_buckets()`` — so alternative
implementations can be dropped behind the same drivers.  In particular, an
:class:`~repro.serving.worker.InferenceServer`-backed implementation that
submits frames to a shared serving pool (so interactive clients and
long-running samplers coalesce into one set of batches) only has to speak
this protocol; the drivers do not change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dp.batch import (
    BatchedEvaluator,
    frame_bucket_key,
    frame_light_key,
    plan_frame_buckets,
)
from repro.md.potential import Potential, PotentialResult


@dataclass
class ForceFrame:
    """One unit of force-evaluation work submitted to a :class:`ForceBackend`.

    ``system`` carries the atoms (locals first, then explicit ghosts when
    ``nloc`` < ``n_atoms``); ``pair_i``/``pair_j`` is the half neighbor-pair
    list; ``pbc`` selects minimum-image (True) or raw displacements (False —
    the domain-decomposition mode, whose periodic images are explicit
    ghosts).
    """

    system: object  # System (or duck-typed: positions/types/box/n_atoms)
    pair_i: np.ndarray
    pair_j: np.ndarray
    nloc: Optional[int] = None  # None => every atom is local
    pbc: bool = True

    def light_key(self) -> tuple:
        """Cheap per-step validation key: everything in the bucket key that
        can drift between rebuilds (counts and box), minus the type
        signature (types only change on migration, which drivers signal via
        :meth:`ForceBackend.invalidate_buckets`).  Shares its structure
        with :func:`repro.dp.batch.frame_bucket_key` by construction."""
        return frame_light_key(self.system, self.nloc, self.pbc)


class ForceBackend:
    """Shape-bucketed batched force evaluation behind all MD drivers.

    Parameters
    ----------
    model:
        A :class:`~repro.dp.model.DeepPot` (a ``DeepPotPair`` wrapper is
        unwrapped).
    engine:
        Optional :class:`~repro.dp.batch.BatchedEvaluator` to evaluate
        through; by default the backend builds a dedicated engine so its
        scratch/plan shapes are not thrashed by unrelated evaluations.
        The engine's one-engine-one-thread invariant applies to the
        backend as a whole.
    op_backend:
        Environment-operator backend ("optimized" | "baseline"), as in
        ``DeepPot.evaluate``.

    Deterministic counters: ``evaluations`` grows by exactly
    ``bucket_count`` per :meth:`evaluate` call (one graph run per bucket —
    the assert the distributed-ensemble tests pin; counted by the backend
    itself, so sharing an engine with other callers cannot inflate it),
    and ``rebuckets`` counts partition recomputations (one at first use,
    then one per reneighbor/migration, not one per step).
    """

    def __init__(
        self,
        model,
        engine: Optional[BatchedEvaluator] = None,
        use_plan: bool = True,
        op_backend: str = "optimized",
    ):
        model = getattr(model, "model", model)  # unwrap DeepPotPair
        self.model = model
        self.engine = (
            engine
            if engine is not None
            else BatchedEvaluator(model, use_plan=use_plan)
        )
        self.op_backend = op_backend
        self._buckets: Optional[list[list[int]]] = None
        self._light_keys: Optional[list[tuple]] = None
        self.rebuckets = 0
        self.evaluations = 0  # batched graph runs this backend issued

    # ------------------------------------------------------------- bucketing

    @property
    def bucket_count(self) -> int:
        """Buckets in the cached partition (0 before the first evaluate)."""
        return 0 if self._buckets is None else len(self._buckets)

    def invalidate_buckets(self) -> None:
        """Drop the cached partition; the next evaluate rebuckets.

        Drivers call this on reneighbor/migration — the only events that
        can change a frame's type signature without changing its counts.
        """
        self._buckets = None
        self._light_keys = None

    def _refresh_buckets(self, frames: Sequence[ForceFrame], light) -> None:
        self._buckets = plan_frame_buckets(
            [frame_bucket_key(f.system, f.nloc, f.pbc) for f in frames]
        )
        self._light_keys = light
        self.rebuckets += 1

    # ------------------------------------------------------------- evaluate

    def evaluate(self, frames: Sequence[ForceFrame]) -> list[PotentialResult]:
        """Evaluate all frames; one batched graph run per shape bucket.

        Results are returned in frame order and are bitwise identical to
        evaluating each frame alone.
        """
        frames = list(frames)
        light = [f.light_key() for f in frames]
        if self._buckets is None or light != self._light_keys:
            self._refresh_buckets(frames, light)
        results = self.engine.evaluate_frames(
            frames, buckets=self._buckets, backend=self.op_backend
        )
        self.evaluations += len(self._buckets)
        return results


class ServingForceBackend:
    """The :class:`ForceBackend` contract over an inference client — MD
    drivers evaluate through a *serving pool* instead of a private engine.

    ``client`` is anything with ``submit(system, pair_i, pair_j, deadline=,
    nloc=, pbc=) -> Future`` — an in-process :class:`~repro.serving.client.
    InferenceClient` or a remote :class:`~repro.serving.net.SocketClient`;
    the drivers cannot tell the difference (and a trajectory is bitwise
    identical either way — the serving stack's per-frame contract).

    Frames are submitted pipelined (all futures first, then gathered in
    order), so a driver's whole per-step frame stack lands in the server's
    queue at once and coalesces — with whatever *other* clients are
    submitting concurrently — into shared micro-batches.  That is the
    difference from a private :class:`ForceBackend`: batching happens
    globally, across every process attached to the daemon, not per driver.

    Deterministic counters mirror the local backend where they can:
    ``evaluations`` counts gather rounds (batch formation belongs to the
    server — read ``ServerStats`` for occupancy); ``invalidations`` counts
    :meth:`invalidate_buckets` calls (bucketing is server-side and per
    batch, so there is no client-side partition to drop).

    ``retries`` > 0 makes the backend resilient to *recoverable* server
    faults: a frame failing with :class:`~repro.serving.queue.
    WorkerCrashed` or :class:`~repro.serving.queue.TransientEvalError`
    (both mean "nothing was computed wrong — resubmitting is safe") is
    resubmitted up to ``retries`` times before the error propagates;
    ``retried_frames`` counts the resubmissions.  Resubmission is bitwise
    safe: the same arrays produce the same server-side content key, so a
    replayed frame returns the identical result.
    """

    def __init__(self, client, timeout: Optional[float] = 300.0,
                 retries: int = 0):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.client = client
        self.timeout = timeout
        self.retries = int(retries)
        self.evaluations = 0   # gather rounds (one per evaluate() call)
        self.invalidations = 0
        self.retried_frames = 0

    def evaluate(self, frames: Sequence[ForceFrame]) -> list[PotentialResult]:
        """Submit all frames to the serving pool, gather results in order."""
        if self.retries > 0:
            # Lazy import: repro.serving imports repro.dp, so the exception
            # types cannot be imported at module scope without a cycle.
            from repro.serving.queue import TransientEvalError, WorkerCrashed

            retryable: tuple = (TransientEvalError, WorkerCrashed)
        else:
            retryable = ()
        frames = list(frames)
        futures = [
            self.client.submit(
                f.system, f.pair_i, f.pair_j,
                timeout=self.timeout, nloc=f.nloc, pbc=f.pbc,
            )
            for f in frames
        ]
        results: list[PotentialResult] = []
        try:
            for k, frame in enumerate(frames):
                budget = self.retries
                while True:
                    try:
                        results.append(futures[k].result(self.timeout))
                        break
                    except retryable:
                        if budget <= 0:
                            raise
                        budget -= 1
                        self.retried_frames += 1
                        futures[k] = self.client.submit(
                            frame.system, frame.pair_i, frame.pair_j,
                            timeout=self.timeout, nloc=frame.nloc,
                            pbc=frame.pbc,
                        )
        except BaseException:
            for f in futures:
                f.cancel()  # abandoned frames free their queue slots
            raise
        self.evaluations += 1
        return results

    def invalidate_buckets(self) -> None:
        """Reneighbor/migration signal.  Server-side bucketing is per batch
        (nothing cached across calls), so this only counts the event — the
        result cache needs no flush either, because a reneighbored frame has
        a different pair list and therefore a different content key."""
        self.invalidations += 1


class BackendPotential(Potential):
    """A :class:`~repro.md.potential.Potential` over any force backend —
    the adapter that lets the serial :class:`~repro.md.simulation.
    Simulation` driver run against a :class:`ServingForceBackend` (or any
    other ``evaluate(frames)`` implementation) unchanged::

        client = SocketClient(address, "water")
        sim = Simulation(system, BackendPotential(
            ServingForceBackend(client), cutoff=client.cutoff))

    ``cutoff`` must match the served model's ``rcut`` — the driver sizes
    neighbor lists from it (``SocketClient.cutoff`` reports the server's
    value from the WELCOME handshake).
    """

    def __init__(self, backend, cutoff: float):
        self.backend = backend
        self.cutoff = float(cutoff)

    def compute(self, system, pair_i, pair_j) -> PotentialResult:
        return self.backend.evaluate([ForceFrame(system, pair_i, pair_j)])[0]

    def compute_batch(self, systems, pair_lists) -> list[PotentialResult]:
        return self.backend.evaluate(
            [
                ForceFrame(s, pi, pj)
                for s, (pi, pj) in zip(systems, pair_lists)
            ]
        )
