"""Unit tests for tfmini operator kernels and shape behaviour."""

import numpy as np
import pytest

import repro.tfmini as tf
from repro.tfmini.graph import topo_sort
from repro.tfmini.ops import op_category, scale


@pytest.fixture
def sess():
    return tf.Session()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestLeaves:
    def test_constant_roundtrip(self, sess):
        c = tf.constant([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(sess.run(c), [[1.0, 2.0], [3.0, 4.0]])

    def test_variable_value_readback(self, sess):
        v = tf.variable(np.arange(6.0).reshape(2, 3))
        np.testing.assert_array_equal(sess.run(v), np.arange(6.0).reshape(2, 3))

    def test_variable_assign_updates_execution(self, sess):
        v = tf.variable(np.zeros(3))
        v.assign(np.ones(3))
        np.testing.assert_array_equal(sess.run(v), np.ones(3))

    def test_variable_assign_shape_mismatch_raises(self):
        v = tf.variable(np.zeros(3))
        with pytest.raises(ValueError, match="shape"):
            v.assign(np.zeros(4))

    def test_placeholder_must_be_fed(self, sess):
        p = tf.placeholder("p")
        with pytest.raises(KeyError, match="was not fed"):
            sess.run(p)

    def test_placeholder_feed(self, sess):
        p = tf.placeholder("p")
        np.testing.assert_array_equal(sess.run(p, {p: np.eye(2)}), np.eye(2))


class TestElementwise:
    def test_add_sub_mul_neg(self, sess, rng):
        a_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=(3, 4))
        a, b = tf.constant(a_val), tf.constant(b_val)
        np.testing.assert_allclose(sess.run(a + b), a_val + b_val)
        np.testing.assert_allclose(sess.run(a - b), a_val - b_val)
        np.testing.assert_allclose(sess.run(a * b), a_val * b_val)
        np.testing.assert_allclose(sess.run(-a), -a_val)

    def test_add_broadcasts_bias(self, sess, rng):
        x_val = rng.normal(size=(5, 3))
        b_val = rng.normal(size=3)
        out = sess.run(tf.add(tf.constant(x_val), tf.constant(b_val)))
        np.testing.assert_allclose(out, x_val + b_val)

    def test_square(self, sess, rng):
        x_val = rng.normal(size=(4,))
        np.testing.assert_allclose(sess.run(tf.square(tf.constant(x_val))), x_val**2)

    def test_scale(self, sess):
        x = tf.constant([1.0, -2.0])
        np.testing.assert_allclose(sess.run(scale(x, 2.5)), [2.5, -5.0])


class TestMatrixOps:
    def test_matmul(self, sess, rng):
        a_val = rng.normal(size=(3, 5))
        b_val = rng.normal(size=(5, 2))
        out = sess.run(tf.matmul(tf.constant(a_val), tf.constant(b_val)))
        np.testing.assert_allclose(out, a_val @ b_val)

    def test_gemm_equals_matmul_plus_bias(self, sess, rng):
        a_val = rng.normal(size=(7, 3))
        w_val = rng.normal(size=(3, 4))
        b_val = rng.normal(size=4)
        out = sess.run(tf.gemm(tf.constant(a_val), tf.constant(w_val), tf.constant(b_val)))
        np.testing.assert_allclose(out, a_val @ w_val + b_val)

    def test_gemm_beta_zero_drops_c(self, sess, rng):
        a_val = rng.normal(size=(2, 3))
        w_val = rng.normal(size=(3, 4))
        c_val = rng.normal(size=(2, 4))
        out = sess.run(
            tf.gemm(tf.constant(a_val), tf.constant(w_val), tf.constant(c_val), beta=0.0)
        )
        np.testing.assert_allclose(out, a_val @ w_val)

    def test_gemm_full_matrix_c(self, sess, rng):
        a_val = rng.normal(size=(2, 3))
        w_val = rng.normal(size=(3, 4))
        c_val = rng.normal(size=(2, 4))
        out = sess.run(
            tf.gemm(tf.constant(a_val), tf.constant(w_val), tf.constant(c_val), beta=2.0)
        )
        np.testing.assert_allclose(out, a_val @ w_val + 2.0 * c_val)

    def test_matvec_row_count_independent(self, sess, rng):
        """N==1 products must give bitwise-identical rows no matter how many
        other rows share the call — BLAS's matrix-vector kernels do not
        (they switch strategy with the row count), which is why matmul/gemm
        use a dedicated row-wise reduction for this shape.  The batched
        engine's frame-independence guarantee (repro.dp.batch, repro.serving)
        rests on this property."""
        w_val = rng.normal(size=(32, 1))
        b_val = rng.normal(size=1)
        for m in (10, 54, 100, 333):
            a_val = rng.normal(size=(m, 32))
            extra = rng.normal(size=(2 * m, 32))
            stacked = np.vstack([a_val, extra])
            alone = sess.run(tf.matmul(tf.constant(a_val), tf.constant(w_val)))
            together = sess.run(
                tf.matmul(tf.constant(stacked), tf.constant(w_val))
            )
            assert np.array_equal(alone, together[:m])
            alone_g = sess.run(
                tf.gemm(tf.constant(a_val), tf.constant(w_val), tf.constant(b_val))
            )
            together_g = sess.run(
                tf.gemm(tf.constant(stacked), tf.constant(w_val), tf.constant(b_val))
            )
            assert np.array_equal(alone_g, together_g[:m])

    def test_matvec_matches_reference_product(self, sess, rng):
        a_val = rng.normal(size=(9, 5))
        w_val = rng.normal(size=(5, 1))
        out = sess.run(tf.matmul(tf.constant(a_val), tf.constant(w_val)))
        np.testing.assert_allclose(out, a_val @ w_val)
        assert out.shape == (9, 1)

    def test_matvec_shape_mismatch_still_raises(self, sess, rng):
        """The row-wise kernel must not let broadcasting swallow a K
        mismatch that `a @ b` would reject."""
        a_val = rng.normal(size=(3, 4))
        w_val = rng.normal(size=(1, 1))
        with pytest.raises(ValueError):
            sess.run(tf.matmul(tf.constant(a_val), tf.constant(w_val)))

    def test_bmm(self, sess, rng):
        a_val = rng.normal(size=(6, 3, 5))
        b_val = rng.normal(size=(6, 5, 2))
        out = sess.run(tf.bmm(tf.constant(a_val), tf.constant(b_val)))
        np.testing.assert_allclose(out, a_val @ b_val)

    def test_transpose_default_and_perm(self, sess, rng):
        x_val = rng.normal(size=(2, 3, 4))
        np.testing.assert_allclose(
            sess.run(tf.transpose(tf.constant(x_val), (0, 2, 1))),
            x_val.transpose(0, 2, 1),
        )
        m = rng.normal(size=(2, 5))
        np.testing.assert_allclose(sess.run(tf.transpose(tf.constant(m))), m.T)


class TestShapeOps:
    def test_concat_last_axis(self, sess, rng):
        a_val = rng.normal(size=(3, 2))
        b_val = rng.normal(size=(3, 4))
        out = sess.run(tf.concat(tf.constant(a_val), tf.constant(b_val), axis=-1))
        np.testing.assert_allclose(out, np.concatenate([a_val, b_val], axis=-1))

    def test_slice_cols(self, sess, rng):
        x_val = rng.normal(size=(4, 10))
        out = sess.run(tf.slice_cols(tf.constant(x_val), 2, 7))
        np.testing.assert_allclose(out, x_val[:, 2:7])

    def test_reshape(self, sess):
        x = tf.constant(np.arange(12.0))
        np.testing.assert_array_equal(
            sess.run(tf.reshape(x, (3, 4))), np.arange(12.0).reshape(3, 4)
        )


class TestReductions:
    def test_reduce_sum_all(self, sess, rng):
        x_val = rng.normal(size=(3, 4))
        assert sess.run(tf.reduce_sum(tf.constant(x_val))) == pytest.approx(x_val.sum())

    def test_reduce_sum_axis(self, sess, rng):
        x_val = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            sess.run(tf.reduce_sum(tf.constant(x_val), axis=0)), x_val.sum(axis=0)
        )

    def test_reduce_mean(self, sess, rng):
        x_val = rng.normal(size=(5, 2))
        assert sess.run(tf.reduce_mean(tf.constant(x_val))) == pytest.approx(x_val.mean())


class TestActivationsAndCast:
    def test_tanh(self, sess, rng):
        x_val = rng.normal(size=(4, 4))
        np.testing.assert_allclose(sess.run(tf.tanh(tf.constant(x_val))), np.tanh(x_val))

    def test_cast_dtype(self, sess):
        x = tf.constant(np.ones((2, 2), dtype=np.float64))
        out = sess.run(tf.cast(x, np.float32))
        assert out.dtype == np.float32

    def test_cast_preserves_static_shape(self):
        x = tf.constant(np.ones((2, 3)))
        assert tf.cast(x, np.float32).shape == (2, 3)


class TestGraphUtilities:
    def test_topo_sort_orders_inputs_first(self):
        a = tf.constant(1.0)
        b = tf.constant(2.0)
        c = a + b
        d = c * a
        order = topo_sort([d])
        pos = {id(n): i for i, n in enumerate(order)}
        assert pos[id(a)] < pos[id(c)] < pos[id(d)]
        assert pos[id(b)] < pos[id(c)]

    def test_topo_sort_handles_deep_chains(self):
        # Deep graphs must not hit the Python recursion limit.
        x = tf.constant(0.0)
        node = x
        for _ in range(5000):
            node = node + x
        assert len(topo_sort([node])) == 5001

    def test_op_category_mapping(self):
        assert op_category("matmul") == "GEMM"
        assert op_category("gemm") == "GEMM"
        assert op_category("tanh_grad") == "TANH"
        assert op_category("slice") == "SLICE"
        assert op_category("env_mat_opt") == "CUSTOM"
        assert op_category("add") == "Others"

    def test_unknown_op_raises(self, sess):
        from repro.tfmini.graph import Node

        with pytest.raises(KeyError, match="unknown op"):
            sess.run(Node("no_such_op", (tf.constant(1.0),)))
