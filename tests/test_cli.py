"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "repro.dp" in out
        assert "model zoo" in out

    def test_scaling_prints_tables(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Fig 5" in out
        assert "Fig 6" in out
        assert "86.2" in out or "85.9" in out  # the headline PFLOPS row

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
