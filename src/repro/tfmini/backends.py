"""Pluggable kernel backends for the plan compiler.

The ROADMAP's "multi-backend executor" seam: a plan's tape is
backend-neutral (records are op name + slots + attrs), and a
:class:`KernelBackend` decides how that tape executes.  Today's backends:

``numpy``
    One registered kernel per record — the PR 3–9 executor, and the
    bitwise reference alongside ``Session.run``.

``fused``
    The elementwise fusion pass (:mod:`repro.tfmini.fusion`): maximal
    elementwise chains collapse into single records executed by the
    blocked (cache-tiled) interpreter.  **Bitwise identical** to ``numpy``
    — fused ops are pointwise, so tiling cannot change any element.

``numexpr``
    Registered only when the ``numexpr`` package is importable (it is an
    optional dependency and is never installed by this repo).  Fuses like
    ``fused`` but evaluates expressible chains through numexpr's own
    blocked VM.  **Not** bitwise (numexpr reassociates and substitutes
    kernels); verification policy is tolerance-tiered, per the README
    backend table.

Selection: ``compile_plan(..., backend=...)`` > the ``REPRO_PLAN_BACKEND``
environment variable > ``"numpy"``.  Engines (``BatchedEvaluator``,
``Trainer``, ``InferenceServer``) plumb a ``plan_backend`` knob down to
this resolution, so a whole process — or a whole CI job — can switch
backends without touching call sites.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

ENV_BACKEND = "REPRO_PLAN_BACKEND"


class KernelBackend:
    """How a compiled tape executes; see module docstring.

    ``prepare(records, fetch_slots)`` runs after tape scheduling and before
    liveness, returning ``(records, fused_groups)`` — the identity for
    per-record backends, the fusion pass for fusing ones.  ``bitwise``
    declares the verification policy: bitwise backends are asserted
    bit-for-bit against ``Session.run``; the rest get tolerance tiers.
    """

    name = "abstract"
    bitwise = True

    def prepare(self, records: list, fetch_slots: Sequence[int]):
        return records, []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelBackend {self.name}>"


class NumpyBackend(KernelBackend):
    """One registered numpy kernel per tape record (the reference)."""

    name = "numpy"
    bitwise = True


class FusedBackend(KernelBackend):
    """Elementwise fusion + blocked interpreter (bitwise)."""

    name = "fused"
    bitwise = True

    def __init__(self, tile_bytes: Optional[int] = None):
        self.tile_bytes = tile_bytes

    def prepare(self, records: list, fetch_slots: Sequence[int]):
        from repro.tfmini.fusion import fuse_tape

        return fuse_tape(records, fetch_slots, tile_bytes=self.tile_bytes)


class NumexprBackend(FusedBackend):
    """Fusion pass + numexpr evaluation for expressible chains.

    Falls back to the blocked interpreter member-kernel path for groups
    containing ops numexpr cannot express.  Tolerance-tiered (not
    bitwise): numexpr's VM may reassociate and uses its own transcendental
    implementations.
    """

    name = "numexpr"
    bitwise = False

    def prepare(self, records: list, fetch_slots: Sequence[int]):
        from repro.tfmini.fusion import fuse_tape
        from repro.tfmini.numexpr_group import NumexprGroup

        return fuse_tape(
            records, fetch_slots, tile_bytes=self.tile_bytes,
            group_cls=NumexprGroup,
        )


_BACKENDS: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> None:
    """Register (or replace) a backend under ``backend.name``."""
    _BACKENDS[backend.name] = backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_BACKENDS)


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend: explicit name > ``REPRO_PLAN_BACKEND`` > numpy."""
    if name is None:
        name = os.environ.get(ENV_BACKEND, "") or "numpy"
    if isinstance(name, KernelBackend):
        return name
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown plan backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None


register_backend(NumpyBackend())
register_backend(FusedBackend())
try:  # optional accelerator — never installed by this repo, only detected
    import numexpr as _numexpr  # noqa: F401

    register_backend(NumexprBackend())
except ImportError:  # pragma: no cover - numexpr absent in CI
    pass
