"""repro.perfmodel — an analytic performance model of DeePMD-kit on Summit.

The paper's headline results (Figs 5-6, Tables 1 and 4) are measurements on
4,560 Summit nodes; that hardware is substituted here by a calibrated
analytic model (see DESIGN.md):

* :mod:`repro.perfmodel.machine` — Summit's per-GPU/node/network constants
  exactly as quoted in Sec 6.2, plus three calibration constants (GEMM
  efficiency, fixed per-step overhead, per-ghost cost) anchored on two
  points of Table 4 and validated on the remaining five;
* :mod:`repro.perfmodel.flops` — exact analytic FLOP counts of the DP model,
  cross-checked against the tfmini executor's counted FLOPs;
* :mod:`repro.perfmodel.costmodel` — per-step wall time from a roofline +
  overhead + geometric ghost-region + communication decomposition;
* :mod:`repro.perfmodel.scaling` — strong/weak scaling sweeps that regenerate
  the rows/series of Table 1, Table 4, Fig 5 and Fig 6.
"""

from repro.perfmodel.machine import SummitMachine, SUMMIT
from repro.perfmodel.flops import dp_flops_per_atom, FlopBreakdown
from repro.perfmodel.costmodel import (
    SystemSpec,
    WATER_SPEC,
    COPPER_SPEC,
    step_time,
    ghost_count,
    decompose_gpus,
)
from repro.perfmodel.scaling import (
    ScalingPoint,
    strong_scaling,
    weak_scaling,
    table4_rows,
    table1_rows,
)

__all__ = [
    "SummitMachine",
    "SUMMIT",
    "dp_flops_per_atom",
    "FlopBreakdown",
    "SystemSpec",
    "WATER_SPEC",
    "COPPER_SPEC",
    "step_time",
    "ghost_count",
    "decompose_gpus",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
    "table4_rows",
    "table1_rows",
]
