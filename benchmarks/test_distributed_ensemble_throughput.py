"""Distributed-ensemble force evaluation: bucketed batching vs per-rank.

The parallel layer's thesis (Sec 5.4 + the amortization lesson of the
follow-up DPMD papers): R replicas x P ranks produce R x P sub-domain
frames per step, and evaluating them as a handful of shape-bucketed batched
graph runs amortizes the fixed per-evaluation cost that a
one-evaluation-per-rank schedule pays R x P times.

Two kinds of assertions (the established bench policy):

* deterministic (always on): a step issues exactly ``bucket_count`` batched
  evaluations — strictly fewer than R x P; every evaluation goes through the
  locals-first ghost-stacked staging path; the bucket partition is computed
  once, not per step; and the engine's scratch pool stops allocating after
  warm-up;
* wall-clock (paired interleaved trials, gated on REPRO_BENCH_STRICT):
  the fused ensemble step beats R independent per-rank-path simulations.
  The workload is many small replicas — the regime where fixed cost
  dominates a frame (measured ~0.64 median ratio on the dev host).
"""

import numpy as np
import pytest

from benchmarks.conftest import bench_paired_trials, bench_strict, print_header
from repro.analysis.structures import water_box
from repro.dp import DeepPot, DPConfig
from repro.md import boltzmann_velocities
from repro.parallel import DistributedEnsembleSimulation, DistributedSimulation

R = 8
GRID = (2, 1, 1)
P = int(np.prod(GRID))
KW = dict(grid=GRID, dt=0.0005, skin=1.0, rebuild_every=1000)


@pytest.fixture(scope="module")
def model():
    # rcut shrunk so the 24-atom cell satisfies minimum image — the
    # many-small-replicas sampling regime the batched engine targets.
    return DeepPot(DPConfig.tiny(sel=(8, 16), rcut=3.0))


@pytest.fixture(scope="module")
def base():
    return water_box((2, 2, 2), seed=0)


def make_ensemble(model, base):
    return DistributedEnsembleSimulation.from_system(
        base, model, n_replicas=R, temperature=300.0, seed=1, **KW
    )


def make_per_rank(model, base):
    solos = []
    for k in range(R):
        s = base.copy()
        boltzmann_velocities(s, 300.0, seed=1 + k)
        solos.append(
            DistributedSimulation(s, model, force_path="per-rank", **KW)
        )
    return solos


def test_one_evaluation_per_bucket_per_step(model, base):
    """Deterministic: evaluations per step == bucket count << R x P."""
    ens = make_ensemble(model, base)
    backend = ens.force_backend
    before = backend.evaluations
    n_steps = 5
    ens.run(n_steps)
    per_step = (backend.evaluations - before) / n_steps
    assert per_step == backend.bucket_count
    assert backend.bucket_count < R * P
    assert backend.rebuckets == 1  # partition cached, not rebuilt per step
    assert backend.engine.general_batches == 0
    assert backend.engine.ghost_stacked_batches == backend.evaluations
    # A per-rank schedule would have issued R*P evaluations per step.
    print_header("Distributed ensemble: evaluations per step")
    print(
        f"R={R} replicas x P={P} ranks = {R*P} frames/step -> "
        f"{backend.bucket_count} bucketed evaluations/step "
        f"({R*P / backend.bucket_count:.0f}x fewer graph runs)"
    )


def test_scratch_stops_allocating_after_warmup(model, base):
    ens = make_ensemble(model, base)
    ens.run(2)  # warm every steady shape
    engine = ens.force_backend.engine
    count = engine.scratch.alloc_count
    feed_allocs = engine.plan.stats.feed_allocs
    ens.run(3)
    assert engine.scratch.alloc_count == count
    assert engine.plan.stats.feed_allocs == feed_allocs


def test_paired_timing_batched_vs_per_rank(model, base):
    """Wall-clock (REPRO_BENCH_STRICT-gated): the fused ensemble step beats
    R independent per-rank-path simulations, paired per trial."""
    ens = make_ensemble(model, base)
    solos = make_per_rank(model, base)

    def run_batched():
        ens.run(2)

    def run_per_rank():
        for s in solos:
            s.run(2)

    ratios = bench_paired_trials(run_batched, run_per_rank, trials=5, warmup=1)
    median = float(np.median(ratios))
    print_header("Distributed ensemble: fused vs per-rank wall-clock")
    print(
        f"t(batched)/t(per-rank) per paired trial: "
        f"{', '.join(f'{r:.3f}' for r in ratios)}  (median {median:.3f})"
    )
    if bench_strict():
        # Measured ~0.64 on the dev host; 0.90 leaves noise headroom while
        # still demonstrating the amortization win.
        assert median < 0.90, (
            f"bucketed ensemble evaluation should beat per-rank "
            f"(median ratio {median:.3f})"
        )
