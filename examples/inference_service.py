"""Multi-client DP inference through the micro-batching service.

Spins up an :class:`~repro.serving.InferenceServer` hosting the zoo water
model, then drives it with N closed-loop client threads — each submits a
frame, waits for the result, and submits the next, so no client ever has
more than one request in flight.  Coalescing across *clients* is therefore
the only batching available, and the scheduler's ``max_wait_us`` window is
what makes it happen: requests that arrive within the window ride the same
batched graph execution.

Every served result is bitwise identical to a direct ``DeepPot.evaluate``
of the same frame — batching is invisible to clients except in throughput.

``--socket`` runs the same load **across two OS processes**: the parent
wraps the server in a :class:`~repro.serving.ServingDaemon` (TCP), forks a
child process of this very script (``--connect HOST:PORT``) whose clients
hammer the daemon over sockets while the parent's clients do the same, and
then reads the coalescing off ``ServerStats.batch_log`` — each executed
batch records the queue seqs it gathered, each ``RESULT`` frame carries its
request's seq back to whichever process submitted it, so batches mixing
parent seqs with child seqs are *visible, counted proof* that two
processes' traffic rode the same batched graph executions.

Run:  python examples/inference_service.py [--clients N] [--requests M]
      python examples/inference_service.py --socket [--clients N]
      python examples/inference_service.py --connect HOST:PORT   # any daemon
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import threading
import time

from repro.analysis.structures import water_box
from repro.serving import (
    InferenceServer,
    ServingDaemon,
    SocketClient,
    perturbed_frames,
    run_closed_loop_clients,
    served_matches_direct,
)

_CHILD_MARKER = "CHILD_SEQS "


def socket_closed_loop(address, label, clients, requests, base, timeout=300.0):
    """Closed-loop socket load: one thread per client, each over its own
    :class:`SocketClient`, collecting ``(seq, frame, result)`` per request
    (``future.seq`` is the daemon queue's admission stamp, echoed back in
    the RESULT frame)."""
    served = {tid: [] for tid in range(clients)}
    errors: list[tuple[int, BaseException]] = []

    def run(tid: int) -> None:
        client = SocketClient(address, "water", client=f"{label}-{tid}")
        try:
            frames = perturbed_frames(
                base, requests, seed0=100 * (tid + 1) + (0 if label == "parent" else 50_000)
            )
            for frame in frames:
                fut = client.submit(frame)
                result = fut.result(timeout)
                served[tid].append((fut.seq, frame, result))
        except BaseException as exc:
            errors.append((tid, exc))
        finally:
            client.close()

    threads = [
        threading.Thread(target=run, args=(tid,), daemon=True)
        for tid in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    if errors:
        tid, exc = errors[0]
        raise RuntimeError(f"{label} client {tid} failed: {exc!r}") from exc
    return served


def child_main(args) -> None:
    """The forked half of ``--socket``: pure socket client, no model, no
    server — just closed-loop load against ``--connect`` plus one stdout
    line handing its seqs back to the parent.  The READY/GO handshake on
    stdio lines the two processes' loops up in time, so their traffic
    actually competes for the same ``max_wait_us`` windows."""
    base = water_box((3, 3, 3), seed=0)
    print("CHILD_READY", flush=True)
    sys.stdin.readline()  # parent says GO once it is ready to submit too
    served = socket_closed_loop(
        args.connect, "child", args.clients, args.requests, base
    )
    seqs = sorted(s for mine in served.values() for s, _, _ in mine)
    print(_CHILD_MARKER + json.dumps(seqs), flush=True)


def socket_main(args, model, base, server) -> None:
    with ServingDaemon(server) as daemon:
        host, port = daemon.address
        n_child = max(1, args.clients // 2)
        n_parent = max(1, args.clients - n_child)
        print(f"daemon up on {host}:{port}; forking a child process with "
              f"{n_child} socket clients ({n_parent} stay in the parent)")
        child = subprocess.Popen(
            [sys.executable, __file__,
             "--connect", f"{host}:{port}",
             "--clients", str(n_child),
             "--requests", str(args.requests)],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True,
        )
        ready = child.stdout.readline().strip()
        if ready != "CHILD_READY":
            child.kill()
            raise RuntimeError(f"child failed to start (got {ready!r})")
        child.stdin.write("GO\n")
        child.stdin.flush()
        t0 = time.perf_counter()
        served = socket_closed_loop(
            (host, port), "parent", n_parent, args.requests, base
        )
        child_out, _ = child.communicate(timeout=600)
        wall = time.perf_counter() - t0
        if child.returncode != 0:
            raise RuntimeError(f"child exited {child.returncode}")
        # daemon.stop (on `with` exit below) drains before we read the log,
        # but all requests already completed — both closed loops finished.

    parent_seqs = {s for mine in served.values() for s, _, _ in mine}
    child_seqs = set(
        json.loads(child_out.rsplit(_CHILD_MARKER, 1)[1])
    )
    total = len(parent_seqs) + len(child_seqs)
    print(f"\n{total} requests from 2 OS processes in {wall:.2f} s "
          f"({total / wall:.1f} frames/s)")
    print(server.stats.report())

    # Coalescing across process boundaries, read off the batch log.
    log = server.stats.batch_log
    mixed = [
        rec for rec in log
        if any(s in parent_seqs for s in rec.seqs)
        and any(s in child_seqs for s in rec.seqs)
    ]
    print(f"\nbatch log: {len(log)} batches, {len(mixed)} of them mixing "
          f"requests from BOTH OS processes:")
    for rec in mixed[:8]:
        tags = ",".join(
            f"{s}:{'parent' if s in parent_seqs else 'child'}"
            for s in rec.seqs
        )
        print(f"  {rec.model} @ {rec.worker}: [{tags}]")
    if len(mixed) > 8:
        print(f"  ... and {len(mixed) - 8} more")

    matches = sum(
        served_matches_direct(model, frame, result)
        for mine in served.values()
        for _, frame, result in mine[-1:]
    )
    print(f"\nbitwise vs direct evaluate: "
          f"{matches}/{len(served)} parent spot checks identical")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--requests", type=int, default=10)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-us", type=float, default=1500.0)
    parser.add_argument("--workers", default="per-model",
                        help="'per-model' or an integer shared-pool size")
    parser.add_argument("--socket", action="store_true",
                        help="serve over TCP and split the clients across "
                             "two OS processes")
    parser.add_argument("--connect", metavar="HOST:PORT",
                        help="be a socket client against a running daemon "
                             "(what the --socket child process runs)")
    args = parser.parse_args()

    if args.connect:
        child_main(args)
        return

    from repro.zoo import get_water_model

    model = get_water_model()
    base = water_box((3, 3, 3), seed=0)
    server = InferenceServer(
        {"water": model},
        max_batch=args.max_batch,
        max_wait_us=args.max_wait_us,
        workers=args.workers,  # 'per-model' or an int (server coerces)
    )
    print(f"server up: model 'water' ({base.n_atoms}-atom frames), "
          f"max_batch={args.max_batch}, max_wait={args.max_wait_us:.0f} us, "
          f"workers={server.workers}")

    if args.socket:
        socket_main(args, model, base, server)
        return

    frame_sets = {
        tid: perturbed_frames(base, args.requests, seed0=100 * (tid + 1))
        for tid in range(args.clients)
    }

    t0 = time.perf_counter()
    served = run_closed_loop_clients(server, "water", frame_sets, timeout=300)
    wall = time.perf_counter() - t0
    server.stop()

    total = args.clients * args.requests
    print(f"\n{total} requests from {args.clients} clients in {wall:.2f} s "
          f"({total / wall:.1f} frames/s)")
    print(server.stats.report())

    # The serving guarantee, spot-checked on every client's last frame.
    matches = sum(
        served_matches_direct(model, *mine[-1]) for mine in served.values()
    )
    print(f"\nbitwise vs direct evaluate: "
          f"{matches}/{args.clients} spot checks identical")


if __name__ == "__main__":
    main()
