"""Reverse-mode automatic differentiation for tfmini graphs.

:func:`grad` builds *new graph nodes* for every vector-Jacobian product, so
the result can itself be differentiated.  That second differentiation is what
force-matching training needs: the force is already a gradient
(F = -dE/dR via ProdForce), and the training loss needs d(loss(F))/dθ.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.tfmini.graph import Node, topo_sort
from repro.tfmini.ops import add, get_op


def grad(
    output: Node,
    wrt: Sequence[Node],
    grad_output: Optional[Node] = None,
) -> list[Optional[Node]]:
    """Build gradient nodes of ``output`` w.r.t. each node in ``wrt``.

    Parameters
    ----------
    output:
        Scalar (or any-shaped, if ``grad_output`` is given) node to
        differentiate.
    wrt:
        Nodes to differentiate with respect to (variables, placeholders, or
        intermediate nodes).
    grad_output:
        Upstream cotangent; defaults to ones-like ``output`` (created lazily
        at run time so no shape knowledge is needed here).

    Returns
    -------
    list of Node or None — ``None`` where ``output`` does not depend on the
    requested node.
    """
    if grad_output is None:
        grad_output = Node("ones_like", (output,))

    order = topo_sort([output])
    # Restrict work to the sub-DAG that actually connects wrt -> output.
    wrt_ids = {id(w) for w in wrt}
    relevant: set[int] = set(wrt_ids)
    for node in order:  # topological order: inputs come before consumers
        if any(id(i) in relevant for i in node.inputs):
            relevant.add(id(node))

    grads: dict[int, Node] = {id(output): grad_output}
    for node in reversed(order):
        g = grads.get(id(node))
        if g is None or id(node) not in relevant and id(node) != id(output):
            continue
        if not node.inputs:
            continue
        vjp = get_op(node.op).vjp
        if vjp is None:
            if any(id(i) in relevant for i in node.inputs):
                raise NotImplementedError(
                    f"op '{node.op}' has no registered gradient but lies on a "
                    f"differentiation path"
                )
            continue
        input_grads = vjp(node, g)
        if len(input_grads) != len(node.inputs):
            raise RuntimeError(
                f"vjp for '{node.op}' returned {len(input_grads)} grads for "
                f"{len(node.inputs)} inputs"
            )
        for inp, ig in zip(node.inputs, input_grads):
            if ig is None or id(inp) not in relevant:
                continue
            prev = grads.get(id(inp))
            grads[id(inp)] = ig if prev is None else add(prev, ig)

    return [grads.get(id(w)) for w in wrt]


def _fwd_ones_like(inputs, attrs):
    import numpy as np

    return np.ones_like(inputs[0])


# Register the lazy ones-like leaf used as the default cotangent.
from repro.tfmini.ops import register_op  # noqa: E402

register_op(
    "ones_like",
    _fwd_ones_like,
    vjp=lambda node, g: [None],
    flops=lambda node, ins, out: 0,
    forward_out=lambda inputs, attrs, out: out.fill(1),
    infer=lambda shapes, dtypes, attrs, ctx: (shapes[0], dtypes[0]),
)
