"""Orthorhombic periodic simulation cell."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Box:
    """An orthorhombic cell with periodic boundaries in all three directions.

    ``lengths`` are the edge lengths (Å).  The cell origin is at 0, so
    fractional coordinates live in [0, 1).
    """

    lengths: np.ndarray

    def __post_init__(self):
        self.lengths = np.asarray(self.lengths, dtype=np.float64).reshape(3).copy()
        if np.any(self.lengths <= 0):
            raise ValueError(f"box lengths must be positive, got {self.lengths}")

    @property
    def volume(self) -> float:
        return float(np.prod(self.lengths))

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into the primary cell [0, L)."""
        wrapped = np.mod(positions, self.lengths)
        # np.mod can return exactly L for tiny negative inputs; fold to 0 so
        # wrapping is idempotent and cell assignment stays in range.
        return np.where(wrapped >= self.lengths, 0.0, wrapped)

    def minimum_image(self, disp: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors.

        Valid when the relevant interaction cutoff is at most half the
        shortest box edge; neighbor-list construction enforces that.
        """
        return disp - self.lengths * np.round(disp / self.lengths)

    def displacement(self, pos_i: np.ndarray, pos_j: np.ndarray) -> np.ndarray:
        """Minimum-image displacement(s) ``pos_j - pos_i``."""
        return self.minimum_image(np.asarray(pos_j) - np.asarray(pos_i))

    def check_cutoff(self, cutoff: float) -> None:
        if cutoff * 2.0 > self.lengths.min() + 1e-9:
            raise ValueError(
                f"cutoff {cutoff} Å needs box edges >= {2 * cutoff} Å for the "
                f"minimum-image convention; box is {self.lengths}"
            )

    def scaled(self, factors) -> "Box":
        """Return a new box with edge lengths multiplied by ``factors``."""
        return Box(self.lengths * np.asarray(factors, dtype=np.float64))

    def copy(self) -> "Box":
        return Box(self.lengths.copy())
