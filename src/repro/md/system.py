"""Mutable atomic state: positions, velocities, types, masses, topology."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.md.box import Box
from repro.units import MVV_TO_EV, kinetic_temperature


@dataclass
class System:
    """The full dynamical state of a simulation.

    Attributes
    ----------
    box:
        The periodic cell.
    positions:
        (N, 3) float64 coordinates in Å.
    types:
        (N,) int type indices into ``masses``/``type_names``.
    masses:
        (ntypes,) atomic masses in amu.
    type_names:
        Element label per type index, e.g. ``["O", "H"]``.
    velocities:
        (N, 3) float64 velocities in Å/ps; zeros if not set.
    mol_ids:
        Optional (N,) molecule ids — used by the water oracle for
        intramolecular exclusions; the DP model never sees them.
    """

    box: Box
    positions: np.ndarray
    types: np.ndarray
    masses: np.ndarray
    type_names: Sequence[str] = ()
    velocities: Optional[np.ndarray] = None
    mol_ids: Optional[np.ndarray] = None

    def __post_init__(self):
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError(f"positions must be (N,3), got {self.positions.shape}")
        self.types = np.ascontiguousarray(self.types, dtype=np.int64)
        if self.types.shape != (self.n_atoms,):
            raise ValueError("types must have shape (N,)")
        self.masses = np.asarray(self.masses, dtype=np.float64).reshape(-1)
        if self.types.size and self.types.max() >= self.masses.size:
            raise ValueError("type index exceeds number of masses")
        if self.velocities is None:
            self.velocities = np.zeros_like(self.positions)
        else:
            self.velocities = np.ascontiguousarray(self.velocities, dtype=np.float64)
            if self.velocities.shape != self.positions.shape:
                raise ValueError("velocities must match positions shape")
        if self.mol_ids is not None:
            self.mol_ids = np.ascontiguousarray(self.mol_ids, dtype=np.int64)
        if not self.type_names:
            self.type_names = [f"T{i}" for i in range(self.masses.size)]

    @property
    def n_atoms(self) -> int:
        return self.positions.shape[0]

    @property
    def n_types(self) -> int:
        return self.masses.size

    def atom_masses(self) -> np.ndarray:
        """Per-atom masses, shape (N,)."""
        return self.masses[self.types]

    def kinetic_energy(self) -> float:
        """Total kinetic energy in eV."""
        m = self.atom_masses()
        return float(0.5 * MVV_TO_EV * np.sum(m[:, None] * self.velocities**2))

    def temperature(self) -> float:
        """Instantaneous temperature (K) with 3N-3 degrees of freedom."""
        return kinetic_temperature(self.kinetic_energy(), max(3 * self.n_atoms - 3, 1))

    def wrap(self) -> None:
        """Wrap positions into the primary cell in place."""
        self.positions = self.box.wrap(self.positions)

    def copy(self) -> "System":
        return System(
            box=self.box.copy(),
            positions=self.positions.copy(),
            types=self.types.copy(),
            masses=self.masses.copy(),
            type_names=list(self.type_names),
            velocities=self.velocities.copy(),
            mol_ids=None if self.mol_ids is None else self.mol_ids.copy(),
        )

    def type_counts(self) -> np.ndarray:
        return np.bincount(self.types, minlength=self.n_types)
