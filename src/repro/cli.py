"""Command-line interface: ``python -m repro <command>``.

Commands
--------
info      — package/system inventory and model-zoo status
scaling   — regenerate the Summit scaling tables (Tables 1/4, Figs 5/6)
validate  — quick self-check: DP forces vs finite differences and
            distributed-vs-serial agreement (seconds, not the full suite)
"""

from __future__ import annotations

import argparse
import sys


def cmd_info(_args) -> int:
    import numpy

    import repro
    from repro.zoo import DEFAULT_CACHE

    print("repro — reproduction of Jia et al., SC '20 (Gordon Bell)")
    print(f"package: {repro.__file__}")
    print(f"numpy:   {numpy.__version__}")
    print("\nsubsystems:")
    for name, what in [
        ("repro.tfmini", "graph tensor engine (TensorFlow substitute)"),
        ("repro.md", "LAMMPS-like MD substrate"),
        ("repro.oracles", "ab-initio stand-in potentials"),
        ("repro.dp", "Deep Potential core (the paper's contribution)"),
        ("repro.parallel", "simulated MPI + domain decomposition"),
        ("repro.perfmodel", "calibrated Summit performance model"),
        ("repro.analysis", "RDF / CNA / structures / stress"),
    ]:
        print(f"  {name:<18} {what}")
    print(f"\nmodel zoo cache: {DEFAULT_CACHE}")
    if DEFAULT_CACHE.exists():
        for p in sorted(DEFAULT_CACHE.glob("*.npz")):
            print(f"  cached: {p.name}")
    else:
        print("  (empty — first example run will train the tiny models)")
    return 0


def cmd_scaling(_args) -> int:
    from repro.perfmodel.report import print_all

    print_all()
    return 0


def cmd_validate(_args) -> int:
    import numpy as np

    from repro.analysis.structures import water_box
    from repro.dp.model import DeepPot, DPConfig
    from repro.md import boltzmann_velocities
    from repro.md.neighbor import neighbor_pairs
    from repro.parallel import DistributedSimulation

    print("1/3 building a tiny DP model and a 81-atom water cell...")
    model = DeepPot(DPConfig.tiny())
    sys = water_box((3, 3, 3), seed=0)
    pi, pj = neighbor_pairs(sys, model.config.rcut)
    res = model.evaluate(sys, pi, pj)

    print("2/3 checking forces against finite differences...")
    eps, worst = 1e-5, 0.0
    for atom, comp in ((0, 0), (10, 1), (40, 2)):
        p0 = sys.positions[atom, comp]
        sys.positions[atom, comp] = p0 + eps
        a, b = neighbor_pairs(sys, model.config.rcut)
        e_plus = model.evaluate(sys, a, b).energy
        sys.positions[atom, comp] = p0 - eps
        a, b = neighbor_pairs(sys, model.config.rcut)
        e_minus = model.evaluate(sys, a, b).energy
        sys.positions[atom, comp] = p0
        num = -(e_plus - e_minus) / (2 * eps)
        worst = max(worst, abs(num - res.forces[atom, comp]))
    print(f"    max |F_analytic - F_fd| = {worst:.2e} eV/Å")
    ok_fd = worst < 1e-7

    print("3/3 checking distributed == serial...")
    big = water_box((4, 4, 4), seed=1)
    boltzmann_velocities(big, 300.0, seed=2)
    a, b = neighbor_pairs(big, model.config.rcut)
    serial_forces = model.evaluate(big, a, b).forces
    dist = DistributedSimulation(big.copy(), model, grid=(2, 1, 1), dt=5e-4, skin=1.0)
    diff = float(np.abs(dist.forces_now() - serial_forces).max())
    print(f"    max |F_dist - F_serial| = {diff:.2e} eV/Å")
    ok_dist = diff < 1e-10

    if ok_fd and ok_dist:
        print("\nvalidation PASSED")
        return 0
    print("\nvalidation FAILED")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="package inventory and zoo status")
    sub.add_parser("scaling", help="regenerate the Summit scaling tables")
    sub.add_parser("validate", help="quick end-to-end self check")
    args = parser.parse_args(argv)
    return {"info": cmd_info, "scaling": cmd_scaling, "validate": cmd_validate}[
        args.command
    ](args)


if __name__ == "__main__":
    sys.exit(main())
