"""Server-side counters for the micro-batching inference service.

Two classes of numbers live here, and the distinction matters for testing
(see the repo's bench-timing policy):

* **deterministic counters** — requests submitted/completed/failed/rejected/
  cancelled, batch count, frame count, per-batch compositions.  These are
  pure consequences of the request schedule and the coalescing policy, so
  tests and benchmarks assert on them unconditionally (no wall clock);
* **timing gauges** — queue-wait seconds.  Wall-clock measurements on a
  noisy host; they are report-only (printed by ``report()``, asserted never,
  or only under ``REPRO_BENCH_STRICT``).
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import NamedTuple


class BatchRecord(NamedTuple):
    """One executed batch: which model, which request seqs, which worker.

    Equality-compatible with plain ``(model, seqs, worker)`` tuples, so
    tests can assert whole-log expectations literally.  ``worker`` is the
    executing worker's id — the model name itself in per-model-pool mode
    (making "each model's batches ran on its own worker" a one-line
    deterministic assert), ``pool-<i>`` in shared-pool mode.
    """

    model: str
    seqs: tuple
    worker: str


class ServerStats:
    """Thread-safe counter block for one :class:`~repro.serving.worker.
    InferenceServer`.

    ``batch_log`` records, per executed batch, the model name, the
    submission sequence numbers it coalesced, and the worker that ran it —
    the ground truth the FIFO-fairness, worker-ownership, and amortization
    tests (``tests/test_serving.py``,
    ``benchmarks/test_serving_throughput.py``) assert against.  Only the
    most recent ``batch_log_limit`` entries are kept (the scalar counters
    are complete for the server's whole lifetime), so a long-running server
    does not grow memory one entry per batch forever.
    """

    def __init__(self, batch_log_limit: int = 4096) -> None:
        if batch_log_limit < 1:
            raise ValueError(
                f"batch_log_limit must be >= 1, got {batch_log_limit}"
            )
        self._lock = threading.Lock()
        self.batch_log_limit = int(batch_log_limit)
        # deterministic counters
        self.requests_submitted = 0
        self.requests_completed = 0
        self.requests_failed = 0
        self.requests_rejected = 0   # bounded-queue backpressure refusals
        self.requests_cancelled = 0  # pending requests dropped at shutdown
        self.quota_rejections = 0    # per-client admission-quota refusals
        self.cache_hits = 0          # requests served from the result cache
        self.cache_misses = 0        # cache lookups that went to the queue
        self.cache_evictions = 0     # FIFO evictions under capacity pressure
        self.worker_crashes = 0      # worker threads that died mid-batch
        self.worker_respawns = 0     # workers respawned by the supervisor
        self.cache_invalidations = 0  # entries dropped on respawn/hot-swap
        self.batches = 0
        self.frames = 0              # sum of batch sizes
        self.max_batch_frames = 0
        self.frames_per_model: Counter = Counter()
        self.frames_per_worker: Counter = Counter()
        self.batches_per_worker: Counter = Counter()
        self.batch_log: list[BatchRecord] = []
        # timing gauges (report-only)
        self.queue_wait_total = 0.0
        self.queue_wait_max = 0.0

    # ------------------------------------------------------------- recording

    def record_submit(self) -> None:
        """Count an admission attempt (undone if the queue refuses it)."""
        with self._lock:
            self.requests_submitted += 1

    def undo_submit(self) -> None:
        """Take back a :meth:`record_submit` whose put was refused."""
        with self._lock:
            self.requests_submitted -= 1

    def record_reject(self) -> None:
        with self._lock:
            self.requests_rejected += 1

    def record_cancelled(self, n: int) -> None:
        with self._lock:
            self.requests_cancelled += n

    def record_quota_reject(self) -> None:
        """A per-client quota refusal (also counted in rejected)."""
        with self._lock:
            self.quota_rejections += 1
            self.requests_rejected += 1

    def record_cache_hit(self) -> None:
        """A request served from the result cache: it completes without
        ever entering the queue, so it counts as completed (conservation:
        submitted == completed + failed + cancelled holds with zero
        batches) but adds no frame to any batch."""
        with self._lock:
            self.cache_hits += 1
            self.requests_completed += 1

    def record_cache_miss(self) -> None:
        with self._lock:
            self.cache_misses += 1

    def record_cache_eviction(self) -> None:
        with self._lock:
            self.cache_evictions += 1

    def record_worker_crash(self, failed: int) -> None:
        """A worker thread died mid-batch: its ``failed`` in-flight
        requests fail with ``WorkerCrashed`` — counted here exactly once
        (the crashed batch never reached ``record_batch``), so conservation
        (submitted == completed + failed + cancelled) holds through the
        crash."""
        with self._lock:
            self.worker_crashes += 1
            self.requests_failed += failed

    def record_worker_respawn(self) -> None:
        with self._lock:
            self.worker_respawns += 1

    def record_cache_invalidation(self, n: int) -> None:
        """``n`` result-cache entries dropped because their model's worker
        respawned (or the model was hot-swapped) — distinct from capacity
        evictions."""
        with self._lock:
            self.cache_invalidations += n

    def record_batch(
        self,
        model: str,
        seqs: tuple[int, ...],
        waits: tuple[float, ...],
        failed: bool = False,
        worker: str = "",
    ) -> None:
        with self._lock:
            n = len(seqs)
            self.batches += 1
            self.frames += n
            self.max_batch_frames = max(self.max_batch_frames, n)
            self.frames_per_model[model] += n
            self.frames_per_worker[worker] += n
            self.batches_per_worker[worker] += 1
            self.batch_log.append(BatchRecord(model, seqs, worker))
            if len(self.batch_log) > self.batch_log_limit:
                del self.batch_log[: -self.batch_log_limit]
            if failed:
                self.requests_failed += n
            else:
                self.requests_completed += n
            for w in waits:
                self.queue_wait_total += w
                self.queue_wait_max = max(self.queue_wait_max, w)

    # -------------------------------------------------------------- restore

    _RESTORABLE = (
        "requests_submitted", "requests_completed", "requests_failed",
        "requests_rejected", "requests_cancelled", "quota_rejections",
        "cache_hits", "cache_misses", "cache_evictions",
        "worker_crashes", "worker_respawns", "cache_invalidations",
        "batches", "frames", "max_batch_frames",
    )

    def restore(self, snap: dict) -> None:
        """Seed counters from a prior :meth:`snapshot` (the ``repro serve
        --checkpoint-dir`` restart path): lifetime totals survive a daemon
        restart.  Conservation survives too — a cleanly drained snapshot
        restores submitted == completed + failed + cancelled, and new
        traffic moves both sides together.  The batch log restarts empty
        (it is a bounded debugging window, not a lifetime total)."""
        with self._lock:
            for name in self._RESTORABLE:
                setattr(self, name, int(snap.get(name, getattr(self, name))))
            self.frames_per_model = Counter(snap.get("frames_per_model", {}))
            self.frames_per_worker = Counter(snap.get("frames_per_worker", {}))
            self.batches_per_worker = Counter(
                snap.get("batches_per_worker", {})
            )
            self.queue_wait_total = float(snap.get("queue_wait_total", 0.0))
            self.queue_wait_max = float(snap.get("queue_wait_max", 0.0))

    # ------------------------------------------------------------- derived

    def occupancy(self) -> float:
        """Mean frames per executed batch (the amortization factor)."""
        with self._lock:
            return self.frames / self.batches if self.batches else 0.0

    def mean_queue_wait(self) -> float:
        """Mean seconds a request waited between submit and dispatch."""
        with self._lock:
            return self.queue_wait_total / self.frames if self.frames else 0.0

    def pending(self) -> int:
        """Requests accepted but not yet dispatched or cancelled."""
        with self._lock:
            return (
                self.requests_submitted
                - self.requests_completed
                - self.requests_failed
                - self.requests_cancelled
            )

    def snapshot(self) -> dict:
        """A consistent point-in-time copy of every counter."""
        with self._lock:
            return {
                "requests_submitted": self.requests_submitted,
                "requests_completed": self.requests_completed,
                "requests_failed": self.requests_failed,
                "requests_rejected": self.requests_rejected,
                "requests_cancelled": self.requests_cancelled,
                "quota_rejections": self.quota_rejections,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "cache_evictions": self.cache_evictions,
                "worker_crashes": self.worker_crashes,
                "worker_respawns": self.worker_respawns,
                "cache_invalidations": self.cache_invalidations,
                "batches": self.batches,
                "frames": self.frames,
                "max_batch_frames": self.max_batch_frames,
                "frames_per_model": dict(self.frames_per_model),
                "frames_per_worker": dict(self.frames_per_worker),
                "batches_per_worker": dict(self.batches_per_worker),
                "occupancy": self.frames / self.batches if self.batches else 0.0,
                "queue_wait_total": self.queue_wait_total,
                "queue_wait_max": self.queue_wait_max,
            }

    def report(self) -> str:
        """Human-readable block for CLI output (``repro serve-bench``)."""
        s = self.snapshot()
        lines = [
            f"requests: {s['requests_submitted']} submitted, "
            f"{s['requests_completed']} completed, "
            f"{s['requests_failed']} failed, "
            f"{s['requests_rejected']} rejected, "
            f"{s['requests_cancelled']} cancelled",
            f"batches:  {s['batches']} "
            f"({s['frames']} frames, mean occupancy {s['occupancy']:.2f}, "
            f"largest {s['max_batch_frames']})",
            f"queueing: mean wait {self.mean_queue_wait() * 1e3:.2f} ms, "
            f"max {s['queue_wait_max'] * 1e3:.2f} ms",
        ]
        if s["cache_hits"] or s["cache_misses"] or s["cache_evictions"]:
            lines.append(
                f"cache:    {s['cache_hits']} hits, "
                f"{s['cache_misses']} misses, "
                f"{s['cache_evictions']} evictions"
            )
        if s["quota_rejections"]:
            lines.append(f"quotas:   {s['quota_rejections']} rejections")
        if s["worker_crashes"] or s["worker_respawns"]:
            lines.append(
                f"faults:   {s['worker_crashes']} worker crashes, "
                f"{s['worker_respawns']} respawns, "
                f"{s['cache_invalidations']} cache entries invalidated"
            )
        if s["frames_per_model"]:
            per = ", ".join(
                f"{m}: {n}" for m, n in sorted(s["frames_per_model"].items())
            )
            lines.append(f"models:   {per}")
        if s["frames_per_worker"]:
            per = ", ".join(
                f"{w}: {n} frames/{s['batches_per_worker'].get(w, 0)} batches"
                for w, n in sorted(s["frames_per_worker"].items())
            )
            lines.append(f"workers:  {per}")
        return "\n".join(lines)
