"""Dynamic micro-batching policy: when is a batch "ready"?

The scheduler owns the two knobs of every dynamic batching system (Triton,
TF-Serving, Ray Serve all expose the same pair):

``max_batch``
    Upper bound on coalesced frames per graph execution.  The batched
    engine's cost model is ``fixed + n_frames * marginal``, so throughput
    rises with occupancy until the stacked tensors go memory-bound — on this
    CPU backend that ceiling is reached quickly for large frames (see
    ``benchmarks/test_batched_eval.py``), hence a bound rather than
    "everything pending".

``max_wait_us``
    Latency budget: once a request is at the head of the queue, later
    arrivals get at most this long to join its batch.  Zero means purely
    opportunistic coalescing (only what is already queued).

Batches never mix models: one batch is one ``BatchedEvaluator.
evaluate_batch`` call, and an evaluator is bound to one ``DeepPot``.
Requests for other models keep their queue positions while a batch is
gathered, so per-model FIFO order is preserved and a busy model cannot
starve an idle one indefinitely (its head becomes the new batch head as soon
as the current batch is cut).

The scheduler is consumed by one *or several* workers: a per-model worker
passes ``only=model`` so it draws (and wakes) exclusively on its own
model's requests, while a shared-pool worker passes ``only=None`` and takes
whatever key heads the queue.  The request key itself lives in the queue
(computed once at admission), so the fill loop's per-key counts are O(1).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.serving.queue import InferenceRequest, RequestQueue


class MicroBatchScheduler:
    """Coalesces queued requests into per-model micro-batches."""

    def __init__(
        self,
        queue: RequestQueue,
        max_batch: int = 8,
        max_wait_us: float = 1000.0,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {max_wait_us}")
        self.queue = queue
        self.max_batch = int(max_batch)
        self.max_wait_us = float(max_wait_us)

    def next_batch(
        self,
        gate: Optional[threading.Event] = None,
        only: Optional[str] = None,
    ) -> Optional[list[InferenceRequest]]:
        """The next batch to execute, or ``None`` when the queue is closed
        and this consumer's view of it is drained (the worker's exit
        signal).

        Blocks while there is no eligible request or ``gate`` (the server's
        pause switch) is cleared.  ``only`` restricts the consumer to one
        model's requests (the per-model worker mode — the consumer then
        never wakes for other models' traffic).  The returned requests
        share one model and appear in submission order.
        """
        return self.queue.pop_batch(
            self.max_batch,
            self.max_wait_us * 1e-6,
            only=only,
            gate=gate,
        )
