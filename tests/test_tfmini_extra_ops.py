"""Gradient and forward checks for the extended tfmini operator set."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.tfmini as tf
from repro.tfmini.ops import div, exp, log, pow_scalar, relu, sigmoid, sqrt


def numeric_grad(sess, loss, var, eps=1e-6):
    g = np.zeros_like(var.value)
    flat, gflat = var.value.reshape(-1), g.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        lp = float(sess.run(loss))
        flat[i] = old - eps
        lm = float(sess.run(loss))
        flat[i] = old
        gflat[i] = (lp - lm) / (2 * eps)
    return g


def check(build, value, rtol=1e-5, atol=1e-7):
    v = tf.variable(np.asarray(value, dtype=np.float64), name="v")
    loss = build(v)
    g = tf.grad(loss, [v])[0]
    sess = tf.Session()
    np.testing.assert_allclose(
        sess.run(g), numeric_grad(sess, loss, v), rtol=rtol, atol=atol
    )


class TestForward:
    def test_exp_log_inverse(self):
        sess = tf.Session()
        x = tf.constant(np.array([0.1, 1.0, 2.5]))
        np.testing.assert_allclose(sess.run(log(exp(x))), [0.1, 1.0, 2.5])

    def test_div(self):
        sess = tf.Session()
        out = sess.run(div(tf.constant(np.array([6.0, 9.0])), tf.constant(np.array([2.0, 3.0]))))
        np.testing.assert_allclose(out, [3.0, 3.0])

    def test_sqrt(self):
        sess = tf.Session()
        np.testing.assert_allclose(sess.run(sqrt(tf.constant(np.array([4.0, 9.0])))), [2.0, 3.0])

    def test_sigmoid_range(self):
        sess = tf.Session()
        out = sess.run(sigmoid(tf.constant(np.linspace(-5, 5, 11))))
        assert np.all((out > 0) & (out < 1))
        assert out[5] == pytest.approx(0.5)

    def test_relu(self):
        sess = tf.Session()
        out = sess.run(relu(tf.constant(np.array([-1.0, 0.0, 2.0]))))
        np.testing.assert_allclose(out, [0.0, 0.0, 2.0])

    def test_pow_scalar(self):
        sess = tf.Session()
        out = sess.run(pow_scalar(tf.constant(np.array([2.0, 3.0])), 3.0))
        np.testing.assert_allclose(out, [8.0, 27.0])


class TestGradients:
    def test_exp_grad(self):
        check(lambda v: tf.reduce_sum(exp(v)), [0.3, -0.5, 1.2])

    def test_log_grad(self):
        check(lambda v: tf.reduce_sum(log(v)), [0.5, 1.5, 3.0])

    def test_div_grad_both_sides(self):
        rng = np.random.default_rng(0)
        a = tf.variable(rng.uniform(0.5, 2, size=4), name="a")
        b = tf.variable(rng.uniform(0.5, 2, size=4), name="b")
        loss = tf.reduce_sum(tf.square(div(a, b)))
        sess = tf.Session()
        ga, gb = sess.run(tf.grad(loss, [a, b]))
        np.testing.assert_allclose(ga, numeric_grad(sess, loss, a), rtol=1e-5)
        np.testing.assert_allclose(gb, numeric_grad(sess, loss, b), rtol=1e-5)

    def test_sqrt_grad(self):
        check(lambda v: tf.reduce_sum(sqrt(v)), [0.5, 2.0, 4.0])

    def test_sigmoid_grad(self):
        check(lambda v: tf.reduce_sum(tf.square(sigmoid(v))), [-1.0, 0.2, 2.0])

    def test_relu_grad_away_from_kink(self):
        check(lambda v: tf.reduce_sum(tf.square(relu(v))), [-1.0, 0.5, 2.0])

    def test_pow_scalar_grad(self):
        check(lambda v: tf.reduce_sum(pow_scalar(v, 2.5)), [0.5, 1.5, 2.5])

    @given(p=st.floats(0.5, 3.0), seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_pow_grad(self, p, seed):
        rng = np.random.default_rng(seed)
        check(lambda v: tf.reduce_sum(pow_scalar(v, p)), rng.uniform(0.5, 2.0, 3))

    def test_second_order_exp(self):
        """exp is its own derivative — grad-of-grad must also be exp."""
        v = tf.variable(np.array([0.7]), name="v")
        y = tf.reduce_sum(exp(v))
        g1 = tf.grad(y, [v])[0]
        g2 = tf.grad(tf.reduce_sum(g1), [v])[0]
        sess = tf.Session()
        np.testing.assert_allclose(sess.run(g2), np.exp([0.7]), rtol=1e-12)


class TestLatencyAblation:
    def test_latency_reduction_lifts_strong_scaling(self):
        """Sec 8.2: 'reducing the latency of GPU and network ... required to
        achieve better strong scaling' — quantified by the cost model."""
        from repro.perfmodel.scaling import latency_sensitivity

        rows = latency_sensitivity()
        pflops = [r["pflops"] for r in rows]
        assert pflops == sorted(pflops)  # lower latency -> higher PFLOPS
        # a 10x latency cut more than doubles full-machine water PFLOPS
        assert pflops[-1] / pflops[0] > 1.8
