"""Collision-cascade (irradiation damage) demo — a motivating application.

The paper's introduction lists irradiation damage (its ref [25], 50 keV Si
cascades; also ref [59], a DP model for irradiation) among the problems
demanding large-scale MD with ab initio accuracy.  This laptop-scale demo
runs the same protocol on copper:

1. equilibrate a crystal at low temperature;
2. launch a primary knock-on atom (PKA) with a large kinetic energy;
3. integrate through the ballistic phase with a small timestep;
4. count displaced atoms / surviving defects by common neighbor analysis.

The EAM oracle drives the dynamics by default (the DP zoo model's cutoff
handles near-equilibrium physics, while a cascade probes the repulsive
core, which a production DP model would need dedicated training data for —
the concurrent-learning loop of examples/active_learning.py is exactly how
DP-GEN covers such configurations).

Run:  python examples/radiation_damage.py [--pka-ev 200]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis.cna import CNA_FCC, common_neighbor_analysis, fcc_cna_cutoff
from repro.analysis.structures import CU_LATTICE, fcc_lattice
from repro.md import Berendsen, Simulation, boltzmann_velocities, fitted_neighbor_list
from repro.oracles import SuttonChenEAM
from repro.units import MVV_TO_EV


def defect_count(system) -> int:
    labels = common_neighbor_analysis(system, fcc_cna_cutoff(CU_LATTICE))
    return int(np.count_nonzero(labels != CNA_FCC))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pka-ev", type=float, default=80.0,
                        help="kinetic energy of the primary knock-on atom")
    parser.add_argument("--cells", type=int, default=6)
    parser.add_argument("--steps", type=int, default=500)
    args = parser.parse_args()

    system = fcc_lattice((args.cells,) * 3)
    boltzmann_velocities(system, 30.0, seed=1)
    potential = SuttonChenEAM()
    print(f"Crystal: {system.n_atoms} atoms at 30 K "
          f"(paper's ref [25]: 50 keV cascades in SiC)")
    print(f"Initial non-fcc defects: {defect_count(system)}")

    # pick the central atom as the PKA, firing along an off-axis direction
    center = system.box.lengths / 2
    pka = int(np.argmin(np.linalg.norm(system.positions - center, axis=1)))
    direction = np.array([1.0, 0.35, 0.15])
    direction /= np.linalg.norm(direction)
    mass = system.atom_masses()[pka]
    speed = np.sqrt(2.0 * args.pka_ev / (mass * MVV_TO_EV))
    system.velocities[pka] = speed * direction
    print(f"PKA atom {pka}: {args.pka_ev:.0f} eV -> {speed:.1f} Å/ps")

    # ballistic phase: fs-scale timestep, frequent reneighboring, mild
    # thermostat soaking up the deposited heat (poor-man's electron bath)
    neighbor = fitted_neighbor_list(system, potential.cutoff, skin=1.0)
    neighbor.rebuild_every = 2
    sim = Simulation(
        system,
        potential,
        dt=0.0002,
        integrator=Berendsen(temperature=30.0, tau=0.1),
        neighbor=neighbor,
        thermo_every=25,
    )
    peak_defects = 0
    checkpoints = []

    def watch(s):
        nonlocal peak_defects
        if s.step_count % 25 == 0:
            n = defect_count(s.system)
            peak_defects = max(peak_defects, n)
            checkpoints.append((s.step_count, n, s.system.temperature()))

    sim.run(args.steps, callback=watch)

    print(f"\n{'step':>6} {'defects':>8} {'T/K':>8}")
    for step, n, t in checkpoints:
        print(f"{step:>6} {n:>8} {t:>8.0f}")
    final = defect_count(system)
    print(f"\nThermal-spike defect count: {peak_defects} displaced atoms "
          f"({final} at the last frame, T still cooling)")
    print("Shape: a single energetic recoil converts a perfect crystal into "
          "a damaged core whose CNA-defect count tracks the thermal spike; "
          "full recombination/recovery needs ps-scale anneals (extend "
          "--steps) — and production-quality cascades need the 100M-atom "
          "scale the paper unlocks, since a 50 keV cascade spans ~50 nm.")


if __name__ == "__main__":
    main()
