"""Distributed MD drivers: lockstep SPMD over simulated ranks.

One step follows the LAMMPS/DeePMD-kit schedule (Sec 5.4):

1. velocity-Verlet first half on every rank (local atoms only);
2. reneighbor check — on rebuild, atoms migrate to their new owners and the
   ghost exchange lists are rebuilt; otherwise ghost *positions* are
   forward-communicated along the fixed lists;
3. DP force evaluation over the ranks' local+ghost frames.  The default
   path submits every rank's frame to the shared
   :class:`~repro.dp.backend.ForceBackend`, which groups frames into shape
   buckets and issues ONE batched graph evaluation per bucket — the paper's
   Fig 1 (a) picture of domain decomposition feeding a batched evaluator.
   ``force_path="per-rank"`` retains the original one-evaluation-per-rank
   loop as the bitwise oracle;
4. reverse communication adds ghost forces back to their owner ranks;
5. velocity-Verlet second half;
6. every ``thermo_every`` steps, energy/virial are (I)allreduced — the
   output-frequency and non-blocking-reduction optimizations of Sec 5.4.

Both drivers produce *identical physics* to the serial engine (see
tests/test_parallel.py and tests/test_distributed_ensemble.py) while
exercising the real communication pattern.
:class:`DistributedEnsembleSimulation` advances R replicas x P ranks in
lockstep and fuses all R x P sub-domain frames into the same per-step
backend call, so replica-level parallelism multiplies the batch the
evaluator amortizes over instead of multiplying graph dispatches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.dp.backend import ForceBackend, ForceFrame
from repro.dp.model import DeepPot
from repro.md.system import System
from repro.md.thermo import ThermoState
from repro.md.neighbor import neighbor_pairs
from repro.parallel.comm import SimComm
from repro.parallel.decomp import DomainDecomposition
from repro.units import MVV_TO_EV


@dataclass
class DistributedSimulation:
    """Domain-decomposed DP molecular dynamics on simulated MPI ranks.

    ``force_path`` selects the evaluation route: ``"bucketed"`` (default)
    submits all rank frames to a :class:`~repro.dp.backend.ForceBackend`
    (one batched evaluation per shape bucket, bitwise identical results);
    ``"per-rank"`` keeps the original one-``DeepPot.evaluate``-per-rank
    loop — the retained oracle the bucketed path is asserted against.
    A shared backend may be injected via ``force_backend`` (the
    distributed-ensemble driver does, so R replicas' frames coalesce);
    ``defer_initial_forces`` skips the setup-time evaluation so an
    enclosing ensemble can batch it across replicas.
    """

    system: System
    model: DeepPot
    grid: tuple[int, int, int] = (2, 1, 1)
    dt: float = 0.001
    skin: float = 2.0
    rebuild_every: int = 50
    thermo_every: int = 20
    use_iallreduce: bool = True
    force_path: str = "bucketed"
    force_backend: Optional[ForceBackend] = None
    defer_initial_forces: bool = False

    def __post_init__(self):
        if self.force_path not in ("bucketed", "per-rank"):
            raise ValueError(
                f"force_path must be 'bucketed' or 'per-rank', "
                f"got {self.force_path!r}"
            )
        self.comm = SimComm(int(np.prod(self.grid)))
        self.decomp = DomainDecomposition(self.grid, self.comm)
        self.step_count = 0
        self.thermo: list[ThermoState] = []
        self._ref_positions: Optional[dict[int, np.ndarray]] = None
        self._pending_thermo = []
        self._rank_energy = np.zeros(self.comm.size)
        self._rank_virial = np.zeros((self.comm.size, 3, 3))
        if self.force_backend is None and self.force_path == "bucketed":
            # A dedicated engine per driver keeps the rank-frame scratch
            # and plan-arena shapes steady (same policy as the ensemble).
            self.force_backend = ForceBackend(self.model)
        self._setup()

    # ----------------------------------------------------------------- setup

    @property
    def ghost_cutoff(self) -> float:
        return self.model.config.rcut + self.skin

    def _setup(self) -> None:
        self.decomp.assign_atoms(self.system)
        self.decomp.build_ghost_lists(self.system.box, self.ghost_cutoff)
        self._snapshot_reference()
        if not self.defer_initial_forces:
            self._compute_forces()

    def _snapshot_reference(self) -> None:
        self._ref_positions = {
            d.rank: d.positions.copy() for d in self.decomp.domains
        }
        self._last_rebuild = self.step_count

    def _needs_rebuild(self) -> bool:
        if self.step_count - self._last_rebuild >= self.rebuild_every:
            return True
        half_skin = 0.5 * self.skin
        for dom in self.decomp.domains:
            ref = self._ref_positions[dom.rank]
            if ref.shape != dom.positions.shape:
                return True
            disp = dom.positions - ref
            if disp.size and np.max(np.einsum("ij,ij->i", disp, disp)) > half_skin**2:
                return True
        return False

    # ----------------------------------------------------------------- forces

    def _force_frames(self) -> tuple[list[ForceFrame], list[int]]:
        """Per-rank local+ghost frames for the backend (empty ranks zeroed).

        Resets the per-rank energy/virial accumulators; the matching
        :meth:`_apply_force_results` fills them back in.
        """
        self._rank_energy = np.zeros(self.comm.size)
        self._rank_virial = np.zeros((self.comm.size, 3, 3))
        frames: list[ForceFrame] = []
        ranks: list[int] = []
        for dom in self.decomp.domains:
            if dom.n_own == 0:
                dom.forces = np.zeros((0, 3))
                continue
            local = dom.local_system(
                self.system.box, self.system.masses, self.system.type_names
            )
            pi, pj = neighbor_pairs(local, self.model.config.rcut, pbc=False)
            frames.append(ForceFrame(local, pi, pj, nloc=dom.n_own, pbc=False))
            ranks.append(dom.rank)
        return frames, ranks

    def _apply_force_results(self, ranks: Sequence[int], results) -> None:
        """Unpack per-rank results and reverse-communicate ghost forces."""
        by_rank = dict(zip(ranks, results))
        ghost_forces: dict[int, np.ndarray] = {}
        for dom in self.decomp.domains:
            res = by_rank.get(dom.rank)
            if res is None:  # rank owns no atoms this interval
                ghost_forces[dom.rank] = np.zeros((dom.n_ghost, 3))
                continue
            dom.forces = res.forces[: dom.n_own].copy()
            ghost_forces[dom.rank] = res.forces[dom.n_own :]
            self._rank_energy[dom.rank] = res.energy
            self._rank_virial[dom.rank] = res.virial
        self.decomp.reverse_exchange(ghost_forces)

    def _compute_forces(self) -> None:
        """Force evaluation + reverse ghost-force communication."""
        if self.force_path == "per-rank":
            self._compute_forces_per_rank()
            return
        frames, ranks = self._force_frames()
        results = self.force_backend.evaluate(frames)
        self._apply_force_results(ranks, results)

    def _compute_forces_per_rank(self) -> None:
        """The retained oracle: one ``DeepPot.evaluate`` per rank.

        Shares the frame-build and unpack/reverse-exchange logic with the
        bucketed path — only the evaluation schedule differs, so the two
        paths cannot drift apart anywhere but the property under test.
        """
        frames, ranks = self._force_frames()
        results = [
            self.model.evaluate(f.system, f.pair_i, f.pair_j, nloc=f.nloc, pbc=False)
            for f in frames
        ]
        self._apply_force_results(ranks, results)

    # ------------------------------------------------------------------- run

    def run(self, n_steps: int) -> list[ThermoState]:
        self._maybe_record_thermo()
        for _ in range(n_steps):
            self._step()
        self._flush_pending_thermo()
        return self.thermo

    # The step is split into phases so the distributed-ensemble driver can
    # interleave R replicas around ONE fused force evaluation; ``_step``
    # remains the canonical single-replica sequence.

    def _first_half_kick(self) -> None:
        """Phase 1: first half kick + drift (per rank); advances the step."""
        dt = self.dt
        for dom in self.decomp.domains:
            if dom.n_own == 0:
                continue
            inv_m = 1.0 / (self.system.masses[dom.types] * MVV_TO_EV)
            dom.velocities += 0.5 * dt * dom.forces * inv_m[:, None]
            dom.positions += dt * dom.velocities
        self.step_count += 1

    def _prepare_neighbors(self) -> bool:
        """Phase 2: reneighbor (atom migration + ghost list rebuild) or
        forward-communicate ghost positions.  Returns True on rebuild —
        the event that rebuckets the backend."""
        if self._needs_rebuild():
            snapshot = self.decomp.gather_system(self._template())
            self.decomp.assign_atoms(snapshot)
            self.decomp.build_ghost_lists(self.system.box, self.ghost_cutoff)
            self._snapshot_reference()
            if self.force_backend is not None:
                self.force_backend.invalidate_buckets()
            return True
        self.decomp.forward_exchange()
        return False

    def _second_half_kick(self) -> None:
        """Phase 5: second half kick."""
        dt = self.dt
        for dom in self.decomp.domains:
            if dom.n_own == 0:
                continue
            inv_m = 1.0 / (self.system.masses[dom.types] * MVV_TO_EV)
            dom.velocities += 0.5 * dt * dom.forces * inv_m[:, None]

    def _step(self) -> None:
        self._first_half_kick()
        self._prepare_neighbors()
        self._compute_forces()
        self._second_half_kick()
        # thermo reduction at the paper's reduced output frequency
        self._maybe_record_thermo()

    def _template(self) -> System:
        return self.system

    # ----------------------------------------------------------------- thermo

    def _maybe_record_thermo(self) -> None:
        if self.step_count % self.thermo_every != 0:
            return
        # Idempotence at run() boundaries (mirrors ThermoLog.maybe_record):
        # every run() re-records its starting step, so back-to-back runs and
        # checkpoint/resume must not duplicate an already-recorded (or
        # already-pending) row.
        if self.thermo and self.thermo[-1].step == self.step_count:
            return
        if self._pending_thermo and self._pending_thermo[-1][0] == self.step_count:
            return
        e_contrib = list(self._rank_energy)
        w_contrib = list(self._rank_virial)
        ke_contrib = []
        for dom in self.decomp.domains:
            m = self.system.masses[dom.types]
            ke_contrib.append(
                0.5 * MVV_TO_EV * float(np.sum(m[:, None] * dom.velocities**2))
            )
        if self.use_iallreduce:
            handle_e = self.comm.iallreduce(e_contrib)
            handle_w = self.comm.iallreduce(w_contrib)
            handle_k = self.comm.iallreduce(ke_contrib)
            self._pending_thermo.append(
                (self.step_count, handle_e, handle_w, handle_k)
            )
            # Overlap window: resolve the previous pending reduction now.
            if len(self._pending_thermo) > 1:
                self._resolve_thermo(self._pending_thermo.pop(0))
        else:
            e = self.comm.allreduce(e_contrib)
            w = self.comm.allreduce(w_contrib)
            k = self.comm.allreduce(ke_contrib)
            self._record(self.step_count, e, w, k)

    def _flush_pending_thermo(self) -> None:
        while self._pending_thermo:
            self._resolve_thermo(self._pending_thermo.pop(0))

    def _resolve_thermo(self, item) -> None:
        step, he, hw, hk = item
        self._record(step, he.wait(), hw.wait(), hk.wait())

    def _record(self, step: int, energy: float, virial, kinetic: float) -> None:
        # Built from the *reduced* scalars — no global gather, as on Summit.
        from repro.units import EVA3_TO_BAR, kinetic_temperature

        n_dof = max(3 * self.system.n_atoms - 3, 1)
        volume = self.system.box.volume
        pressure = (
            (2.0 * kinetic + float(np.trace(np.asarray(virial).reshape(3, 3))))
            / (3.0 * volume)
            * EVA3_TO_BAR
        )
        self.thermo.append(
            ThermoState(
                step=step,
                time_ps=step * self.dt,
                kinetic_energy=kinetic,
                potential_energy=float(energy),
                total_energy=kinetic + float(energy),
                temperature=kinetic_temperature(kinetic, n_dof),
                pressure=pressure,
            )
        )

    # ------------------------------------------------------------------ views

    def current_system(self) -> System:
        """Global system assembled from all ranks (positions + velocities)."""
        return self.decomp.gather_system(self.system)

    def total_energy_now(self) -> float:
        return float(self._rank_energy.sum())

    def forces_now(self) -> np.ndarray:
        """Global force array gathered from rank-local blocks."""
        out = np.zeros((self.system.n_atoms, 3))
        for dom in self.decomp.domains:
            out[dom.global_idx] = dom.forces
        return out


class DistributedEnsembleSimulation:
    """R domain-decomposed replicas x P ranks advanced in lockstep.

    Every replica is a full :class:`DistributedSimulation` (own communicator,
    decomposition, thermo reductions, rebuild schedule), but all R x P
    sub-domain frames of a step are submitted to ONE shared
    :class:`~repro.dp.backend.ForceBackend` call, which buckets them by
    shape and issues one batched graph evaluation per bucket — the
    evaluations-per-step counter equals the bucket count, not R x P.
    Physics is bitwise identical to running the R replicas as independent
    ``DistributedSimulation`` s (and therefore to the serial engine), because
    every frame's result is independent of the batch it was coalesced into.

    Parameters mirror :class:`DistributedSimulation`; ``systems`` carries
    one snapshot per replica (typically the same structure with different
    velocity seeds — see :meth:`from_system`).
    """

    def __init__(
        self,
        systems: Sequence[System],
        model,
        grid: tuple[int, int, int] = (2, 1, 1),
        dt: float = 0.001,
        skin: float = 2.0,
        rebuild_every: int = 50,
        thermo_every: int = 20,
        use_iallreduce: bool = True,
        force_backend: Optional[ForceBackend] = None,
    ):
        model = getattr(model, "model", model)  # unwrap DeepPotPair
        systems = list(systems)
        if not systems:
            raise ValueError(
                "DistributedEnsembleSimulation needs at least one replica"
            )
        self.model = model
        self.force_backend = (
            force_backend if force_backend is not None else ForceBackend(model)
        )
        self.replicas = [
            DistributedSimulation(
                system=s,
                model=model,
                grid=grid,
                dt=dt,
                skin=skin,
                rebuild_every=rebuild_every,
                thermo_every=thermo_every,
                use_iallreduce=use_iallreduce,
                force_backend=self.force_backend,
                defer_initial_forces=True,
            )
            for s in systems
        ]
        self.loop_seconds = 0.0
        # Setup-time forces for ALL replicas in one fused backend call.
        self._evaluate_all()

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_system(
        cls,
        system: System,
        model,
        n_replicas: int,
        temperature: float | Sequence[float] = 330.0,
        seed: int | Sequence[int] = 0,
        **kwargs,
    ) -> "DistributedEnsembleSimulation":
        """Clone one structure into R replicas with fresh Boltzmann
        velocities (scalar seeds are offset per replica), mirroring
        :meth:`repro.md.ensemble.EnsembleSimulation.from_system`."""
        from repro.md.velocity import boltzmann_velocities

        temps = (
            [float(temperature)] * n_replicas
            if np.ndim(temperature) == 0
            else [float(t) for t in temperature]
        )
        seeds = (
            [int(seed) + k for k in range(n_replicas)]
            if np.ndim(seed) == 0
            else [int(s) for s in seed]
        )
        if len(temps) != n_replicas or len(seeds) != n_replicas:
            raise ValueError(
                "temperature/seed sequences must have one entry per replica"
            )
        replicas = []
        for k in range(n_replicas):
            rep = system.copy()
            boltzmann_velocities(rep, temps[k], seed=seeds[k])
            replicas.append(rep)
        return cls(replicas, model, **kwargs)

    # ---------------------------------------------------------------- stepping

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def step_count(self) -> int:
        return self.replicas[0].step_count

    @property
    def thermo(self) -> list[list[ThermoState]]:
        """Per-replica thermo logs (one list per replica)."""
        return [rep.thermo for rep in self.replicas]

    def _evaluate_all(self) -> None:
        """One fused force evaluation over every replica's rank frames."""
        frames: list[ForceFrame] = []
        owners: list[tuple[DistributedSimulation, list[int], int]] = []
        for rep in self.replicas:
            rep_frames, ranks = rep._force_frames()
            frames.extend(rep_frames)
            owners.append((rep, ranks, len(rep_frames)))
        results = self.force_backend.evaluate(frames)
        pos = 0
        for rep, ranks, count in owners:
            rep._apply_force_results(ranks, results[pos : pos + count])
            pos += count

    def _step(self) -> None:
        for rep in self.replicas:
            rep._first_half_kick()
        for rep in self.replicas:
            # Rebuilds invalidate the shared backend's bucket cache.
            rep._prepare_neighbors()
        self._evaluate_all()
        for rep in self.replicas:
            rep._second_half_kick()
            rep._maybe_record_thermo()

    def run(self, n_steps: int) -> list[list[ThermoState]]:
        """Advance all replicas ``n_steps`` in lockstep."""
        import time

        for rep in self.replicas:
            rep._maybe_record_thermo()
        t0 = time.perf_counter()
        for _ in range(n_steps):
            self._step()
        self.loop_seconds += time.perf_counter() - t0
        for rep in self.replicas:
            rep._flush_pending_thermo()
        return self.thermo

    # ----------------------------------------------------------------- metrics

    def total_atoms(self) -> int:
        return sum(rep.system.n_atoms for rep in self.replicas)

    def time_to_solution(self) -> float:
        """Seconds per MD step per atom, aggregated over all replicas."""
        if self.step_count == 0:
            return float("nan")
        return self.loop_seconds / self.step_count / self.total_atoms()

    def current_systems(self) -> list[System]:
        """Per-replica global systems gathered from their ranks."""
        return [rep.current_system() for rep in self.replicas]
