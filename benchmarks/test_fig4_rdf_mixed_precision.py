"""Fig 4 — water RDFs (g_OO, g_OH, g_HH) from double vs mixed precision MD.

The paper's acceptance criterion for mixed precision is *statistical*: MD
driven by the fp32-network model must reproduce the structure of liquid
water — the three partial RDFs lie on top of the double-precision curves.

Both trajectories start from identical states; the RDFs are averaged over
the sampled frames and compared bin by bin.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_header
from repro.analysis.rdf import average_rdf
from repro.analysis.structures import water_box
from repro.dp.pair import DeepPotPair
from repro.md import Langevin, Simulation, boltzmann_velocities
from repro.md.neighbor import fitted_neighbor_list
from repro.zoo import as_mixed_precision

N_STEPS = 150
TRAJ = {}


def _run(model, system, seed=11):
    sysw = system.copy()
    boltzmann_velocities(sysw, 330.0, seed=seed)
    pair = DeepPotPair(model)
    sim = Simulation(
        sysw,
        pair,
        dt=0.0005,
        integrator=Langevin(temperature=330.0, damp=0.1, seed=13),
        neighbor=fitted_neighbor_list(sysw, pair.cutoff),
        trajectory_every=10,
    )
    sim.run(N_STEPS)
    return sim.trajectory


@pytest.fixture(scope="module")
def system():
    return water_box((3, 3, 3), seed=4)


def test_double_trajectory(benchmark, zoo_water_model, system):
    benchmark.pedantic(
        lambda: TRAJ.__setitem__("double", _run(zoo_water_model, system)),
        rounds=1, iterations=1,
    )


def test_mixed_trajectory(benchmark, zoo_water_model, system):
    mixed = as_mixed_precision(zoo_water_model)
    benchmark.pedantic(
        lambda: TRAJ.__setitem__("mixed", _run(mixed, system)),
        rounds=1, iterations=1,
    )


def test_zz_rdf_agreement(benchmark, system):
    # register as a benchmark so --benchmark-only still runs the report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert {"double", "mixed"} <= TRAJ.keys()
    r_max = 0.45 * float(system.box.lengths.min())
    pairs = {"g_OO": (0, 0), "g_OH": (0, 1), "g_HH": (1, 1)}

    print_header("Fig 4 — RDF agreement, double vs mixed precision")
    print(f"{len(TRAJ['double'])} frames per trajectory, {N_STEPS} steps, "
          f"r_max {r_max:.1f} Å")
    max_dev = {}
    for name, (ta, tb) in pairs.items():
        r, gd = average_rdf(
            TRAJ["double"], template=system, r_max=r_max, n_bins=25,
            type_a=ta, type_b=tb,
        )
        _, gm = average_rdf(
            TRAJ["mixed"], template=system, r_max=r_max, n_bins=25,
            type_a=ta, type_b=tb,
        )
        dev = float(np.abs(gd - gm).max())
        max_dev[name] = dev
        peak_d = r[np.argmax(gd)]
        peak_m = r[np.argmax(gm)]
        print(f"{name}: peak at {peak_d:.2f} Å (double) vs {peak_m:.2f} Å "
              f"(mixed); max|Δg| = {dev:.3f}")

    # Identical model parameters + same thermostat noise: trajectories track
    # each other closely at these lengths, so RDFs must nearly coincide —
    # the Fig 4 "perfect agreement" claim at laptop scale.
    for name, dev in max_dev.items():
        assert dev < 0.6, (name, dev)  # g(r) peaks are O(2-4)
    # the covalent O-H peak must sit at the same radius in both
    r, gd = average_rdf(TRAJ["double"], template=system, r_max=r_max,
                        n_bins=25, type_a=0, type_b=1)
    _, gm = average_rdf(TRAJ["mixed"], template=system, r_max=r_max,
                        n_bins=25, type_a=0, type_b=1)
    assert abs(r[np.argmax(gd)] - r[np.argmax(gm)]) < 0.2
