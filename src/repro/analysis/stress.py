"""Strain–stress recording for tensile deformation runs (Fig 7).

The Cauchy stress tensor is computed from the kinetic + virial contributions:
σ = (Σ m v⊗v + W) / V, reported in GPa with the solid-mechanics sign
convention (tension positive along the pulled axis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.md.system import System
from repro.units import EVA3_TO_BAR, MVV_TO_EV

BAR_TO_GPA = 1e-4


def stress_tensor(system: System, virial: np.ndarray) -> np.ndarray:
    """Cauchy stress tensor in GPa (tension positive)."""
    m = system.atom_masses()
    kinetic = MVV_TO_EV * np.einsum(
        "n,ni,nj->ij", m, system.velocities, system.velocities
    )
    sigma_ev_a3 = (kinetic + np.asarray(virial).reshape(3, 3)) / system.box.volume
    # Pressure convention: positive virial trace = outward push = compression
    # resisted; tensile stress along an axis is the negative of that pressure
    # component.
    return -sigma_ev_a3 * EVA3_TO_BAR * BAR_TO_GPA


@dataclass
class StressStrainRecorder:
    """Accumulates (strain, stress_axis) samples during a deformation run."""

    axis: int = 2
    strains: list[float] = field(default_factory=list)
    stresses: list[float] = field(default_factory=list)

    def record(self, system: System, virial: np.ndarray, strain: float) -> float:
        sigma = stress_tensor(system, virial)
        s_axis = float(sigma[self.axis, self.axis])
        self.strains.append(float(strain))
        self.stresses.append(s_axis)
        return s_axis

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.strains), np.asarray(self.stresses)

    def peak_stress(self) -> float:
        return max(self.stresses) if self.stresses else float("nan")
